"""Quality gate: every public module, class, and function is documented.

Walks the installed package and asserts docstrings on everything that is
part of the public surface (not underscore-prefixed). Keeps deliverable
(e) honest as the codebase grows.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_FUNCTION_NAMES = {
    # dataclass-generated or trivially conventional:
    "__init__", "__repr__", "__post_init__",
}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(obj, "__module__", None) == module.__name__
        if defined_here and (inspect.isclass(obj) or inspect.isfunction(obj)):
            yield name, obj


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if not obj.__doc__:
                missing.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if mname.startswith("_") or mname in IGNORED_FUNCTION_NAMES:
                        continue
                    # getdoc() inherits docs from the base class, so
                    # interface implementations need not repeat them.
                    if (inspect.isfunction(member)
                            and not inspect.getdoc(getattr(obj, mname))):
                        missing.append(f"{module.__name__}.{name}.{mname}")
    assert not missing, (
        f"{len(missing)} public items lack docstrings: {missing[:20]}")
