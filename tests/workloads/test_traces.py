"""Tests for trace parsing and replay."""

import pytest

from repro.bb import Cluster, ClusterConfig
from repro.core import JobInfo
from repro.errors import ConfigError
from repro.units import MB
from repro.workloads import (TraceOp, TraceWorkload, format_trace_csv,
                             parse_trace_csv)


def replay(workload, seconds=5.0):
    cluster = Cluster(ClusterConfig(n_servers=1, policy="job-fair"))
    cluster.fs.makedirs("/fs/tr")
    client = cluster.add_client(JobInfo(job_id=1, user="u", size=1))
    done = {"t": None}

    def proc():
        yield from workload.run_stream(cluster.engine, client,
                                       cluster.rng.stream("tr"),
                                       "/fs/tr", 0, None)
        done["t"] = cluster.engine.now

    cluster.engine.process(proc())
    cluster.run(until=seconds)
    return cluster, done["t"]


class TestTraceOp:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TraceOp(time=-1, op="write", path="f", size=1)
        with pytest.raises(ConfigError):
            TraceOp(time=0, op="paint", path="f")
        with pytest.raises(ConfigError):
            TraceOp(time=0, op="read", path="f", size=0)


class TestCsv:
    def test_parse_basic(self):
        ops = parse_trace_csv(
            "# comment\n"
            "0.5,write,out.dat,0,1048576\n"
            "0.1,stat,out.dat\n"
            "\n")
        assert len(ops) == 2
        assert ops[0].op == "stat"  # sorted by time
        assert ops[1].size == 1048576

    def test_roundtrip(self):
        ops = [TraceOp(0.0, "open", "f"),
               TraceOp(1.0, "write", "f", 0, 100),
               TraceOp(2.0, "unlink", "f")]
        assert parse_trace_csv(format_trace_csv(ops)) == ops

    def test_bad_lines_rejected(self):
        with pytest.raises(ConfigError):
            parse_trace_csv("1.0,write\n")
        with pytest.raises(ConfigError):
            parse_trace_csv("abc,write,f,0,1\n")


class TestReplay:
    def test_untimed_replay_executes_all_ops(self):
        ops = [TraceOp(0.0, "mkdir", "sub"),
               TraceOp(0.0, "write", "sub/f", 0, 2 * MB),
               TraceOp(0.0, "read", "sub/f", 0, 2 * MB),
               TraceOp(0.0, "stat", "sub/f"),
               TraceOp(0.0, "unlink", "sub/f")]
        cluster, t = replay(TraceWorkload(ops, timed=False))
        assert t is not None
        s = cluster.sampler
        assert s.op_count(op="write") == 1
        assert s.op_count(op="read") == 1
        assert s.op_count(op="stat") == 1
        assert not cluster.fs.exists("/fs/tr/sub/f")

    def test_timed_replay_preserves_pacing(self):
        ops = [TraceOp(0.0, "write", "f", 0, MB),
               TraceOp(1.0, "write", "f", 0, MB)]
        cluster, t = replay(TraceWorkload(ops, timed=True))
        assert t == pytest.approx(1.0, abs=0.05)
        times = [rec for rec in cluster.sampler._times]
        assert times[-1] >= 1.0

    def test_placeholders_separate_streams(self):
        ops = [TraceOp(0.0, "write", "s{stream}.dat", 0, MB)]
        wl = TraceWorkload(ops, timed=False, streams_per_node=2)
        cluster = Cluster(ClusterConfig(n_servers=1, policy="job-fair"))
        cluster.fs.makedirs("/fs/tr")
        client = cluster.add_client(JobInfo(job_id=1, user="u", size=1))
        for idx in range(2):
            cluster.engine.process(wl.run_stream(
                cluster.engine, client, cluster.rng.stream(f"t{idx}"),
                "/fs/tr", idx, None))
        cluster.run(until=5.0)
        assert sorted(cluster.fs.readdir("/fs/tr")) == ["s0.dat", "s1.dat"]

    def test_loop_until_stop(self):
        ops = [TraceOp(0.0, "write", "f", 0, MB)]
        wl = TraceWorkload(ops, timed=False, loop=True)
        cluster = Cluster(ClusterConfig(n_servers=1, policy="job-fair"))
        cluster.fs.makedirs("/fs/tr")
        client = cluster.add_client(JobInfo(job_id=1, user="u", size=1))
        cluster.engine.process(wl.run_stream(
            cluster.engine, client, cluster.rng.stream("t"),
            "/fs/tr", 0, 0.05))
        cluster.run(until=1.0)
        assert cluster.sampler.op_count(op="write") > 1

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            TraceWorkload([])

    def test_absolute_paths_bypass_prefix(self):
        cluster = Cluster(ClusterConfig(n_servers=1, policy="job-fair"))
        cluster.fs.makedirs("/fs/elsewhere")
        client = cluster.add_client(JobInfo(job_id=1, user="u", size=1))
        ops = [TraceOp(0.0, "write", "/fs/elsewhere/abs.dat", 0, MB)]
        cluster.engine.process(TraceWorkload(ops, timed=False).run_stream(
            cluster.engine, client, cluster.rng.stream("t"),
            "/fs/tr-unused", 0, None))
        cluster.run(until=5.0)
        assert cluster.fs.exists("/fs/elsewhere/abs.dat")
