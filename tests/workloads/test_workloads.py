"""Tests for the workload generators, driven through a small cluster."""

import pytest

from repro.bb import Cluster, ClusterConfig, ServerConfig
from repro.core import JobInfo
from repro.errors import ConfigError
from repro.units import KiB, MB
from repro.workloads import (APP_PROFILES, AppProfile, ApplicationWorkload,
                             IORWorkload, IopsStat, IopsWriteRead, JobSpec,
                             MdtestWorkload, PinnedWriter, WriteReadCycle)


def run_workload(workload, seconds=1.0, policy="job-fair", n_servers=1,
                 stop=None, **server_kw):
    cfg = ClusterConfig(n_servers=n_servers, policy=policy,
                        server=ServerConfig(**server_kw) if server_kw
                        else ServerConfig())
    cluster = Cluster(cfg)
    cluster.fs.makedirs("/fs/wl")
    client = cluster.add_client(JobInfo(job_id=1, user="u", size=1))
    rng = cluster.rng.stream("wl")
    done = {"finished": False, "t": None}

    def proc():
        yield from workload.run_stream(cluster.engine, client, rng,
                                       "/fs/wl", 0, stop)
        done["finished"] = True
        done["t"] = cluster.engine.now

    cluster.engine.process(proc())
    cluster.run(until=seconds)
    cluster.finish_time = done["t"]
    return cluster, done["finished"]


class TestJobSpec:
    def test_info_roundtrip(self):
        spec = JobSpec(job_id=3, user="a", group="g", nodes=16, priority=2.0)
        info = spec.info()
        assert (info.job_id, info.size, info.priority) == (3, 16, 2.0)

    def test_invalid_nodes(self):
        with pytest.raises(ConfigError):
            JobSpec(job_id=1, user="a", nodes=0)


class TestWriteReadCycle:
    def test_moves_equal_write_and_read_bytes(self):
        wl = WriteReadCycle(file_size=2 * MB)
        cluster, _ = run_workload(wl, seconds=0.2, stop=0.2)
        s = cluster.sampler
        wrote = sum(b for t, j, b, o in zip(s._times, s._jobs, s._bytes, s._ops)
                    if o == "write")
        read = sum(b for t, j, b, o in zip(s._times, s._jobs, s._bytes, s._ops)
                   if o == "read")
        assert wrote > 0
        assert abs(wrote - read) <= 2 * MB  # at most one cycle in flight

    def test_request_size_splits_cycles(self):
        wl = WriteReadCycle(file_size=4 * MB, request_size=MB)
        cluster, _ = run_workload(wl, seconds=0.05, stop=0.05)
        assert cluster.sampler.op_count(op="write") >= 4

    def test_stops_at_stop_time(self):
        wl = WriteReadCycle(file_size=MB)
        _, finished = run_workload(wl, seconds=1.0, stop=0.3)
        assert finished

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            WriteReadCycle(file_size=0)
        with pytest.raises(ConfigError):
            WriteReadCycle(file_size=10, request_size=20)


class TestIops:
    def test_iops_write_read_cycles_one_file(self):
        wl = IopsWriteRead(file_size=MB)
        cluster, _ = run_workload(wl, seconds=0.1, stop=0.1)
        assert cluster.sampler.op_count(op="write") > 2
        # One file created per stream.
        assert len(cluster.fs.readdir("/fs/wl")) == 1

    def test_iops_stat_hits_metadata_path(self):
        wl = IopsStat(name_space=100)
        cluster, _ = run_workload(wl, seconds=0.01, stop=0.01)
        assert cluster.sampler.op_count(op="stat") > 10
        assert cluster.sampler.total_bytes() == 0  # pure metadata

    def test_iops_stat_is_deterministic_per_seed(self):
        wl = IopsStat(name_space=100)
        c1, _ = run_workload(wl, seconds=0.005, stop=0.005)
        c2, _ = run_workload(wl, seconds=0.005, stop=0.005)
        assert c1.sampler.op_count(op="stat") == c2.sampler.op_count(op="stat")


class TestIOR:
    def test_write_mode_only_writes(self):
        wl = IORWorkload(file_size=4 * MB, block_size=MB, mode="write",
                         repeat=False)
        cluster, finished = run_workload(wl, seconds=1.0)
        assert finished
        assert cluster.sampler.op_count(op="write") == 4
        assert cluster.sampler.op_count(op="read") == 0

    def test_read_mode_prepopulates(self):
        wl = IORWorkload(file_size=4 * MB, block_size=MB, mode="read",
                         repeat=False)
        cluster, finished = run_workload(wl, seconds=1.0)
        assert finished
        assert cluster.sampler.total_bytes() == 4 * MB
        assert cluster.sampler.op_count(op="read") == 4

    def test_writeread_does_both(self):
        wl = IORWorkload(file_size=2 * MB, block_size=MB, mode="writeread",
                         repeat=False)
        cluster, finished = run_workload(wl, seconds=1.0)
        assert finished
        assert cluster.sampler.op_count(op="write") == 2
        assert cluster.sampler.op_count(op="read") == 2

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            IORWorkload(mode="scribble")


class TestMdtest:
    def test_create_stat_unlink_churn(self):
        wl = MdtestWorkload(files_per_iteration=4)
        cluster, _ = run_workload(wl, seconds=0.01, stop=0.01)
        s = cluster.sampler
        assert s.op_count(op="open") >= 4
        assert s.op_count(op="stat") >= 4
        assert s.op_count(op="unlink") >= 4

    def test_files_cleaned_up(self):
        wl = MdtestWorkload(files_per_iteration=2)
        cluster, _ = run_workload(wl, seconds=0.5, stop=0.002)
        # After the run the directory has no leftover md- files beyond
        # possibly one partial iteration.
        leftovers = [f for f in cluster.fs.readdir("/fs/wl")
                     if f.startswith("md-")]
        assert len(leftovers) <= 2


class TestPinnedWriter:
    def test_writes_only_the_given_paths(self):
        wl = PinnedWriter(["/fs/pin/a"], request_size=MB)
        cluster, _ = run_workload(wl, seconds=0.05, stop=0.05)
        assert cluster.fs.exists("/fs/pin/a")
        assert cluster.sampler.total_bytes() > 0

    def test_needs_paths(self):
        with pytest.raises(ConfigError):
            PinnedWriter([])


class TestApplicationWorkload:
    def test_profiles_registry(self):
        assert set(APP_PROFILES) == {"namd", "wrf", "specfem3d", "resnet50",
                                     "bert"}

    def test_sync_variant(self):
        sync = APP_PROFILES["resnet50"].sync_variant()
        assert sync.async_depth == 0
        assert sync.name == "resnet50-sync"

    def test_invalid_profiles(self):
        with pytest.raises(ConfigError):
            AppProfile(name="x", nodes=1, steps=0, compute_per_step=0.1,
                       io_every=1, io_bytes=1, io_request=1)
        with pytest.raises(ConfigError):
            AppProfile(name="x", nodes=1, steps=1, compute_per_step=0.1,
                       io_every=1, io_bytes=1, io_request=1, io_op="write",
                       async_depth=2)

    def test_write_app_completes_and_moves_bytes(self):
        profile = AppProfile(name="mini", nodes=2, steps=4,
                             compute_per_step=0.01, io_every=2,
                             io_bytes=2 * MB, io_request=MB, io_op="write")
        wl = ApplicationWorkload(profile)
        cluster, finished = run_workload(wl, seconds=5.0)
        assert finished
        assert cluster.sampler.total_bytes() == 4 * MB  # two bursts

    def test_async_app_prefetches(self):
        profile = AppProfile(name="mini-async", nodes=1, steps=6,
                             compute_per_step=0.01, io_every=1,
                             io_bytes=MB, io_request=256 * KiB,
                             io_op="read", async_depth=2)
        wl = ApplicationWorkload(profile)
        cluster, finished = run_workload(wl, seconds=5.0)
        assert finished
        assert cluster.sampler.op_count(op="read") >= 6 * 4

    def test_compute_time_dominates_when_io_tiny(self):
        profile = AppProfile(name="cpu", nodes=1, steps=10,
                             compute_per_step=0.05, io_every=10,
                             io_bytes=MB, io_request=MB, io_op="write")
        wl = ApplicationWorkload(profile)
        cluster, finished = run_workload(wl, seconds=5.0)
        assert finished
        assert cluster.finish_time == pytest.approx(0.5, rel=0.2)
