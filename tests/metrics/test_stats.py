"""Tests for the evaluation statistics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.metrics import (jain_index, median_nonzero, percentile_nonzero,
                           scaling_efficiency, share_ratio, size_fair_bound,
                           slowdown, speedup, stddev_nonzero)


class TestMedianStd:
    def test_median_ignores_zero_bins(self):
        assert median_nonzero([0, 0, 10, 20, 30, 0]) == 20

    def test_median_all_zero(self):
        assert median_nonzero([0.0, 0.0]) == 0.0

    def test_stddev_nonzero(self):
        assert stddev_nonzero([0, 5, 5, 5]) == 0.0
        assert stddev_nonzero([0, 4, 8]) == pytest.approx(2.0)


class TestPercentile:
    def test_percentile_ignores_zeros(self):
        assert percentile_nonzero([0, 0, 10, 20, 30, 40], 50) == 25.0
        assert percentile_nonzero([0, 5], 100) == 5.0

    def test_all_zero(self):
        assert percentile_nonzero([0.0], 99) == 0.0

    def test_invalid_q(self):
        with pytest.raises(ConfigError):
            percentile_nonzero([1.0], 101)


class TestSizeFairBound:
    def test_paper_namd_example(self):
        # §5.5: 64-node NAMD vs 1-node background -> 1/65 ~ 1.5%.
        assert size_fair_bound(64) == pytest.approx(1 / 65)

    def test_paper_resnet_example(self):
        # 16-node ResNet vs 1-node background -> 1/17 ~ 5.9%.
        assert size_fair_bound(16) == pytest.approx(1 / 17)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            size_fair_bound(0)


class TestSlowdown:
    def test_slowdown(self):
        assert slowdown(10.0, 16.0) == pytest.approx(0.6)
        assert slowdown(10.0, 10.0) == pytest.approx(0.0)

    def test_speedup(self):
        assert speedup(16.0, 10.0) == pytest.approx(1.6)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            slowdown(0.0, 5.0)
        with pytest.raises(ConfigError):
            speedup(1.0, 0.0)


class TestJain:
    def test_perfectly_even(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            jain_index([])

    def test_all_zero(self):
        assert jain_index([0, 0]) == 1.0


class TestScaling:
    def test_linear_scaling_is_one(self):
        eff = scaling_efficiency([10, 20, 40], [1, 2, 4])
        assert np.allclose(eff, 1.0)

    def test_sublinear(self):
        eff = scaling_efficiency([11.7, 77.1, 1017.0], [1, 8, 128])
        assert eff[1] == pytest.approx(0.82, abs=0.01)  # the paper's 82%
        assert eff[2] == pytest.approx(0.68, abs=0.01)  # the paper's 68%

    def test_invalid(self):
        with pytest.raises(ConfigError):
            scaling_efficiency([1, 2], [1])
        with pytest.raises(ConfigError):
            scaling_efficiency([0], [1])


class TestRatio:
    def test_share_ratio(self):
        assert share_ratio(17.4, 4.4) == pytest.approx(3.954, abs=0.01)

    def test_zero_denominator(self):
        with pytest.raises(ConfigError):
            share_ratio(1.0, 0.0)


@given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20))
def test_property_jain_bounds(values):
    n = len(values)
    assert 1.0 / n - 1e-9 <= jain_index(values) <= 1.0 + 1e-9
