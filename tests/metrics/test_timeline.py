"""Tests for share timelines and convergence detection."""

import pytest

from repro.errors import ConfigError
from repro.metrics import ShareTimeline, ThroughputSampler, convergence_interval


def make_sampler(records):
    s = ThroughputSampler()
    for t, job, nbytes in records:
        s.record(t, job, nbytes, "write")
    return s


class TestShareTimeline:
    def test_shares_per_interval(self):
        s = make_sampler([(0.1, 1, 66), (0.2, 2, 34),
                          (1.1, 1, 50), (1.2, 2, 50)])
        tl = ShareTimeline(s, interval=1.0, start=0.0, end=2.0)
        assert tl.shares_at(0) == pytest.approx({1: 0.66, 2: 0.34})
        assert tl.shares_at(1) == pytest.approx({1: 0.5, 2: 0.5})

    def test_empty_interval_is_zero(self):
        s = make_sampler([(0.1, 1, 10)])
        tl = ShareTimeline(s, interval=1.0, start=0.0, end=3.0)
        assert tl.shares_at(2) == {1: 0.0}

    def test_share_series(self):
        s = make_sampler([(0.5, 1, 30), (0.5, 2, 10),
                          (1.5, 1, 10), (1.5, 2, 30)])
        tl = ShareTimeline(s, interval=1.0, start=0.0, end=2.0)
        series = tl.share_series(1)
        assert series[0] == pytest.approx(0.75)
        assert series[1] == pytest.approx(0.25)

    def test_invalid_interval(self):
        with pytest.raises(ConfigError):
            ShareTimeline(make_sampler([]), interval=0.0)

    def test_empty_sampler(self):
        tl = ShareTimeline(make_sampler([]), interval=1.0)
        assert tl.n_intervals == 0


class TestConvergence:
    def fair(self):
        return {1: 0.5, 2: 0.5}

    def test_converges_at_expected_interval(self):
        # Interval 0 unfair, intervals 1-2 fair.
        s = make_sampler([(0.1, 1, 90), (0.1, 2, 10),
                          (1.1, 1, 50), (1.1, 2, 50),
                          (2.1, 1, 52), (2.1, 2, 48)])
        tl = ShareTimeline(s, interval=1.0, start=0.0, end=3.0)
        assert convergence_interval(tl, self.fair(), tolerance=0.1,
                                    sustain=2) == 1

    def test_never_converges(self):
        s = make_sampler([(t + 0.1, 1, 90) for t in range(3)] +
                         [(t + 0.1, 2, 10) for t in range(3)])
        tl = ShareTimeline(s, interval=1.0, start=0.0, end=3.0)
        assert convergence_interval(tl, self.fair(), tolerance=0.1) is None

    def test_sustain_requires_consecutive_intervals(self):
        # Fair at interval 1, unfair at 2, fair at 3-4.
        s = make_sampler([(0.1, 1, 90), (0.1, 2, 10),
                          (1.1, 1, 50), (1.1, 2, 50),
                          (2.1, 1, 90), (2.1, 2, 10),
                          (3.1, 1, 50), (3.1, 2, 50),
                          (4.1, 1, 50), (4.1, 2, 50)])
        tl = ShareTimeline(s, interval=1.0, start=0.0, end=5.0)
        assert convergence_interval(tl, self.fair(), tolerance=0.1,
                                    sustain=2) == 3

    def test_invalid_sustain(self):
        tl = ShareTimeline(make_sampler([]), interval=1.0)
        with pytest.raises(ConfigError):
            convergence_interval(tl, self.fair(), sustain=0)

    def test_empty_intervals_do_not_count_as_fair(self):
        s = make_sampler([(3.1, 1, 50), (3.1, 2, 50),
                          (4.1, 1, 50), (4.1, 2, 50)])
        tl = ShareTimeline(s, interval=1.0, start=0.0, end=5.0)
        assert convergence_interval(tl, self.fair(), sustain=2) == 3
