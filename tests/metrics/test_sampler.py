"""Tests for throughput sampling and binning."""

import pytest

from repro.errors import ConfigError
from repro.metrics import ThroughputSampler


@pytest.fixture
def sampler():
    s = ThroughputSampler()
    # job 1: 100 B at t=0.5, 1.5, 2.5 ; job 2: 50 B at t=1.2
    s.record(0.5, 1, 100, "write")
    s.record(1.2, 2, 50, "read")
    s.record(1.5, 1, 100, "write")
    s.record(2.5, 1, 100, "read")
    return s


class TestRecording:
    def test_len(self, sampler):
        assert len(sampler) == 4

    def test_job_ids(self, sampler):
        assert sampler.job_ids() == [1, 2]

    def test_total_bytes(self, sampler):
        assert sampler.total_bytes() == 350
        assert sampler.total_bytes(1) == 300
        assert sampler.total_bytes(2) == 50
        assert sampler.total_bytes(99) == 0

    def test_op_count(self, sampler):
        assert sampler.op_count() == 4
        assert sampler.op_count(op="write") == 2
        assert sampler.op_count(job_id=1, op="read") == 1


class TestSeries:
    def test_one_second_bins(self, sampler):
        times, rates = sampler.series(interval=1.0, start=0.0, end=3.0)
        assert list(times) == [0.0, 1.0, 2.0]
        assert list(rates) == [100.0, 150.0, 100.0]

    def test_per_job_series(self, sampler):
        series = sampler.per_job_series(interval=1.0, start=0.0, end=3.0)
        assert list(series[2][1]) == [0.0, 50.0, 0.0]

    def test_interval_scaling(self, sampler):
        _, rates = sampler.series(interval=0.5, start=0.0, end=3.0)
        # 100 B in a 0.5 s bin = 200 B/s
        assert rates[1] == 200.0

    def test_empty_sampler_series(self):
        s = ThroughputSampler()
        times, rates = s.series(interval=1.0)
        assert len(times) == 1 and rates[0] == 0.0

    def test_window_throughput(self, sampler):
        assert sampler.window_throughput(0.0, 2.0) == pytest.approx(125.0)
        assert sampler.window_throughput(0.0, 2.0, job_id=2) == pytest.approx(25.0)
        assert sampler.window_throughput(2.0, 2.0) == 0.0


class TestIncrementalAggregatesMatchBruteForce:
    """The O(1)/O(log n) counters must agree with a full record scan."""

    @staticmethod
    def _generate(seed=17, n=3000):
        import random

        rng = random.Random(seed)
        sampler = ThroughputSampler()
        records = []
        t = 0.0
        for _ in range(n):
            t += rng.random() * 0.01  # nondecreasing completion times
            job = rng.randrange(8)
            nbytes = rng.randrange(1, 1 << 20)
            op = rng.choice(["read", "write", "meta"])
            sampler.record(t, job, nbytes, op)
            records.append((t, job, nbytes, op))
        return sampler, records

    def test_total_bytes_matches_scan(self):
        sampler, records = self._generate()
        assert sampler.total_bytes() == sum(r[2] for r in records)
        for job in range(9):  # includes one never-seen job id
            assert sampler.total_bytes(job) == sum(
                r[2] for r in records if r[1] == job)

    def test_op_count_matches_scan(self):
        sampler, records = self._generate()
        assert sampler.op_count() == len(records)
        for job in (None, 0, 3, 7):
            for op in (None, "read", "write", "meta"):
                expected = sum(1 for r in records
                               if (job is None or r[1] == job)
                               and (op is None or r[3] == op))
                assert sampler.op_count(job, op) == expected

    def test_window_throughput_matches_scan(self):
        import random

        sampler, records = self._generate()
        rng = random.Random(99)
        t_end = records[-1][0]
        for _ in range(100):
            t0 = rng.random() * t_end
            t1 = t0 + rng.random() * (t_end - t0)
            job = rng.choice([None, 0, 2, 5, 8])
            expected = sum(r[2] for r in records
                           if t0 <= r[0] < t1
                           and (job is None or r[1] == job))
            expected = expected / (t1 - t0) if t1 > t0 else 0.0
            got = sampler.window_throughput(t0, t1, job_id=job)
            assert got == pytest.approx(expected), (t0, t1, job)


class TestBinnedMode:
    """On-the-fly binning: bounded memory, aggregate-exact answers."""

    def test_bin_interval_validated(self):
        with pytest.raises(ConfigError):
            ThroughputSampler(bin_interval=0.0)
        with pytest.raises(ConfigError):
            ThroughputSampler(bin_interval=-1.0)

    @staticmethod
    def _pair():
        raw = ThroughputSampler()
        binned = ThroughputSampler(bin_interval=0.5)
        for rec in [(0.5, 1, 100, "write"), (1.2, 2, 50, "read"),
                    (1.5, 1, 100, "write"), (2.5, 1, 100, "read")]:
            raw.record(*rec)
            binned.record(*rec)
        return raw, binned

    def test_aggregates_match_raw_mode(self):
        raw, binned = self._pair()
        assert len(binned) == len(raw)
        assert binned.job_ids() == raw.job_ids()
        assert binned.total_bytes() == raw.total_bytes()
        assert binned.total_bytes(1) == raw.total_bytes(1)
        assert binned.op_count(op="write") == raw.op_count(op="write")
        assert binned.op_count(1, "read") == raw.op_count(1, "read")

    def test_series_matches_at_bin_resolution(self):
        raw, binned = self._pair()
        for job in (None, 1, 2):
            t_r, v_r = raw.series(job, interval=0.5, start=0.0, end=3.0)
            t_b, v_b = binned.series(job, interval=0.5, start=0.0, end=3.0)
            assert list(t_r) == list(t_b)
            assert list(v_r) == list(v_b)

    def test_window_throughput_on_aligned_windows(self):
        raw, binned = self._pair()
        for t0, t1 in [(0.0, 2.0), (0.5, 1.5), (1.0, 3.0), (0.0, 3.0)]:
            for job in (None, 1, 2):
                assert binned.window_throughput(t0, t1, job) == pytest.approx(
                    raw.window_throughput(t0, t1, job)), (t0, t1, job)

    def test_fractional_window_apportions_bins(self):
        binned = ThroughputSampler(bin_interval=1.0)
        binned.record(0.5, 1, 100, "write")
        binned.record(2.5, 1, 80, "write")  # recording continues past bin 0
        # Half of the (full) [0, 1) bin overlaps [0.5, 1.5): 50 B over 1 s.
        assert binned.window_throughput(0.5, 1.5) == pytest.approx(50.0)

    def test_memory_is_bounded_by_duration_not_records(self):
        binned = ThroughputSampler(bin_interval=1.0)
        for i in range(10_000):
            binned.record(i * 0.001, 1, 10, "write")  # all within 10 s
        assert len(binned) == 10_000
        assert len(binned._total_bins) == 10
        assert binned._times == []  # no raw records retained

    def test_empty_binned_series_and_window(self):
        binned = ThroughputSampler(bin_interval=1.0)
        times, rates = binned.series(interval=1.0)
        assert len(times) == 1 and rates[0] == 0.0
        assert binned.window_throughput(0.0, 5.0) == 0.0


class TestBinnedPartialFinalBin:
    """A run rarely ends on a ``bin_interval`` boundary; the default
    series() window must flush the partial final bin instead of
    truncating it when *interval* is finer than ``bin_interval``."""

    def test_tail_bytes_survive_fine_interval_series(self):
        s = ThroughputSampler(bin_interval=10.0)
        s.record(2.0, 1, 100, "write")
        s.record(12.0, 1, 200, "write")
        s.record(25.0, 1, 300, "write")   # partial bin [20, 30), sim ends
        for interval in (1.0, 2.5, 10.0):
            times, rates = s.series(interval=interval)
            assert sum(rates) * interval == pytest.approx(600.0), interval

    def test_series_window_covers_last_bin_centre(self):
        s = ThroughputSampler(bin_interval=10.0)
        s.record(21.0, 1, 300, "write")
        times, rates = s.series(interval=1.0)
        # The [20, 30) bin's point mass sits at t=25; the default window
        # must reach past it even though the last completion was t=21.
        assert times[-1] + 1.0 > 25.0
        assert sum(rates) * 1.0 == pytest.approx(300.0)

    def test_explicit_end_still_honoured(self):
        s = ThroughputSampler(bin_interval=10.0)
        s.record(25.0, 1, 300, "write")
        times, rates = s.series(interval=1.0, end=20.0)
        # Caller-chosen window excludes the tail bin: nothing invented.
        assert sum(rates) == 0.0

    def test_per_job_series_flushes_tail(self):
        s = ThroughputSampler(bin_interval=5.0)
        s.record(1.0, 1, 50, "write")
        s.record(8.0, 2, 70, "write")     # partial final bin [5, 10)
        per_job = s.per_job_series(interval=1.0)
        assert sum(per_job[1][1]) * 1.0 == pytest.approx(50.0)
        assert sum(per_job[2][1]) * 1.0 == pytest.approx(70.0)


class TestBinnedPartialFinalBinWindow:
    """window_throughput() in binned mode (ISSUE 5 satellite): the final
    stored bin only spans up to the last completion time. Spreading its
    bytes across the full ``bin_interval`` width made any window that
    covers the whole recording under-count the tail — the same truncation
    bug series() had, on the windowed-query path."""

    def test_full_recording_window_matches_raw(self):
        raw = ThroughputSampler()
        binned = ThroughputSampler(bin_interval=10.0)
        for rec in [(2.0, 1, 100, "write"), (12.0, 1, 200, "write"),
                    (25.0, 2, 300, "write")]:   # sim ends mid-bin [20, 30)
            raw.record(*rec)
            binned.record(*rec)
        # A window ending at the last completion must see *all* bytes;
        # the old full-width apportioning returned 600 - 300/2 = 450.
        assert binned.window_throughput(0.0, 25.0) == pytest.approx(
            raw.window_throughput(0.0, 25.0) + 300 / 25.0)
        # (Raw mode's half-open [t0, t1) excludes the record at exactly
        # t=25; the binned model spreads it across (20, 25] so the same
        # window captures it — total bytes over the recorded span.)
        assert binned.window_throughput(0.0, 25.0) * 25.0 == pytest.approx(
            binned.total_bytes())

    def test_partial_final_bin_is_not_diluted(self):
        s = ThroughputSampler(bin_interval=10.0)
        s.record(22.0, 1, 300, "write")
        s.record(24.0, 1, 100, "write")
        # All 400 B lie in [20, 24]; a window covering that span gets
        # every byte (old behaviour: 400 * 4/10 = 160 B).
        assert s.window_throughput(20.0, 24.0) * 4.0 == pytest.approx(400.0)
        # Fractional overlap *within* the truncated span still scales:
        # [20, 22) is half of the 4-second effective bin.
        assert s.window_throughput(20.0, 22.0) * 2.0 == pytest.approx(200.0)
        # Past the last completion there is nothing to apportion.
        assert s.window_throughput(24.0, 30.0) == 0.0

    def test_zero_width_final_bin_is_a_point_mass(self):
        s = ThroughputSampler(bin_interval=10.0)
        s.record(5.0, 1, 100, "write")
        s.record(20.0, 1, 300, "write")   # exactly on the [20, 30) edge
        # The final bin's span collapses to the instant t=20: windows
        # covering it get the whole mass, windows stopping at it get none.
        assert s.window_throughput(0.0, 20.0) * 20.0 == pytest.approx(100.0)
        assert s.window_throughput(0.0, 21.0) * 21.0 == pytest.approx(400.0)
        assert s.window_throughput(20.0, 25.0) * 5.0 == pytest.approx(300.0)

    def test_per_job_windows_share_the_clamp(self):
        s = ThroughputSampler(bin_interval=10.0)
        s.record(2.0, 1, 100, "write")
        s.record(25.0, 2, 300, "write")
        # Job 2's bytes all sit in [20, 25]; job 1's bin [0, 10) is a
        # full-width bin because recording continued past it.
        assert s.window_throughput(0.0, 25.0, job_id=2) * 25.0 \
            == pytest.approx(300.0)
        assert s.window_throughput(0.0, 5.0, job_id=1) * 5.0 \
            == pytest.approx(50.0)

    def test_dense_scan_and_sparse_iterate_agree(self):
        # Both _binned_window branches (range scan for narrow windows,
        # dict iteration for wide ones) must apply the same clamp.
        s = ThroughputSampler(bin_interval=1.0)
        for i in range(20):
            s.record(i * 0.25, 1, 10, "write")   # last bin [4, 5) partial
        wide = s.window_throughput(0.0, 100.0)   # range >> len(bins)
        narrow = s.window_throughput(0.0, 5.0)
        assert wide * 100.0 == pytest.approx(narrow * 5.0)
        assert narrow * 5.0 == pytest.approx(s.total_bytes())
