"""Tests for namespace path handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.fs import components, in_namespace, join, normalize, split


class TestNormalize:
    @pytest.mark.parametrize("raw,expected", [
        ("/", "/"),
        ("/fs", "/fs"),
        ("/fs/", "/fs"),
        ("//fs//a", "/fs/a"),
        ("/fs/./a", "/fs/a"),
        ("/fs/a/../b", "/fs/b"),
        ("/fs/a/b/../../c", "/fs/c"),
    ])
    def test_cases(self, raw, expected):
        assert normalize(raw) == expected

    def test_relative_rejected(self):
        with pytest.raises(InvalidArgument):
            normalize("fs/a")

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgument):
            normalize("")

    def test_escape_root_rejected(self):
        with pytest.raises(InvalidArgument):
            normalize("/..")
        with pytest.raises(InvalidArgument):
            normalize("/fs/../..")

    def test_idempotent(self):
        assert normalize(normalize("/a//b/./c")) == normalize("/a//b/./c")


class TestSplitJoin:
    def test_split(self):
        assert split("/fs/a/b") == ("/fs/a", "b")
        assert split("/fs") == ("/", "fs")

    def test_split_root_rejected(self):
        with pytest.raises(InvalidArgument):
            split("/")

    def test_join(self):
        assert join("/fs", "a", "b") == "/fs/a/b"
        assert join("/", "x") == "/x"

    def test_join_rejects_slash_in_component(self):
        with pytest.raises(InvalidArgument):
            join("/fs", "a/b")

    def test_components(self):
        assert components("/") == []
        assert components("/fs/a") == ["fs", "a"]


class TestNamespace:
    def test_inside(self):
        assert in_namespace("/fs/input/path")
        assert in_namespace("/fs")

    def test_outside(self):
        assert not in_namespace("/home/user/file")
        assert not in_namespace("/fsx/file")  # prefix must match a component


name_st = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1, max_size=8)


@given(st.lists(name_st, min_size=1, max_size=5))
def test_property_split_join_roundtrip(parts):
    path = "/" + "/".join(parts)
    parent, name = split(path)
    assert join(parent, name) == normalize(path)


@given(st.lists(name_st, min_size=0, max_size=5))
def test_property_components_rebuild(parts):
    path = "/" + "/".join(parts)
    assert normalize(path) == "/" + "/".join(components(path)) if parts else "/"
