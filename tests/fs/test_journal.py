"""Tests for namespace journaling and full-FS crash recovery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import JournaledFS


def make_fs(backend="log", servers=("a", "b")):
    fs = JournaledFS(list(servers), capacity_per_server=1 << 22,
                     stripe_size=128, default_stripe_count=2,
                     storage_backend=backend)
    fs.mkdir("/fs")
    return fs


class TestJournaling:
    def test_mutations_are_logged(self):
        fs = make_fs()
        fs.mkdir("/fs/d")
        fs.create("/fs/d/f")
        fs.write("/fs/d/f", 0, b"xyz")
        fs.unlink("/fs/d/f")
        fs.rmdir("/fs/d")
        ops = [r.op for r in fs.journal.records]
        assert ops == ["mkdir", "mkdir", "create", "extend", "unlink", "rmdir"]

    def test_checkpoint_compacts(self):
        fs = make_fs()
        for i in range(5):
            fs.create(f"/fs/f{i}")
        fs.journal.take_checkpoint(fs)
        assert len(fs.journal.records) == 0
        assert fs.journal.checkpoint is not None
        assert fs.journal.checkpoints_taken == 1


class TestRecovery:
    def test_namespace_and_data_survive_crash(self):
        fs = make_fs()
        fs.mkdir("/fs/run")
        fs.create("/fs/run/out")
        payload = bytes(range(256)) * 3
        fs.write("/fs/run/out", 0, payload)
        ino_before = fs.lookup("/fs/run/out").ino

        fs.crash()
        assert not fs.exists("/fs/run/out")
        stats = fs.recover()
        assert stats["applied"] > 0
        assert fs.exists("/fs/run/out")
        assert fs.lookup("/fs/run/out").ino == ino_before  # stable inos
        assert fs.read("/fs/run/out", 0, len(payload)) == payload
        assert fs.readdir("/fs/run") == ["out"]

    def test_recovery_from_checkpoint_plus_tail(self):
        fs = make_fs()
        fs.create("/fs/before")
        fs.write("/fs/before", 0, b"old")
        fs.journal.take_checkpoint(fs)
        fs.create("/fs/after")
        fs.write("/fs/after", 0, b"new")

        fs.crash()
        fs.recover()
        assert fs.read("/fs/before", 0, 3) == b"old"
        assert fs.read("/fs/after", 0, 3) == b"new"

    def test_deletions_replay(self):
        fs = make_fs()
        fs.create("/fs/gone")
        fs.unlink("/fs/gone")
        fs.crash()
        fs.recover()
        assert not fs.exists("/fs/gone")

    def test_truncate_replays(self):
        fs = make_fs()
        fs.create("/fs/t")
        fs.write("/fs/t", 0, b"x" * 300)
        fs.truncate("/fs/t", 0)
        fs.crash()
        fs.recover()
        assert fs.stat("/fs/t").size == 0

    def test_sizes_recovered_via_extend_records(self):
        fs = make_fs()
        fs.create("/fs/sized")
        fs.write_accounting("/fs/sized", 0, 10_000)
        fs.crash()
        fs.recover()
        assert fs.stat("/fs/sized").size == 10_000

    def test_extent_backend_metadata_recovers_without_data(self):
        # With the deployed (extent) backend the namespace journal still
        # recovers metadata; chunk data has no durable log (the §7 gap
        # the log design closes).
        fs = make_fs(backend="extent")
        fs.create("/fs/f")
        fs.write("/fs/f", 0, b"vanishes")
        fs.crash()
        fs.recover()
        assert fs.exists("/fs/f")


OPS = st.lists(
    st.tuples(st.sampled_from(["create", "write", "unlink", "mkdir"]),
              st.integers(0, 5)),
    min_size=1, max_size=30)


@settings(max_examples=25, deadline=None)
@given(OPS, st.randoms(use_true_random=False))
def test_property_recovered_fs_matches_reference(ops, rnd):
    """Random namespace churn + data writes, then crash/recover: the
    recovered FS matches a shadow model of paths and contents."""
    fs = make_fs()
    shadow = {}  # path -> bytes
    for op, n in ops:
        path = f"/fs/n{n}"
        if op == "create" and path not in shadow and not fs.exists(path):
            fs.create(path)
            shadow[path] = b""
        elif op == "write" and path in shadow:
            data = bytes([n]) * (n * 37 + 5)
            fs.write(path, 0, data)
            old = shadow[path]
            shadow[path] = data + old[len(data):]
        elif op == "unlink" and path in shadow:
            fs.unlink(path)
            del shadow[path]
    fs.crash()
    fs.recover()
    for path, content in shadow.items():
        assert fs.exists(path), path
        assert fs.read(path, 0, len(content) + 10) == content, path
    # No extra files resurrected.
    survivors = {f"/fs/{name}" for name in fs.readdir("/fs")}
    assert survivors == set(shadow)
