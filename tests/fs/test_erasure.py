"""Erasure tier at the fs layer: the GF(256) codec, ErasureSpec
placement, degraded reconstruction, group repair, and restripe — with
the content-hash zero-loss guarantee checked over every survivable
loss pattern."""

import hashlib
import itertools

import pytest

from repro.errors import InvalidArgument
from repro.fs import erasure as ec
from repro.fs.filesystem import ThemisFS
from repro.fs.journal import JournaledFS
from repro.fs.striping import (ErasureSpec, group_range, map_range,
                               parity_spans)
from repro.units import KiB, MiB


def _pattern(seed: int, length: int) -> bytes:
    return bytes((seed * 31 + i * 7 + (i >> 8)) % 256
                 for i in range(length))


class TestCodec:
    def test_roundtrip_every_loss_pattern(self):
        k, n = 3, 5
        data = [_pattern(s, 2 * KiB) for s in range(k)]
        shares = data + ec.encode(k, n, data)
        for kept in itertools.combinations(range(n), k):
            held = {i: shares[i] for i in kept}
            assert ec.decode(k, n, held) == data, kept

    def test_reconstruct_single_share(self):
        k, n = 4, 6
        data = [_pattern(s + 10, KiB) for s in range(k)]
        shares = data + ec.encode(k, n, data)
        for lost in range(n):
            held = {i: s for i, s in enumerate(shares) if i != lost}
            got = ec.reconstruct_share(k, n, held, lost)
            assert got == shares[lost], lost

    def test_identity_fast_path(self):
        k, n = 2, 4
        data = [_pattern(s, 512) for s in range(k)]
        held = {0: data[0], 1: data[1]}
        assert ec.decode(k, n, held) == data

    def test_parameter_validation(self):
        with pytest.raises(InvalidArgument):
            ec.encode(0, 3, [])
        with pytest.raises(InvalidArgument):
            ec.encode(3, 3, [b"x"] * 3)
        with pytest.raises(InvalidArgument):
            ec.encode(2, 4, [b"ab", b"abc"])  # unequal lengths
        with pytest.raises(InvalidArgument):
            ec.decode(2, 4, {0: b"ab"})  # fewer than k shares


class TestErasureSpec:
    def test_placement_is_distinct_per_group(self):
        spec = ErasureSpec(stripe_size=MiB,
                           servers=("a", "b", "c", "d", "e"), k=3)
        for group in range(8):
            placed = [spec.server_of_share(group, s)
                      for s in range(spec.n)]
            assert sorted(placed) == sorted(spec.servers), group

    def test_share_of_server_inverts_placement(self):
        spec = ErasureSpec(stripe_size=MiB,
                           servers=("a", "b", "c", "d"), k=2)
        for group in range(6):
            for s in range(spec.n):
                server = spec.server_of_share(group, s)
                assert spec.share_of_server(group, server) == s

    def test_validation(self):
        with pytest.raises(InvalidArgument):
            ErasureSpec(stripe_size=MiB, servers=("a", "a", "b"), k=2)
        with pytest.raises(InvalidArgument):
            ErasureSpec(stripe_size=MiB, servers=("a", "b"), k=2)

    def test_map_range_covers_data_shares_only(self):
        spec = ErasureSpec(stripe_size=KiB,
                           servers=("a", "b", "c", "d", "e"), k=3)
        pieces = map_range(spec, 0, 3 * KiB)  # exactly one group of data
        assert sum(p.length for p in pieces) == 3 * KiB
        assert len({p.server for p in pieces}) == 3

    def test_parity_spans_name_the_parity_servers(self):
        spec = ErasureSpec(stripe_size=KiB,
                           servers=("a", "b", "c", "d", "e"), k=3)
        spans = parity_spans(spec, 0, 3 * KiB)
        data_servers = {p.server for p in map_range(spec, 0, 3 * KiB)}
        assert len(spans) == spec.n - spec.k
        assert not (set(spans) & data_servers)
        for _, (anchor, total, groups) in spans.items():
            assert anchor == 0 and total == KiB and groups == (0,)

    def test_group_range(self):
        spec = ErasureSpec(stripe_size=KiB,
                           servers=("a", "b", "c", "d", "e"), k=3)
        touched = group_range(spec, 2 * KiB, 4 * KiB)
        assert [g for g, _ in touched] == [0, 1]


def _make_fs(cls=ThemisFS, n_servers=7, k=3, n=5, stripe=4 * KiB):
    names = [f"s{i}" for i in range(n_servers)]
    return cls(names, capacity_per_server=64 * MiB, stripe_size=stripe,
               erasure=(k, n))


class TestFilesystemErasure:
    def test_zero_loss_for_every_survivable_crash_set(self):
        """Acceptance: content hash identical through every <= n - k
        server-loss combination."""
        fs = _make_fs()
        fs.makedirs("/fs")
        data = _pattern(1, 40 * KiB)  # several groups, ragged tail
        fs.create("/fs/f")
        fs.write("/fs/f", 0, data)
        want = hashlib.sha256(data).hexdigest()
        spec = fs.lookup("/fs/f").stripe
        for width in (1, 2):  # n - k == 2
            for dead in itertools.combinations(spec.servers, width):
                got, info = fs.read_reconstruct("/fs/f", 0, len(data),
                                                set(dead))
                assert hashlib.sha256(got).hexdigest() == want, dead
                assert info["lost_bytes"] == 0, dead

    def test_loss_beyond_tolerance_is_accounted_not_raised(self):
        fs = _make_fs()
        fs.makedirs("/fs")
        data = _pattern(2, 12 * KiB)
        fs.create("/fs/f")
        fs.write("/fs/f", 0, data)
        spec = fs.lookup("/fs/f").stripe
        dead = set(spec.servers[:3])  # n - k + 1 servers gone
        got, info = fs.read_reconstruct("/fs/f", 0, len(data), dead)
        assert len(got) == len(data)
        assert info["lost_bytes"] > 0
        assert got != data  # zero-filled where the group was lost

    def test_repair_group_outcomes(self):
        fs = _make_fs()
        fs.makedirs("/fs")
        data = _pattern(3, 12 * KiB)  # one full group
        fs.create("/fs/f")
        fs.write("/fs/f", 0, data)
        fs.create("/fs/hole")  # never written: every group is a hole
        spec = fs.lookup("/fs/f").stripe
        dead = spec.servers[0]
        sub = next(s for s in (f"s{i}" for i in range(7))
                   if s not in spec.servers)
        outcome, moved = fs.repair_group("/fs/f", 0, dead, sub)
        assert outcome == "repaired" and moved == 4 * KiB
        hole_spec = fs.lookup("/fs/hole").stripe
        hole_sub = next(s for s in (f"s{i}" for i in range(7))
                        if s not in hole_spec.servers)
        assert fs.repair_group("/fs/hole", 0, hole_spec.servers[0],
                               hole_sub) == ("clean", 0)
        outcome, _ = fs.repair_group(
            "/fs/f", 0, dead, sub,
            unavailable=set(spec.servers[1:3]))  # survivors < k
        assert outcome == "lost"

    def test_repair_then_restripe_restores_plain_reads(self):
        fs = _make_fs()
        fs.makedirs("/fs")
        data = _pattern(4, 20 * KiB)
        fs.create("/fs/f")
        fs.write("/fs/f", 0, data)
        spec = fs.lookup("/fs/f").stripe
        dead = spec.servers[1]
        sub = next(s for s in (f"s{i}" for i in range(7))
                   if s not in spec.servers)
        for group in range(spec.n_groups(len(data))):
            outcome, _ = fs.repair_group("/fs/f", group, dead, sub)
            assert outcome in ("repaired", "clean")
        fs.restripe("/fs/f", dead, sub)
        new_spec = fs.lookup("/fs/f").stripe
        assert dead not in new_spec.servers and sub in new_spec.servers
        assert fs.read("/fs/f", 0, len(data)) == data

    def test_overlay_rebuild_covers_skipped_share(self):
        """Parity built from an overlay reconstructs bytes a down data
        server never stored (the degraded-write contract)."""
        fs = _make_fs()
        fs.makedirs("/fs")
        data = _pattern(5, 12 * KiB)
        fs.create("/fs/f")
        spec = fs.lookup("/fs/f").stripe
        down = {spec.server_of_share(0, 0)}  # first data share's server
        # Store every piece except the down server's, as a degraded
        # client write would, then overlay-rebuild the parity.
        for piece in map_range(spec, 0, len(data)):
            if piece.server in down:
                continue
            fs.write("/fs/f", piece.file_offset,
                     data[piece.file_offset:piece.file_end])
        fs.rebuild_parity("/fs/f", 0, overlay=(0, data),
                          skip_servers=down)
        got, info = fs.read_reconstruct("/fs/f", 0, len(data), down)
        assert got == data
        assert info["shares_reconstructed"] >= 1

    def test_erasure_files_on_lists_only_placed_files(self):
        fs = _make_fs()
        fs.makedirs("/fs")
        fs.create("/fs/a")
        fs.create("/fs/b")
        spec = fs.lookup("/fs/a").stripe
        server = spec.servers[0]
        assert "/fs/a" in fs.erasure_files_on(server)
        outside = next(s for s in (f"s{i}" for i in range(7))
                       if s not in spec.servers)
        assert "/fs/a" not in fs.erasure_files_on(outside)


class TestJournaledErasure:
    def test_restripe_survives_recovery(self):
        fs = _make_fs(cls=JournaledFS)
        fs.makedirs("/fs")
        data = _pattern(6, 12 * KiB)
        fs.create("/fs/f")
        fs.write("/fs/f", 0, data)
        spec = fs.lookup("/fs/f").stripe
        dead = spec.servers[0]
        sub = next(s for s in (f"s{i}" for i in range(7))
                   if s not in spec.servers)
        for group in range(spec.n_groups(len(data))):
            fs.repair_group("/fs/f", group, dead, sub)
        fs.restripe("/fs/f", dead, sub)
        fs.crash_node("s0")
        fs.recover_node("s0")
        recovered = fs.lookup("/fs/f").stripe
        assert isinstance(recovered, ErasureSpec)
        assert dead not in recovered.servers
        assert sub in recovered.servers
