"""Tests for the log-structured store: append semantics, GC, crash recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FSError, InvalidArgument, NoSpace
from repro.fs import LogStructuredStore


def make(capacity=1 << 16, segment_size=1 << 12, **kw):
    return LogStructuredStore(capacity, segment_size=segment_size, **kw)


class TestBasics:
    def test_write_read_roundtrip(self):
        store = make()
        store.write(("f", 0), b"hello")
        assert store.read(("f", 0)) == b"hello"

    def test_missing_key_is_none(self):
        assert make().read("ghost") is None

    def test_overwrite_returns_newest(self):
        store = make()
        store.write("k", b"v1")
        store.write("k", b"v2")
        assert store.read("k") == b"v2"

    def test_delete_tombstones(self):
        store = make()
        store.write("k", b"v")
        assert store.delete("k") is True
        assert store.read("k") is None
        assert "k" not in store
        assert store.delete("k") is False

    def test_keys(self):
        store = make()
        store.write("a", b"1")
        store.write("b", b"2")
        store.delete("a")
        assert store.keys() == {"b"}

    def test_non_bytes_rejected(self):
        with pytest.raises(InvalidArgument):
            make().write("k", "not bytes")

    def test_oversized_record_rejected(self):
        store = make(segment_size=128)
        with pytest.raises(InvalidArgument):
            store.write("k", b"x" * 256)

    def test_invalid_geometry(self):
        with pytest.raises(FSError):
            LogStructuredStore(0)
        with pytest.raises(FSError):
            LogStructuredStore(100, segment_size=200)
        with pytest.raises(FSError):
            LogStructuredStore(100, segment_size=60)  # < 2 segments


class TestSegments:
    def test_segments_roll_when_full(self):
        store = make(capacity=1 << 14, segment_size=1 << 10)
        for i in range(20):
            store.write(("f", i), b"x" * 200)
        assert store.segment_count > 1

    def test_utilization_drops_with_overwrites(self):
        store = make()
        for _ in range(10):
            store.write("same-key", b"y" * 100)
        assert store.utilization() < 0.5

    def test_live_bytes_tracks_newest_versions_only(self):
        store = make()
        store.write("k", b"a" * 100)
        first_live = store.live_bytes
        store.write("k", b"b" * 100)
        assert store.live_bytes == first_live


class TestGC:
    def test_gc_reclaims_dead_segments(self):
        store = make(capacity=1 << 14, segment_size=1 << 10)
        for i in range(12):
            store.write("hot", b"z" * 500)  # every write obsoletes the last
        used_before = store.used_bytes
        reclaimed = store.gc()
        assert reclaimed > 0
        assert store.used_bytes < used_before
        assert store.read("hot") == b"z" * 500  # live data preserved

    def test_gc_automatic_when_log_fills(self):
        store = make(capacity=1 << 13, segment_size=1 << 10)
        # Far more bytes written than capacity; only one key stays live.
        for i in range(200):
            store.write("k", b"w" * 400)
        assert store.gc_runs > 0
        assert store.read("k") == b"w" * 400

    def test_log_full_of_live_data_raises(self):
        store = make(capacity=1 << 12, segment_size=1 << 10,
                     gc_live_threshold=0.0)
        with pytest.raises(NoSpace):
            for i in range(100):
                store.write(("k", i), b"l" * 500)  # all live, no GC help


class TestRecovery:
    def test_crash_loses_index_recover_rebuilds(self):
        store = make()
        store.write("a", b"1")
        store.write("b", b"2")
        store.write("a", b"3")
        store.delete("b")
        store.crash()
        assert store.read("a") is None  # index gone
        report = store.recover()
        assert store.read("a") == b"3"
        assert store.read("b") is None
        assert report.live_keys == 1
        assert report.tombstones == 1
        assert report.records_scanned == 4

    def test_recovery_across_sealed_segments(self):
        store = make(capacity=1 << 14, segment_size=1 << 10)
        for i in range(30):
            store.write(("f", i % 5), bytes([i]) * 100)
        expect = {("f", k): store.read(("f", k)) for k in range(5)}
        store.crash()
        store.recover()
        for key, value in expect.items():
            assert store.read(key) == value

    def test_tombstone_not_resurrected(self):
        store = make()
        store.write("k", b"old")
        store.delete("k")
        store.crash()
        store.recover()
        assert store.read("k") is None

    def test_recovery_is_idempotent(self):
        store = make()
        store.write("k", b"v")
        store.recover()
        store.recover()
        assert store.read("k") == b"v"


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 5),             # key
              st.one_of(st.none(), st.binary(min_size=1, max_size=64))),
    min_size=1, max_size=40),
    st.integers(0, 40))
def test_property_crash_recovery_equals_committed_state(ops, crash_at):
    """Apply random writes/deletes, crash at an arbitrary point, recover:
    the store must equal the state of everything applied before the crash."""
    store = LogStructuredStore(1 << 16, segment_size=1 << 11)
    reference = {}
    crash_at = min(crash_at, len(ops))
    for key, value in ops[:crash_at]:
        if value is None:
            store.delete(key)
            reference.pop(key, None)
        else:
            store.write(key, value)
            reference[key] = value
    store.crash()
    store.recover()
    assert store.keys() == set(reference)
    for key, value in reference.items():
        assert store.read(key) == value
