"""Tests for the pluggable chunk backends: parity and recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.fs import ExtentBackend, LogBackend, ThemisFS, make_backend

CHUNK = 256


class TestFactory:
    def test_kinds(self):
        assert make_backend("extent", 1 << 16).name == "extent"
        assert make_backend("log", 1 << 16).name == "log"

    def test_unknown_rejected(self):
        with pytest.raises(InvalidArgument):
            make_backend("punchcards", 1 << 16)


@pytest.mark.parametrize("kind", ["extent", "log"])
class TestCommonBehaviour:
    def make(self, kind):
        return make_backend(kind, 1 << 20)

    def test_write_read_roundtrip(self, kind):
        backend = self.make(kind)
        backend.write_chunk(1, 0, 10, b"hello", CHUNK)
        assert backend.read_chunk(1, 0, 10, 5) == b"hello"

    def test_unwritten_chunk_is_none(self, kind):
        backend = self.make(kind)
        assert backend.read_chunk(1, 0, 0, 10) is None

    def test_partial_overwrite_preserves_rest(self, kind):
        backend = self.make(kind)
        backend.write_chunk(1, 0, 0, b"a" * 30, CHUNK)
        backend.write_chunk(1, 0, 10, b"B" * 5, CHUNK)
        got = backend.read_chunk(1, 0, 0, 30)
        assert got == b"a" * 10 + b"B" * 5 + b"a" * 15

    def test_drop_file_releases(self, kind):
        backend = self.make(kind)
        backend.write_chunk(1, 0, 0, b"x" * 100, CHUNK)
        backend.write_chunk(1, 1, 0, b"y" * 100, CHUNK)
        backend.write_chunk(2, 0, 0, b"z" * 100, CHUNK)
        assert backend.drop_file(1) > 0
        assert backend.read_chunk(1, 0, 0, 10) is None
        assert backend.read_chunk(2, 0, 0, 3) == b"z" * 3

    def test_used_bytes_positive_after_write(self, kind):
        backend = self.make(kind)
        backend.write_chunk(1, 0, 0, b"x" * 64, CHUNK)
        assert backend.used_bytes > 0


class TestLogBackendRecovery:
    def test_crash_recover_preserves_chunks(self):
        backend = LogBackend(1 << 20)
        backend.write_chunk(7, 0, 0, b"alpha", CHUNK)
        backend.write_chunk(7, 3, 64, b"beta", CHUNK)
        backend.crash()
        assert backend.read_chunk(7, 0, 0, 5) is None
        report = backend.recover()
        assert report.live_keys == 2
        assert backend.read_chunk(7, 0, 0, 5) == b"alpha"
        assert backend.read_chunk(7, 3, 64, 4) == b"beta"

    def test_write_outside_chunk_rejected(self):
        backend = LogBackend(1 << 20)
        with pytest.raises(InvalidArgument):
            backend.write_chunk(1, 0, CHUNK - 2, b"xyz", CHUNK)

    def test_drop_file_survives_recovery(self):
        backend = LogBackend(1 << 20)
        backend.write_chunk(1, 0, 0, b"data", CHUNK)
        backend.drop_file(1)
        backend.crash()
        backend.recover()
        assert backend.read_chunk(1, 0, 0, 4) is None


class TestThemisFSBackendIntegration:
    @pytest.mark.parametrize("kind", ["extent", "log"])
    def test_fs_roundtrip_per_backend(self, kind):
        fs = ThemisFS(["a", "b"], capacity_per_server=1 << 20,
                      stripe_size=64, default_stripe_count=2,
                      storage_backend=kind)
        fs.mkdir("/fs")
        fs.create("/fs/f")
        data = bytes(range(200))
        fs.write("/fs/f", 0, data)
        assert fs.read("/fs/f", 0, 200) == data

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidArgument):
            ThemisFS(["a"], capacity_per_server=1 << 20,
                     storage_backend="tape")


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 3),
                          st.integers(0, CHUNK - 32),
                          st.binary(min_size=1, max_size=32)),
                min_size=1, max_size=25))
def test_property_backends_agree(writes):
    """The extent and log backends expose identical read results for any
    interleaving of chunk writes (with a crash/recover thrown at the log)."""
    extent = ExtentBackend(1 << 22)
    log = LogBackend(1 << 22)
    for ino, chunk, offset, data in writes:
        extent.write_chunk(ino, chunk, offset, data, CHUNK)
        log.write_chunk(ino, chunk, offset, data, CHUNK)
    log.crash()
    log.recover()
    for ino in range(3):
        for chunk in range(4):
            a = extent.read_chunk(ino, chunk, 0, CHUNK)
            b = log.read_chunk(ino, chunk, 0, CHUNK)
            assert a == b, (ino, chunk)
