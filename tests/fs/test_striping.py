"""Tests for stripe layout computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.fs import StripeSpec, map_range


def spec(size=100, servers=("a", "b", "c")):
    return StripeSpec(stripe_size=size, servers=tuple(servers))


class TestSpec:
    def test_round_robin_server_of_chunk(self):
        s = spec()
        assert [s.server_of_chunk(i) for i in range(5)] == ["a", "b", "c", "a", "b"]

    def test_invalid_specs(self):
        with pytest.raises(InvalidArgument):
            StripeSpec(stripe_size=0, servers=("a",))
        with pytest.raises(InvalidArgument):
            StripeSpec(stripe_size=10, servers=())


class TestMapRange:
    def test_single_chunk(self):
        pieces = map_range(spec(), 10, 50)
        assert len(pieces) == 1
        p = pieces[0]
        assert (p.chunk_index, p.server, p.chunk_offset, p.length) == (0, "a", 10, 50)

    def test_chunk_boundary_split(self):
        pieces = map_range(spec(), 90, 20)
        assert [(p.chunk_index, p.server, p.chunk_offset, p.length)
                for p in pieces] == [(0, "a", 90, 10), (1, "b", 0, 10)]

    def test_spanning_many_chunks(self):
        pieces = map_range(spec(), 0, 350)
        assert [p.chunk_index for p in pieces] == [0, 1, 2, 3]
        assert [p.server for p in pieces] == ["a", "b", "c", "a"]
        assert [p.length for p in pieces] == [100, 100, 100, 50]

    def test_zero_length(self):
        assert map_range(spec(), 5, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(InvalidArgument):
            map_range(spec(), -1, 10)
        with pytest.raises(InvalidArgument):
            map_range(spec(), 0, -5)


@settings(max_examples=80)
@given(st.integers(min_value=1, max_value=300),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=1000))
def test_property_slices_tile_the_range(stripe_size, n_servers, offset, length):
    """Slices are contiguous, in order, cover exactly the range, and stay
    within chunk bounds on the right server."""
    s = StripeSpec(stripe_size, tuple(f"s{i}" for i in range(n_servers)))
    pieces = map_range(s, offset, length)
    assert sum(p.length for p in pieces) == length
    pos = offset
    for p in pieces:
        assert p.file_offset == pos
        assert p.server == s.servers[p.chunk_index % n_servers]
        assert 0 <= p.chunk_offset < stripe_size
        assert p.chunk_offset + p.length <= stripe_size
        assert p.file_offset == p.chunk_index * stripe_size + p.chunk_offset
        pos += p.length
    assert pos == offset + length
