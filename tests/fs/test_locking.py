"""Tests for §4.3 concurrency rules: range write locks + metadata mutexes."""

import pytest

from repro.errors import FSError
from repro.fs import MetadataLockTable, RangeLockTable


class TestRangeLocks:
    def test_disjoint_writes_proceed(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 100, "w1")
        assert t.try_lock_write(1, 100, 100, "w2")

    def test_overlapping_writes_conflict(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 100, "w1")
        assert not t.try_lock_write(1, 50, 100, "w2")

    def test_different_files_never_conflict(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 100, "w1")
        assert t.try_lock_write(2, 0, 100, "w2")

    def test_unlock_releases_ranges(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 100, "w1")
        assert t.unlock_write(1, "w1") == 1
        assert t.try_lock_write(1, 0, 100, "w2")

    def test_unlock_only_owner_ranges(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 10, "w1")
        t.try_lock_write(1, 10, 10, "w2")
        assert t.unlock_write(1, "w1") == 1
        assert t.write_locks_held(1) == 1

    def test_unlock_without_locks_is_zero(self):
        t = RangeLockTable()
        assert t.unlock_write(5, "x") == 0

    def test_adjacent_ranges_do_not_conflict(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 10, "a")
        assert t.try_lock_write(1, 10, 10, "b")

    def test_invalid_range_rejected(self):
        t = RangeLockTable()
        with pytest.raises(FSError):
            t.try_lock_write(1, -1, 10, "a")


class TestMetadataLocks:
    def test_exclusive(self):
        t = MetadataLockTable()
        assert t.try_lock(1, "a")
        assert not t.try_lock(1, "b")

    def test_reentrant_for_same_owner(self):
        t = MetadataLockTable()
        assert t.try_lock(1, "a")
        assert t.try_lock(1, "a")

    def test_unlock(self):
        t = MetadataLockTable()
        t.try_lock(1, "a")
        t.unlock(1, "a")
        assert not t.locked(1)
        assert t.try_lock(1, "b")

    def test_unlock_wrong_owner_raises(self):
        t = MetadataLockTable()
        t.try_lock(1, "a")
        with pytest.raises(FSError):
            t.unlock(1, "b")

    def test_holders(self):
        t = MetadataLockTable()
        t.try_lock(1, "a")
        t.try_lock(2, "b")
        assert t.holders() == {1, 2}
