"""Tests for §4.3 concurrency rules: range write locks + metadata mutexes."""

import pytest

from repro.errors import FSError
from repro.fs import MetadataLockTable, RangeLockTable
from repro.fs import locking as lockmod


class TestRangeLocks:
    def test_disjoint_writes_proceed(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 100, "w1")
        assert t.try_lock_write(1, 100, 100, "w2")

    def test_overlapping_writes_conflict(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 100, "w1")
        assert not t.try_lock_write(1, 50, 100, "w2")

    def test_different_files_never_conflict(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 100, "w1")
        assert t.try_lock_write(2, 0, 100, "w2")

    def test_unlock_releases_ranges(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 100, "w1")
        assert t.unlock_write(1, "w1") == 1
        assert t.try_lock_write(1, 0, 100, "w2")

    def test_unlock_only_owner_ranges(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 10, "w1")
        t.try_lock_write(1, 10, 10, "w2")
        assert t.unlock_write(1, "w1") == 1
        assert t.write_locks_held(1) == 1

    def test_unlock_without_locks_is_zero(self):
        t = RangeLockTable()
        assert t.unlock_write(5, "x") == 0

    def test_adjacent_ranges_do_not_conflict(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 10, "a")
        assert t.try_lock_write(1, 10, 10, "b")

    def test_invalid_range_rejected(self):
        t = RangeLockTable()
        with pytest.raises(FSError):
            t.try_lock_write(1, -1, 10, "a")


class _Waiter:
    """Stand-in for a sim Event: records wake order."""

    log = None  # shared per-test list, set by the test

    def __init__(self, name):
        self.name = name
        self.woken = False

    def succeed(self):
        self.woken = True
        _Waiter.log.append(self.name)


class TestWaiterQueues:
    """Event-driven lock wakeups: releases wake parked waiters (FIFO)."""

    def setup_method(self):
        _Waiter.log = []

    def test_release_wakes_all_waiters_in_fifo_order(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 100, "holder")
        a, b = _Waiter("a"), _Waiter("b")
        t.wait(1, a)
        t.wait(1, b)
        assert t.waiters(1) == 2
        t.unlock_write(1, "holder")
        assert _Waiter.log == ["a", "b"]
        assert t.waiters(1) == 0

    def test_registration_is_one_shot(self):
        # A woken waiter is gone; the next release must not touch it.
        t = RangeLockTable()
        t.try_lock_write(1, 0, 10, "h1")
        w = _Waiter("w")
        t.wait(1, w)
        t.unlock_write(1, "h1")
        t.try_lock_write(1, 0, 10, "h2")
        t.unlock_write(1, "h2")
        assert _Waiter.log == ["w"]  # woken exactly once

    def test_no_wake_without_release(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 10, "h")
        t.wait(1, _Waiter("w"))
        # unlock on an inode with no held locks releases nothing.
        assert t.unlock_write(1, "someone-else") == 0
        assert _Waiter.log == []

    def test_wakeups_scoped_to_inode(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 10, "h1")
        t.try_lock_write(2, 0, 10, "h2")
        t.wait(1, _Waiter("on-1"))
        t.wait(2, _Waiter("on-2"))
        t.unlock_write(2, "h2")
        assert _Waiter.log == ["on-2"]
        assert t.waiters(1) == 1

    def test_metadata_unlock_wakes_waiters(self):
        t = MetadataLockTable()
        t.try_lock(7, "owner")
        w = _Waiter("m")
        t.wait(7, w)
        t.unlock(7, "owner")
        assert w.woken
        assert t.try_lock(7, "w")  # lock is free for the woken waiter


class TestWaiterIndex:
    """Bucket-indexed wake candidate selection must be trace-neutral:
    the same waiters wake in the same FIFO order as the full scan."""

    KB = 1024

    def setup_method(self):
        _Waiter.log = []

    def _contended_scenario(self):
        """Holder on [0, 8K); ranged, unranged, and wide waiters parked."""
        t = RangeLockTable()
        t.try_lock_write(1, 0, 8 * self.KB, "holder")
        t.wait(1, _Waiter("in-range"), offset=4 * self.KB,
               length=self.KB, owner="in-range")
        t.wait(1, _Waiter("out-of-range"), offset=64 * self.KB,
               length=self.KB, owner="out-of-range")
        t.wait(1, _Waiter("unranged"), owner="unranged")
        # Spans far more than _INDEX_SPAN_CAP buckets: wildcard entry.
        t.wait(1, _Waiter("wide"), offset=0, length=1 << 22, owner="wide")
        return t

    def _run_release(self, indexed):
        lockmod.set_waiter_index_enabled(indexed)
        try:
            _Waiter.log = []
            t = self._contended_scenario()
            t.unlock_write(1, "holder")
            return list(_Waiter.log)
        finally:
            lockmod.set_waiter_index_enabled(True)

    def test_index_on_off_produce_identical_wake_trace(self):
        # Overlapping + unranged + wildcard wake, in arrival order; the
        # disjoint waiter stays parked — with or without the index.
        assert self._run_release(True) == \
            self._run_release(False) == ["in-range", "unranged", "wide"]

    def test_rearm_moves_entry_between_buckets(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, self.KB, "holder")
        w = _Waiter("w")
        t.wait(1, w, offset=512 * self.KB, length=self.KB, owner="w")
        # Re-arm onto the held range: the index must follow the move.
        t.wait(1, w, offset=0, length=self.KB, owner="w")
        t.unlock_write(1, "holder")
        assert _Waiter.log == ["w"]

    def test_acquisition_removes_entry_from_index(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, self.KB, "holder")
        t.wait(1, _Waiter("w"), offset=0, length=self.KB, owner="w")
        assert t.try_lock_write(1, 4 * self.KB, self.KB, "w")
        assert t.waiters(1) == 0
        t.unlock_write(1, "holder")
        assert _Waiter.log == []  # discarded entry never wakes

    def test_reset_clears_index_with_queues(self):
        t = self._contended_scenario()
        t.reset()
        assert t._index == {} and t._waiters == {}
        # The table keeps working after the crash path.
        t.try_lock_write(1, 0, self.KB, "h2")
        t.wait(1, _Waiter("again"), offset=0, length=self.KB, owner="again")
        _Waiter.log = []
        t.unlock_write(1, "h2")
        assert _Waiter.log == ["again"]

    def test_index_toggle_roundtrip(self):
        assert lockmod.waiter_index_enabled()
        lockmod.set_waiter_index_enabled(False)
        try:
            assert not lockmod.waiter_index_enabled()
        finally:
            lockmod.set_waiter_index_enabled(True)


class TestMetadataLocks:
    def test_exclusive(self):
        t = MetadataLockTable()
        assert t.try_lock(1, "a")
        assert not t.try_lock(1, "b")

    def test_reentrant_for_same_owner(self):
        t = MetadataLockTable()
        assert t.try_lock(1, "a")
        assert t.try_lock(1, "a")

    def test_unlock(self):
        t = MetadataLockTable()
        t.try_lock(1, "a")
        t.unlock(1, "a")
        assert not t.locked(1)
        assert t.try_lock(1, "b")

    def test_unlock_wrong_owner_raises(self):
        t = MetadataLockTable()
        t.try_lock(1, "a")
        with pytest.raises(FSError):
            t.unlock(1, "b")

    def test_holders(self):
        t = MetadataLockTable()
        t.try_lock(1, "a")
        t.try_lock(2, "b")
        assert t.holders() == {1, 2}
