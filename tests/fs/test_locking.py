"""Tests for §4.3 concurrency rules: range write locks + metadata mutexes."""

import pytest

from repro.errors import FSError
from repro.fs import MetadataLockTable, RangeLockTable


class TestRangeLocks:
    def test_disjoint_writes_proceed(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 100, "w1")
        assert t.try_lock_write(1, 100, 100, "w2")

    def test_overlapping_writes_conflict(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 100, "w1")
        assert not t.try_lock_write(1, 50, 100, "w2")

    def test_different_files_never_conflict(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 100, "w1")
        assert t.try_lock_write(2, 0, 100, "w2")

    def test_unlock_releases_ranges(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 100, "w1")
        assert t.unlock_write(1, "w1") == 1
        assert t.try_lock_write(1, 0, 100, "w2")

    def test_unlock_only_owner_ranges(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 10, "w1")
        t.try_lock_write(1, 10, 10, "w2")
        assert t.unlock_write(1, "w1") == 1
        assert t.write_locks_held(1) == 1

    def test_unlock_without_locks_is_zero(self):
        t = RangeLockTable()
        assert t.unlock_write(5, "x") == 0

    def test_adjacent_ranges_do_not_conflict(self):
        t = RangeLockTable()
        assert t.try_lock_write(1, 0, 10, "a")
        assert t.try_lock_write(1, 10, 10, "b")

    def test_invalid_range_rejected(self):
        t = RangeLockTable()
        with pytest.raises(FSError):
            t.try_lock_write(1, -1, 10, "a")


class _Waiter:
    """Stand-in for a sim Event: records wake order."""

    log = None  # shared per-test list, set by the test

    def __init__(self, name):
        self.name = name
        self.woken = False

    def succeed(self):
        self.woken = True
        _Waiter.log.append(self.name)


class TestWaiterQueues:
    """Event-driven lock wakeups: releases wake parked waiters (FIFO)."""

    def setup_method(self):
        _Waiter.log = []

    def test_release_wakes_all_waiters_in_fifo_order(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 100, "holder")
        a, b = _Waiter("a"), _Waiter("b")
        t.wait(1, a)
        t.wait(1, b)
        assert t.waiters(1) == 2
        t.unlock_write(1, "holder")
        assert _Waiter.log == ["a", "b"]
        assert t.waiters(1) == 0

    def test_registration_is_one_shot(self):
        # A woken waiter is gone; the next release must not touch it.
        t = RangeLockTable()
        t.try_lock_write(1, 0, 10, "h1")
        w = _Waiter("w")
        t.wait(1, w)
        t.unlock_write(1, "h1")
        t.try_lock_write(1, 0, 10, "h2")
        t.unlock_write(1, "h2")
        assert _Waiter.log == ["w"]  # woken exactly once

    def test_no_wake_without_release(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 10, "h")
        t.wait(1, _Waiter("w"))
        # unlock on an inode with no held locks releases nothing.
        assert t.unlock_write(1, "someone-else") == 0
        assert _Waiter.log == []

    def test_wakeups_scoped_to_inode(self):
        t = RangeLockTable()
        t.try_lock_write(1, 0, 10, "h1")
        t.try_lock_write(2, 0, 10, "h2")
        t.wait(1, _Waiter("on-1"))
        t.wait(2, _Waiter("on-2"))
        t.unlock_write(2, "h2")
        assert _Waiter.log == ["on-2"]
        assert t.waiters(1) == 1

    def test_metadata_unlock_wakes_waiters(self):
        t = MetadataLockTable()
        t.try_lock(7, "owner")
        w = _Waiter("m")
        t.wait(7, w)
        t.unlock(7, "owner")
        assert w.woken
        assert t.try_lock(7, "w")  # lock is free for the woken waiter


class TestMetadataLocks:
    def test_exclusive(self):
        t = MetadataLockTable()
        assert t.try_lock(1, "a")
        assert not t.try_lock(1, "b")

    def test_reentrant_for_same_owner(self):
        t = MetadataLockTable()
        assert t.try_lock(1, "a")
        assert t.try_lock(1, "a")

    def test_unlock(self):
        t = MetadataLockTable()
        t.try_lock(1, "a")
        t.unlock(1, "a")
        assert not t.locked(1)
        assert t.try_lock(1, "b")

    def test_unlock_wrong_owner_raises(self):
        t = MetadataLockTable()
        t.try_lock(1, "a")
        with pytest.raises(FSError):
            t.unlock(1, "b")

    def test_holders(self):
        t = MetadataLockTable()
        t.try_lock(1, "a")
        t.try_lock(2, "b")
        assert t.holders() == {1, 2}
