"""Best-fit extent allocation over the size-bucketed free index:
placement policy, tie-breaking, O(1) neighbour coalescing, and the
consistency of the bucketed views with the legacy ``_free`` list."""

import random

import pytest

from repro.errors import NoSpace
from repro.fs.storage import Extent, NVMeRegion


def test_best_fit_prefers_smallest_adequate_hole():
    r = NVMeRegion(1000)
    a = r.alloc(100)          # [0, 100)
    b = r.alloc(50)           # [100, 150)
    r.alloc(300)              # [150, 450); tail hole [450, 1000)
    r.free(a)                 # holes: 100 @ 0, 550 @ 450
    got = r.alloc(60)
    assert got.offset == 0    # 100-byte hole beats the 550-byte tail
    r.free(b)                 # holes: 40 @ 60, 50 @ 100 -> coalesce 90 @ 60
    assert r.alloc(90).offset == 60


def test_ties_break_to_lowest_offset():
    r = NVMeRegion(400)
    holes = [r.alloc(50) for _ in range(8)]  # fully allocated
    r.free(holes[5])
    r.free(holes[1])          # two 50-byte holes @ 250 and @ 50
    assert r.alloc(50).offset == 50


def test_free_coalesces_both_neighbours():
    r = NVMeRegion(300)
    a, b, c = r.alloc(100), r.alloc(100), r.alloc(100)
    r.free(a)
    r.free(c)
    assert len(r._free) == 2
    r.free(b)                 # merges with both neighbours
    assert r._free == [(0, 300)]


def test_double_free_and_bogus_extent_rejected():
    r = NVMeRegion(100)
    e = r.alloc(10)
    r.free(e)
    with pytest.raises(Exception):
        r.free(e)
    with pytest.raises(Exception):
        r.free(Extent(50, 10))


def test_exhaustion_raises_nospace():
    r = NVMeRegion(100)
    r.alloc(60)
    with pytest.raises(NoSpace):
        r.alloc(50)           # 40 contiguous left


def test_random_churn_keeps_index_consistent():
    rng = random.Random(7)
    r = NVMeRegion(1 << 16)
    live = []
    for _ in range(600):
        if rng.random() < 0.6 or not live:
            try:
                live.append(r.alloc(rng.randrange(1, 2048)))
            except NoSpace:
                r.free(live.pop(rng.randrange(len(live))))
        else:
            r.free(live.pop(rng.randrange(len(live))))
        # The three free-index views must agree at every step.
        free = r._free
        assert sorted(r._free_by_offset.items()) == free
        assert {off + length: off for off, length in free} == r._free_by_end
        by_bucket = sorted((off, length) for length, offs in r._buckets.items()
                           for off in offs)
        assert by_bucket == free
        assert sorted(r._buckets) == r._sizes
        # No adjacent uncoalesced runs, no overlap with allocations.
        for (o1, l1), (o2, _) in zip(free, free[1:]):
            assert o1 + l1 < o2
        assert r.used_bytes + sum(l for _, l in free) == r.capacity
    for extent in live:
        r.free(extent)
    assert r._free == [(0, r.capacity)]


def test_data_survives_churn():
    r = NVMeRegion(4096)
    a = r.alloc(100)
    r.write(a, 0, b"hello")
    b = r.alloc(200)
    r.write(b, 190, b"tail")
    r.free(a)
    c = r.alloc(64)
    assert r.read(b, 190, 4) == b"tail"
    assert r.read(c, 0, 4) == b"\x00" * 4
