"""Tests for the consistent-hash ring: determinism, balance, minimal remap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FSError
from repro.fs import ConsistentHashRing


def keys(n):
    return [f"/fs/dir/file-{i}.dat" for i in range(n)]


class TestBasics:
    def test_lookup_deterministic(self):
        r1 = ConsistentHashRing(["s0", "s1", "s2"])
        r2 = ConsistentHashRing(["s0", "s1", "s2"])
        for k in keys(50):
            assert r1.lookup(k) == r2.lookup(k)

    def test_lookup_returns_member(self):
        ring = ConsistentHashRing(["a", "b"])
        for k in keys(20):
            assert ring.lookup(k) in {"a", "b"}

    def test_lookup_n_distinct(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(5)])
        for k in keys(20):
            got = ring.lookup_n(k, 3)
            assert len(got) == 3
            assert len(set(got)) == 3

    def test_lookup_n_caps_at_server_count(self):
        ring = ConsistentHashRing(["a", "b"])
        assert len(ring.lookup_n("/fs/x", 5)) == 2

    def test_lookup_n_first_equals_lookup(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(4)])
        for k in keys(20):
            assert ring.lookup_n(k, 3)[0] == ring.lookup(k)

    def test_empty_ring_rejected(self):
        ring = ConsistentHashRing()
        with pytest.raises(FSError):
            ring.lookup("x")

    def test_duplicate_server_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(FSError):
            ring.add_server("a")

    def test_remove_unknown_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(FSError):
            ring.remove_server("zz")

    def test_invalid_params(self):
        with pytest.raises(FSError):
            ConsistentHashRing(["a"], vnodes=0)
        ring = ConsistentHashRing(["a"])
        with pytest.raises(FSError):
            ring.lookup_n("k", 0)


class TestDistribution:
    def test_roughly_balanced(self):
        servers = [f"s{i}" for i in range(8)]
        ring = ConsistentHashRing(servers, vnodes=128)
        counts = {s: 0 for s in servers}
        for k in keys(4000):
            counts[ring.lookup(k)] += 1
        expected = 4000 / 8
        for s, c in counts.items():
            assert 0.5 * expected < c < 1.7 * expected, (s, c)

    def test_minimal_remapping_on_add(self):
        servers = [f"s{i}" for i in range(7)]
        before = ConsistentHashRing(servers, vnodes=128)
        after = ConsistentHashRing(servers, vnodes=128)
        after.add_server("s-new")
        ks = keys(2000)
        moved = sum(before.lookup(k) != after.lookup(k) for k in ks)
        # Consistent hashing moves ~1/(n+1) of keys; allow generous slack.
        assert moved < 2000 * 0.30
        # Every moved key must now be on the new server.
        for k in ks:
            if before.lookup(k) != after.lookup(k):
                assert after.lookup(k) == "s-new"

    def test_remove_only_remaps_removed_keys(self):
        servers = [f"s{i}" for i in range(5)]
        before = ConsistentHashRing(servers, vnodes=64)
        after = ConsistentHashRing(servers, vnodes=64)
        after.remove_server("s2")
        for k in keys(1000):
            if before.lookup(k) != "s2":
                assert after.lookup(k) == before.lookup(k)


@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=6),
       st.text(min_size=1, max_size=30))
def test_property_lookup_stable_and_member(n_servers, key):
    servers = [f"srv{i}" for i in range(n_servers)]
    ring = ConsistentHashRing(servers)
    owner = ring.lookup(key)
    assert owner in servers
    assert ring.lookup(key) == owner
