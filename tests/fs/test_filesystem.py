"""Integration-level tests of the distributed ThemisFS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (DirectoryNotEmpty, FileExists, FileNotFound,
                          InvalidArgument, IsADirectory, NotADirectory)
from repro.fs import FileType, ThemisFS


def make_fs(n_servers=3, stripe_count=1, stripe_size=64, capacity=1 << 20):
    return ThemisFS([f"bb{i}" for i in range(n_servers)],
                    capacity_per_server=capacity,
                    stripe_size=stripe_size,
                    default_stripe_count=stripe_count)


class TestNamespaceOps:
    def test_mkdir_and_readdir(self):
        fs = make_fs()
        fs.mkdir("/fs")
        fs.mkdir("/fs/data")
        fs.create("/fs/data/a.dat")
        fs.create("/fs/data/b.dat")
        assert fs.readdir("/fs/data") == ["a.dat", "b.dat"]
        assert fs.readdir("/fs") == ["data"]

    def test_makedirs(self):
        fs = make_fs()
        fs.makedirs("/fs/a/b/c")
        assert fs.stat("/fs/a/b/c").is_dir
        fs.makedirs("/fs/a/b/c")  # idempotent

    def test_create_requires_parent(self):
        fs = make_fs()
        with pytest.raises(FileNotFound):
            fs.create("/nodir/file")

    def test_create_duplicate_rejected(self):
        fs = make_fs()
        fs.mkdir("/fs")
        fs.create("/fs/x")
        with pytest.raises(FileExists):
            fs.create("/fs/x")

    def test_parent_must_be_directory(self):
        fs = make_fs()
        fs.mkdir("/fs")
        fs.create("/fs/file")
        with pytest.raises(NotADirectory):
            fs.create("/fs/file/child")

    def test_stat_file_and_dir(self):
        fs = make_fs()
        fs.mkdir("/fs")
        fs.create("/fs/f")
        assert fs.stat("/fs/f").ftype is FileType.FILE
        assert fs.stat("/fs").ftype is FileType.DIRECTORY

    def test_stat_missing_raises(self):
        fs = make_fs()
        with pytest.raises(FileNotFound):
            fs.stat("/ghost")

    def test_unlink(self):
        fs = make_fs()
        fs.mkdir("/fs")
        fs.create("/fs/f")
        fs.write("/fs/f", 0, b"x" * 200)
        fs.unlink("/fs/f")
        assert not fs.exists("/fs/f")
        assert sum(fs.used_bytes().values()) == 0

    def test_unlink_directory_rejected(self):
        fs = make_fs()
        fs.mkdir("/fs")
        with pytest.raises(IsADirectory):
            fs.unlink("/fs")

    def test_rmdir(self):
        fs = make_fs()
        fs.mkdir("/fs")
        fs.mkdir("/fs/d")
        fs.rmdir("/fs/d")
        assert not fs.exists("/fs/d")

    def test_rmdir_nonempty_rejected(self):
        fs = make_fs()
        fs.mkdir("/fs")
        fs.create("/fs/f")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/fs")

    def test_rmdir_root_rejected(self):
        fs = make_fs()
        with pytest.raises(InvalidArgument):
            fs.rmdir("/")

    def test_dir_size_reflects_entries(self):
        fs = make_fs()
        fs.mkdir("/fs")
        empty = fs.stat("/fs").size
        fs.create("/fs/somefile")
        assert fs.stat("/fs").size > empty


class TestDataPath:
    def test_write_read_roundtrip(self):
        fs = make_fs()
        fs.mkdir("/fs")
        fs.create("/fs/f")
        data = bytes(range(256)) * 4
        fs.write("/fs/f", 0, data)
        assert fs.read("/fs/f", 0, len(data)) == data
        assert fs.stat("/fs/f").size == len(data)

    def test_striped_roundtrip_across_servers(self):
        fs = make_fs(n_servers=4, stripe_count=3, stripe_size=50)
        fs.mkdir("/fs")
        fs.create("/fs/big")
        data = bytes((i * 7) % 256 for i in range(500))
        fs.write("/fs/big", 0, data)
        assert fs.read("/fs/big", 0, 500) == data
        # Data actually landed on 3 distinct servers.
        used = [v for v in fs.used_bytes().values() if v > 0]
        assert len(used) == 3

    def test_partial_overwrite(self):
        fs = make_fs(stripe_size=10)
        fs.mkdir("/fs")
        fs.create("/fs/f")
        fs.write("/fs/f", 0, b"a" * 30)
        fs.write("/fs/f", 5, b"B" * 10)
        assert fs.read("/fs/f", 0, 30) == b"a" * 5 + b"B" * 10 + b"a" * 15

    def test_read_past_eof_is_short(self):
        fs = make_fs()
        fs.mkdir("/fs")
        fs.create("/fs/f")
        fs.write("/fs/f", 0, b"12345")
        assert fs.read("/fs/f", 3, 100) == b"45"
        assert fs.read("/fs/f", 10, 5) == b""

    def test_sparse_hole_reads_zero(self):
        fs = make_fs(stripe_size=10)
        fs.mkdir("/fs")
        fs.create("/fs/f")
        fs.write("/fs/f", 25, b"Z")
        got = fs.read("/fs/f", 0, 26)
        assert got == b"\x00" * 25 + b"Z"

    def test_io_on_directory_rejected(self):
        fs = make_fs()
        fs.mkdir("/fs")
        with pytest.raises(IsADirectory):
            fs.write("/fs", 0, b"x")
        with pytest.raises(IsADirectory):
            fs.read("/fs", 0, 1)

    def test_negative_offset_rejected(self):
        fs = make_fs()
        fs.mkdir("/fs")
        fs.create("/fs/f")
        with pytest.raises(InvalidArgument):
            fs.write("/fs/f", -1, b"x")

    def test_mtime_advances_with_clock(self):
        t = {"now": 0.0}
        fs = ThemisFS(["s0"], capacity_per_server=1 << 20, clock=lambda: t["now"])
        fs.mkdir("/fs")
        fs.create("/fs/f")
        t["now"] = 5.0
        fs.write("/fs/f", 0, b"x")
        assert fs.stat("/fs/f").mtime == 5.0


class TestPlacement:
    def test_metadata_server_deterministic(self):
        fs = make_fs(n_servers=4)
        assert fs.metadata_server("/fs/a") == fs.metadata_server("/fs/a")

    def test_data_servers_match_stripe(self):
        fs = make_fs(n_servers=4, stripe_count=2, stripe_size=10)
        fs.mkdir("/fs")
        inode = fs.create("/fs/f")
        servers = fs.data_servers("/fs/f", 0, 20)
        assert servers == set(inode.stripe.servers[:2])

    def test_data_servers_small_io_single_server(self):
        fs = make_fs(n_servers=4, stripe_count=4, stripe_size=100)
        fs.mkdir("/fs")
        fs.create("/fs/f")
        assert len(fs.data_servers("/fs/f", 0, 50)) == 1

    def test_files_spread_across_servers(self):
        fs = make_fs(n_servers=4)
        fs.mkdir("/fs")
        owners = {fs.metadata_server(f"/fs/file-{i}") for i in range(64)}
        assert len(owners) >= 3  # not all on one server


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=300), st.binary(min_size=1, max_size=80)),
    min_size=1, max_size=12))
def test_property_fs_matches_reference_buffer(writes):
    """Arbitrary striped writes then full read-back equals a flat reference."""
    fs = ThemisFS(["a", "b", "c"], capacity_per_server=1 << 20,
                  stripe_size=37, default_stripe_count=3)
    fs.mkdir("/fs")
    fs.create("/fs/f")
    ref = bytearray()
    for offset, data in writes:
        fs.write("/fs/f", offset, data)
        if len(ref) < offset + len(data):
            ref.extend(b"\x00" * (offset + len(data) - len(ref)))
        ref[offset:offset + len(data)] = data
    assert fs.read("/fs/f", 0, len(ref)) == bytes(ref)
    assert fs.stat("/fs/f").size == len(ref)
