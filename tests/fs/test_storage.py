"""Tests for the NVMe extent allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FSError, InvalidArgument, NoSpace
from repro.fs import NVMeRegion


class TestAlloc:
    def test_alloc_within_capacity(self):
        region = NVMeRegion(1000)
        e = region.alloc(100)
        assert e.length == 100
        assert 0 <= e.offset and e.end <= 1000

    def test_accounting(self):
        region = NVMeRegion(1000)
        region.alloc(300)
        region.alloc(200)
        assert region.used_bytes == 500
        assert region.free_bytes == 500
        assert region.extent_count == 2

    def test_allocations_never_overlap(self):
        region = NVMeRegion(1000)
        extents = [region.alloc(90) for _ in range(10)]
        for i, a in enumerate(extents):
            for b in extents[i + 1:]:
                assert not a.overlaps(b)

    def test_exhaustion_raises_nospace(self):
        region = NVMeRegion(100)
        region.alloc(100)
        with pytest.raises(NoSpace):
            region.alloc(1)

    def test_free_enables_reuse(self):
        region = NVMeRegion(100)
        e = region.alloc(100)
        region.free(e)
        e2 = region.alloc(100)
        assert e2.offset == 0

    def test_coalescing_allows_large_realloc(self):
        region = NVMeRegion(300)
        a = region.alloc(100)
        b = region.alloc(100)
        c = region.alloc(100)
        region.free(a)
        region.free(c)
        region.free(b)  # middle last: must coalesce into one 300-byte range
        assert region.alloc(300).length == 300

    def test_double_free_rejected(self):
        region = NVMeRegion(100)
        e = region.alloc(10)
        region.free(e)
        with pytest.raises(FSError):
            region.free(e)

    def test_zero_alloc_rejected(self):
        region = NVMeRegion(100)
        with pytest.raises(InvalidArgument):
            region.alloc(0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(FSError):
            NVMeRegion(0)


class TestIO:
    def test_write_read_roundtrip(self):
        region = NVMeRegion(1000)
        e = region.alloc(100)
        region.write(e, 10, b"hello")
        assert region.read(e, 10, 5) == b"hello"

    def test_unwritten_reads_zero(self):
        region = NVMeRegion(1000)
        e = region.alloc(10)
        assert region.read(e, 0, 10) == b"\x00" * 10

    def test_out_of_extent_io_rejected(self):
        region = NVMeRegion(1000)
        e = region.alloc(10)
        with pytest.raises(InvalidArgument):
            region.write(e, 8, b"xyz")
        with pytest.raises(InvalidArgument):
            region.read(e, -1, 2)

    def test_io_on_freed_extent_rejected(self):
        region = NVMeRegion(100)
        e = region.alloc(10)
        region.free(e)
        with pytest.raises(FSError):
            region.write(e, 0, b"x")


@settings(max_examples=50)
@given(st.lists(st.tuples(st.booleans(), st.integers(min_value=1, max_value=64)),
                min_size=1, max_size=60))
def test_property_alloc_free_invariants(ops):
    """Random alloc/free interleavings keep extents disjoint and accounting exact."""
    region = NVMeRegion(2048)
    live = []
    for is_alloc, size in ops:
        if is_alloc:
            try:
                live.append(region.alloc(size))
            except NoSpace:
                pass
        elif live:
            region.free(live.pop(0))
        # Invariants after every step:
        extents = region.extents()
        for i, a in enumerate(extents):
            for b in extents[i + 1:]:
                assert not a.overlaps(b)
        assert region.used_bytes == sum(e.length for e in live)
        assert region.used_bytes + region.free_bytes == 2048


@settings(max_examples=30)
@given(st.binary(min_size=1, max_size=100),
       st.integers(min_value=0, max_value=50))
def test_property_write_read_roundtrip(data, offset):
    region = NVMeRegion(4096)
    e = region.alloc(offset + len(data))
    region.write(e, offset, data)
    assert region.read(e, offset, len(data)) == data
