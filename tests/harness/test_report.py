"""Tests for the plain-text reporting helpers."""

import numpy as np

from repro.harness import pct, ratio, series_text, sparkline, table


class TestTable:
    def test_alignment_and_separator(self):
        out = table(("a", "long-header"), [(1, 2), (333, 4)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "-+-" in lines[1]
        # All rows equally wide.
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        out = table(("x",), [(1,)], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        out = table(("v",), [(3.14159,)])
        assert "3.14" in out


class TestScalars:
    def test_pct(self):
        assert pct(0.135) == "+13.5%"
        assert pct(-0.05) == "-5.0%"
        assert pct(0.5, signed=False) == "50.0%"

    def test_ratio(self):
        assert ratio(3.957) == "3.96x"


class TestSparkline:
    def test_shape_reflects_magnitudes(self):
        out = sparkline([0.0, 0.5, 1.0], width=3, ceiling=1.0)
        assert len(out) == 3
        assert out[0] == " " and out[-1] == "█"

    def test_resamples_long_series(self):
        out = sparkline(list(range(1000)), width=40)
        assert len(out) == 40

    def test_empty(self):
        assert sparkline([]) == ""

    def test_ceiling_pins_scale(self):
        half = sparkline([5.0], width=1, ceiling=10.0)
        full = sparkline([5.0], width=1, ceiling=5.0)
        assert half != full and full == "█"

    def test_all_zero_safe(self):
        assert sparkline([0.0, 0.0], width=2) == "  "


class TestSeries:
    def test_series_text_subsamples(self):
        times = np.arange(100, dtype=float)
        values = np.full(100, 1e9)
        out = series_text("job1", times, values, max_points=5)
        assert out.startswith("job1: ")
        assert out.count("t=") <= 10
        assert "1.00 GB/s" in out
