"""The repair-vs-fairness scenario: cell contract, matrix assembly,
sweep registration, and the zero-loss acceptance per policy."""

import pytest

from repro.harness.experiments import (RepairFairnessResult, repair_cell,
                                       repair_fairness)
from repro.harness.sweep import resolve_point_kind


@pytest.fixture(scope="module")
def cell():
    """One shared repair point (module-scoped: it is the slow part)."""
    return repair_cell({"policy": "job-fair", "seed": 0,
                        "duration": 4.0, "crash_at": 1.5})


class TestRepairCell:
    def test_repair_completes_with_zero_loss(self, cell):
        assert cell["repair_completion_s"] is not None
        assert cell["repair_completion_s"] > 0
        assert cell["data_lost_groups"] == 0
        assert cell["groups_lost"] == 0
        assert cell["groups_rebuilt"] > 0
        assert cell["repair_bytes"] > 0

    def test_foreground_ran_degraded(self, cell):
        # The crash lands mid-burst: clients must have taken the
        # degraded read/write paths, not stalled on the dead server.
        assert cell["degraded_reads"] + cell["degraded_writes"] > 0
        assert cell["fg_before"] > 0
        assert cell["fg_during"] > 0

    def test_result_is_json_shaped(self, cell):
        import json
        json.dumps(cell)  # every value must serialise

    def test_registered_as_sweep_point_kind(self):
        assert resolve_point_kind("repair_cell") is repair_cell


class TestRepairFairnessMatrix:
    def test_matrix_and_verdict(self):
        out = repair_fairness(policies=("fifo", "size-fair"),
                              duration=4.0, crash_at=1.5)
        assert isinstance(out, RepairFairnessResult)
        text = out.report()
        assert "fifo" in text and "size-fair" in text
        assert "size-fair verdict" in text
        for policy in ("fifo", "size-fair"):
            assert out.rows[policy]["data_lost_groups"] == 0
