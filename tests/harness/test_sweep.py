"""Sweep runner: spec expansion, caching, and the bit-identity contract
(serial == parallel == cache replay, byte for byte)."""

import json

import pytest

from repro.errors import ReproError
from repro.harness import sweep as sweepmod
from repro.harness.sweep import (BUILTIN_GRIDS, ParallelRunner, SweepSpec,
                                 derive_replica_seed, load_spec,
                                 spec_from_doc)
from repro.harness.workspace import Workspace, canonical_json


class TestSpecExpansion:
    def test_axes_expand_sorted_outer_to_inner(self):
        spec = SweepSpec(name="t", kind="sharing", base={"z": 9},
                         axes={"b": [1, 2], "a": ["x", "y"]})
        # Sorted axis names: "a" expands first (outermost), then "b".
        assert spec.points() == [
            {"z": 9, "a": "x", "b": 1}, {"z": 9, "a": "x", "b": 2},
            {"z": 9, "a": "y", "b": 1}, {"z": 9, "a": "y", "b": 2}]

    def test_empty_axis_rejected(self):
        spec = SweepSpec(name="t", kind="sharing", axes={"a": []})
        with pytest.raises(ReproError):
            spec.points()

    def test_non_list_axis_rejected(self):
        spec = SweepSpec(name="t", kind="sharing", axes={"a": 3})
        with pytest.raises(ReproError):
            spec.points()

    def test_replicas_derive_seeds(self):
        spec = SweepSpec(name="t", kind="sharing", base={"seed": 5},
                         replicas=3)
        points = spec.points()
        assert [p["replica"] for p in points] == [0, 1, 2]
        assert points[0]["seed"] == 5  # replica 0 keeps the declared seed
        assert points[1]["seed"] == derive_replica_seed(5, 1)
        assert points[2]["seed"] == derive_replica_seed(5, 2)
        assert len({p["seed"] for p in points}) == 3

    def test_replica_seed_derivation_is_pure(self):
        assert derive_replica_seed(5, 1) == derive_replica_seed(5, 1)
        assert derive_replica_seed(5, 1) != derive_replica_seed(6, 1)

    def test_spec_doc_roundtrip(self):
        spec = BUILTIN_GRIDS["quick"]
        again = spec_from_doc(spec.to_doc())
        assert again.points() == spec.points()

    def test_load_spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"name": "t", "kind": "sharing",
                                    "base": {"seed": 1},
                                    "axes": {"policy": ["job-fair"]}}))
        spec = load_spec(str(path))
        assert spec.points() == [{"seed": 1, "policy": "job-fair"}]

    def test_load_spec_bad_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ReproError):
            load_spec(str(path))
        with pytest.raises(ReproError):
            load_spec(str(tmp_path / "absent.json"))

    def test_spec_without_kind_rejected(self):
        with pytest.raises(ReproError):
            spec_from_doc({"name": "t"})


def _fake_point(config):
    """Deterministic stand-in point function for runner tests."""
    return {"v": int(config["x"]) * 2}


class TestRunnerCaching:
    """Cache behaviour, exercised on a cheap monkeypatched point kind."""

    @pytest.fixture
    def echo_kind(self, monkeypatch):
        calls = []

        def run_point(kind, config):
            calls.append((kind, dict(config)))
            return _fake_point(config)

        monkeypatch.setitem(sweepmod.POINT_KINDS, "echo",
                            ("tests.harness.test_sweep", "_fake_point"))
        monkeypatch.setattr(sweepmod, "run_point", run_point)
        return calls

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            ParallelRunner().run_points([("no-such-kind", {})])

    def test_jobs_one_degenerate_path(self, echo_kind):
        # No workspace, one worker: pure in-process computation.
        run = ParallelRunner(jobs=1).run_points(
            [("echo", {"x": 1}), ("echo", {"x": 2})])
        assert [p.result for p in run.points] == [{"v": 2}, {"v": 4}]
        assert run.hits == 0 and run.misses == 2
        assert len(echo_kind) == 2

    def test_hit_on_identical_config(self, echo_kind, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        points = [("echo", {"x": 1}), ("echo", {"x": 2})]
        r1 = ParallelRunner(workspace=ws, rev="r").run_points(points)
        r2 = ParallelRunner(workspace=ws, rev="r").run_points(points)
        assert r1.misses == 2 and r1.hits == 0
        assert r2.misses == 0 and r2.hits == 2
        assert len(echo_kind) == 2  # second pass computed nothing
        assert canonical_json(r1.results_doc()) == \
            canonical_json(r2.results_doc())
        assert r1.digest() == r2.digest()

    def test_miss_on_config_change(self, echo_kind, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        ParallelRunner(workspace=ws, rev="r").run_points(
            [("echo", {"x": 1})])
        run = ParallelRunner(workspace=ws, rev="r").run_points(
            [("echo", {"x": 3})])
        assert run.misses == 1
        assert len(echo_kind) == 2

    def test_miss_on_rev_change(self, echo_kind, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        ParallelRunner(workspace=ws, rev="r1").run_points(
            [("echo", {"x": 1})])
        run = ParallelRunner(workspace=ws, rev="r2").run_points(
            [("echo", {"x": 1})])
        assert run.misses == 1  # same config, new code revision

    def test_rerun_invalidates(self, echo_kind, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        points = [("echo", {"x": 1})]
        ParallelRunner(workspace=ws, rev="r").run_points(points)
        run = ParallelRunner(workspace=ws, rev="r").run_points(
            points, rerun=True)
        assert run.misses == 1
        assert len(echo_kind) == 2

    def test_corrupted_blob_recovered(self, echo_kind, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        points = [("echo", {"x": 1})]
        r1 = ParallelRunner(workspace=ws, rev="r").run_points(points)
        with open(ws._blob_path(r1.points[0].key), "w") as fh:
            fh.write("{half a blob")
        run = ParallelRunner(workspace=ws, rev="r").run_points(points)
        assert run.misses == 1  # recomputed, not crashed
        assert run.points[0].result == {"v": 2}
        # ... and the store healed: next pass hits again.
        assert ParallelRunner(workspace=ws, rev="r").run_points(
            points).hits == 1

    def test_duplicate_keys_computed_once(self, echo_kind):
        run = ParallelRunner().run_points(
            [("echo", {"x": 1}), ("echo", {"x": 1})])
        assert len(echo_kind) == 1
        assert [p.result for p in run.points] == [{"v": 2}, {"v": 2}]

    def test_summary_fields(self, echo_kind, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        run = ParallelRunner(workspace=ws, rev="r").run_points(
            [("echo", {"x": 1})])
        doc = run.to_summary()
        assert doc["points"] == 1 and doc["misses"] == 1
        assert doc["digest"] == run.digest()
        assert "hit-rate" in run.summary()


@pytest.mark.slow
class TestBitIdentity:
    """The committed serial == parallel == replay contract, end to end
    on real simulation points (spawned worker processes included)."""

    SPEC = SweepSpec(
        name="identity", kind="sharing",
        base={"nodes1": 2, "scale": 0.02, "n_servers": 1, "seed": 0},
        axes={"policy": ["job-fair", "size-fair"], "nodes2": [1, 2]})

    def test_serial_parallel_replay_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_REV", "bit-identity-test")
        ws = Workspace(str(tmp_path / "ws"))

        serial = ParallelRunner(jobs=1).run_spec(self.SPEC)
        parallel = ParallelRunner(workspace=ws, jobs=4).run_spec(self.SPEC)
        replay = ParallelRunner(workspace=ws, jobs=1).run_spec(self.SPEC)

        assert serial.misses == 4 and parallel.misses == 4
        assert replay.hits == 4 and replay.misses == 0

        doc_serial = canonical_json(serial.results_doc())
        doc_parallel = canonical_json(parallel.results_doc())
        doc_replay = canonical_json(replay.results_doc())
        assert doc_serial == doc_parallel  # byte-for-byte
        assert doc_serial == doc_replay
        assert serial.digest() == parallel.digest() == replay.digest()
