"""Content-addressed workspace store: keys, atomicity, self-healing."""

import json
import os

import pytest

from repro.harness.workspace import (SCHEMA_VERSION, Workspace,
                                     canonical_json, code_rev,
                                     content_digest, point_key)


class TestCanonicalJson:
    def test_dict_order_invariant(self):
        assert canonical_json({"a": 1, "b": 2}) == \
            canonical_json({"b": 2, "a": 1})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_digest_tracks_content(self):
        assert content_digest({"x": 1}) == content_digest({"x": 1})
        assert content_digest({"x": 1}) != content_digest({"x": 2})


class TestPointKey:
    def test_stable_across_config_insertion_order(self):
        assert point_key("k", {"a": 1, "b": 2}, "r") == \
            point_key("k", {"b": 2, "a": 1}, "r")

    def test_changes_with_config(self):
        assert point_key("k", {"a": 1}, "r") != point_key("k", {"a": 2}, "r")

    def test_changes_with_rev(self):
        assert point_key("k", {"a": 1}, "r1") != \
            point_key("k", {"a": 1}, "r2")

    def test_changes_with_kind(self):
        assert point_key("k1", {"a": 1}, "r") != point_key("k2", {"a": 1}, "r")


class TestCodeRev:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_REV", "pinned-rev")
        assert code_rev() == "pinned-rev"

    def test_unpinned_is_nonempty(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODE_REV", raising=False)
        assert code_rev()


class TestStore:
    def _put(self, ws, config, result=None, kind="k", rev="r"):
        key = point_key(kind, config, rev)
        ws.put(key, kind, config, result or {"v": 1}, rev, wall_s=0.25)
        return key

    def test_put_get_roundtrip(self, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        key = self._put(ws, {"x": 1}, {"v": 42})
        blob = ws.get(key)
        assert blob["result"] == {"v": 42}
        assert blob["config"] == {"x": 1}
        assert blob["meta"]["rev"] == "r"
        assert blob["meta"]["schema"] == SCHEMA_VERSION

    def test_miss_returns_none(self, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        assert ws.get("0" * 32) is None

    def test_reopen_sees_flushed_points(self, tmp_path):
        root = str(tmp_path / "ws")
        ws = Workspace(root)
        key = self._put(ws, {"x": 1})
        ws.flush()
        ws2 = Workspace(root)
        assert ws2.get(key)["result"] == {"v": 1}
        assert ws2.keys() == [key]

    def test_corrupt_blob_is_miss_and_healed(self, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        key = self._put(ws, {"x": 1})
        with open(ws._blob_path(key), "w") as fh:
            fh.write("{not json")
        assert ws.get(key) is None
        assert not os.path.exists(ws._blob_path(key))  # deleted on read
        self._put(ws, {"x": 1})  # store recovers by recomputation
        assert ws.get(key) is not None

    def test_blob_missing_fields_discarded(self, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        key = self._put(ws, {"x": 1})
        with open(ws._blob_path(key), "w") as fh:
            json.dump({"key": key, "kind": "k"}, fh)
        assert ws.get(key) is None

    def test_blob_key_mismatch_discarded(self, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        key = self._put(ws, {"x": 1})
        blob = ws.get(key)
        other = point_key("k", {"x": 2}, "r")
        with open(ws._blob_path(other), "w") as fh:
            json.dump(blob, fh)  # embedded key says `key`, file says `other`
        assert ws.get(other) is None

    def test_index_rebuilt_when_missing(self, tmp_path):
        root = str(tmp_path / "ws")
        ws = Workspace(root)
        keys = sorted(self._put(ws, {"x": i}) for i in range(3))
        ws.flush()
        os.unlink(os.path.join(root, "index.json"))
        assert Workspace(root).keys() == keys

    def test_index_rebuilt_when_corrupt(self, tmp_path):
        root = str(tmp_path / "ws")
        ws = Workspace(root)
        key = self._put(ws, {"x": 1})
        ws.flush()
        with open(os.path.join(root, "index.json"), "w") as fh:
            fh.write("garbage")
        assert Workspace(root).keys() == [key]

    def test_no_temp_files_left_behind(self, tmp_path):
        root = str(tmp_path / "ws")
        ws = Workspace(root)
        for i in range(4):
            self._put(ws, {"x": i})
        ws.flush()
        leftovers = [name for _dir, _subdirs, names in os.walk(root)
                     for name in names if name.startswith(".tmp-")]
        assert leftovers == []

    def test_discard_and_len(self, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        key = self._put(ws, {"x": 1})
        assert len(ws) == 1
        assert ws.discard(key)
        assert len(ws) == 0
        assert ws.get(key) is None
        assert not ws.discard(key)

    def test_blobs_filtered_by_kind_and_rev(self, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        self._put(ws, {"x": 1}, kind="a", rev="r1")
        self._put(ws, {"x": 2}, kind="a", rev="r2")
        self._put(ws, {"x": 3}, kind="b", rev="r1")
        assert len(ws.blobs()) == 3
        assert len(ws.blobs(kind="a")) == 2
        assert len(ws.blobs(kind="a", rev="r1")) == 1
        assert ws.blobs(kind="a", rev="r1")[0]["config"] == {"x": 1}

    def test_clear(self, tmp_path):
        ws = Workspace(str(tmp_path / "ws"))
        for i in range(3):
            self._put(ws, {"x": i})
        assert ws.clear() == 3
        assert len(ws) == 0
