"""Tests for experiment configuration and the runner."""

import pytest

from repro.bb import ClusterConfig
from repro.errors import ConfigError
from repro.harness import ExperimentConfig, JobRun, run_experiment
from repro.units import MB
from repro.workloads import JobSpec, WriteReadCycle


def spec(jid, nodes=1, user=None):
    return JobSpec(job_id=jid, user=user or f"u{jid}", nodes=nodes)


def small_cycle():
    return WriteReadCycle(file_size=MB, streams_per_node=2)


class TestConfig:
    def test_needs_jobs(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(jobs=[])

    def test_duplicate_job_ids_rejected(self):
        jobs = [JobRun(spec=spec(1), workload=small_cycle(), stop=1.0),
                JobRun(spec=spec(1), workload=small_cycle(), stop=1.0)]
        with pytest.raises(ConfigError):
            ExperimentConfig(jobs=jobs)

    def test_stop_before_start_rejected(self):
        with pytest.raises(ConfigError):
            JobRun(spec=spec(1), workload=small_cycle(), start=5.0, stop=1.0)

    def test_client_nodes_defaults_to_capped_nodes(self):
        assert JobRun(spec=spec(1, nodes=64), workload=small_cycle()).n_clients == 8
        assert JobRun(spec=spec(1, nodes=2), workload=small_cycle()).n_clients == 2
        run = JobRun(spec=spec(1, nodes=64), workload=small_cycle(),
                     client_nodes=4)
        assert run.n_clients == 4


class TestRunner:
    def test_open_ended_job_runs_until_stop(self):
        cfg = ExperimentConfig(
            cluster=ClusterConfig(n_servers=1, policy="job-fair"),
            jobs=[JobRun(spec=spec(1), workload=small_cycle(), stop=0.5)],
            max_time=2.0, sample_interval=0.1)
        result = run_experiment(cfg)
        outcome = result.outcomes[1]
        assert outcome.finished
        assert 0.5 <= outcome.end < 1.0
        assert outcome.bytes_moved > 0
        assert outcome.streams == 2

    def test_delayed_start(self):
        cfg = ExperimentConfig(
            cluster=ClusterConfig(n_servers=1, policy="job-fair"),
            jobs=[JobRun(spec=spec(1), workload=small_cycle(),
                         start=0.3, stop=0.6)],
            max_time=2.0, sample_interval=0.1)
        result = run_experiment(cfg)
        series_times, series_vals = result.series(1)
        # No throughput before the start time.
        assert all(v == 0 for t, v in zip(series_times, series_vals)
                   if t < 0.25)

    def test_early_stop_when_finite_jobs_finish(self):
        # A run-to-completion job plus an open-ended background job:
        # the simulation must end shortly after the finite job does.
        from repro.workloads import ApplicationWorkload, AppProfile
        profile = AppProfile(name="quick", nodes=1, steps=3,
                             compute_per_step=0.05, io_every=1,
                             io_bytes=MB, io_request=MB, io_op="write")
        cfg = ExperimentConfig(
            cluster=ClusterConfig(n_servers=1, policy="job-fair"),
            jobs=[
                JobRun(spec=spec(1), workload=ApplicationWorkload(profile)),
                JobRun(spec=spec(2), workload=small_cycle(), stop=99.0),
            ],
            max_time=100.0, sample_interval=0.1)
        result = run_experiment(cfg)
        assert result.outcomes[1].finished
        assert result.end_time < 5.0  # nowhere near max_time

    def test_time_to_solution_requires_finish(self):
        cfg = ExperimentConfig(
            cluster=ClusterConfig(n_servers=1, policy="job-fair"),
            jobs=[JobRun(spec=spec(1), workload=small_cycle(), stop=50.0)],
            max_time=0.2, sample_interval=0.1,
            stop_when_jobs_finish=False)
        result = run_experiment(cfg)
        with pytest.raises(ConfigError):
            result.time_to_solution(1)

    def test_to_dict_is_json_serialisable_and_complete(self):
        import json
        cfg = ExperimentConfig(
            cluster=ClusterConfig(n_servers=1, policy="size-fair"),
            jobs=[JobRun(spec=spec(1), workload=small_cycle(), stop=0.3)],
            max_time=1.0, sample_interval=0.1)
        result = run_experiment(cfg)
        exported = result.to_dict()
        text = json.dumps(exported)  # must not raise
        assert json.loads(text)["policy"] == "size-fair"
        job = exported["jobs"]["1"]
        assert job["bytes_moved"] > 0
        assert len(job["series_times"]) == len(job["series_bytes_per_sec"])

    def test_two_jobs_share_metrics_are_separable(self):
        cfg = ExperimentConfig(
            cluster=ClusterConfig(n_servers=1, policy="job-fair"),
            jobs=[JobRun(spec=spec(1), workload=small_cycle(), stop=0.4),
                  JobRun(spec=spec(2), workload=small_cycle(), stop=0.4)],
            max_time=1.0, sample_interval=0.1)
        result = run_experiment(cfg)
        b1 = result.sampler.total_bytes(1)
        b2 = result.sampler.total_bytes(2)
        assert b1 > 0 and b2 > 0
        assert result.sampler.total_bytes() == b1 + b2
