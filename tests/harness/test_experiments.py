"""Miniature versions of every figure experiment: shape assertions only.

These run the same code paths as the full benchmarks at tiny scales, so
the suite stays fast while covering the experiment logic end-to-end.
"""

import pytest

from repro.harness import (fig08_primitive, fig08c_user_fair,
                           fig09_user_then_size, fig12_baselines,
                           fig14_lambda)
from repro.harness.experiments import _run_app
from repro.units import MB
from repro.workloads import AppProfile


SCALE = 0.05  # 3 s timeline


class TestFig08:
    def test_size_fair_ratio_near_four(self):
        out = fig08_primitive("size-fair", scale=SCALE, seed=3)
        assert 3.0 < out.ratio < 5.5
        assert out.report()  # renders

    def test_job_fair_ratio_near_one(self):
        out = fig08_primitive("job-fair", scale=SCALE, seed=3)
        assert 0.7 < out.ratio < 1.4

    def test_solo_median_near_device_limit(self):
        out = fig08_primitive("job-fair", scale=SCALE, seed=3)
        assert out.solo_median > 18e9  # ~22 GB/s device

    def test_user_fair_balances_users(self):
        out = fig08c_user_fair(scale=SCALE, seed=3)
        a = out.user_totals["userA"]
        b = out.user_totals["userB"]
        assert a / b == pytest.approx(1.0, abs=0.35)
        # User A's two equal jobs split its half evenly.
        assert out.job_medians[1] / out.job_medians[2] == pytest.approx(
            1.0, abs=0.4)


class TestFig09:
    def test_user_then_size_fair_structure(self):
        out = fig09_user_then_size(scale=SCALE, seed=3)
        u1 = out.user_totals["user1"]
        u2 = out.user_totals["user2"]
        assert u1 / u2 == pytest.approx(1.0, abs=0.35)
        # Within user 1 the jobs are 1:2 by node count.
        assert out.job_medians[2] / out.job_medians[1] == pytest.approx(
            2.0, rel=0.4)
        # Within user 2 the jobs are 4:6.
        assert out.job_medians[4] / out.job_medians[3] == pytest.approx(
            1.5, rel=0.4)


class TestFig12:
    def test_relative_ordering(self):
        out = fig12_baselines(scale=SCALE, seed=3)
        themis = out.rows["themis"]
        gift = out.rows["gift"]
        tbf = out.rows["tbf"]
        # ThemisIO's sustained peak beats both comparators.
        assert themis.solo_median >= gift.solo_median - 1e9
        assert themis.solo_median > tbf.solo_median
        # ThemisIO's job 2 gets at least its fair share during sharing.
        assert themis.shared_medians[2] > 0.35 * themis.peak_throughput
        assert out.themis_advantage()["tbf"] > 0.05

    def test_latency_to_fair_sharing(self):
        out = fig12_baselines(scale=SCALE, seed=3)
        themis_latency = out.rows["themis"].time_to_fair_share(2)
        gift_latency = out.rows["gift"].time_to_fair_share(2)
        assert themis_latency is not None
        # GIFT budgets a new job only at the next epoch boundary.
        if gift_latency is not None:
            assert themis_latency <= gift_latency

    def test_time_to_fair_share_none_when_absent(self):
        out = fig12_baselines(scale=SCALE, seed=3)
        assert out.rows["themis"].time_to_fair_share(99) is None


class TestApplications:
    def _mini(self, **kw):
        base = dict(name="mini", nodes=8, steps=6, compute_per_step=0.02,
                    io_every=2, io_bytes=24 * MB, io_request=2 * MB,
                    io_op="write")
        base.update(kw)
        return AppProfile(**base)

    def test_fifo_interference_slows_the_app(self):
        profile = self._mini()
        base = _run_app(profile, "fifo", False, seed=0)
        fifo = _run_app(profile, "fifo", True, seed=0)
        assert fifo > base * 1.05

    def test_size_fair_bounds_the_slowdown(self):
        profile = self._mini()
        base = _run_app(profile, "fifo", False, seed=0)
        fifo = _run_app(profile, "fifo", True, seed=0)
        fair = _run_app(profile, "size-fair", True, seed=0)
        assert fair < fifo
        # Bounded well below the FIFO damage (paper: 59-99.8% reduction).
        assert (fair - base) < 0.5 * (fifo - base)


class TestFig14:
    def test_lambda_sync_reaches_fairness(self):
        out = fig14_lambda(lambdas=(0.05,), seed=0)
        conv = out.convergence[0.05]
        assert conv is not None
        assert conv <= 3
