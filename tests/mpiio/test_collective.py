"""Tests for two-phase collective I/O over the burst buffer."""

import pytest

from repro.bb import Cluster, ClusterConfig
from repro.core import JobInfo
from repro.errors import ConfigError
from repro.mpiio import Communicator, MPIFile, VectorView
from repro.units import KiB, MB


def make_comm(n_ranks=4, n_servers=1):
    cluster = Cluster(ClusterConfig(n_servers=n_servers, policy="job-fair"))
    cluster.fs.makedirs("/fs/mpi")
    job = JobInfo(job_id=1, user="mpi", size=n_ranks)
    clients = [cluster.add_client(job, client_id=f"rank{r}")
               for r in range(n_ranks)]
    return cluster, Communicator(clients)


def drive(cluster, generators, until=10.0):
    results = {}

    def wrap(idx, gen):
        results[idx] = yield from gen

    for idx, gen in enumerate(generators):
        cluster.engine.process(wrap(idx, gen))
    cluster.run(until=cluster.engine.now + until)
    return results


class TestCommunicator:
    def test_size_and_rank_lookup(self):
        _, comm = make_comm(3)
        assert comm.size == 3
        assert comm.client(2).client_id == "rank2"
        with pytest.raises(ConfigError):
            comm.client(3)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            Communicator([])


class TestCollectiveWrite:
    def test_all_ranks_complete_with_their_byte_counts(self):
        cluster, comm = make_comm(4)
        mpifile = MPIFile(comm, "/fs/mpi/data", cb_nodes=2)
        view = VectorView(nranks=4, blocklen=256 * KiB)

        def rank_proc(rank):
            yield from mpifile.open()
            return (yield from mpifile.write_at_all(
                rank, view.pieces(rank, count=4)))

        results = drive(cluster, [rank_proc(r) for r in range(4)])
        assert all(results[r] == 4 * 256 * KiB for r in range(4))
        # The interleaved ranks tile the file: size = 16 blocks.
        assert cluster.fs.stat("/fs/mpi/data").size == 16 * 256 * KiB

    def test_aggregators_issue_few_large_requests(self):
        cluster, comm = make_comm(4)
        mpifile = MPIFile(comm, "/fs/mpi/data", cb_nodes=1)
        view = VectorView(nranks=4, blocklen=64 * KiB)

        def rank_proc(rank):
            yield from mpifile.open()
            yield from mpifile.write_at_all(rank, view.pieces(rank, count=8))

        drive(cluster, [rank_proc(r) for r in range(4)])
        # 32 strided pieces coalesced into ONE contiguous server write.
        assert cluster.sampler.op_count(op="write") == 1
        assert mpifile.collective_rounds == 1

    def test_shuffle_moves_non_aggregator_bytes(self):
        cluster, comm = make_comm(4)
        mpifile = MPIFile(comm, "/fs/mpi/data", cb_nodes=1)
        view = VectorView(nranks=4, blocklen=64 * KiB)

        def rank_proc(rank):
            yield from mpifile.open()
            yield from mpifile.write_at_all(rank, view.pieces(rank, count=2))

        drive(cluster, [rank_proc(r) for r in range(4)])
        # Three of four ranks' bytes crossed to the single aggregator.
        assert mpifile.shuffled_bytes == 3 * 2 * 64 * KiB

    def test_multiple_collective_rounds(self):
        cluster, comm = make_comm(2)
        mpifile = MPIFile(comm, "/fs/mpi/data", cb_nodes=1)
        view = VectorView(nranks=2, blocklen=128 * KiB)

        def rank_proc(rank):
            yield from mpifile.open()
            total = 0
            for _ in range(3):
                total += yield from mpifile.write_at_all(
                    rank, view.pieces(rank, count=1))
            return total

        results = drive(cluster, [rank_proc(r) for r in range(2)])
        assert results[0] == 3 * 128 * KiB
        assert mpifile.collective_rounds == 3

    def test_double_entry_in_one_round_rejected(self):
        cluster, comm = make_comm(2)
        mpifile = MPIFile(comm, "/fs/mpi/data")
        caught = []

        def bad(rank):
            yield from mpifile.open()
            ev1 = mpifile._collective("write", rank, [(0, 10)])
            next(ev1)  # enter once (don't wait)
            try:
                yield from mpifile.write_at_all(rank, [(10, 10)])
            except ConfigError:
                caught.append(rank)

        cluster.engine.process(bad(0))
        cluster.run(until=1.0)
        assert caught == [0]


class TestCollectiveRead:
    def test_read_back_after_collective_write(self):
        cluster, comm = make_comm(4)
        mpifile = MPIFile(comm, "/fs/mpi/data", cb_nodes=2)
        view = VectorView(nranks=4, blocklen=256 * KiB)

        def writer(rank):
            yield from mpifile.open()
            yield from mpifile.write_at_all(rank, view.pieces(rank, count=2))

        drive(cluster, [writer(r) for r in range(4)])

        def reader(rank):
            return (yield from mpifile.read_at_all(
                rank, view.pieces(rank, count=2)))

        results = drive(cluster, [reader(r) for r in range(4)])
        assert all(results[r] == 2 * 256 * KiB for r in range(4))


class TestIndependentVsCollective:
    def test_collective_reduces_request_count(self):
        view = VectorView(nranks=4, blocklen=64 * KiB)

        cluster_i, comm_i = make_comm(4)
        f_independent = MPIFile(comm_i, "/fs/mpi/ind")

        def independent(rank):
            yield from f_independent.open()
            yield from f_independent.write_at(rank, view.pieces(rank, count=8))

        drive(cluster_i, [independent(r) for r in range(4)])
        independent_reqs = cluster_i.sampler.op_count(op="write")

        cluster_c, comm_c = make_comm(4)
        f_collective = MPIFile(comm_c, "/fs/mpi/coll", cb_nodes=2)

        def collective(rank):
            yield from f_collective.open()
            yield from f_collective.write_at_all(rank, view.pieces(rank, count=8))

        drive(cluster_c, [collective(r) for r in range(4)])
        collective_reqs = cluster_c.sampler.op_count(op="write")

        assert independent_reqs == 32
        assert collective_reqs <= 4  # cb_nodes large contiguous writes
