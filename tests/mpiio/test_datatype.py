"""Tests for MPI-IO file views and interval utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mpiio import ContiguousView, VectorView, coalesce, total_bytes


class TestContiguousView:
    def test_rank_blocks_are_disjoint_and_ordered(self):
        view = ContiguousView(block=100)
        assert view.pieces(0) == [(0, 100)]
        assert view.pieces(1) == [(100, 100)]
        assert view.pieces(2, count=1) == [(200, 100)]

    def test_count_repeats(self):
        view = ContiguousView(block=10)
        assert view.pieces(1, count=3) == [(30, 10), (40, 10), (50, 10)]

    def test_displacement(self):
        assert ContiguousView(block=10, disp=5).pieces(0) == [(5, 10)]

    def test_invalid(self):
        with pytest.raises(ConfigError):
            ContiguousView(block=0)
        with pytest.raises(ConfigError):
            ContiguousView(block=10).pieces(-1)


class TestVectorView:
    def test_rank_interleaving(self):
        view = VectorView(nranks=3, blocklen=10)
        assert view.pieces(0, count=2) == [(0, 10), (30, 10)]
        assert view.pieces(2, count=2) == [(20, 10), (50, 10)]

    def test_ranks_tile_each_round(self):
        view = VectorView(nranks=4, blocklen=5)
        round0 = sorted(p for r in range(4) for p in view.pieces(r, 1))
        assert coalesce(round0) == [(0, 20)]

    def test_invalid(self):
        with pytest.raises(ConfigError):
            VectorView(nranks=0, blocklen=1)
        with pytest.raises(ConfigError):
            VectorView(nranks=2, blocklen=1).pieces(2)


class TestCoalesce:
    def test_merges_adjacent(self):
        assert coalesce([(0, 10), (10, 10)]) == [(0, 20)]

    def test_merges_overlapping(self):
        assert coalesce([(0, 15), (10, 10)]) == [(0, 20)]

    def test_keeps_gaps(self):
        assert coalesce([(0, 10), (20, 10)]) == [(0, 10), (20, 10)]

    def test_unsorted_input(self):
        assert coalesce([(20, 5), (0, 10), (10, 10)]) == [(0, 25)]

    def test_rejects_empty_pieces(self):
        with pytest.raises(ConfigError):
            coalesce([(0, 0)])

    def test_total_bytes(self):
        assert total_bytes([(0, 10), (20, 5)]) == 15


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 50)),
                min_size=1, max_size=20))
def test_property_coalesce_covers_exactly_the_union(pieces):
    merged = coalesce(pieces)
    # Sorted, disjoint, non-adjacent.
    for (a_off, a_len), (b_off, b_len) in zip(merged, merged[1:]):
        assert a_off + a_len < b_off
    # Byte-for-byte union equality.
    union = set()
    for off, length in pieces:
        union.update(range(off, off + length))
    covered = set()
    for off, length in merged:
        covered.update(range(off, off + length))
    assert covered == union
