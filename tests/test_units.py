"""Tests for unit constants and formatting helpers."""

from repro.units import (GB, GiB, KiB, MB, MiB, MSEC, SEC, USEC, fmt_bw,
                         fmt_bytes, fmt_time)


class TestConstants:
    def test_binary_sizes(self):
        assert KiB == 1024
        assert MiB == 1024 ** 2
        assert GiB == 1024 ** 3

    def test_decimal_sizes(self):
        assert MB == 10 ** 6
        assert GB == 10 ** 9

    def test_times(self):
        assert USEC == 1e-6
        assert MSEC == 1e-3
        assert SEC == 1.0


class TestFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2 * KiB) == "2.00 KiB"
        assert fmt_bytes(3 * MiB) == "3.00 MiB"
        assert fmt_bytes(1.5 * GiB) == "1.50 GiB"

    def test_fmt_bw(self):
        assert fmt_bw(22 * GB) == "22.00 GB/s"
        assert fmt_bw(504 * MB) == "504.0 MB/s"
        assert fmt_bw(10_000) == "10.0 KB/s"

    def test_fmt_time(self):
        assert fmt_time(5e-7) == "0.5 us"
        assert fmt_time(0.05) == "50.0 ms"
        assert fmt_time(2.0) == "2.000 s"
