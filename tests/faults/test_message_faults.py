"""Per-message faults: partitions, drops, delays and storage EIO."""

import pytest

from repro.errors import RpcTimeout
from repro.faults import FaultInjector, FaultPlan, LinkFault, StorageFault
from repro.units import MB


def _start_writer(cluster, client, path, stop_at, out):
    """Background stream: write/read cycles until *stop_at* sim time."""

    def app():
        yield from client.create(path)
        k = 0
        while cluster.engine.now < stop_at:
            yield from client.write(path, (k % 4) * MB, MB)
            out["completions"] = out.get("completions", 0) + 1
            k += 1
        out["done"] = True

    cluster.engine.process(app())


class TestPartition:
    def test_full_partition_stalls_then_recovers(self, make_cluster, job):
        cluster = make_cluster(n_servers=1)
        client = cluster.add_client(job(1), client_id="c0")
        plan = FaultPlan([LinkFault(start=0.2, stop=1.0, a="cn-c0",
                                    drop_prob=1.0)])
        FaultInjector(cluster, plan).arm()
        out = {}
        _start_writer(cluster, client, "/fs/d/f", stop_at=1.5, out=out)

        cluster.run(until=0.9)
        mid_window = out.get("completions", 0)
        assert cluster.fault_stats.messages_dropped > 0
        cluster.run(until=3.0)
        # The stream survived the outage and made progress after it.
        assert out.get("done")
        assert out["completions"] > mid_window
        assert cluster.fault_stats.retries > 0

    def test_drops_counted_on_fabric_too(self, make_cluster, job):
        cluster = make_cluster(n_servers=1)
        client = cluster.add_client(job(1), client_id="c0")
        plan = FaultPlan([LinkFault(start=0.0, stop=0.5, a="cn-c0",
                                    drop_prob=1.0)])
        FaultInjector(cluster, plan).arm()
        out = {}
        _start_writer(cluster, client, "/fs/d/f", stop_at=0.8, out=out)
        cluster.run(until=2.0)
        assert (cluster.fabric.dropped_messages
                >= cluster.fault_stats.messages_dropped > 0)


class TestDelay:
    def test_delay_slows_but_never_loses(self, make_cluster, job):
        cluster = make_cluster(n_servers=1)
        client = cluster.add_client(job(1), client_id="c0")
        plan = FaultPlan([LinkFault(start=0.0, stop=5.0, a="cn-c0",
                                    delay=0.002)])
        FaultInjector(cluster, plan).arm()
        out = {}
        _start_writer(cluster, client, "/fs/d/f", stop_at=0.5, out=out)
        cluster.run(until=2.0)
        assert out.get("done")
        assert cluster.fault_stats.messages_delayed > 0
        assert cluster.fault_stats.messages_dropped == 0
        # Delayed is not lost: nothing had to be retried.
        assert cluster.fault_stats.retries == 0


class TestStorageErrors:
    def test_eio_window_is_retried_through(self, make_cluster, job):
        cluster = make_cluster(n_servers=1)
        client = cluster.add_client(job(1), client_id="c0")
        plan = FaultPlan([StorageFault("bb0", start=0.0, stop=0.3,
                                       error_rate=1.0)])
        FaultInjector(cluster, plan).arm()
        done = {}

        def app():
            yield from client.create("/fs/d/f")
            done["wrote"] = yield from client.write("/fs/d/f", 0, MB)

        cluster.engine.process(app())
        cluster.run(until=2.0)
        # Every attempt inside the window failed with EIO; the client
        # kept retrying and succeeded once the window closed.
        assert done.get("wrote") == MB
        assert cluster.fault_stats.storage_errors > 0
        assert cluster.fault_stats.error_replies > 0
        assert cluster.fault_stats.retries > 0

    def test_bounded_retries_surface_failure(self, make_cluster, job):
        cluster = make_cluster(n_servers=1, rpc_retries=2,
                               retry_backoff=0.01)
        client = cluster.add_client(job(1), client_id="c0")
        plan = FaultPlan([StorageFault("bb0", start=0.0, stop=10.0,
                                       error_rate=1.0)])
        FaultInjector(cluster, plan).arm()
        caught = {}

        def app():
            try:
                yield from client.create("/fs/d/f")
                yield from client.write("/fs/d/f", 0, MB)
            except RpcTimeout as exc:
                caught["error"] = str(exc)

        cluster.engine.process(app())
        cluster.run(until=5.0)
        assert "abandoned" in caught["error"]
        assert cluster.fault_stats.requests_failed >= 1
