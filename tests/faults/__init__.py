"""Fault-injection tests: plans, the injector, and DESIGN §6 promises."""
