"""Shared fixtures for the fault suite.

Every test here runs under a wall-clock watchdog: a fault-injection bug
whose failure mode is a deadlock (a worker parked on an event nobody
fires) would otherwise hang the whole CI job rather than fail one test.
"""

import signal

import pytest

from repro.bb import Cluster, ClusterConfig, ServerConfig
from repro.bb.client import ClientConfig
from repro.core import JobInfo

#: seconds of real time a single fault test may take before it is
#: declared deadlocked.
WATCHDOG_SECONDS = 120


@pytest.fixture(autouse=True)
def _watchdog():
    """Abort (don't hang) any fault test stuck past the wall-clock cap."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def timed_out(signum, frame):  # pragma: no cover - fires on deadlock
        raise TimeoutError(
            f"fault test exceeded {WATCHDOG_SECONDS}s wall clock "
            "(likely a simulation deadlock)")

    previous = signal.signal(signal.SIGALRM, timed_out)
    signal.alarm(WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def make_cluster():
    """Factory for fault-ready clusters (journal + log + FT clients)."""

    def make(n_servers=2, seed=0, journal=True, backend="log",
             rpc_timeout=0.25, rpc_retries=-1, retry_backoff=0.05,
             sync_timeout=0.5, heartbeat_interval=0.5, **server_kw):
        cfg = ClusterConfig(
            n_servers=n_servers, policy="job-fair", seed=seed,
            journal=journal, storage_backend=backend,
            client=ClientConfig(rpc_timeout=rpc_timeout,
                                rpc_retries=rpc_retries,
                                retry_backoff=retry_backoff,
                                heartbeat_interval=heartbeat_interval),
            server=ServerConfig(sync_timeout=sync_timeout, **server_kw))
        cluster = Cluster(cfg)
        cluster.fs.makedirs("/fs/d")
        return cluster

    return make


@pytest.fixture
def job():
    """JobInfo factory matching the bb-suite convention."""

    def make(jid, user="alice", group="g0", size=1):
        return JobInfo(job_id=jid, user=user, group=group, size=size)

    return make
