"""Validation, ordering and matching semantics of fault plans."""

import pytest

from repro.errors import ConfigError
from repro.faults import (ClientDisconnect, FaultPlan, HeartbeatLoss,
                          LinkFault, ServerCrash, StorageFault)


class TestValidation:
    def test_negative_crash_time_rejected(self):
        with pytest.raises(ConfigError):
            ServerCrash("bb0", at=-1.0)

    def test_restart_must_follow_crash(self):
        with pytest.raises(ConfigError):
            ServerCrash("bb0", at=2.0, restart_at=2.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(ConfigError):
            LinkFault(start=2.0, stop=1.0, drop_prob=1.0)

    def test_probability_out_of_range(self):
        with pytest.raises(ConfigError):
            LinkFault(start=0.0, stop=1.0, drop_prob=1.5)

    def test_noop_link_fault_rejected(self):
        with pytest.raises(ConfigError):
            LinkFault(start=0.0, stop=1.0)

    def test_endpoint_b_without_a_rejected(self):
        with pytest.raises(ConfigError):
            LinkFault(start=0.0, stop=1.0, b="bb1", drop_prob=1.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            LinkFault(start=0.0, stop=1.0, delay=-0.1)

    def test_storage_error_rate_zero_rejected(self):
        with pytest.raises(ConfigError):
            StorageFault("bb0", start=0.0, stop=1.0, error_rate=0.0)

    def test_heartbeat_window_validated(self):
        with pytest.raises(ConfigError):
            HeartbeatLoss(start=-1.0, stop=1.0)

    def test_disconnect_time_validated(self):
        with pytest.raises(ConfigError):
            ClientDisconnect("c0", at=-0.5)

    def test_non_fault_rejected_by_plan(self):
        with pytest.raises(ConfigError):
            FaultPlan(["not a fault"])


class TestPlanOrdering:
    def test_sorted_by_effect_time(self):
        plan = FaultPlan([
            ServerCrash("bb0", at=5.0),
            LinkFault(start=1.0, stop=2.0, drop_prob=0.5),
            ClientDisconnect("c0", at=3.0),
        ])
        assert [getattr(f, "start") for f in plan.faults] == [1.0, 3.0, 5.0]

    def test_len_and_of_type(self):
        plan = FaultPlan([
            ServerCrash("bb0", at=1.0),
            ServerCrash("bb1", at=2.0),
            HeartbeatLoss(start=0.0, stop=4.0),
        ])
        assert len(plan) == 3
        assert [f.server for f in plan.of_type(ServerCrash)] == ["bb0", "bb1"]
        assert len(plan.of_type(StorageFault)) == 0

    def test_describe_lists_every_fault(self):
        plan = FaultPlan([ServerCrash("bb0", at=1.0),
                          HeartbeatLoss(start=0.5, stop=2.0)])
        text = plan.describe()
        assert len(text.splitlines()) == 2
        assert "ServerCrash" in text and "HeartbeatLoss" in text

    def test_plans_are_frozen(self):
        plan = FaultPlan([ServerCrash("bb0", at=1.0)])
        with pytest.raises(Exception):
            plan.faults = ()


class TestLinkMatching:
    def test_wildcard_matches_everything(self):
        f = LinkFault(start=0.0, stop=1.0, drop_prob=1.0)
        assert f.matches("x", "y")

    def test_single_endpoint_matches_either_direction(self):
        f = LinkFault(start=0.0, stop=1.0, a="bb0", drop_prob=1.0)
        assert f.matches("bb0", "cn-1")
        assert f.matches("cn-1", "bb0")
        assert not f.matches("cn-1", "bb1")

    def test_pair_matches_both_directions_only(self):
        f = LinkFault(start=0.0, stop=1.0, a="bb0", b="bb1", drop_prob=1.0)
        assert f.matches("bb0", "bb1")
        assert f.matches("bb1", "bb0")
        assert not f.matches("bb0", "cn-1")


class TestCrashWindows:
    def test_overlapping_crash_windows_rejected(self):
        # Second crash lands while bb0 is still down (no restart yet).
        with pytest.raises(ConfigError):
            FaultPlan([ServerCrash("bb0", at=1.0, restart_at=3.0),
                       ServerCrash("bb0", at=2.0)])

    def test_restartless_crash_blocks_any_later_crash(self):
        with pytest.raises(ConfigError):
            FaultPlan([ServerCrash("bb0", at=1.0),
                       ServerCrash("bb0", at=5.0, restart_at=6.0)])

    def test_disjoint_windows_accepted(self):
        plan = FaultPlan([ServerCrash("bb0", at=1.0, restart_at=2.0),
                          ServerCrash("bb0", at=3.0, restart_at=4.0),
                          ServerCrash("bb1", at=1.5)])
        assert len(plan) == 3

    def test_max_simultaneous_crashes(self):
        plan = FaultPlan([ServerCrash("bb0", at=1.0, restart_at=5.0),
                          ServerCrash("bb1", at=2.0),
                          ServerCrash("bb2", at=3.0, restart_at=4.0)])
        assert plan.max_simultaneous_crashes() == 3
        assert FaultPlan([]).max_simultaneous_crashes() == 0


class TestDescribeErasure:
    def test_describe_warns_when_crashes_exceed_tolerance(self):
        plan = FaultPlan([ServerCrash("bb0", at=1.0),
                          ServerCrash("bb1", at=2.0),
                          ServerCrash("bb2", at=3.0)])
        text = plan.describe(erasure=(3, 5))  # tolerance n - k = 2
        assert "WARNING" in text
        assert "n-k=2" in text

    def test_describe_silent_within_tolerance(self):
        plan = FaultPlan([ServerCrash("bb0", at=1.0),
                          ServerCrash("bb1", at=2.0)])
        assert "WARNING" not in plan.describe(erasure=(3, 5))

    def test_describe_without_erasure_never_warns(self):
        plan = FaultPlan([ServerCrash(f"bb{i}", at=float(i))
                          for i in range(5)])
        assert "WARNING" not in plan.describe()
