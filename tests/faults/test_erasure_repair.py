"""Erasure tier under faults: degraded reads/writes, crash-driven
repair, compound faults mid-repair, and trace neutrality of the whole
tier when it is switched off."""

import hashlib

from repro.bb import Cluster, ClusterConfig, ServerConfig
from repro.bb.client import ClientConfig
from repro.core import JobInfo
from repro.faults import FaultInjector, FaultPlan, StorageFault
from repro.units import GB, KiB, MB


def _erasure_cluster(seed=0, n_servers=7, k=3, n=5, repair=False,
                     detect=0.1):
    cfg = ClusterConfig(
        n_servers=n_servers, policy="job-fair", seed=seed,
        stripe_size=64 * KiB, erasure=(k, n), repair=repair,
        repair_detect_interval=detect,
        client=ClientConfig(rpc_timeout=0.25, rpc_retries=-1,
                            retry_backoff=0.05),
        server=ServerConfig(bandwidth=1 * GB, sync_timeout=0.5))
    cluster = Cluster(cfg)
    cluster.fs.makedirs("/fs/d")
    return cluster


def _payload(length: int, seed: int = 0) -> bytes:
    return bytes((seed * 31 + i * 7 + (i >> 8)) % 256
                 for i in range(length))


def _write_file(cluster, path="/fs/d/f", length=512 * KiB, seed=1):
    """Payload-write one erasure file; returns (client, payload)."""
    client = cluster.add_client(JobInfo(job_id=1, user="alice", size=1))
    data = _payload(length, seed)

    def app():
        yield from client.create(path)
        yield from client.write(path, 0, len(data), payload=data)

    cluster.engine.process(app())
    cluster.run(until=1.0)
    return client, data


def _sha(b: bytes) -> str:
    return hashlib.sha256(b).hexdigest()


class TestDegradedRead:
    def test_read_reconstructs_around_down_server(self):
        cluster = _erasure_cluster()
        client, data = _write_file(cluster)
        spec = cluster.fs.lookup("/fs/d/f").stripe
        dead = spec.servers[0]
        cluster.crash_server(dead)
        out = {}

        def app():
            out["n"] = yield from client.read("/fs/d/f", 0, len(data))

        cluster.engine.process(app())
        cluster.run(until=4.0)
        assert out["n"] == len(data)
        stats = cluster.fault_stats
        assert stats.degraded_reads >= 1
        assert stats.shares_reconstructed >= 1
        assert stats.data_lost_groups == 0
        got, info = cluster.fs.read_reconstruct("/fs/d/f", 0, len(data),
                                                {dead})
        assert _sha(got) == _sha(data)
        assert info["lost_bytes"] == 0


class TestDegradedWrite:
    def test_write_skips_down_server_with_correct_parity(self):
        cluster = _erasure_cluster()
        client = cluster.add_client(JobInfo(job_id=1, user="alice",
                                            size=1))
        data = _payload(512 * KiB, 2)
        done = {}

        def create():
            yield from client.create("/fs/d/f")
            done["spec"] = cluster.fs.lookup("/fs/d/f").stripe

        cluster.engine.process(create())
        cluster.run(until=0.5)
        dead = done["spec"].servers[1]
        cluster.crash_server(dead)

        def write():
            done["n"] = yield from client.write("/fs/d/f", 0, len(data),
                                                payload=data)

        cluster.engine.process(write())
        cluster.run(until=4.0)
        assert done["n"] < len(data)  # the down server's pieces skipped
        assert cluster.fault_stats.degraded_writes >= 1
        # The skipped share is reconstructible from the overlay parity.
        got, info = cluster.fs.read_reconstruct("/fs/d/f", 0, len(data),
                                                {dead})
        assert _sha(got) == _sha(data)
        assert info["lost_bytes"] == 0


class TestRepair:
    def test_crash_repair_restripe_content_hash(self):
        cluster = _erasure_cluster(repair=True)
        _, data = _write_file(cluster)
        spec = cluster.fs.lookup("/fs/d/f").stripe
        dead = spec.servers[0]
        cluster.crash_server(dead)
        cluster.run(until=6.0)
        summary = cluster.repair.summary()
        assert summary["episodes"] == 1
        assert summary["groups_lost"] == 0
        assert summary["groups_repaired"] >= 1
        assert summary["repair_bytes"] > 0
        new_spec = cluster.fs.lookup("/fs/d/f").stripe
        assert dead not in new_spec.servers
        # Full redundancy restored: plain reads, no reconstruction.
        assert _sha(cluster.fs.read("/fs/d/f", 0, len(data))) == _sha(data)

    def test_sequential_crashes_within_tolerance_lose_nothing(self):
        """n - k = 2: two crashes, repaired one after the other, keep
        the content hash intact end to end."""
        cluster = _erasure_cluster(repair=True)
        _, data = _write_file(cluster)
        engine = cluster.engine
        spec = cluster.fs.lookup("/fs/d/f").stripe
        first, second = spec.servers[0], spec.servers[1]

        def crashes():
            cluster.crash_server(first)
            yield engine.timeout(2.0)  # first repair episode completes
            cluster.crash_server(second)

        engine.process(crashes())
        cluster.run(until=8.0)
        summary = cluster.repair.summary()
        assert summary["episodes"] == 2
        assert summary["groups_lost"] == 0
        assert cluster.fault_stats.data_lost_groups == 0
        new_spec = cluster.fs.lookup("/fs/d/f").stripe
        assert first not in new_spec.servers
        assert second not in new_spec.servers
        assert _sha(cluster.fs.read("/fs/d/f", 0, len(data))) == _sha(data)


class TestCompoundFaults:
    def test_storage_errors_during_repair_do_not_corrupt(self):
        """Injected EIO on a survivor while the episode runs: share
        requests fail and are counted, the rebuilt content stays
        correct."""
        cluster = _erasure_cluster(repair=True)
        _, data = _write_file(cluster)
        spec = cluster.fs.lookup("/fs/d/f").stripe
        dead, survivor = spec.servers[0], spec.servers[1]
        plan = FaultPlan([StorageFault(survivor, start=1.5, stop=2.5,
                                       error_rate=1.0)])
        FaultInjector(cluster, plan).arm()
        engine = cluster.engine

        def crash():
            yield engine.timeout(0.6)  # episode overlaps the EIO window
            cluster.crash_server(dead)

        engine.process(crash())
        cluster.run(until=8.0)
        summary = cluster.repair.summary()
        assert summary["episodes"] == 1
        assert summary["groups_lost"] == 0
        assert cluster.fault_stats.storage_errors > 0
        assert _sha(cluster.fs.read("/fs/d/f", 0, len(data))) == _sha(data)

    def test_second_crash_mid_repair_keeps_data_while_k_survive(self):
        """The second server dies while the first episode is mid-flight:
        both episodes finish, nothing is lost while >= k shares remain
        reachable."""
        cluster = _erasure_cluster(repair=True)
        _, data = _write_file(cluster)
        engine = cluster.engine
        spec = cluster.fs.lookup("/fs/d/f").stripe
        first, second = spec.servers[0], spec.servers[1]

        def crashes():
            cluster.crash_server(first)
            # Inside the detection interval + episode window: the second
            # crash lands while repair of the first is still active.
            yield engine.timeout(0.12)
            cluster.crash_server(second)

        engine.process(crashes())
        cluster.run(until=8.0)
        summary = cluster.repair.summary()
        assert summary["episodes"] == 2
        assert cluster.fault_stats.data_lost_groups == 0
        down = {s for s in cluster.servers
                if cluster.fabric.node_is_down(s)}
        got, info = cluster.fs.read_reconstruct("/fs/d/f", 0, len(data),
                                                down)
        assert _sha(got) == _sha(data)
        assert info["lost_bytes"] == 0

    def test_crashes_beyond_tolerance_account_loss_without_crashing(self):
        """n - k + 1 simultaneous crashes: unsurvivable by design. Loss
        is counted (data_lost_groups) and zero-filled; the simulation
        keeps running to the horizon."""
        cluster = _erasure_cluster(repair=True)
        _, data = _write_file(cluster)
        spec = cluster.fs.lookup("/fs/d/f").stripe
        for name in spec.servers[:3]:
            cluster.crash_server(name)
        cluster.run(until=6.0)
        assert cluster.engine.now == 6.0  # no deadlock, no exception
        assert cluster.fault_stats.data_lost_groups > 0
        down = {s for s in cluster.servers
                if cluster.fabric.node_is_down(s)}
        got, info = cluster.fs.read_reconstruct("/fs/d/f", 0, len(data),
                                                down)
        assert len(got) == len(data)
        assert info["lost_bytes"] > 0


def _trace(cluster):
    s = cluster.sampler
    return (list(zip(s._times, s._jobs, s._bytes, s._ops)),
            cluster.engine.now, cluster.total_served_bytes())


def _plain_run(seed, erasure=None):
    """A no-fault workload run with the erasure toggle on or off."""
    cfg = ClusterConfig(
        n_servers=4, policy="job-fair", seed=seed, stripe_size=64 * KiB,
        erasure=erasure, repair=erasure is not None,
        server=ServerConfig(bandwidth=1 * GB, n_workers=2))
    cluster = Cluster(cfg)
    cluster.fs.makedirs("/fs/d")
    engine = cluster.engine

    def app(client, idx):
        path = f"/fs/d/f{idx}"
        yield from client.create(path)
        for _ in range(8):
            yield from client.write(path, 0, 1 * MB)
            yield from client.read(path, 0, 1 * MB)

    for idx in range(3):
        client = cluster.add_client(
            JobInfo(job_id=idx + 1, user=f"u{idx}", size=idx + 1))
        engine.process(app(client, idx))
    cluster.run(until=4.0)
    return cluster


class TestTraceNeutrality:
    def test_erasure_off_is_deterministic_and_untouched(self):
        a = _plain_run(seed=3)
        b = _plain_run(seed=3)
        assert _trace(a) == _trace(b)
        # With the toggle off the tier leaves no trace at all: no
        # repair manager, no erasure counters, plain striping specs.
        assert a.repair is None
        stats = a.fault_stats.snapshot()
        for key in ("degraded_reads", "degraded_writes",
                    "shares_reconstructed", "repair_bytes",
                    "data_lost_groups"):
            assert stats[key] == 0, key

    def test_erasure_on_is_deterministic(self):
        a = _plain_run(seed=5, erasure=(2, 3))
        b = _plain_run(seed=5, erasure=(2, 3))
        assert _trace(a) == _trace(b)
        assert a.fault_stats.snapshot() == b.fault_stats.snapshot()
