"""Crash and recovery: durability of acked writes, liveness, dedup."""

import pytest

from repro.errors import RpcTimeout
from repro.faults import FaultInjector, FaultPlan, ServerCrash
from repro.units import MB, MiB


class TestDurability:
    def test_acked_payload_writes_survive_crash_recovery(self, make_cluster,
                                                         job):
        # journal=True + storage_backend="log": every acknowledged write
        # must be readable after a crash + journal/log-scan recovery.
        cluster = make_cluster(n_servers=2)
        client = cluster.add_client(job(1), client_id="c0")
        payloads = {f"/fs/d/file{i}": bytes([i + 1]) * (128 * 1024)
                    for i in range(6)}
        acked = []

        def app():
            for path, data in payloads.items():
                yield from client.create(path)
                yield from client.write(path, 0, len(data), payload=data)
                acked.append(path)

        cluster.engine.process(app())
        cluster.run(until=3.0)
        assert len(acked) == len(payloads)

        for name in ("bb0", "bb1"):
            cluster.crash_server(name)
            cluster.restart_server(name)
        for path, data in payloads.items():
            assert cluster.fs.read(path, 0, len(data)) == data, path

    def test_recovery_reports_replayed_state(self, make_cluster, job):
        cluster = make_cluster(n_servers=1)
        client = cluster.add_client(job(1), client_id="c0")

        def app():
            yield from client.create("/fs/d/f")
            yield from client.write("/fs/d/f", 0, 2 * MB)

        cluster.engine.process(app())
        cluster.run(until=2.0)
        cluster.crash_server("bb0")
        cluster.restart_server("bb0")
        server = cluster.servers["bb0"]
        assert server.last_recovery is not None
        assert server.last_recovery["applied"] > 0
        assert cluster.fs.stat("/fs/d/f").size == 2 * MB


class TestLiveness:
    def test_unrecovered_crash_never_deadlocks(self, make_cluster, job):
        # The only server dies and never returns; bounded-retry clients
        # must surface failures and the simulation must keep advancing.
        cluster = make_cluster(n_servers=1, rpc_retries=3,
                               retry_backoff=0.01)
        client = cluster.add_client(job(1), client_id="c0")
        plan = FaultPlan([ServerCrash("bb0", at=0.01)])
        FaultInjector(cluster, plan).arm()
        out = {}

        def app():
            try:
                yield from client.create("/fs/d/f")
                for k in range(50):
                    yield from client.write("/fs/d/f", k * 4 * MB, 4 * MB)
                out["finished_all"] = True
            except RpcTimeout:
                out["failed"] = True

        cluster.engine.process(app())
        cluster.run(until=10.0)
        assert out.get("failed")
        assert cluster.fault_stats.requests_failed >= 1
        assert cluster.engine.now == 10.0

    def test_inflight_requests_dropped_on_crash(self, make_cluster, job):
        cluster = make_cluster(n_servers=1)
        client = cluster.add_client(job(1), client_id="c0")
        plan = FaultPlan([ServerCrash("bb0", at=0.1, restart_at=0.6)])
        FaultInjector(cluster, plan).arm()
        out = {}

        def app():
            yield from client.create("/fs/d/f")
            k = 0
            while cluster.engine.now < 1.2:
                yield from client.write("/fs/d/f", (k % 16) * MB, 4 * MB)
                k += 1
            out["done"] = True

        cluster.engine.process(app())
        cluster.run(until=3.0)
        assert out.get("done")
        stats = cluster.fault_stats
        assert stats.server_crashes == 1
        assert stats.server_recoveries == 1
        # Whatever was queued or in service at the crash was abandoned
        # without a reply, and the client recovered it by retrying.
        assert stats.requests_dropped_in_crash > 0
        assert stats.retries > 0


class TestIdempotentRetries:
    def test_slow_reply_retry_hits_cache_not_reexecution(self, make_cluster,
                                                         job):
        # Timeout shorter than the service time: the client retransmits
        # while (or after) the original executes. The req-id cache must
        # answer the retry; the write must be applied exactly once.
        cluster = make_cluster(n_servers=1, rpc_timeout=0.0003,
                               retry_backoff=0.005)
        client = cluster.add_client(job(1), client_id="c0")
        out = {}

        def app():
            yield from client.create("/fs/d/f")
            out["wrote"] = yield from client.write("/fs/d/f", 0, MiB)

        cluster.engine.process(app())
        cluster.run(until=2.0)
        assert out.get("wrote") == MiB
        assert cluster.fault_stats.duplicate_requests >= 1
        # Exactly one served write despite the retransmissions.
        assert cluster.sampler.op_count(job_id=1, op="write") == 1
