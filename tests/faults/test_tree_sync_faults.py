"""Tree-structured λ-sync under faults (ISSUE 8 satellite).

The aggregation tree's failure domain is the edge: a crash, restart,
or partition on one parent↔child edge degrades — and later full-table
resyncs — only the subtree hanging off it, while the rest of the epoch
completes. Covered here:

- **root crash**: the epoch whose root is down simply doesn't run
  (same as the flat round losing its coordinator); rotation hands the
  next epoch to a live root and the cluster reconverges;
- **interior crash/restart**: the restarted node's basis token voids
  any in-flight delta, its next reply demands a full push
  (``full_resyncs``), and its stored gather edges are gone — a push
  arriving without them resyncs the whole subtree with full tables
  (``subtree_full_pushes``);
- **partition mid-round**: the cut child misses the gather, the
  parent's scatter skips the edge (no basis to delta against), and a
  later epoch's reshaped tree heals it;
- the acceptance-criteria check: fault scenarios leave identical
  tables with the delta encodings on vs. off.
"""

import pytest

from repro.bb import controller as ctlmod
from repro.faults import FaultInjector, FaultPlan, LinkFault, ServerCrash
from repro.units import MB


@pytest.fixture(autouse=True)
def _restore_toggles():
    yield
    ctlmod.set_sync_delta_enabled(True)
    ctlmod.set_sync_gather_delta_enabled(True)


def _one_write(cluster, client, path):
    def app():
        yield from client.create(path)
        yield from client.write(path, 0, MB)

    cluster.engine.process(app())


def _table_view(server):
    return sorted((e["info"].job_id, e["last_heartbeat"], e["active"])
                  for e in server.monitor.table.snapshot())


def _assert_converged(cluster):
    views = [_table_view(s) for s in cluster.servers.values()]
    active = [sorted(j for j, _hb, a in v if a) for v in views]
    assert all(x == active[0] for x in active), active
    assert active[0]  # jobs actually registered


def _run_crash(make_cluster, job, crashed, *, n_servers=7, fanout=2,
               delta=True, until=3.0):
    ctlmod.set_sync_delta_enabled(delta)
    ctlmod.set_sync_gather_delta_enabled(delta)
    cluster = make_cluster(n_servers=n_servers, sync_interval=0.1,
                           sync_timeout=0.1, sync_tree_fanout=fanout)
    plan = FaultPlan([ServerCrash(crashed, at=0.75, restart_at=1.25)])
    FaultInjector(cluster, plan).arm()
    for i in range(3):
        client = cluster.add_client(job(i + 1, user=f"u{i}"),
                                    client_id=f"c{i}")
        _one_write(cluster, client, f"/fs/d/f{i}")
    cluster.run(until=until)
    return cluster


class TestRootCrash:
    # With sync_interval=0.1 and members bb0..bb6, bb1 is the epoch-8
    # root (t=0.8) — squarely inside the 0.75..1.25 crash window — and
    # plays interior/leaf in the surrounding epochs.
    def test_cluster_survives_a_crashed_root(self, make_cluster, job):
        cluster = _run_crash(make_cluster, job, "bb1")
        ctl = cluster.servers["bb1"].controller
        # The restart invalidated bb1's basis; a full push answered it.
        assert ctl.full_resyncs >= 1
        assert not ctl._needs_full_sync
        _assert_converged(cluster)
        assert cluster.sync_stats()["tree_rounds"] > 0

    def test_fanin_stays_bounded_through_the_fault(self, make_cluster, job):
        cluster = _run_crash(make_cluster, job, "bb1")
        assert cluster.sync_stats()["max_gather_fanin"] <= 2

    def test_crash_state_identical_deltas_on_off(self, make_cluster, job):
        with_delta = _run_crash(make_cluster, job, "bb1", delta=True)
        without = _run_crash(make_cluster, job, "bb1", delta=False)
        for name in with_delta.servers:
            assert (_table_view(with_delta.servers[name])
                    == _table_view(without.servers[name])), name
        assert (with_delta.total_served_bytes()
                == without.total_served_bytes())


class TestInteriorCrash:
    # bb3 is never the root inside the crash window (epochs 7..12 give
    # roots bb0, bb1, bb2, bb3 at t=1.0... epoch 10 would be bb3; pick
    # bb5 instead: roots in 0.75..1.25 are epochs 8..12 → bb1..bb5 —
    # epoch 12 lands at t=1.2 < 1.25. Use a window that dodges it.
    def test_interior_crash_degrades_only_its_subtree(self, make_cluster,
                                                      job):
        ctlmod.set_sync_delta_enabled(True)
        cluster = make_cluster(n_servers=7, sync_interval=0.1,
                               sync_timeout=0.1, sync_tree_fanout=2)
        # Crash bb6 across epochs 8..11 (roots bb1..bb4): bb6 is interior
        # (children exist at positions 1..2 of some rotation) or leaf,
        # never the root, during the outage.
        plan = FaultPlan([ServerCrash("bb6", at=0.75, restart_at=1.15)])
        FaultInjector(cluster, plan).arm()
        for i in range(3):
            client = cluster.add_client(job(i + 1, user=f"u{i}"),
                                        client_id=f"c{i}")
            _one_write(cluster, client, f"/fs/d/f{i}")
        cluster.run(until=3.0)
        ctl = cluster.servers["bb6"].controller
        assert ctl.full_resyncs >= 1
        assert not ctl._needs_full_sync
        # Some epoch degraded while the edge was dark...
        assert cluster.fault_stats.degraded_sync_rounds > 0
        # ...but the cluster as a whole reconverged.
        _assert_converged(cluster)


class TestSubtreeResync:
    def test_lost_gather_bookkeeping_full_pushes_the_subtree(
            self, make_cluster, job):
        """The designed recovery path: a node whose per-epoch gather
        bookkeeping is gone (restart between gather and push) forwards
        the merged state as *full* tables to every shape-child."""
        cluster = make_cluster(n_servers=4, sync_interval=0.1,
                               sync_timeout=0.1, sync_tree_fanout=3)
        cluster.run(until=0.05)  # start the engine, no epoch yet
        root = cluster.servers["bb0"]
        ctl = root.controller
        assert ctl._tree_gather == {}  # nothing stored: simulates loss
        digest = "resync-digest"
        # Epoch 0's rotation is the identity: bb0 is root, bb1..bb3 its
        # children under fanout 3.
        cluster.engine.process(ctl._forward_tree_push(0, digest))
        # Harvest before the first scheduled epoch (t=0.1) overwrites
        # the injected digest with a real round's.
        cluster.run(until=0.09)
        assert ctl.subtree_full_pushes == 3
        for name in ("bb1", "bb2", "bb3"):
            child = cluster.servers[name].controller
            assert child._last_push_hash == digest, name


class TestPartitionMidRound:
    def _run(self, make_cluster, job, delta):
        ctlmod.set_sync_delta_enabled(delta)
        ctlmod.set_sync_gather_delta_enabled(delta)
        cluster = make_cluster(n_servers=5, sync_interval=0.1,
                               sync_timeout=0.1, sync_tree_fanout=2)
        # Cut bb4 off from every peer for a window covering several
        # epochs: whichever edge reaches it, the pull times out, the
        # parent's scatter skips the edge, and the epochs degrade.
        cuts = [LinkFault(start=0.55, stop=1.05, a=f"bb{i}", b="bb4",
                          drop_prob=1.0) for i in range(4)]
        FaultInjector(cluster, FaultPlan(cuts)).arm()
        for i in range(3):
            client = cluster.add_client(job(i + 1, user=f"u{i}"),
                                        client_id=f"c{i}")
            _one_write(cluster, client, f"/fs/d/f{i}")
        cluster.run(until=3.0)
        return cluster

    def test_heal_reconverges_the_cut_subtree(self, make_cluster, job):
        cluster = self._run(make_cluster, job, delta=True)
        assert cluster.fault_stats.degraded_sync_rounds > 0
        _assert_converged(cluster)
        # No controller restarted: partitions never void a basis (the
        # parent only deltas against same-epoch replies), so no push
        # was ever dropped for a stale basis.
        for server in cluster.servers.values():
            assert server.controller.basis_mismatches == 0

    def test_partition_state_identical_deltas_on_off(self, make_cluster,
                                                     job):
        with_delta = self._run(make_cluster, job, delta=True)
        without = self._run(make_cluster, job, delta=False)
        for name in with_delta.servers:
            assert (_table_view(with_delta.servers[name])
                    == _table_view(without.servers[name])), name
