"""DESIGN §6 failure promises: heartbeat loss, client exit, table sync."""

import pytest

from repro.faults import (ClientDisconnect, FaultInjector, FaultPlan,
                          HeartbeatLoss, LinkFault)
from repro.fs.hashing import ConsistentHashRing
from repro.units import MB


def _one_write(cluster, client, path, out=None):
    def app():
        yield from client.create(path)
        yield from client.write(path, 0, MB)
        if out is not None:
            out["done"] = True

    cluster.engine.process(app())


class TestHeartbeatLoss:
    def test_loss_inactivates_then_resume_reactivates(self, make_cluster,
                                                      job):
        cluster = make_cluster(n_servers=1, heartbeat_interval=0.2,
                               heartbeat_timeout=0.6,
                               expire_check_interval=0.1)
        client = cluster.add_client(job(1), client_id="c0")
        plan = FaultPlan([HeartbeatLoss(start=0.3, stop=1.5)])
        FaultInjector(cluster, plan).arm()
        _one_write(cluster, client, "/fs/d/f")
        server = cluster.servers["bb0"]

        # Before the loss window the job registers and beats normally.
        cluster.run(until=0.25)
        assert server.monitor.table.is_active(1)
        assert server.pool.mapped_clients == ["c0"]

        # Silence past the timeout: inactive, mappings destroyed (§6).
        cluster.run(until=1.4)
        assert cluster.fault_stats.heartbeats_dropped > 0
        assert not server.monitor.table.is_active(1)
        assert server.pool.mapped_clients == []

        # Beats resume after the window: the job comes back.
        cluster.run(until=2.5)
        assert server.monitor.table.is_active(1)

    def test_expiry_retokenises_survivors(self, make_cluster, job):
        # Two jobs; one goes silent. After expiry the scheduler's token
        # assignment must be rebuilt over the survivor only.
        cluster = make_cluster(n_servers=1, heartbeat_interval=0.2,
                               heartbeat_timeout=0.6,
                               expire_check_interval=0.1)
        c1 = cluster.add_client(job(1, user="alice"), client_id="c1")
        c2 = cluster.add_client(job(2, user="bob"), client_id="c2")
        plan = FaultPlan([HeartbeatLoss(start=0.3, stop=10.0,
                                        client_id="c1")])
        FaultInjector(cluster, plan).arm()
        _one_write(cluster, c1, "/fs/d/f1")
        _one_write(cluster, c2, "/fs/d/f2")
        server = cluster.servers["bb0"]

        cluster.run(until=0.25)
        active = {j.job_id for j in server.monitor.active_jobs()}
        assert active == {1, 2}

        cluster.run(until=2.0)
        active = {j.job_id for j in server.monitor.active_jobs()}
        assert active == {2}
        # Only job 1's beats were suppressed; c2 kept its mapping.
        assert server.pool.mapped_clients == ["c2"]


class TestClientDisconnect:
    def test_abrupt_exit_cleans_up_via_expiry(self, make_cluster, job):
        cluster = make_cluster(n_servers=1, heartbeat_interval=0.2,
                               heartbeat_timeout=0.6,
                               expire_check_interval=0.1)
        client = cluster.add_client(job(1), client_id="c0")
        plan = FaultPlan([ClientDisconnect("c0", at=0.4)])
        FaultInjector(cluster, plan).arm()
        _one_write(cluster, client, "/fs/d/f")
        server = cluster.servers["bb0"]

        cluster.run(until=0.35)
        assert server.pool.mapped_clients == ["c0"]

        cluster.run(until=2.0)
        assert client.closed
        assert cluster.fault_stats.client_disconnects == 1
        # No goodbye was sent; heartbeat expiry did the cleanup.
        assert server.pool.mapped_clients == []
        assert not server.monitor.table.is_active(1)


class TestTableSync:
    def test_partition_diverges_then_lambda_sync_reconverges(
            self, make_cluster, job):
        # Jobs pinned to disjoint servers; each server learns the other
        # job only via λ-sync. A full bb0<->bb1 partition makes the new
        # job invisible to the far server; healing re-converges tables.
        cluster = make_cluster(n_servers=2, sync_interval=0.1,
                               sync_timeout=0.1)
        ring = ConsistentHashRing(["bb0", "bb1"])
        pinned = {}
        i = 0
        while len(pinned) < 2:
            path = f"/fs/d/pin-{i}"
            pinned.setdefault(ring.lookup(path), path)
            i += 1

        plan = FaultPlan([LinkFault(start=0.0, stop=1.0, a="bb0", b="bb1",
                                    drop_prob=1.0)])
        FaultInjector(cluster, plan).arm()
        c1 = cluster.add_client(job(1, user="alice"), client_id="c1")
        c2 = cluster.add_client(job(2, user="bob"), client_id="c2")
        _one_write(cluster, c1, pinned["bb0"])
        _one_write(cluster, c2, pinned["bb1"])
        bb0, bb1 = cluster.servers["bb0"], cluster.servers["bb1"]

        # During the partition each server only knows its local job.
        cluster.run(until=0.9)
        assert bb0.monitor.table.is_active(1)
        assert not bb0.monitor.table.is_active(2)
        assert bb1.monitor.table.is_active(2)
        assert not bb1.monitor.table.is_active(1)
        assert bb0.controller.degraded_rounds > 0
        assert bb1.controller.degraded_rounds > 0
        assert cluster.fault_stats.degraded_sync_rounds > 0

        # Healed: the next sync rounds merge the tables back together.
        cluster.run(until=2.0)
        assert bb0.monitor.table.is_active(2)
        assert bb1.monitor.table.is_active(1)
