"""Injector wiring and the package's core promise: determinism.

Same seed + same plan must produce bit-identical traces — the sampler's
raw completion records, the simulated end time, and every fault counter.
"""

import pytest

from repro.bb import Cluster, ClusterConfig, ServerConfig
from repro.bb.client import ClientConfig
from repro.core import JobInfo
from repro.errors import ConfigError
from repro.faults import (FaultInjector, FaultPlan, LinkFault, ServerCrash,
                          StorageFault)
from repro.faults.injector import _REQ_TAG
from repro.ucx.rpc import REQ_TAG
from repro.units import MB


def test_req_tag_mirrors_rpc_layer():
    # The injector classifies heartbeats without importing repro.ucx.rpc;
    # the mirrored constant must never drift.
    assert _REQ_TAG == REQ_TAG


class TestArming:
    def test_arm_twice_rejected(self, make_cluster):
        cluster = make_cluster()
        injector = FaultInjector(
            cluster, FaultPlan([ServerCrash("bb0", at=1.0)]))
        injector.arm()
        with pytest.raises(ConfigError):
            injector.arm()

    def test_unknown_crash_server_rejected(self, make_cluster):
        cluster = make_cluster()
        injector = FaultInjector(
            cluster, FaultPlan([ServerCrash("bb9", at=1.0)]))
        with pytest.raises(ConfigError):
            injector.arm()

    def test_unknown_storage_server_rejected(self, make_cluster):
        cluster = make_cluster()
        injector = FaultInjector(
            cluster,
            FaultPlan([StorageFault("bb9", start=0.0, stop=1.0)]))
        with pytest.raises(ConfigError):
            injector.arm()

    def test_empty_plan_installs_no_filter(self, make_cluster):
        cluster = make_cluster()
        FaultInjector(cluster, FaultPlan([])).arm()
        assert cluster.fabric._fault_filter is None


def _run_scenario(seed):
    """A lively 2-server run with probabilistic drops, EIO and a crash."""
    cfg = ClusterConfig(
        n_servers=2, policy="job-fair", seed=seed,
        journal=True, storage_backend="log",
        client=ClientConfig(rpc_timeout=0.2, retry_backoff=0.02),
        server=ServerConfig(sync_timeout=0.4))
    cluster = Cluster(cfg)
    cluster.fs.makedirs("/fs/d")
    plan = FaultPlan([
        ServerCrash("bb0", at=0.8, restart_at=1.6),
        LinkFault(start=0.3, stop=2.0, drop_prob=0.25),
        StorageFault("bb0", start=0.3, stop=1.2, error_rate=0.25),
        StorageFault("bb1", start=0.3, stop=1.2, error_rate=0.25),
    ])
    FaultInjector(cluster, plan).arm()
    engine = cluster.engine
    for i in range(3):
        client = cluster.add_client(
            JobInfo(job_id=i + 1, user=f"u{i}", size=1),
            client_id=f"c{i}")

        def app(client=client, i=i):
            # Keep traffic flowing through every fault window.
            path = f"/fs/d/f{i}"
            yield from client.create(path)
            k = 0
            while engine.now < 2.5:
                yield from client.write(path, (k % 8) * MB, MB)
                yield from client.read(path, (k % 8) * MB, MB)
                k += 1

        engine.process(app())
    cluster.run(until=4.0)
    sampler = cluster.sampler
    return (tuple(sampler._times), tuple(sampler._jobs),
            tuple(sampler._bytes), tuple(sampler._ops),
            cluster.engine.now,
            tuple(sorted(cluster.fault_stats.snapshot().items())))


class TestDeterminism:
    def test_same_seed_same_plan_bit_identical(self):
        assert _run_scenario(7) == _run_scenario(7)

    def test_faults_actually_fired(self):
        trace = _run_scenario(7)
        stats = dict(trace[-1])
        assert stats["server_crashes"] == 1
        assert stats["server_recoveries"] == 1
        assert stats["messages_dropped"] > 0
        assert stats["storage_errors"] > 0
