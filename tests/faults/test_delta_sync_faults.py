"""Delta-encoded λ-sync under faults (ISSUE 5 satellite).

The encoding's soundness argument — omitted entries are provably no-ops
at the receiver — is anchored to the snapshot the receiver reported in
the *same* round, so there are no cross-round version vectors to go
stale. The two ways state can still discontinue are covered here:

- **server crash/restart**: the restarted controller's basis token no
  longer matches any in-flight delta, and its next pull reply demands a
  full-table push (``full_resyncs``);
- **partition heal**: a healed peer's staleness is re-measured from its
  own gather reply each round, so deltas stay sound with no special
  handling (``basis_mismatches == 0``) and tables reconverge exactly as
  they do without the encoding.

Plus the acceptance-criteria trace check: the availability scenario is
bit-identical with the encoding on vs. off.
"""

import pytest

from repro.bb import controller as ctlmod
from repro.faults import FaultInjector, FaultPlan, LinkFault, ServerCrash
from repro.fs.hashing import ConsistentHashRing
from repro.units import MB


@pytest.fixture(autouse=True)
def _restore_delta_toggle():
    yield
    ctlmod.set_sync_delta_enabled(True)


def _one_write(cluster, client, path):
    def app():
        yield from client.create(path)
        yield from client.write(path, 0, MB)

    cluster.engine.process(app())


def _table_view(server):
    return sorted((e["info"].job_id, e["last_heartbeat"], e["active"])
                  for e in server.monitor.table.snapshot())


class TestCrashRestartResync:
    def _run(self, make_cluster, job, delta):
        ctlmod.set_sync_delta_enabled(delta)
        cluster = make_cluster(n_servers=3, sync_interval=0.1,
                               sync_timeout=0.1)
        plan = FaultPlan([ServerCrash("bb1", at=0.8, restart_at=1.2)])
        FaultInjector(cluster, plan).arm()
        for i in range(3):
            client = cluster.add_client(job(i + 1, user=f"u{i}"),
                                        client_id=f"c{i}")
            _one_write(cluster, client, f"/fs/d/f{i}")
        cluster.run(until=3.0)
        return cluster

    def test_restart_forces_full_table_resync(self, make_cluster, job):
        cluster = self._run(make_cluster, job, delta=True)
        ctl = cluster.servers["bb1"].controller
        # The crash bumped the basis and flagged the resync; a full push
        # answered it — the restarted server never applied a delta
        # computed against its pre-crash state.
        assert ctl.full_resyncs >= 1
        assert not ctl._needs_full_sync
        # And the resync delivered: every server converges on the same
        # job-status view, including the one that lost its table.
        views = [_table_view(s) for s in cluster.servers.values()]
        active = [sorted(j for j, _hb, a in v if a) for v in views]
        assert all(x == active[0] for x in active), active
        assert active[0]  # jobs actually registered

    def test_crash_restart_state_identical_to_full_pushes(self, make_cluster,
                                                          job):
        with_delta = self._run(make_cluster, job, delta=True)
        without = self._run(make_cluster, job, delta=False)
        for name in with_delta.servers:
            assert (_table_view(with_delta.servers[name])
                    == _table_view(without.servers[name])), name
        assert (with_delta.total_served_bytes()
                == without.total_served_bytes())


class TestPartitionHeal:
    def _run(self, make_cluster, job, delta):
        ctlmod.set_sync_delta_enabled(delta)
        cluster = make_cluster(n_servers=2, sync_interval=0.1,
                               sync_timeout=0.1)
        ring = ConsistentHashRing(["bb0", "bb1"])
        pinned = {}
        i = 0
        while len(pinned) < 2:
            path = f"/fs/d/pin-{i}"
            pinned.setdefault(ring.lookup(path), path)
            i += 1
        plan = FaultPlan([LinkFault(start=0.0, stop=1.0, a="bb0", b="bb1",
                                    drop_prob=1.0)])
        FaultInjector(cluster, plan).arm()
        c1 = cluster.add_client(job(1, user="alice"), client_id="c1")
        c2 = cluster.add_client(job(2, user="bob"), client_id="c2")
        _one_write(cluster, c1, pinned["bb0"])
        _one_write(cluster, c2, pinned["bb1"])
        cluster.run(until=2.5)
        return cluster

    def test_heal_reconverges_without_stale_deltas(self, make_cluster, job):
        cluster = self._run(make_cluster, job, delta=True)
        bb0, bb1 = cluster.servers["bb0"], cluster.servers["bb1"]
        # Both sides saw degraded rounds during the partition...
        assert cluster.fault_stats.degraded_sync_rounds > 0
        # ...and full tables reconverged after the heal.
        assert bb0.monitor.table.is_active(2)
        assert bb1.monitor.table.is_active(1)
        assert _table_view(bb0) == _table_view(bb1)
        # No controller restarted, so no delta was ever unsound: the
        # staleness a partition causes is re-measured from each round's
        # own gather, never carried across rounds.
        for server in cluster.servers.values():
            assert server.controller.basis_mismatches == 0

    def test_heal_state_identical_to_full_pushes(self, make_cluster, job):
        with_delta = self._run(make_cluster, job, delta=True)
        without = self._run(make_cluster, job, delta=False)
        for name in with_delta.servers:
            assert (_table_view(with_delta.servers[name])
                    == _table_view(without.servers[name])), name


class TestAvailabilityScenarioEquivalence:
    def test_availability_trace_identical_with_delta_on_off(self):
        from repro.harness.experiments import availability_outage

        def run(delta):
            ctlmod.set_sync_delta_enabled(delta)
            out = availability_outage(n_jobs=3, n_servers=2, duration=4.0,
                                      crash_at=1.5, restart_at=2.5, seed=0)
            s = out.result.cluster.sampler
            return (list(zip(s._times, s._jobs, s._bytes, s._ops)),
                    out.recovery_time, out.jain_before, out.jain_during,
                    out.jain_after)

        assert run(True) == run(False)

    def test_availability_trace_identical_all_scale_toggles(self):
        """All four ISSUE-5 kernels at once, under the fault scenario."""
        from repro.core import scheduler as schedmod
        from repro.core.baselines import gift as giftmod
        from repro.fs import locking as lockmod
        from repro.harness.experiments import availability_outage

        toggles = [schedmod.set_sampled_dequeue_enabled,
                   ctlmod.set_sync_delta_enabled,
                   lockmod.set_range_wake_enabled,
                   giftmod.set_gift_quiescence_enabled]

        def run(flag):
            for setter in toggles:
                setter(flag)
            try:
                out = availability_outage(n_jobs=3, n_servers=2,
                                          duration=4.0, crash_at=1.5,
                                          restart_at=2.5, seed=0)
                s = out.result.cluster.sampler
                return (list(zip(s._times, s._jobs, s._bytes, s._ops)),
                        out.recovery_time, out.jain_before,
                        out.jain_during, out.jain_after)
            finally:
                for setter in toggles:
                    setter(True)

        assert run(True) == run(False)
