"""Event-queue kernel vs the fault machinery: trace neutrality under
crashes and partitions.

Timeout/retry/failover paths are where cancellation earns its keep —
and where a subtly wrong skip or compaction would shuffle the trace.
The same faulted workload must be digest-identical on the heap and the
calendar queue, and with cancellation on and off.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, LinkFault, ServerCrash
from repro.sim import set_cancel_enabled, set_default_eventq
from repro.units import MB


@pytest.fixture(autouse=True)
def _restore_kernel_toggles():
    set_cancel_enabled(True)
    set_default_eventq(None)
    yield
    set_cancel_enabled(True)
    set_default_eventq(None)


def _faulted_run(make_cluster, job, *, eventq, cancel=True, seed=0):
    set_cancel_enabled(cancel)
    set_default_eventq(eventq)
    try:
        cluster = make_cluster(n_servers=3, seed=seed, rpc_retries=-1)
        plan = FaultPlan([
            ServerCrash("bb1", at=0.4, restart_at=1.2),
            LinkFault(start=1.6, stop=2.2, a="bb0", drop_prob=1.0),
        ])
        FaultInjector(cluster, plan).arm()
        done = []

        def app(client, idx):
            yield from client.register_all()
            path = f"/fs/d/f{idx}"
            yield from client.create(path)
            for k in range(8):
                yield from client.write(path, k * MB, 1 * MB)
            done.append(idx)

        for idx in range(3):
            client = cluster.add_client(job(idx + 1), client_id=f"c{idx}")
            cluster.engine.process(app(client, idx))
        cluster.run(until=6.0)
        return cluster, done
    finally:
        set_cancel_enabled(True)
        set_default_eventq(None)


def _digest(cluster, done):
    s = cluster.sampler
    return (sorted(done),
            list(zip(s._times, s._jobs, s._bytes, s._ops)),
            cluster.sync_digest_log(),
            cluster.fault_stats.requests_failed,
            cluster.engine.now,
            cluster.total_served_bytes())


def test_calendar_equals_heap_under_faults(make_cluster, job):
    heap = _digest(*_faulted_run(make_cluster, job, eventq=None))
    cal = _digest(*_faulted_run(make_cluster, job, eventq="calendar"))
    assert heap == cal


def test_cancel_toggle_neutral_under_faults(make_cluster, job):
    on = _digest(*_faulted_run(make_cluster, job, eventq=None, cancel=True))
    off = _digest(*_faulted_run(make_cluster, job, eventq=None, cancel=False))
    assert on == off


def test_faulted_run_cancels_and_completes(make_cluster, job):
    """Sanity for the pair above: the scenario exercises the machinery
    (expiry timers get cancelled) and the workload still finishes."""
    cluster, done = _faulted_run(make_cluster, job, eventq="calendar")
    assert sorted(done) == [0, 1, 2]
    stats = cluster.engine.stats()
    assert stats["eventq"] == "CalendarEventQueue"
    assert stats["cancelled_total"] > 0
