"""The harness-level availability scenario (ISSUE 2 acceptance)."""

import pytest

from repro.harness.experiments import AvailabilityResult, availability_outage


@pytest.fixture(scope="module")
def outage():
    """One shared availability run (module-scoped: it is the slow part)."""
    return availability_outage(n_jobs=3, n_servers=2, duration=4.0,
                               crash_at=1.5, restart_at=2.5, seed=0)


class TestAvailabilityScenario:
    def test_run_completes_without_deadlock(self, outage):
        assert isinstance(outage, AvailabilityResult)
        assert outage.result.end_time <= 5.0 + 1e-9

    def test_crash_and_recovery_happened(self, outage):
        stats = outage.stats
        assert stats.server_crashes == 1
        assert stats.server_recoveries == 1
        assert stats.rpc_timeouts > 0
        assert stats.retries > 0

    def test_no_request_is_lost_with_infinite_retries(self, outage):
        assert outage.stats.requests_failed == 0

    def test_recovery_time_is_short(self, outage):
        # The crashed server serves again within a few client-timeout
        # periods of its restart.
        assert outage.recovery_time is not None
        assert outage.recovery_time < 1.5

    def test_fairness_returns_after_rejoin(self, outage):
        assert outage.jain_before > 0.9
        # Acceptance: Jain within 5% of the pre-crash level after rejoin.
        assert outage.jain_after >= outage.jain_before - 0.05

    def test_report_renders(self, outage):
        text = outage.report()
        assert "recovery time" in text
        assert "Jain" in text
