"""Tests for the interconnect model."""

import pytest

from repro.errors import NetworkError
from repro.net import Fabric, Message
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


def make_fabric(eng, **kw):
    fabric = Fabric(eng, **kw)
    fabric.add_node("a")
    fabric.add_node("b")
    return fabric


def test_send_delivers_to_inbox(eng):
    fabric = make_fabric(eng, latency=0.001, link_bandwidth=1000.0)
    got = []

    def receiver():
        msg = yield fabric.inbox("b").get()
        got.append((eng.now, msg.payload))

    eng.process(receiver())
    fabric.send(Message(src="a", dst="b", tag="t", payload="hello", size=100))
    eng.run()
    # 100 bytes @ 1000 B/s = 0.1 s serialisation + 1 ms latency
    assert got == [(pytest.approx(0.101), "hello")]


def test_zero_size_message_costs_latency_only(eng):
    fabric = make_fabric(eng, latency=0.5, link_bandwidth=1000.0)
    got = []

    def receiver():
        yield fabric.inbox("b").get()
        got.append(eng.now)

    eng.process(receiver())
    fabric.send(Message(src="a", dst="b", tag="t", size=0))
    eng.run()
    assert got == [pytest.approx(0.5)]


def test_sender_nic_serialises_messages(eng):
    fabric = make_fabric(eng, latency=0.0, link_bandwidth=100.0)
    arrivals = []

    def receiver():
        for _ in range(2):
            msg = yield fabric.inbox("b").get()
            arrivals.append((msg.payload, eng.now))

    eng.process(receiver())
    fabric.send(Message(src="a", dst="b", tag="t", payload=1, size=100))
    fabric.send(Message(src="a", dst="b", tag="t", payload=2, size=100))
    eng.run()
    assert arrivals == [(1, pytest.approx(1.0)), (2, pytest.approx(2.0))]


def test_different_senders_do_not_contend(eng):
    fabric = make_fabric(eng, latency=0.0, link_bandwidth=100.0)
    fabric.add_node("c")
    arrivals = []

    def receiver():
        for _ in range(2):
            msg = yield fabric.inbox("b").get()
            arrivals.append((msg.src, eng.now))

    eng.process(receiver())
    fabric.send(Message(src="a", dst="b", tag="t", size=100))
    fabric.send(Message(src="c", dst="b", tag="t", size=100))
    eng.run()
    assert [t for _, t in arrivals] == [pytest.approx(1.0), pytest.approx(1.0)]


def test_duplicate_node_rejected(eng):
    fabric = Fabric(eng)
    fabric.add_node("x")
    with pytest.raises(NetworkError):
        fabric.add_node("x")


def test_unknown_node_rejected(eng):
    fabric = Fabric(eng)
    with pytest.raises(NetworkError):
        fabric.inbox("ghost")
    fabric.add_node("a")
    with pytest.raises(NetworkError):
        fabric.send(Message(src="a", dst="ghost", tag="t"))


def test_invalid_parameters(eng):
    with pytest.raises(NetworkError):
        Fabric(eng, latency=-1.0)
    with pytest.raises(NetworkError):
        Fabric(eng, link_bandwidth=0.0)


def test_negative_message_size_rejected():
    with pytest.raises(ValueError):
        Message(src="a", dst="b", tag="t", size=-1)


def test_counters(eng):
    fabric = make_fabric(eng)
    fabric.send(Message(src="a", dst="b", tag="t", size=10))
    fabric.send(Message(src="b", dst="a", tag="t", size=20))
    assert fabric.messages_sent == 2
    assert fabric.bytes_sent == 30


def test_message_ids_unique():
    m1 = Message(src="a", dst="b", tag="t")
    m2 = Message(src="a", dst="b", tag="t")
    assert m1.msg_id != m2.msg_id
