"""Tests for fd allocation and directory streams."""

import pytest

from repro.errors import BadFileDescriptor
from repro.posix import FDTable


class TestFds:
    def test_lowest_free_fd_starts_at_three(self):
        table = FDTable()
        assert table.allocate("/fs/a", 0).fd == 3
        assert table.allocate("/fs/b", 0).fd == 4

    def test_closed_fd_is_reused(self):
        table = FDTable()
        table.allocate("/fs/a", 0)
        b = table.allocate("/fs/b", 0)
        table.close(b.fd)
        assert table.allocate("/fs/c", 0).fd == b.fd

    def test_get_unknown_fd_raises(self):
        table = FDTable()
        with pytest.raises(BadFileDescriptor):
            table.get(3)

    def test_double_close_raises(self):
        table = FDTable()
        f = table.allocate("/fs/a", 0)
        table.close(f.fd)
        with pytest.raises(BadFileDescriptor):
            table.close(f.fd)

    def test_open_count_and_fds(self):
        table = FDTable()
        table.allocate("/fs/a", 0)
        table.allocate("/fs/b", 0)
        assert table.open_count == 2
        assert table.open_fds() == [3, 4]

    def test_offsets_are_independent(self):
        table = FDTable()
        a = table.allocate("/fs/same", 0)
        b = table.allocate("/fs/same", 0)
        a.offset = 100
        assert b.offset == 0


class TestDirStreams:
    def test_readdir_iterates_then_none(self):
        table = FDTable()
        d = table.open_dir("/fs", ["a", "b"])
        assert d.next_entry() == "a"
        assert d.next_entry() == "b"
        assert d.next_entry() is None
        assert d.next_entry() is None

    def test_rewind(self):
        table = FDTable()
        d = table.open_dir("/fs", ["a"])
        d.next_entry()
        d.rewind()
        assert d.next_entry() == "a"

    def test_snapshot_isolated_from_caller(self):
        table = FDTable()
        entries = ["a"]
        d = table.open_dir("/fs", entries)
        entries.append("b")
        assert d.entries == ["a"]

    def test_close_dir(self):
        table = FDTable()
        d = table.open_dir("/fs", [])
        table.close_dir(d.handle)
        with pytest.raises(BadFileDescriptor):
            table.get_dir(d.handle)
