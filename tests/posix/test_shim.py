"""Tests for the POSIX shim over the ThemisIO file system."""

import pytest

from repro.errors import (BadFileDescriptor, FileNotFound, InvalidArgument,
                          IsADirectory, PermissionDenied)
from repro.fs import ThemisFS
from repro.posix import (O_APPEND, O_CREAT, O_RDONLY, O_RDWR, O_TRUNC,
                         O_WRONLY, SEEK_CUR, SEEK_END, SEEK_SET,
                         InterposeRegistry, PosixShim, install_interception)


@pytest.fixture
def shim():
    fs = ThemisFS(["bb0", "bb1"], capacity_per_server=1 << 22, stripe_size=64)
    fs.makedirs("/fs/data")
    return PosixShim(fs)


class TestOpenClose:
    def test_open_creates_with_o_creat(self, shim):
        fd = shim.open("/fs/data/new", O_WRONLY | O_CREAT)
        assert fd >= 3
        assert shim.stat("/fs/data/new").size == 0

    def test_open_missing_without_creat_raises(self, shim):
        with pytest.raises(FileNotFound):
            shim.open("/fs/data/ghost", O_RDONLY)

    def test_open_trunc_zeroes_file(self, shim):
        fd = shim.open("/fs/data/f", O_WRONLY | O_CREAT)
        shim.write(fd, b"old contents")
        shim.close(fd)
        fd = shim.open("/fs/data/f", O_WRONLY | O_TRUNC)
        assert shim.stat("/fs/data/f").size == 0
        shim.close(fd)

    def test_open_directory_for_write_rejected(self, shim):
        with pytest.raises(IsADirectory):
            shim.open("/fs/data", O_WRONLY)

    def test_close_invalid_fd(self, shim):
        with pytest.raises(BadFileDescriptor):
            shim.close(99)


class TestReadWrite:
    def test_sequential_write_then_read(self, shim):
        fd = shim.open("/fs/data/f", O_RDWR | O_CREAT)
        assert shim.write(fd, b"hello ") == 6
        assert shim.write(fd, b"world") == 5
        shim.lseek(fd, 0, SEEK_SET)
        assert shim.read(fd, 100) == b"hello world"
        shim.close(fd)

    def test_offset_advances_with_reads(self, shim):
        fd = shim.open("/fs/data/f", O_RDWR | O_CREAT)
        shim.write(fd, b"abcdef")
        shim.lseek(fd, 0, SEEK_SET)
        assert shim.read(fd, 2) == b"ab"
        assert shim.read(fd, 2) == b"cd"

    def test_append_mode_writes_at_eof(self, shim):
        fd = shim.open("/fs/data/log", O_WRONLY | O_CREAT)
        shim.write(fd, b"line1\n")
        shim.close(fd)
        fd = shim.open("/fs/data/log", O_WRONLY | O_APPEND)
        shim.lseek(fd, 0, SEEK_SET)  # append must ignore the seek
        shim.write(fd, b"line2\n")
        shim.close(fd)
        fd = shim.open("/fs/data/log", O_RDONLY)
        assert shim.read(fd, 100) == b"line1\nline2\n"

    def test_read_from_wronly_fd_rejected(self, shim):
        fd = shim.open("/fs/data/f", O_WRONLY | O_CREAT)
        with pytest.raises(BadFileDescriptor):
            shim.read(fd, 1)

    def test_write_to_rdonly_fd_rejected(self, shim):
        shim.open("/fs/data/f", O_WRONLY | O_CREAT)
        fd = shim.open("/fs/data/f", O_RDONLY)
        with pytest.raises(BadFileDescriptor):
            shim.write(fd, b"x")

    def test_negative_read_size_rejected(self, shim):
        fd = shim.open("/fs/data/f", O_RDWR | O_CREAT)
        with pytest.raises(InvalidArgument):
            shim.read(fd, -1)


class TestLseek:
    def test_seek_set_cur_end(self, shim):
        fd = shim.open("/fs/data/f", O_RDWR | O_CREAT)
        shim.write(fd, b"0123456789")
        assert shim.lseek(fd, 2, SEEK_SET) == 2
        assert shim.lseek(fd, 3, SEEK_CUR) == 5
        assert shim.lseek(fd, -1, SEEK_END) == 9
        assert shim.read(fd, 1) == b"9"

    def test_seek_before_start_rejected(self, shim):
        fd = shim.open("/fs/data/f", O_RDWR | O_CREAT)
        with pytest.raises(InvalidArgument):
            shim.lseek(fd, -1, SEEK_SET)

    def test_bad_whence_rejected(self, shim):
        fd = shim.open("/fs/data/f", O_RDWR | O_CREAT)
        with pytest.raises(InvalidArgument):
            shim.lseek(fd, 0, 99)

    def test_seek_past_eof_then_write_leaves_hole(self, shim):
        fd = shim.open("/fs/data/f", O_RDWR | O_CREAT)
        shim.lseek(fd, 5, SEEK_SET)
        shim.write(fd, b"Z")
        shim.lseek(fd, 0, SEEK_SET)
        assert shim.read(fd, 6) == b"\x00" * 5 + b"Z"


class TestDirs:
    def test_opendir_readdir_closedir(self, shim):
        for name in ("c", "a", "b"):
            shim.open(f"/fs/data/{name}", O_CREAT | O_WRONLY)
        stream = shim.opendir("/fs/data")
        names = []
        while True:
            entry = shim.readdir(stream)
            if entry is None:
                break
            names.append(entry)
        assert names == ["a", "b", "c"]
        assert shim.closedir(stream) == 0

    def test_mkdir_and_unlink(self, shim):
        shim.mkdir("/fs/newdir")
        assert shim.stat("/fs/newdir").is_dir
        shim.open("/fs/newdir/f", O_CREAT | O_WRONLY)
        assert shim.unlink("/fs/newdir/f") == 0
        with pytest.raises(FileNotFound):
            shim.stat("/fs/newdir/f")


class TestRouting:
    def test_outside_namespace_without_passthrough_rejected(self, shim):
        with pytest.raises(PermissionDenied):
            shim.open("/home/user/file", O_CREAT | O_WRONLY)

    def test_passthrough_serves_outside_paths(self):
        bb = ThemisFS(["bb0"], capacity_per_server=1 << 20)
        bb.mkdir("/fs")
        local = ThemisFS(["local"], capacity_per_server=1 << 20)
        local.makedirs("/home/user")
        shim = PosixShim(bb, passthrough=local)
        fd = shim.open("/home/user/notes", O_CREAT | O_WRONLY)
        shim.write(fd, b"hi")
        assert local.stat("/home/user/notes").size == 2
        assert bb.exists("/home/user/notes") is False

    def test_is_intercepted_path(self, shim):
        assert shim.is_intercepted_path("/fs/data/x")
        assert not shim.is_intercepted_path("/scratch/x")


class TestInterceptionWiring:
    def test_listing1_installed_and_dispatches(self, shim):
        reg = InterposeRegistry()
        install_interception(reg, shim)
        for fn in ["open", "close", "read", "write", "lseek",
                   "opendir", "readdir", "closedir", "stat", "unlink"]:
            assert reg.is_intercepted(fn)
        fd = reg.call("open", "/fs/data/via-interpose", O_CREAT | O_RDWR)
        assert reg.call("write", fd, b"abc") == 3
        reg.call("lseek", fd, 0, SEEK_SET)
        assert reg.call("read", fd, 3) == b"abc"
        assert reg.call("close", fd) == 0
        assert reg.stats("open").intercepted == 1

    def test_default_original_raises(self, shim):
        reg = InterposeRegistry()
        install_interception(reg, shim)
        with pytest.raises(FileNotFound):
            reg.call_original("open", "/etc/passwd", O_RDONLY)
