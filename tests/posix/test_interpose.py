"""Tests for the interception registry (override/trampoline dispatch)."""

import pytest

from repro.errors import ReproError
from repro.posix import InterceptionMode, InterposeRegistry


def make():
    calls = {"replacement": 0, "original": 0}

    def replacement(x):
        calls["replacement"] += 1
        return ("themis", x)

    def original(x):
        calls["original"] += 1
        return ("glibc", x)

    return calls, replacement, original


@pytest.mark.parametrize("mode", list(InterceptionMode))
def test_installed_function_routes_to_replacement(mode):
    calls, repl, orig = make()
    reg = InterposeRegistry(mode)
    reg.install("open", repl, orig)
    assert reg.call("open", 1) == ("themis", 1)
    assert calls == {"replacement": 1, "original": 0}


def test_call_original_bypasses_replacement():
    calls, repl, orig = make()
    reg = InterposeRegistry()
    reg.install("open", repl, orig)
    assert reg.call_original("open", 2) == ("glibc", 2)
    assert calls == {"replacement": 0, "original": 1}


def test_replacement_may_fall_back_to_original():
    reg = InterposeRegistry(InterceptionMode.TRAMPOLINE)

    def orig(path):
        return ("real", path)

    def repl(path):
        if path.startswith("/fs/"):
            return ("themis", path)
        return reg.call_original("open", path)

    reg.install("open", repl, orig)
    assert reg.call("open", "/fs/x") == ("themis", "/fs/x")
    assert reg.call("open", "/home/x") == ("real", "/home/x")


def test_duplicate_install_rejected():
    _, repl, orig = make()
    reg = InterposeRegistry()
    reg.install("read", repl, orig)
    with pytest.raises(ReproError):
        reg.install("read", repl, orig)


def test_unhooked_call_rejected():
    reg = InterposeRegistry()
    with pytest.raises(ReproError):
        reg.call("write", 1)
    with pytest.raises(ReproError):
        reg.call_original("write", 1)


def test_uninstall():
    _, repl, orig = make()
    reg = InterposeRegistry()
    reg.install("close", repl, orig)
    reg.uninstall("close")
    assert not reg.is_intercepted("close")
    with pytest.raises(ReproError):
        reg.uninstall("close")


def test_stats_track_both_paths():
    _, repl, orig = make()
    reg = InterposeRegistry()
    reg.install("lseek", repl, orig)
    reg.call("lseek", 0)
    reg.call("lseek", 0)
    reg.call_original("lseek", 0)
    stats = reg.stats("lseek")
    assert (stats.intercepted, stats.passed_through) == (2, 1)


def test_intercepted_functions_sorted():
    _, repl, orig = make()
    reg = InterposeRegistry()
    reg.install("write", repl, orig)
    reg.install("open", repl, orig)
    assert reg.intercepted_functions() == ["open", "write"]
