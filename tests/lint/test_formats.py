"""SARIF and GitHub-annotation renderers, unit and end-to-end."""

import json
import textwrap

from repro.lint.core import Finding, Severity, all_rules
from repro.lint.formats import FORMATS, to_github, to_sarif
from repro.lint.runner import main


def sample_findings():
    return [
        Finding(rule="DET002", severity=Severity.ERROR,
                path="src/demo/hazard.py", line=4, col=11,
                message="ad-hoc generator"),
        Finding(rule="PERF101", severity=Severity.ADVISORY,
                path="src/demo/slow.py", line=9, col=0,
                message="50% of hot-path, consider __slots__"),
    ]


def test_formats_tuple_is_the_cli_contract():
    assert FORMATS == ("text", "sarif", "github")


def test_sarif_structure_and_level_mapping():
    log = to_sarif(sample_findings(), all_rules())
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert {"DET002", "PROTO101", "TRACE101", "DET007"} <= rule_ids
    results = run["results"]
    assert results[0]["level"] == "error"
    assert results[1]["level"] == "note"
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 4
    assert region["startColumn"] == 12  # ast col 11 -> SARIF 1-based


def test_sarif_is_json_serialisable():
    json.dumps(to_sarif(sample_findings(), all_rules()))


def test_github_annotations_escape_and_map_severity():
    findings = [Finding(rule="SIM001", severity=Severity.WARNING,
                        path="src/a.py", line=3, col=2,
                        message="50% risk\nsecond line")]
    (line,) = to_github(findings)
    assert line.startswith("::warning file=src/a.py,line=3,col=3,"
                          "title=SIM001::")
    assert "\n" not in line and "%0A" in line
    assert "50%25 risk" in line


def test_cli_sarif_output_end_to_end(tmp_path, monkeypatch):
    pkg = tmp_path / "src" / "demo"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "hazard.py").write_text(textwrap.dedent("""
        import numpy as np

        def bad():
            return np.random.default_rng(0).random()
    """))
    monkeypatch.chdir(tmp_path)
    out = tmp_path / "lint.sarif"
    code = main([str(tmp_path / "src"), "--no-baseline", "--no-cache",
                 "--format", "sarif", "--output", str(out)])
    assert code == 1
    log = json.loads(out.read_text())
    results = log["runs"][0]["results"]
    assert any(r["ruleId"] == "DET002" for r in results)


def test_cli_github_format_prints_commands(tmp_path, monkeypatch, capsys):
    pkg = tmp_path / "src" / "demo"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "hazard.py").write_text("import time\n"
                                   "def t():\n"
                                   "    return time.time()\n")
    monkeypatch.chdir(tmp_path)
    code = main([str(tmp_path / "src"), "--no-baseline", "--no-cache",
                 "--format", "github"])
    captured = capsys.readouterr().out
    assert code == 1
    assert "::error " in captured and "title=DET003" in captured
