"""The tree polices itself: ``python -m repro lint src tests`` is clean."""

import os
import subprocess
import sys
from pathlib import Path

from repro.lint import all_rules, lint_paths
from repro.lint.runner import main

ROOT = Path(__file__).resolve().parents[2]


def test_src_and_tests_are_clean():
    result = lint_paths([str(ROOT / "src"), str(ROOT / "tests")])
    failures = [f.render() for f in result.new if f.severity.fails]
    assert not failures, "\n".join(failures)


def test_src_has_no_advisories_either():
    result = lint_paths([str(ROOT / "src")])
    advisories = [f.render() for f in result.new]
    assert not advisories, "\n".join(advisories)


def test_runner_main_exits_zero_on_src():
    assert main([str(ROOT / "src"), "--no-baseline"]) == 0


def test_cli_subcommand_end_to_end():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src", "tests"],
        cwd=str(ROOT), env=env, capture_output=True, text=True,
        timeout=120)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_rule_catalogue_is_complete():
    rules = all_rules()
    ids = [r.id for r in rules]
    assert len(ids) == len(set(ids))
    # The catalogue promised in ISSUE/DESIGN: DET, SIM, PERF, and the
    # whole-program PROTO/TRACE/interprocedural-DET classes.
    assert {"DET001", "DET002", "DET003", "DET004", "DET005",
            "DET006", "DET007",
            "SIM001", "SIM002", "SIM003", "SIM004",
            "PERF101", "PERF102",
            "PROTO101", "PROTO102", "PROTO103",
            "TRACE101", "TRACE102"} <= set(ids)
    for rule in rules:
        assert rule.title and rule.rationale and rule.scopes


def test_rules_demonstrably_fire_on_seeded_hazards():
    """Each historical in-tree hazard (now fixed) still trips its rule."""
    from repro.lint import lint_source

    timeline_79 = ("tv = 0.5 * sum(abs(observed.get(k, 0.0)) "
                   "for k in set(observed) | set(fair_shares))\n")
    assert any(f.rule == "DET004" for f in lint_source(timeline_79))

    bench_rng = ("import numpy as np\n"
                 "us = np.random.default_rng(0).random(5000).tolist()\n")
    assert any(f.rule == "DET002" for f in lint_source(bench_rng))
