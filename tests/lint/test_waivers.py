"""Waiver parsing and suppression semantics."""

from repro.lint import lint_source


def rules_of(findings):
    """The rule ids of *findings* as a set."""
    return {f.rule for f in findings}


class TestWaivers:
    def test_same_line_waiver_suppresses(self):
        src = ("import time\n"
               "x = time.time()  "
               "# lint: disable=DET003 -- host-side metadata only\n")
        assert "DET003" not in rules_of(lint_source(src))

    def test_deleting_waiver_restores_finding(self):
        # The acceptance property: removing a committed waiver makes the
        # original finding fire again.
        src = "import time\nx = time.time()\n"
        assert "DET003" in rules_of(lint_source(src))

    def test_standalone_waiver_covers_next_line(self):
        src = ("import time\n"
               "# lint: disable=DET003 -- stamp for humans, not sim state\n"
               "x = time.time()\n")
        assert "DET003" not in rules_of(lint_source(src))

    def test_waiver_is_rule_specific(self):
        src = ("import time\n"
               "x = time.time()  # lint: disable=DET001 -- wrong rule\n")
        findings = rules_of(lint_source(src))
        assert "DET003" in findings          # not suppressed
        assert "LINT002" in findings         # and the waiver is stale

    def test_multi_rule_waiver(self):
        src = ("import time\n"
               "def f(engine, acc=[]):\n"
               "    # lint: disable=DET003, SIM001 -- fixture exercising both\n"
               "    x = time.time(); time.sleep(1)\n")
        findings = rules_of(lint_source(src))
        assert "DET003" not in findings and "SIM001" not in findings
        assert "SIM003" in findings          # unrelated finding unaffected

    def test_missing_reason_is_error_and_ignored(self):
        src = ("import time\n"
               "x = time.time()  # lint: disable=DET003\n")
        findings = rules_of(lint_source(src))
        assert "LINT001" in findings   # malformed waiver
        assert "DET003" in findings    # and it suppressed nothing

    def test_stale_waiver_reported(self):
        src = "y = 1  # lint: disable=DET004 -- nothing here anymore\n"
        findings = lint_source(src)
        assert rules_of(findings) == {"LINT002"}
        assert findings[0].severity.value == "advisory"

    def test_used_waiver_not_stale(self):
        src = ("import time\n"
               "x = time.time()  # lint: disable=DET003 -- justified\n")
        assert "LINT002" not in rules_of(lint_source(src))
