"""Per-rule fixture tests: one positive and one negative snippet each."""

import pytest

from repro.lint import lint_source

SRC = "src/repro/somewhere/mod.py"      # src scope
TEST = "tests/somewhere/test_mod.py"    # tests scope


def rule_ids(findings):
    """The rule ids of *findings*, order-preserving."""
    return [f.rule for f in findings]


def hits(source, rule, path=SRC):
    """Findings of *rule* for *source* linted as *path*."""
    return [f for f in lint_source(source, path=path, select=[rule])
            if f.rule == rule]


# ------------------------------------------------------------------ DET001
class TestRawRandom:
    def test_import_random_flagged(self):
        assert hits("import random\n", "DET001")

    def test_from_random_flagged(self):
        assert hits("from random import shuffle\n", "DET001")

    def test_numpy_import_clean(self):
        assert not hits("import numpy as np\n", "DET001")

    def test_tests_scope_exempt(self):
        assert not hits("import random\n", "DET001", path=TEST)


# ------------------------------------------------------------------ DET002
class TestAdHocNumpyRng:
    def test_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert hits(src, "DET002")

    def test_bare_default_rng_flagged(self):
        src = ("from numpy.random import default_rng\n"
               "rng = default_rng(7)\n")
        assert hits(src, "DET002")

    def test_legacy_seed_flagged(self):
        src = "import numpy as np\nnp.random.seed(42)\n"
        assert hits(src, "DET002")

    def test_registry_stream_clean(self):
        src = ("from repro.sim.rng import RngRegistry\n"
               "rng = RngRegistry(0).stream('workload.jitter')\n")
        assert not hits(src, "DET002")

    def test_rng_registry_module_exempt(self):
        src = ("import numpy as np\n"
               "g = np.random.Generator(np.random.PCG64(1))\n")
        assert hits(src, "DET002")
        assert not hits(src, "DET002", path="src/repro/sim/rng.py")


# ------------------------------------------------------------------ DET003
class TestWallClock:
    @pytest.mark.parametrize("call", [
        "time.time()", "time.monotonic()", "time.gmtime()",
        "datetime.datetime.now()", "datetime.date.today()",
    ])
    def test_wall_clock_flagged(self, call):
        src = f"import time, datetime\nx = {call}\n"
        assert hits(src, "DET003")

    def test_perf_counter_allowed(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert not hits(src, "DET003")

    def test_engine_now_clean(self):
        assert not hits("t = engine.now\n", "DET003")


# ------------------------------------------------------------------ DET004
class TestUnorderedIteration:
    def test_for_over_set_call_flagged(self):
        src = "for k in set(items):\n    consume(k)\n"
        assert hits(src, "DET004")

    def test_comprehension_over_union_flagged(self):
        src = "tv = sum(d[k] for k in set(a) | set(b))\n"
        assert hits(src, "DET004")

    def test_tracked_name_flagged(self):
        src = ("keys = set(a) | set(b)\n"
               "out = [d[k] for k in keys]\n")
        assert hits(src, "DET004")

    def test_sorted_wrapper_clean(self):
        src = "tv = sum(d[k] for k in sorted(set(a) | set(b)))\n"
        assert not hits(src, "DET004")

    def test_sorted_assignment_clears_taint(self):
        src = ("keys = sorted(set(a) | set(b))\n"
               "out = [d[k] for k in keys]\n")
        assert not hits(src, "DET004")

    def test_list_over_set_flagged(self):
        assert hits("order = list(set(jobs))\n", "DET004")

    def test_dict_iteration_clean(self):
        src = "for k in mapping:\n    consume(k)\n"
        assert not hits(src, "DET004")

    def test_membership_test_clean(self):
        assert not hits("ok = x in set(items)\n", "DET004")

    def test_applies_in_tests_scope(self):
        src = "for k in set(items):\n    consume(k)\n"
        assert hits(src, "DET004", path=TEST)


# ------------------------------------------------------------------ DET005
class TestIdOrdering:
    def test_key_id_flagged(self):
        assert hits("jobs.sort(key=id)\n", "DET005")

    def test_lambda_id_key_flagged(self):
        src = "ordered = sorted(jobs, key=lambda j: id(j))\n"
        assert hits(src, "DET005")

    def test_hash_id_flagged(self):
        assert hits("h = hash(id(job))\n", "DET005")

    def test_stable_key_clean(self):
        src = "ordered = sorted(jobs, key=lambda j: j.job_id)\n"
        assert not hits(src, "DET005")

    def test_repr_id_allowed(self):
        # id() for debugging output is fine; only ordering/hashing is not.
        assert not hits("label = f'<obj at {id(self):#x}>'\n", "DET005")


# ------------------------------------------------------------------ SIM001
class TestBlockingCall:
    def test_time_sleep_flagged(self):
        src = "import time\ndef proc():\n    time.sleep(1)\n"
        assert hits(src, "SIM001")

    def test_bare_sleep_import_flagged(self):
        src = "from time import sleep\nsleep(0.1)\n"
        assert hits(src, "SIM001")

    def test_engine_timeout_clean(self):
        src = "def proc(engine):\n    yield engine.timeout(1.0)\n"
        assert not hits(src, "SIM001")

    def test_tests_scope_exempt(self):
        src = "import time\ntime.sleep(0.01)\n"
        assert not hits(src, "SIM001", path=TEST)


# ------------------------------------------------------------------ SIM002
class TestYieldRace:
    RACE = (
        "def worker(self, engine):\n"
        "    count = self.stats.served\n"
        "    yield engine.timeout(1.0)\n"
        "    self.stats.served = count + 1\n"
    )

    def test_lost_update_flagged(self):
        findings = hits(self.RACE, "SIM002")
        assert findings and findings[0].severity.value == "warning"

    def test_reread_after_yield_clean(self):
        src = (
            "def worker(self, engine):\n"
            "    yield engine.timeout(1.0)\n"
            "    count = self.stats.served\n"
            "    self.stats.served = count + 1\n"
        )
        assert not hits(src, "SIM002")

    def test_augassign_clean(self):
        src = (
            "def worker(self, engine):\n"
            "    yield engine.timeout(1.0)\n"
            "    self.stats.served += 1\n"
        )
        assert not hits(src, "SIM002")

    def test_different_attribute_clean(self):
        src = (
            "def worker(self, engine):\n"
            "    count = self.stats.served\n"
            "    yield engine.timeout(1.0)\n"
            "    self.stats.dropped = count\n"
        )
        assert not hits(src, "SIM002")

    def test_non_generator_clean(self):
        src = (
            "def update(self):\n"
            "    count = self.stats.served\n"
            "    self.stats.served = count + 1\n"
        )
        assert not hits(src, "SIM002")


# ------------------------------------------------------------------ SIM003
class TestMutableDefault:
    def test_list_literal_flagged(self):
        assert hits("def f(x, acc=[]):\n    pass\n", "SIM003")

    def test_dict_call_flagged(self):
        assert hits("def f(x, table=dict()):\n    pass\n", "SIM003")

    def test_kwonly_default_flagged(self):
        assert hits("def f(*, acc={}):\n    pass\n", "SIM003")

    def test_none_default_clean(self):
        assert not hits("def f(x, acc=None):\n    pass\n", "SIM003")

    def test_tuple_default_clean(self):
        assert not hits("def f(x, acc=()):\n    pass\n", "SIM003")

    def test_applies_in_tests_scope(self):
        assert hits("def f(acc=[]):\n    pass\n", "SIM003", path=TEST)


# ------------------------------------------------------------------ SIM004
class TestWorkerBoundary:
    def test_fork_context_flagged(self):
        src = ("import multiprocessing\n"
               "ctx = multiprocessing.get_context('fork')\n")
        assert hits(src, "SIM004")

    def test_default_context_flagged(self):
        src = ("import multiprocessing\n"
               "ctx = multiprocessing.get_context()\n")
        assert hits(src, "SIM004")

    def test_dynamic_context_flagged(self):
        src = ("import multiprocessing\n"
               "ctx = multiprocessing.get_context(method)\n")
        assert hits(src, "SIM004")

    def test_spawn_context_clean(self):
        src = ("import multiprocessing\n"
               "ctx = multiprocessing.get_context('spawn')\n")
        assert not hits(src, "SIM004")

    def test_set_start_method_fork_flagged(self):
        src = ("import multiprocessing\n"
               "multiprocessing.set_start_method('fork')\n")
        assert hits(src, "SIM004")

    def test_os_fork_flagged(self):
        assert hits("import os\npid = os.fork()\n", "SIM004")

    def test_default_pool_flagged(self):
        src = ("import multiprocessing\n"
               "pool = multiprocessing.Pool(4)\n")
        assert hits(src, "SIM004")

    def test_from_import_pool_flagged(self):
        src = ("from multiprocessing import Pool\n"
               "pool = Pool(4)\n")
        assert hits(src, "SIM004")

    def test_spawn_context_pool_clean(self):
        # The sweep runner's own pattern: context-derived Pool is fine.
        src = ("import multiprocessing\n"
               "ctx = multiprocessing.get_context('spawn')\n"
               "pool = ctx.Pool(4)\n")
        assert not hits(src, "SIM004")

    def test_lambda_worker_flagged(self):
        src = "r = pool.imap_unordered(lambda t: t * 2, tasks)\n"
        assert hits(src, "SIM004")

    def test_bound_method_worker_flagged(self):
        src = "r = pool.apply_async(self._work, (task,))\n"
        assert hits(src, "SIM004")

    def test_toplevel_worker_clean(self):
        src = "r = pool.imap_unordered(worker_fn, tasks)\n"
        assert not hits(src, "SIM004")

    def test_tests_scope_exempt(self):
        src = ("import multiprocessing\n"
               "pool = multiprocessing.Pool(4)\n")
        assert not hits(src, "SIM004", path=TEST)


# ----------------------------------------------------------------- PERF101
class TestMissingSlots:
    HOT = "src/repro/core/tokens.py"
    SLOTLESS = (
        "class Thing:\n"
        "    def __init__(self):\n"
        "        self.a = 1\n"
    )

    def test_hot_module_flagged(self):
        findings = hits(self.SLOTLESS, "PERF101", path=self.HOT)
        assert findings and findings[0].severity.value == "advisory"

    def test_cold_module_clean(self):
        assert not hits(self.SLOTLESS, "PERF101",
                        path="src/repro/harness/report.py")

    def test_slotted_clean(self):
        src = (
            "class Thing:\n"
            "    __slots__ = ('a',)\n"
            "    def __init__(self):\n"
            "        self.a = 1\n"
        )
        assert not hits(src, "PERF101", path=self.HOT)

    def test_exception_class_exempt(self):
        src = (
            "class ThingError(Exception):\n"
            "    def __init__(self, msg):\n"
            "        self.msg = msg\n"
        )
        assert not hits(src, "PERF101", path=self.HOT)

    def test_decorated_class_exempt(self):
        src = (
            "import dataclasses\n"
            "@dataclasses.dataclass\n"
            "class Thing:\n"
            "    a: int = 0\n"
        )
        assert not hits(src, "PERF101", path=self.HOT)


# ----------------------------------------------------------------- PERF102
class TestFloatAccumulation:
    def test_accumulator_flagged(self):
        src = (
            "def total(xs):\n"
            "    acc = 0.0\n"
            "    for x in xs:\n"
            "        acc += x\n"
            "    return acc\n"
        )
        findings = hits(src, "PERF102")
        assert findings and findings[0].severity.value == "advisory"

    def test_int_accumulator_clean(self):
        src = (
            "def total(xs):\n"
            "    acc = 0\n"
            "    for x in xs:\n"
            "        acc += x\n"
            "    return acc\n"
        )
        assert not hits(src, "PERF102")

    def test_fsum_clean(self):
        src = (
            "import math\n"
            "def total(xs):\n"
            "    return math.fsum(xs)\n"
        )
        assert not hits(src, "PERF102")


# ----------------------------------------------------------------- PERF103
class TestListHeadShift:
    HOT = "src/repro/core/scheduler.py"

    def test_pop_zero_flagged(self):
        src = (
            "def drain(queue):\n"
            "    while queue:\n"
            "        handle(queue.pop(0))\n"
        )
        findings = hits(src, "PERF103", path=self.HOT)
        assert findings and findings[0].severity.value == "advisory"

    def test_insert_zero_flagged(self):
        src = "def requeue(queue, item):\n    queue.insert(0, item)\n"
        assert hits(src, "PERF103", path=self.HOT)

    def test_cold_module_clean(self):
        src = "def drain(queue):\n    return queue.pop(0)\n"
        assert not hits(src, "PERF103",
                        path="src/repro/harness/report.py")

    def test_tail_pop_and_append_clean(self):
        src = (
            "def drain(queue, item):\n"
            "    queue.append(item)\n"
            "    queue.pop()\n"
            "    queue.pop(-1)\n"
        )
        assert not hits(src, "PERF103", path=self.HOT)

    def test_nonzero_index_clean(self):
        src = "def mid(queue):\n    return queue.pop(2)\n"
        assert not hits(src, "PERF103", path=self.HOT)

    def test_dict_pop_with_default_clean(self):
        src = "def take(mapping):\n    return mapping.pop(0, None)\n"
        assert not hits(src, "PERF103", path=self.HOT)

    def test_inline_waiver_suppresses(self):
        src = (
            "def take(codes):\n"
            "    # lint: disable=PERF103 -- codes is a 2-entry protocol "
            "list\n"
            "    return codes.pop(0)\n"
        )
        assert not hits(src, "PERF103", path=self.HOT)


# ----------------------------------------------------------------- PERF104
class TestTimerChurn:
    FIXDIR = "tests/lint/fixtures/timerrace"

    def _fixture(self, name):
        import pathlib
        root = pathlib.Path(__file__).resolve().parent / "fixtures"
        return (root / "timerrace" / name).read_text(encoding="utf-8")

    def test_callbacks_remove_flagged_outside_sim(self):
        src = "def forget(ev, cb):\n    ev.callbacks.remove(cb)\n"
        findings = hits(src, "PERF104", path="src/repro/ucx/rpc.py")
        assert findings and findings[0].severity.value == "advisory"

    def test_callbacks_remove_clean_inside_sim(self):
        # The kernel itself implements the detach machinery.
        src = "def forget(ev, cb):\n    ev.callbacks.remove(cb)\n"
        assert not hits(src, "PERF104", path="src/repro/sim/process.py")

    def test_race_timer_flagged(self):
        src = (
            "def call(engine, done):\n"
            "    timer = engine.timeout(1.0)\n"
            "    timer.callbacks.append(lambda _ev: done.fail(None))\n"
            "    return done\n"
        )
        findings = hits(src, "PERF104")
        assert len(findings) == 1
        assert "'timer'" in findings[0].message

    def test_stored_timer_clean(self):
        src = (
            "def call(self, engine, cid, done):\n"
            "    timer = engine.timeout(1.0)\n"
            "    timer.callbacks.append(lambda _ev: done.fail(None))\n"
            "    self._timers[cid] = timer\n"
            "    return done\n"
        )
        assert not hits(src, "PERF104")

    def test_cancelled_timer_clean(self):
        src = (
            "def call(engine, done):\n"
            "    timer = engine.timeout(1.0)\n"
            "    timer.callbacks.append(lambda _ev: done.fail(None))\n"
            "    done.callbacks.append(lambda _ev: timer.cancel())\n"
            "    return done\n"
        )
        assert not hits(src, "PERF104")

    def test_yielded_timer_clean(self):
        src = (
            "def sleep(engine):\n"
            "    timer = engine.timeout(1.0)\n"
            "    timer.callbacks.append(print)\n"
            "    yield timer\n"
        )
        assert not hits(src, "PERF104")

    def test_plain_delay_clean(self):
        src = "def sleep(engine):\n    yield engine.timeout(0.5)\n"
        assert not hits(src, "PERF104")

    def test_timer_passed_to_call_clean(self):
        src = (
            "def call(engine, track, done):\n"
            "    timer = engine.timeout(1.0)\n"
            "    timer.callbacks.append(lambda _ev: done.fail(None))\n"
            "    track(timer)\n"
            "    return done\n"
        )
        assert not hits(src, "PERF104")

    def test_test_scope_exempt(self):
        src = "def forget(ev, cb):\n    ev.callbacks.remove(cb)\n"
        assert not hits(src, "PERF104", path=TEST)

    def test_inline_waiver_suppresses(self):
        src = (
            "def send(engine, deliver):\n"
            "    # lint: disable=PERF104 -- always-fires wire delay\n"
            "    wire = engine.timeout(0.1)\n"
            "    wire.callbacks.append(deliver)\n"
        )
        assert not hits(src, "PERF104")

    def test_fixture_races_flagged(self):
        findings = hits(self._fixture("races.py"), "PERF104",
                        path="src/repro/somewhere/races.py")
        msgs = " | ".join(f.message for f in findings)
        assert len(findings) == 2, msgs
        assert "callbacks.remove" in msgs and "'timer'" in msgs

    def test_fixture_clean_silent(self):
        assert not hits(self._fixture("clean.py"), "PERF104",
                        path="src/repro/somewhere/clean.py")


# ---------------------------------------------------------------- framework
class TestFramework:
    def test_syntax_error_reported(self):
        findings = lint_source("def broken(:\n")
        assert rule_ids(findings) == ["LINT000"]

    def test_select_filters_rules(self):
        src = "import random\nimport time\nx = time.time()\n"
        only = lint_source(src, select=["DET001"])
        assert {f.rule for f in only} == {"DET001"}

    def test_clean_snippet_has_no_findings(self):
        src = (
            "def add(a, b):\n"
            "    '''Sum of a and b.'''\n"
            "    return a + b\n"
        )
        assert lint_source(src) == []

    def test_advisories_do_not_fail(self):
        from repro.lint import Severity
        assert not Severity.ADVISORY.fails
        assert Severity.ERROR.fails and Severity.WARNING.fails
