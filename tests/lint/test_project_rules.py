"""Whole-program rules against the fixture packages.

Each fixture package under ``tests/lint/fixtures/`` seeds one hazard
family (or one documented non-finding). These tests prove every
PROTO/TRACE/DET-interprocedural rule fires where promised and stays
silent where promised — the acceptance bar for trusting a clean sweep
of the real tree.
"""

import ast
from pathlib import Path

from repro.lint.core import Module, ProjectRule, all_rules, rule_by_id
from repro.lint.graph import ProjectIndex, summarize_module

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def fixture_index(package):
    """A ProjectIndex over every module of one fixture package."""
    summaries = []
    for path in sorted((FIXTURES / package).glob("*.py")):
        source = path.read_text(encoding="utf-8")
        module = Module(path=str(path), source=source,
                        tree=ast.parse(source), scope="src")
        summaries.append(summarize_module(module))
    assert summaries, f"no fixture modules in {package}"
    return ProjectIndex(summaries)


def run_rule(rule_id, index):
    cls = rule_by_id(rule_id)
    assert cls is not None
    return list(cls().check_project(index))


def all_project_findings(index):
    out = []
    for rule in all_rules():
        if isinstance(rule, ProjectRule):
            out.extend(rule.check_project(index))
    return out


# ---------------------------------------------------------------- PROTO
def test_proto101_flags_sent_but_unhandled_kind():
    findings = run_rule("PROTO101", fixture_index("protosim"))
    assert len(findings) == 1, [f.render() for f in findings]
    f = findings[0]
    assert "'zap'" in f.message
    assert f.path.endswith("sender.py")


def test_proto102_flags_dead_handler_branch():
    findings = run_rule("PROTO102", fixture_index("protosim"))
    assert len(findings) == 1, [f.render() for f in findings]
    f = findings[0]
    assert "'stale'" in f.message
    assert f.path.endswith("handler.py")


def test_proto103_flags_missing_payload_key():
    findings = run_rule("PROTO103", fixture_index("protosim"))
    assert len(findings) == 1, [f.render() for f in findings]
    f = findings[0]
    assert "'have'" in f.message
    assert "'host'" not in f.message
    assert f.path.endswith("handler.py")


def test_dynamic_dispatch_is_a_documented_non_finding():
    findings = all_project_findings(fixture_index("protodyn"))
    assert not findings, [f.render() for f in findings]


# ---------------------------------------------------------------- TRACE
def test_trace101_flags_toggle_reaching_trace_state():
    findings = run_rule("TRACE101", fixture_index("traclean"))
    assert len(findings) == 1, [f.render() for f in findings]
    f = findings[0]
    assert "_entries" in f.message
    assert "_COALESCE_ENABLED" in f.message


def test_trace101_allows_counter_only_skip_guard():
    # Table.lookup's guard (counter bump + memo read) must not appear.
    findings = run_rule("TRACE101", fixture_index("traclean"))
    lookup_line = None
    source = (FIXTURES / "traclean" / "toggled.py").read_text()
    for i, line in enumerate(source.splitlines(), 1):
        if "key in self._memo" in line:
            lookup_line = i
    assert lookup_line is not None
    assert all(f.line != lookup_line for f in findings)


def test_trace102_flags_rogue_flag_writer():
    findings = run_rule("TRACE102", fixture_index("traclean"))
    assert len(findings) == 1, [f.render() for f in findings]
    assert "'rogue_disable'" in findings[0].message


# ------------------------------------------------------------------ DET
def test_det006_flags_rng_laundered_through_two_hops():
    findings = run_rule("DET006", fixture_index("rnglaund"))
    assert len(findings) == 1, [f.render() for f in findings]
    f = findings[0]
    assert f.path.endswith("middle.py")
    assert "stream_for" in f.message and "fresh_rng" in f.message


def test_det007_flags_bare_iteration_of_imported_set_helper():
    findings = run_rule("DET007", fixture_index("setesc"))
    assert len(findings) == 1, [f.render() for f in findings]
    f = findings[0]
    assert f.path.endswith("consumer.py")
    assert "changed_keys" in f.message


def test_det007_sorted_wrapper_stays_silent():
    findings = run_rule("DET007", fixture_index("setesc"))
    source = (FIXTURES / "setesc" / "consumer.py").read_text()
    sorted_line = next(i for i, line in
                       enumerate(source.splitlines(), 1)
                       if "sorted(" in line)
    assert all(f.line != sorted_line for f in findings)


# ------------------------------------------------- real-tree anchoring
def test_real_tree_protocol_surface_is_modelled():
    """Guard against vacuous cleanliness: the index must actually see
    the tree-sync vocabulary and the perf toggles of the real tree."""
    import os

    from repro.lint.runner import _discover, _parse_module

    root = Path(__file__).resolve().parents[2]
    summaries = []
    for path in _discover([str(root / "src")]):
        rel = os.path.relpath(path, root).replace("\\", "/")
        module, err = _parse_module(rel, open(path).read())
        if err is None:
            summaries.append(summarize_module(module))
    index = ProjectIndex(summaries)

    sent_kinds = set()
    for _fn, _site, kinds, _keys in index.resolved_sends():
        sent_kinds.update(kinds)
    assert {"pull", "push", "tpull", "tpush",
            "register", "heartbeat", "goodbye"} <= sent_kinds

    handled = {br.kind for _fn, br in index.dispatchers()
               if br.kind is not None}
    assert {"pull", "push", "tpull", "tpush",
            "register", "heartbeat", "goodbye"} <= handled

    toggle_names = {flag.name for flag in index.toggles.values()}
    assert {"_DELTA_SYNC_ENABLED", "_GATHER_DELTA_ENABLED",
            "_HASH_SKIP_ENABLED"} <= toggle_names
