"""Baseline round-trip, budgets, and enforcement semantics."""

import json

import pytest

from repro.lint import Baseline, BaselineError
from repro.lint.runner import lint_paths

DIRTY = (
    "\"\"\"Fixture module with two known findings.\"\"\"\n"
    "import time\n"
    "\n"
    "\n"
    "def stamp():\n"
    "    \"\"\"Wall-clock stamp (DET003).\"\"\"\n"
    "    return time.time()\n"
    "\n"
    "\n"
    "def collect(items, acc=[]):\n"
    "    \"\"\"Mutable default (SIM003).\"\"\"\n"
    "    acc.extend(items)\n"
    "    return acc\n"
)


@pytest.fixture()
def dirty_tree(tmp_path):
    """A temp package dir with one file carrying two findings."""
    pkg = tmp_path / "src"
    pkg.mkdir()
    mod = pkg / "mod.py"
    mod.write_text(DIRTY)
    return pkg


def test_findings_without_baseline_fail(dirty_tree):
    result = lint_paths([str(dirty_tree)])
    assert {f.rule for f in result.new} == {"DET003", "SIM003"}
    assert result.exit_code == 1


def test_write_then_load_round_trip(dirty_tree, tmp_path):
    result = lint_paths([str(dirty_tree)])
    path = str(tmp_path / "baseline.json")
    Baseline.from_findings(result.new, result.modules, path=path).save()

    reloaded = Baseline.load(path)
    again = lint_paths([str(dirty_tree)], baseline=reloaded)
    assert again.new == []
    assert {f.rule for f in again.baselined} == {"DET003", "SIM003"}
    assert again.exit_code == 0


def test_deleting_entry_restores_finding(dirty_tree, tmp_path):
    # Acceptance property: removing one baseline entry reproduces the
    # original finding on the next run.
    result = lint_paths([str(dirty_tree)])
    path = str(tmp_path / "baseline.json")
    Baseline.from_findings(result.new, result.modules, path=path).save()

    payload = json.loads(open(path).read())
    removed = [e for e in payload["entries"] if e["rule"] == "DET003"]
    payload["entries"] = [e for e in payload["entries"]
                          if e["rule"] != "DET003"]
    assert removed
    with open(path, "w") as fh:
        json.dump(payload, fh)

    pruned = lint_paths([str(dirty_tree)], baseline=Baseline.load(path))
    assert {f.rule for f in pruned.new} == {"DET003"}
    assert pruned.exit_code == 1


def test_count_budget_limits_occurrences(dirty_tree, tmp_path):
    # Two identical offending lines, budget of one: second is new.
    mod = dirty_tree / "mod2.py"
    mod.write_text("\"\"\"Fixture.\"\"\"\nimport time\n"
                   "a = time.time()\n"
                   "b = time.time()\n")
    result = lint_paths([str(dirty_tree / "mod2.py")])
    det = [f for f in result.new if f.rule == "DET003"]
    assert len(det) == 2
    # Both lines hash differently (a = / b =), so grandfather only one.
    path = str(tmp_path / "baseline.json")
    Baseline.from_findings(det[:1], result.modules, path=path).save()
    again = lint_paths([str(dirty_tree / "mod2.py")],
                       baseline=Baseline.load(path))
    assert len([f for f in again.new if f.rule == "DET003"]) == 1
    assert len([f for f in again.baselined if f.rule == "DET003"]) == 1


def test_fingerprint_survives_line_drift(dirty_tree, tmp_path):
    # Insert unrelated lines above the finding; the baseline still holds
    # because entries match on line content, not line numbers.
    result = lint_paths([str(dirty_tree)])
    path = str(tmp_path / "baseline.json")
    Baseline.from_findings(result.new, result.modules, path=path).save()

    mod = dirty_tree / "mod.py"
    mod.write_text("\"\"\"Doc moved.\"\"\"\n\n\n\n" + "\n".join(
        DIRTY.splitlines()[1:]) + "\n")
    drifted = lint_paths([str(dirty_tree)], baseline=Baseline.load(path))
    assert drifted.new == []
    assert {f.rule for f in drifted.baselined} == {"DET003", "SIM003"}


def test_malformed_baseline_rejected(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"version\": 99}")
    with pytest.raises(BaselineError):
        Baseline.load(str(bad))
    bad.write_text("not json")
    with pytest.raises(BaselineError):
        Baseline.load(str(bad))


def test_load_or_empty_missing_file(tmp_path):
    baseline = Baseline.load_or_empty(str(tmp_path / "absent.json"))
    assert baseline.entries == {}
