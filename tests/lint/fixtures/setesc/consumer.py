"""Iterating the imported set helper.

``apply_all`` iterates the returned set bare -> DET007.
``apply_sorted`` is the documented non-finding: ``sorted(...)`` fixes
the order, so the rule must stay silent.
"""

from .helper import changed_keys


def apply_all(old, new, visit):
    for key in changed_keys(old, new):
        visit(key)


def apply_sorted(old, new, visit):
    for key in sorted(changed_keys(old, new)):
        visit(key)
