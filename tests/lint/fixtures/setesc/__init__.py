"""Set-iteration order escaping across a module boundary."""
