"""The set factory — fine on its own; hazard is at the caller."""


def changed_keys(old, new):
    return set(old) | set(new)
