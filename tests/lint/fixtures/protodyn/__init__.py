"""Dynamic dispatch surface that must produce zero PROTO findings."""
