"""Documented non-finding: dynamic kinds and ``getattr`` dispatch.

The kind is computed at runtime and the handler is resolved by name,
so the analyzer cannot know the vocabulary. Conservative-for-silence
means NO PROTO rule may fire here: a dynamic kind send suppresses
PROTO102 globally, a ``<dynamic>`` kind is never reported as
unhandled, and an unrecognised dispatcher contributes no branches.
"""


class Router:
    KINDS = ("alpha", "beta")

    def __init__(self, rpc):
        self.rpc = rpc

    def send(self, which, host):
        kind = self.KINDS[which]
        return self.rpc.call("sync", {"kind": kind, "host": host})

    def handle(self, rpc):
        target = getattr(self, "on_" + rpc.body["kind"], None)
        if target is not None:
            return target(rpc.body)
        return None

    def on_alpha(self, body):
        return body["host"]

    def on_beta(self, body):
        return -body["host"]
