"""RNG laundering across two helper hops and three modules."""
