"""Hop 2: the draw site — two hops from the construction."""

from .middle import stream_for


def draw(seed):
    rng = stream_for(seed)
    return rng.random()
