"""Hop 1: forwards the generator — per-file rules see nothing wrong.

DET006 anchors here: ``stream_for`` returns the RNG constructed in
``maker.fresh_rng`` instead of a named RngRegistry stream.
"""

from .maker import fresh_rng


def stream_for(seed):
    return fresh_rng(seed)
