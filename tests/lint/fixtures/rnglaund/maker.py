"""Hop 0: constructs the ad-hoc generator (DET002 catches this file)."""

import numpy as np


def fresh_rng(seed):
    return np.random.default_rng(seed)
