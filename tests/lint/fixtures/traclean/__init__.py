"""Toggle trace-purity fixtures: one violation, one rogue writer."""
