"""A perf toggle that leaks into trace-bearing state.

Seeded defects:

* ``Table.ingest`` mutates ``_entries`` (a registered trace-bearing
  attribute) only when the toggle is on -> TRACE101;
* ``rogue_disable`` rebinds the flag without being its ``set_*``
  setter -> TRACE102.

``Table.lookup`` is the documented non-finding: the enabled path only
bumps a perf counter (not trace-bearing) and *skips* work, which the
trace-purity contract allows.
"""

_COALESCE_ENABLED = False


def set_coalesce_enabled(value):
    global _COALESCE_ENABLED
    _COALESCE_ENABLED = bool(value)


def coalesce_enabled():
    return _COALESCE_ENABLED


def rogue_disable():
    global _COALESCE_ENABLED
    _COALESCE_ENABLED = False


class Table:
    def __init__(self):
        self._entries = []
        self._memo = {}
        self.hits = 0

    def ingest(self, item):
        if _COALESCE_ENABLED:
            self._entries.append(item)
            return
        self.deliver(item)

    def lookup(self, key):
        if _COALESCE_ENABLED and key in self._memo:
            self.hits += 1
            return self._memo[key]
        return self.compute(key)

    def deliver(self, item):
        return item

    def compute(self, key):
        return key
