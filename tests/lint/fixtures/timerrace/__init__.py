"""Timer-churn hazards (PERF104): race timers and callback scans."""
