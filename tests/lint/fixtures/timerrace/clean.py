"""Timer shapes PERF104 must stay silent on (conservative-for-silence)."""


def call_tracked(engine, registry, cid, done):
    """The timer escapes into *registry*: whoever holds it can cancel."""
    timer = engine.timeout(1.0)
    timer.callbacks.append(lambda _ev: done.fail(RuntimeError(cid)))
    registry[cid] = timer
    return done


def plain_sleep(engine):
    """A pure delay with no callback attached always fires by design."""
    yield engine.timeout(0.5)


def cancelled_race(engine, done):
    """The loser is cancelled when the completion wins: corpse-free."""
    timer = engine.timeout(1.0)
    timer.callbacks.append(lambda _ev: done.fail(RuntimeError("late")))
    done.callbacks.append(lambda _ev: timer.cancel())
    return done


def yielded_timer(engine):
    """Yielded timers park a process; the kernel consumes them."""
    timer = engine.timeout(2.0)
    timer.callbacks.append(print)
    yield timer
