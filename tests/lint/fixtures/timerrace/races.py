"""Both PERF104 hazard shapes — each line below must be flagged.

Expected findings: the ``callbacks.remove`` scan in :func:`forget` and
the stored-but-never-cancelled expiry timer in :func:`call_with_expiry`.
"""


def forget(event, callback):
    """O(n) scan of a possibly huge callback list."""
    event.callbacks.remove(callback)


def call_with_expiry(engine, op, done):
    """Expiry racing a completion with no handle kept to cancel it:
    when the completion wins, the timer stays queued as a corpse."""
    timer = engine.timeout(1.0)
    timer.callbacks.append(lambda _ev: done.fail(RuntimeError(op)))
    return done
