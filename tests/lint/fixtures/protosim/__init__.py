"""Two-module RPC vocabulary with three seeded protocol defects."""
