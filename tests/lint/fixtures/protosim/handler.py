"""Receive side of the toy sync protocol.

Seeded defects (see sender.py for the send side):

* the ``stale`` branch is dead — no send site produces that kind
  -> PROTO102;
* the ``pull`` branch requires ``have``, which the send omits
  -> PROTO103.
"""


class Hub:
    def handle_sync(self, rpc):
        kind = rpc.body.get("kind")
        if kind == "pull":
            return self._answer(rpc.body["host"], rpc.body["have"])
        elif kind == "stale":
            return self._expire(rpc.body["host"])
        return None

    def _answer(self, host, have):
        return {"host": host, "have": have}

    def _expire(self, host):
        return {"host": host}
