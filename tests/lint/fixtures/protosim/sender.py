"""Send side of the toy sync protocol.

Seeded defects (see handler.py for the receive side):

* the ``zap`` send has no dispatcher branch anywhere -> PROTO101;
* the ``pull`` send carries only ``kind``/``host`` while the handler
  branch also requires ``have`` -> PROTO103 (anchored at the branch).
"""


class Peer:
    def __init__(self, rpc):
        self.rpc = rpc

    def probe(self, host):
        return self.rpc.call("sync", {"kind": "pull", "host": host})

    def zap(self, host):
        return self.rpc.call("sync", {"kind": "zap", "host": host})
