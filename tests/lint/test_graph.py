"""Unit tests for the semantic model in ``repro.lint.graph``."""

import ast
import textwrap

import pytest

from repro.lint.core import Module
from repro.lint.graph import (FileSummary, ProjectIndex,
                              module_dotted_name, summarize_module)


def make_pkg(tmp_path, pkg, **modules):
    """Write a real package dir (with __init__.py) and return its
    per-module summaries keyed by module file stem."""
    pkg_dir = tmp_path / pkg
    pkg_dir.mkdir(parents=True, exist_ok=True)
    (pkg_dir / "__init__.py").write_text("")
    out = {}
    for stem, source in modules.items():
        source = textwrap.dedent(source)
        path = pkg_dir / f"{stem}.py"
        path.write_text(source)
        module = Module(path=str(path), source=source,
                        tree=ast.parse(source), scope="src")
        out[stem] = summarize_module(module)
    return out


def test_module_dotted_name_walks_init_chain(tmp_path):
    inner = tmp_path / "outer" / "inner"
    inner.mkdir(parents=True)
    (tmp_path / "outer" / "__init__.py").write_text("")
    (inner / "__init__.py").write_text("")
    (inner / "mod.py").write_text("")
    assert module_dotted_name(str(inner / "mod.py")) == "outer.inner.mod"
    # no __init__.py above `outer` => chain stops there
    (tmp_path / "loose.py").write_text("")
    assert module_dotted_name(str(tmp_path / "loose.py")) == "loose"


def test_send_site_extraction(tmp_path):
    s = make_pkg(tmp_path, "p", a="""
        class C:
            def go(self, rpc, host):
                rpc.call("sync", {"kind": "pull", "host": host})
    """)["a"]
    fn = s.functions["p.a:C.go"]
    assert len(fn.sends) == 1
    site = fn.sends[0]
    assert site.op == "sync"
    assert site.kind == "pull" and not site.kind_dynamic
    assert set(site.keys) == {"kind", "host"}


def test_dispatch_chain_recorded_once(tmp_path):
    s = make_pkg(tmp_path, "p", h="""
        class H:
            def handle(self, rpc):
                kind = rpc.body.get("kind")
                if kind == "a":
                    self.on_a(rpc.body["x"])
                elif kind == "b":
                    self.on_b()
                else:
                    self.fallback(rpc.body["y"])
    """)["h"]
    fn = s.functions["p.h:H.handle"]
    kinds = [br.kind for br in fn.dispatches]
    assert kinds == ["a", "b", None]
    by_kind = {br.kind: br for br in fn.dispatches}
    assert by_kind["a"].required == ["x"]
    assert by_kind[None].required == ["y"]


def test_toggle_and_guard_extraction(tmp_path):
    s = make_pkg(tmp_path, "p", t="""
        _FAST_ENABLED = True

        def set_fast_enabled(value):
            global _FAST_ENABLED
            _FAST_ENABLED = bool(value)

        def fast_enabled():
            return _FAST_ENABLED

        class C:
            def go(self):
                if not _FAST_ENABLED:
                    self.slow()
                else:
                    self.quick()
    """)["t"]
    flag = next(t for t in s.toggles if t.name == "_FAST_ENABLED")
    assert flag.setter == "p.t:set_fast_enabled"
    assert flag.getter == "p.t:fast_enabled"
    guard = s.functions["p.t:C.go"].guards[0]
    # polarity under `not`: the else-suite is the enabled path
    assert guard.on_calls == ["self.quick"]
    assert guard.off_calls == ["self.slow"]


def test_resolution_self_method_import_and_unresolved(tmp_path):
    mods = make_pkg(tmp_path, "p",
                    util="""
        def helper():
            return 1
    """,
                    main="""
        from .util import helper

        class C:
            def entry(self):
                self.step()
                helper()
                self.missing_method()
                unknown_fn()

            def step(self):
                return 2
    """)
    index = ProjectIndex(mods.values())
    fn = index.functions["p.main:C.entry"]
    assert index.resolve_call(fn, "self.step") == "p.main:C.step"
    assert index.resolve_call(fn, "helper") == "p.util:helper"
    assert index.resolve_call(fn, "self.missing_method") is None
    assert index.resolve_call(fn, "unknown_fn") is None


def test_resolution_through_base_class(tmp_path):
    mods = make_pkg(tmp_path, "p", m="""
        class Base:
            def shared(self):
                return 1

        class Child(Base):
            def entry(self):
                return self.shared()
    """)
    index = ProjectIndex(mods.values())
    fn = index.functions["p.m:Child.entry"]
    assert index.resolve_call(fn, "self.shared") == "p.m:Base.shared"


def test_reachability_closure(tmp_path):
    mods = make_pkg(tmp_path, "p", m="""
        def a():
            b()

        def b():
            c()

        def c():
            return 0

        def island():
            return 1
    """)
    index = ProjectIndex(mods.values())
    reached = index.reachable(["p.m:a"])
    assert {"p.m:a", "p.m:b", "p.m:c"} <= reached
    assert "p.m:island" not in reached


def test_file_summary_round_trips_through_json(tmp_path):
    s = make_pkg(tmp_path, "p", a="""
        _X_ENABLED = False

        def set_x_enabled(v):
            global _X_ENABLED
            _X_ENABLED = bool(v)

        class C:
            def go(self, rpc):
                if _X_ENABLED:
                    self._entries.append(1)
                rpc.call("sync", {"kind": "pull"})
    """)["a"]
    clone = FileSummary.from_dict(s.to_dict())
    assert clone.to_dict() == s.to_dict()
    fn = clone.functions["p.a:C.go"]
    assert fn.sends[0].kind == "pull"
    assert fn.guards[0].toggle == "_X_ENABLED"
    flag = next(t for t in clone.toggles if t.name == "_X_ENABLED")
    assert flag.setter == "p.a:set_x_enabled"


def test_builder_return_keys_union_across_forms(tmp_path):
    mods = make_pkg(tmp_path, "p", m="""
        class C:
            def _encode(self, full):
                msg = {"kind": "push", "host": 1}
                if full:
                    return msg
                return dict(msg, delta=True)

            def send(self, rpc):
                rpc.call("sync", self._encode(True))
    """)
    index = ProjectIndex(mods.values())
    sends = index.resolved_sends()
    assert len(sends) == 1
    _fn, _site, kinds, keys = sends[0]
    assert kinds == ["push"]
    assert {"kind", "host", "delta"} <= set(keys)


@pytest.mark.parametrize("snippet,expect", [
    ("def f():\n    return set(a) | set(b)\n", True),
    ("def f():\n    return {1, 2}\n", True),
    ("def f():\n    return sorted(set(a))\n", False),
    ("def f():\n    return list(a)\n", False),
])
def test_returns_set_detection(tmp_path, snippet, expect):
    pkg = tmp_path / f"rs{abs(hash(snippet)) % 10**6}"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    path = pkg / "m.py"
    path.write_text(snippet)
    module = Module(path=str(path), source=snippet,
                    tree=ast.parse(snippet), scope="src")
    summary = summarize_module(module)
    fn = next(iter(summary.functions.values()))
    assert fn.returns_set is expect
