"""The incremental cache: hits, invalidation, and identical results."""

import json
import textwrap

from repro.lint.cache import LintCache
from repro.lint.runner import lint_paths, main


def write_tree(root):
    pkg = root / "src" / "demo"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "clean.py").write_text(textwrap.dedent("""
        def double(x):
            return 2 * x
    """))
    (pkg / "hazard.py").write_text(textwrap.dedent("""
        import numpy as np

        def bad():
            return np.random.default_rng(0).random()
    """))
    return root / "src"


def test_second_run_is_all_hits_with_identical_findings(tmp_path):
    src = write_tree(tmp_path)
    cache_dir = str(tmp_path / ".lint_cache")

    cold = LintCache(cache_dir)
    first = lint_paths([str(src)], cache=cold)
    assert cold.hits == 0 and cold.misses == len(first.modules)

    warm = LintCache(cache_dir)
    second = lint_paths([str(src)], cache=warm)
    assert warm.misses == 0 and warm.hits == len(second.modules)

    render = lambda r: sorted(f.render() for f in r.new)  # noqa: E731
    assert render(first) == render(second)
    # the hazard is found both cold and warm
    assert any(f.rule == "DET002" for f in second.new)


def test_edited_file_misses_and_unchanged_files_hit(tmp_path):
    src = write_tree(tmp_path)
    cache_dir = str(tmp_path / ".lint_cache")
    lint_paths([str(src)], cache=LintCache(cache_dir))

    (src / "demo" / "clean.py").write_text("def triple(x):\n"
                                           "    return 3 * x\n")
    warm = LintCache(cache_dir)
    result = lint_paths([str(src)], cache=warm)
    assert warm.misses == 1
    assert warm.hits == len(result.modules) - 1


def test_project_rules_see_cache_restored_summaries(tmp_path):
    """The whole-program pass must work even when every per-file
    artifact comes from the cache (modules have no AST then)."""
    pkg = tmp_path / "src" / "toy"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "wire.py").write_text(textwrap.dedent("""
        class Peer:
            def send(self, rpc, host):
                rpc.call("sync", {"kind": "orphan", "host": host})

        class Hub:
            def handle(self, rpc):
                kind = rpc.body.get("kind")
                if kind == "known":
                    return rpc.body["host"]
                return None
    """))
    cache_dir = str(tmp_path / ".lint_cache")
    cold = lint_paths([str(tmp_path / "src")], cache=LintCache(cache_dir))
    warm = lint_paths([str(tmp_path / "src")], cache=LintCache(cache_dir))
    for result in (cold, warm):
        rules = {f.rule for f in result.new}
        assert "PROTO101" in rules and "PROTO102" in rules
    assert sorted(f.render() for f in cold.new) == \
        sorted(f.render() for f in warm.new)


def test_corrupt_entry_is_a_miss_not_an_error(tmp_path):
    src = write_tree(tmp_path)
    cache_dir = tmp_path / ".lint_cache"
    lint_paths([str(src)], cache=LintCache(str(cache_dir)))
    for entry in cache_dir.glob("*.json"):
        entry.write_text("{not json")
    warm = LintCache(str(cache_dir))
    result = lint_paths([str(src)], cache=warm)
    assert warm.hits == 0 and warm.misses == len(result.modules)
    assert any(f.rule == "DET002" for f in result.new)


def test_cli_no_cache_leaves_no_cache_dir(tmp_path, monkeypatch):
    src = write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    code = main([str(src), "--no-baseline", "--no-cache"])
    assert code == 1  # the seeded DET002 hazard fails the run
    assert not (tmp_path / ".lint_cache").exists()


def test_cli_cache_dir_flag_is_respected(tmp_path, monkeypatch):
    src = write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    custom = tmp_path / "custom_cache"
    main([str(src), "--no-baseline", "--cache-dir", str(custom)])
    assert custom.exists() and list(custom.glob("*.json"))
    # entries are valid JSON carrying the schema tag
    payload = json.loads(next(custom.glob("*.json")).read_text())
    assert "schema" in payload and "findings" in payload
