"""Tests for exclusive compute-node allocation."""

import pytest

from repro.batch import NodePool
from repro.errors import ConfigError


class TestNodePool:
    def test_allocate_grants_exclusive_nodes(self):
        pool = NodePool(8)
        a = pool.allocate(1, 3)
        b = pool.allocate(2, 3)
        assert len(a) == 3 and len(b) == 3
        assert not set(a) & set(b)
        assert pool.free_nodes == 2

    def test_over_allocation_returns_none(self):
        pool = NodePool(4)
        pool.allocate(1, 3)
        assert pool.allocate(2, 2) is None
        assert pool.can_fit(1)

    def test_release_returns_nodes(self):
        pool = NodePool(4)
        pool.allocate(1, 4)
        assert pool.release(1) == 4
        assert pool.free_nodes == 4

    def test_double_allocation_rejected(self):
        pool = NodePool(4)
        pool.allocate(1, 1)
        with pytest.raises(ConfigError):
            pool.allocate(1, 1)

    def test_release_without_allocation_rejected(self):
        with pytest.raises(ConfigError):
            NodePool(4).release(9)

    def test_utilization(self):
        pool = NodePool(10)
        pool.allocate(1, 5)
        assert pool.utilization() == 0.5
        assert pool.busy_nodes == 5

    def test_holding(self):
        pool = NodePool(4)
        granted = pool.allocate(1, 2)
        assert pool.holding(1) == set(granted)
        assert pool.holding(2) == set()

    def test_invalid(self):
        with pytest.raises(ConfigError):
            NodePool(0)
        with pytest.raises(ConfigError):
            NodePool(4).allocate(1, 0)
