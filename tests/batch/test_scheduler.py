"""Tests for the batch scheduler: queueing, backfill, lifecycle metrics,
and the interaction with the burst buffer."""

import pytest

from repro.batch import BatchScheduler, JobState
from repro.bb import Cluster, ClusterConfig
from repro.errors import ConfigError
from repro.units import MB
from repro.workloads import ApplicationWorkload, AppProfile, JobSpec


def app(steps=3, compute=0.05, io_bytes=2 * MB):
    return ApplicationWorkload(AppProfile(
        name="batchapp", nodes=1, steps=steps, compute_per_step=compute,
        io_every=1, io_bytes=io_bytes, io_request=MB, io_op="write"))


def make(n_nodes=8, backfill=True, policy="size-fair"):
    cluster = Cluster(ClusterConfig(n_servers=1, policy=policy))
    return BatchScheduler(cluster, n_compute_nodes=n_nodes,
                          backfill=backfill)


def spec(jid, nodes=1):
    return JobSpec(job_id=jid, user=f"u{jid}", nodes=nodes)


class TestLifecycle:
    def test_job_runs_and_completes(self):
        sched = make()
        job = sched.submit(spec(1), app(), submit_time=0.0)
        sched.run(until=10.0)
        assert job.state is JobState.DONE
        assert job.wait_time == pytest.approx(0.0)
        assert job.runtime > 0.1  # 3 steps of 50 ms compute
        assert sched.pool.free_nodes == 8  # nodes returned

    def test_submit_time_respected(self):
        sched = make()
        job = sched.submit(spec(1), app(), submit_time=1.0)
        sched.run(until=10.0)
        assert job.start_time == pytest.approx(1.0, abs=0.01)

    def test_job_waits_for_nodes(self):
        sched = make(n_nodes=2)
        first = sched.submit(spec(1, nodes=2), app(steps=4), submit_time=0.0)
        second = sched.submit(spec(2, nodes=2), app(steps=1), submit_time=0.0)
        sched.run(until=10.0)
        assert second.start_time >= first.end_time
        assert second.wait_time > 0.1

    def test_oversized_job_rejected(self):
        sched = make(n_nodes=4)
        with pytest.raises(ConfigError):
            sched.submit(spec(1, nodes=8), app())

    def test_duplicate_ids_rejected(self):
        sched = make()
        sched.submit(spec(1), app())
        with pytest.raises(ConfigError):
            sched.submit(spec(1), app())


class TestBackfill:
    def layout(self, backfill):
        # 4 nodes: job1 takes 3 (long), job2 wants 4 (blocked),
        # job3 wants 1 (can backfill around job2).
        sched = make(n_nodes=4, backfill=backfill)
        j1 = sched.submit(spec(1, nodes=3), app(steps=6), submit_time=0.0)
        j2 = sched.submit(spec(2, nodes=4), app(steps=1), submit_time=0.01)
        j3 = sched.submit(spec(3, nodes=1), app(steps=1), submit_time=0.02)
        sched.run(until=30.0)
        assert sched.all_done
        return j1, j2, j3

    def test_backfill_lets_small_job_jump(self):
        j1, j2, j3 = self.layout(backfill=True)
        assert j3.start_time < j2.start_time
        assert j3.start_time < j1.end_time  # ran alongside job 1

    def test_strict_fcfs_blocks_behind_head(self):
        j1, j2, j3 = self.layout(backfill=False)
        assert j3.start_time >= j2.start_time


class TestWalltime:
    def test_open_ended_workload_stops_at_walltime(self):
        from repro.workloads import IopsWriteRead
        sched = make()
        job = sched.submit(spec(1), IopsWriteRead(file_size=MB,
                                                  streams_per_node=2),
                           submit_time=0.0, walltime=0.3)
        sched.run(until=5.0)
        assert job.state is JobState.DONE
        assert job.runtime == pytest.approx(0.3, abs=0.05)

    def test_stuck_job_is_killed_at_walltime(self):
        # A fixed-step app that would run ~5 s gets a 0.2 s limit.
        sched = make()
        job = sched.submit(spec(1), app(steps=100, compute=0.05),
                           submit_time=0.0, walltime=0.2)
        sched.run(until=5.0)
        assert job.state is JobState.DONE
        assert job.timed_out
        assert job.runtime < 0.5
        assert sched.pool.free_nodes == 8  # nodes reclaimed

    def test_killed_job_frees_nodes_for_queue(self):
        sched = make(n_nodes=1)
        hog = sched.submit(spec(1), app(steps=1000, compute=0.05),
                           submit_time=0.0, walltime=0.2)
        waiter = sched.submit(spec(2), app(steps=1), submit_time=0.0)
        sched.run(until=10.0)
        assert hog.timed_out
        assert waiter.state is JobState.DONE
        assert waiter.start_time >= hog.end_time

    def test_invalid_walltime(self):
        sched = make()
        with pytest.raises(ConfigError):
            sched.submit(spec(1), app(), walltime=0.0)


class TestMetrics:
    def test_makespan_and_turnaround(self):
        sched = make(n_nodes=2)
        sched.submit(spec(1, nodes=2), app(steps=2), submit_time=0.0)
        sched.submit(spec(2, nodes=2), app(steps=2), submit_time=0.0)
        sched.run(until=30.0)
        assert sched.all_done
        assert sched.makespan() > 0.2  # two serialized ~0.1s+ jobs
        assert sched.mean_turnaround() > 0.1

    def test_metrics_require_completion(self):
        sched = make()
        sched.submit(spec(1), app(steps=100), submit_time=0.0)
        sched.run(until=0.01)
        with pytest.raises(ConfigError):
            sched.makespan()

    def test_jobs_do_io_through_the_burst_buffer(self):
        sched = make()
        sched.submit(spec(1), app(io_bytes=4 * MB), submit_time=0.0)
        sched.run(until=10.0)
        assert sched.cluster.sampler.total_bytes(1) == 3 * 4 * MB
