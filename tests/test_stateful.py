"""Model-based (hypothesis stateful) tests.

Each machine drives a component through random operation sequences while
mirroring them on a trivially correct in-memory model, asserting
equivalence as an invariant. These catch interaction bugs that
single-scenario unit tests miss.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.core import JobInfo, Policy, StatisticalTokenScheduler
from repro.errors import NoSpace
from repro.fs import LogStructuredStore
from repro.posix import FDTable


class FDTableMachine(RuleBasedStateMachine):
    """The fd table against a dict model with lowest-free-fd allocation."""

    def __init__(self):
        super().__init__()
        self.table = FDTable()
        self.model = {}  # fd -> path

    @rule(name=st.text(min_size=1, max_size=6))
    def open_file(self, name):
        open_file = self.table.allocate(f"/fs/{name}", 0)
        expected_fd = 3
        while expected_fd in self.model:
            expected_fd += 1
        assert open_file.fd == expected_fd
        self.model[open_file.fd] = f"/fs/{name}"

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def close_file(self, data):
        fd = data.draw(st.sampled_from(sorted(self.model)))
        self.table.close(fd)
        del self.model[fd]

    @invariant()
    def model_matches(self):
        assert self.table.open_fds() == sorted(self.model)
        for fd, path in self.model.items():
            assert self.table.get(fd).path == path


class LogStoreMachine(RuleBasedStateMachine):
    """The log store against a dict model, with crashes, recovery and GC
    interleaved arbitrarily."""

    keys = Bundle("keys")

    def __init__(self):
        super().__init__()
        self.store = LogStructuredStore(1 << 18, segment_size=1 << 12)
        self.model = {}

    @rule(target=keys, key=st.integers(0, 20))
    def make_key(self, key):
        return key

    @rule(key=keys, value=st.binary(min_size=1, max_size=200))
    def write(self, key, value):
        try:
            self.store.write(key, value)
            self.model[key] = value
        except NoSpace:
            pass  # saturated with live data; model unchanged

    @rule(key=keys)
    def delete(self, key):
        try:
            existed = self.store.delete(key)
            assert existed == (key in self.model)
            self.model.pop(key, None)
        except NoSpace:
            pass

    @rule()
    def gc(self):
        self.store.gc()

    @rule()
    def crash_and_recover(self):
        self.store.crash()
        self.store.recover()

    @invariant()
    def matches_model(self):
        assert self.store.keys() == set(self.model)
        for key, value in self.model.items():
            assert self.store.read(key) == value


class SchedulerConservationMachine(RuleBasedStateMachine):
    """The token scheduler never loses, duplicates, or reorders (within a
    job) requests, under arbitrary enqueue/dequeue/membership churn."""

    def __init__(self):
        super().__init__()
        self.scheduler = StatisticalTokenScheduler(
            Policy.parse("size-fair"), np.random.default_rng(0))
        self.seq = 0
        self.pending = {}   # req id -> request
        self.served = set()
        self.last_served_seq = {}  # job -> last sequence number served

    class Req:
        def __init__(self, job_id, seq):
            self.job_id = job_id
            self.cost = 1.0
            self.seq = seq
            self.rid = (job_id, seq)

    @rule(job=st.integers(1, 5))
    def enqueue(self, job):
        self.seq += 1
        request = self.Req(job, self.seq)
        self.scheduler.enqueue(request, 0.0)
        self.pending[request.rid] = request

    @rule(jobs=st.sets(st.integers(1, 5), min_size=0, max_size=5))
    def membership_change(self, jobs):
        infos = [JobInfo(job_id=j, user=f"u{j}", size=j) for j in sorted(jobs)]
        self.scheduler.on_jobs_changed(infos, 0.0)

    @rule()
    def dequeue(self):
        request = self.scheduler.dequeue(0.0)
        if request is None:
            assert self.scheduler.backlog == 0
            return
        assert request.rid in self.pending, "duplicated or fabricated request"
        del self.pending[request.rid]
        self.served.add(request.rid)
        # FIFO within a job: sequence numbers increase per job.
        last = self.last_served_seq.get(request.job_id, -1)
        assert request.seq > last
        self.last_served_seq[request.job_id] = request.seq

    @invariant()
    def conservation(self):
        assert self.scheduler.backlog == len(self.pending)


TestFDTableMachine = FDTableMachine.TestCase
TestLogStoreMachine = LogStoreMachine.TestCase
TestSchedulerConservationMachine = SchedulerConservationMachine.TestCase

for case in (TestFDTableMachine, TestLogStoreMachine,
             TestSchedulerConservationMachine):
    case.settings = settings(max_examples=30, stateful_step_count=40,
                             deadline=None)
