"""Smoke tests: every example script runs to completion.

The slow examples are exercised at reduced scale by monkeypatching
their scale constants where available; the cheap ones run as-is.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_script(name, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "policy_composition.py",
            "interference_study.py", "posix_shim.py",
            "lambda_sync.py", "fault_tolerance.py",
            "cluster_simulation.py"} <= names


def test_fault_tolerance_example():
    result = run_script("fault_tolerance.py", timeout=60)
    assert result.returncode == 0, result.stderr
    assert "byte-for-byte intact" in result.stdout


def test_collective_io_example():
    result = run_script("collective_io.py", timeout=60)
    assert result.returncode == 0, result.stderr
    assert "request-count reduction" in result.stdout


@pytest.mark.slow
def test_cluster_simulation_example():
    result = run_script("cluster_simulation.py")
    assert result.returncode == 0, result.stderr
    assert "makespan" in result.stdout


def test_posix_shim_example():
    result = run_script("posix_shim.py", timeout=60)
    assert result.returncode == 0, result.stderr
    assert "intercepted functions" in result.stdout
    assert "burst buffer untouched: True" in result.stdout


def test_quickstart_example():
    result = run_script("quickstart.py", timeout=120)
    assert result.returncode == 0, result.stderr
    assert "sharing ratio" in result.stdout


@pytest.mark.slow
def test_policy_composition_example():
    result = run_script("policy_composition.py")
    assert result.returncode == 0, result.stderr
    assert "group-user-size-fair" in result.stdout
    assert "job5" in result.stdout


@pytest.mark.slow
def test_interference_study_example():
    result = run_script("interference_study.py")
    assert result.returncode == 0, result.stderr
    assert "size-fair removed" in result.stdout


@pytest.mark.slow
def test_lambda_sync_example():
    result = run_script("lambda_sync.py")
    assert result.returncode == 0, result.stderr
    assert "globally fair from interval" in result.stdout
