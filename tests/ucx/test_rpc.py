"""Tests for the RPC layer over UCP workers."""

import pytest

from repro.errors import RpcTimeout, UCXError
from repro.net import Fabric
from repro.sim import Engine
from repro.ucx import RpcClient, RpcServer, UCPContext


@pytest.fixture
def env():
    eng = Engine()
    fabric = Fabric(eng, latency=0.001, link_bandwidth=1e9)
    ctx_c = UCPContext(eng, fabric, "client-node")
    ctx_s = UCPContext(eng, fabric, "server-node")
    cw = ctx_c.create_worker("cw")
    sw = ctx_s.create_worker("sw")
    return eng, cw, sw


def test_call_and_immediate_reply(env):
    eng, cw, sw = env
    RpcServer(sw, lambda req: req.reply({"echo": req.body}))
    client = RpcClient(cw, sw.address)
    got = []

    def proc():
        resp = yield client.call("echo", body="ping")
        got.append(resp)

    eng.process(proc())
    eng.run()
    assert got == [{"echo": "ping"}]


def test_deferred_reply_after_processing(env):
    eng, cw, sw = env
    pending = []
    RpcServer(sw, pending.append)

    def server_side():
        yield eng.timeout(1.0)  # simulated processing delay
        pending[0].reply("done")

    client = RpcClient(cw, sw.address)
    got = []

    def proc():
        resp = yield client.call("work")
        got.append((eng.now, resp))

    eng.process(proc())
    eng.process(server_side())
    eng.run()
    assert got[0][1] == "done"
    assert got[0][0] >= 1.0


def test_concurrent_calls_correlate_correctly(env):
    eng, cw, sw = env

    def handler(req):
        # Reply out of order: later calls answered first.
        def replier():
            yield eng.timeout(1.0 / req.body)
            req.reply(req.body * 10)

        eng.process(replier())

    RpcServer(sw, handler)
    client = RpcClient(cw, sw.address)
    got = {}

    def proc(n):
        resp = yield client.call("op", body=n)
        got[n] = resp

    for n in (1, 2, 3):
        eng.process(proc(n))
    eng.run()
    assert got == {1: 10, 2: 20, 3: 30}


def test_request_size_adds_serialisation_delay():
    eng = Engine()
    fabric = Fabric(eng, latency=0.0, link_bandwidth=100.0)
    ctx_c = UCPContext(eng, fabric, "c")
    ctx_s = UCPContext(eng, fabric, "s")
    cw = ctx_c.create_worker("w")
    sw = ctx_s.create_worker("w")
    RpcServer(sw, lambda req: req.reply("ok"))
    client = RpcClient(cw, sw.address)
    done = []

    def proc():
        yield client.call("write", body=None, size=200)  # 2 s on the wire
        done.append(eng.now)

    eng.process(proc())
    eng.run()
    assert done[0] >= 2.0


def test_duplicate_reply_rejected(env):
    eng, cw, sw = env
    seen = []
    RpcServer(sw, seen.append)
    client = RpcClient(cw, sw.address)

    def proc():
        yield client.call("x")

    eng.process(proc())
    eng.run(until=0.01)
    req = seen[0]
    req.reply("once")
    with pytest.raises(UCXError):
        req.reply("twice")


def test_in_flight_tracking(env):
    eng, cw, sw = env
    pending = []
    RpcServer(sw, pending.append)
    client = RpcClient(cw, sw.address)

    def proc():
        yield client.call("x")

    eng.process(proc())
    eng.run(until=0.01)
    assert client.in_flight == 1
    pending[0].reply()
    eng.run()
    assert client.in_flight == 0


def test_server_counts_calls(env):
    eng, cw, sw = env
    server = RpcServer(sw, lambda req: req.reply())
    client = RpcClient(cw, sw.address)

    def proc():
        yield client.call("a")
        yield client.call("b")

    eng.process(proc())
    eng.run()
    assert server.calls_received == 2


class TestTimeouts:
    def test_unanswered_call_times_out(self, env):
        eng, cw, sw = env
        RpcServer(sw, lambda req: None)  # never replies
        client = RpcClient(cw, sw.address)
        caught = []

        def proc():
            try:
                yield client.call("x", timeout=0.5)
            except RpcTimeout as exc:
                caught.append((eng.now, str(exc)))

        eng.process(proc())
        eng.run()
        assert caught and caught[0][0] == pytest.approx(0.5)
        assert "timed out" in caught[0][1]
        assert client.timeouts == 1
        assert client.in_flight == 0

    def test_reply_before_deadline_wins(self, env):
        eng, cw, sw = env
        RpcServer(sw, lambda req: req.reply("fast"))
        client = RpcClient(cw, sw.address)
        got = []

        def proc():
            got.append((yield client.call("x", timeout=5.0)))

        eng.process(proc())
        eng.run()
        assert got == ["fast"]
        assert client.timeouts == 0

    def test_late_reply_after_timeout_is_unmatched(self, env):
        eng, cw, sw = env
        pending = []
        RpcServer(sw, pending.append)

        def slow_replier():
            yield eng.timeout(1.0)
            pending[0].reply("too late")

        client = RpcClient(cw, sw.address)
        outcome = []

        def proc():
            try:
                yield client.call("x", timeout=0.2)
            except RpcTimeout:
                outcome.append("timeout")

        eng.process(proc())
        eng.process(slow_replier())
        eng.run()
        # The call failed at 0.2 s; the 1 s reply found no pending call
        # and was absorbed, not raised into anyone's process.
        assert outcome == ["timeout"]
        assert client.unmatched_responses == 1

    def test_no_timeout_keeps_legacy_behaviour(self, env):
        eng, cw, sw = env
        pending = []
        RpcServer(sw, pending.append)
        client = RpcClient(cw, sw.address)
        got = []

        def proc():
            got.append((yield client.call("x")))

        eng.process(proc())
        eng.run(until=10.0)
        assert got == []            # still waiting, no spurious failure
        pending[0].reply("eventually")
        eng.run()
        assert got == ["eventually"]
