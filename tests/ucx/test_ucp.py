"""Tests for UCP contexts, workers, endpoints, and pools."""

import pytest

from repro.errors import UCXError
from repro.net import Fabric
from repro.sim import Engine
from repro.ucx import UCPContext, WorkerPool


@pytest.fixture
def env():
    eng = Engine()
    fabric = Fabric(eng, latency=0.001, link_bandwidth=1e9)
    ctx_a = UCPContext(eng, fabric, "node-a")
    ctx_b = UCPContext(eng, fabric, "node-b")
    return eng, fabric, ctx_a, ctx_b


class TestWorker:
    def test_endpoint_send_and_recv(self, env):
        eng, _, ctx_a, ctx_b = env
        wa = ctx_a.create_worker("w")
        wb = ctx_b.create_worker("w")
        got = []

        def receiver():
            msg = yield wb.recv("greet")
            got.append(msg.payload)

        eng.process(receiver())
        ep = wa.create_endpoint(wb.address)
        ep.send("greet", payload="hi", size=8)
        eng.run()
        assert got == ["hi"]

    def test_push_handler_receives(self, env):
        eng, _, ctx_a, ctx_b = env
        wa = ctx_a.create_worker("w")
        wb = ctx_b.create_worker("w")
        got = []
        wb.on("data", lambda msg: got.append(msg.payload))
        wa.create_endpoint(wb.address).send("data", payload=42)
        eng.run()
        assert got == [42]

    def test_handler_drains_queued_messages(self, env):
        eng, _, ctx_a, ctx_b = env
        wa = ctx_a.create_worker("w")
        wb = ctx_b.create_worker("w")
        ep = wa.create_endpoint(wb.address)
        ep.send("late", payload=1)
        ep.send("late", payload=2)
        eng.run()
        got = []
        wb.on("late", lambda msg: got.append(msg.payload))
        assert got == [1, 2]

    def test_tag_isolation(self, env):
        eng, _, ctx_a, ctx_b = env
        wa = ctx_a.create_worker("w")
        wb = ctx_b.create_worker("w")
        got = []

        def receiver():
            msg = yield wb.recv("wanted")
            got.append(msg.payload)

        eng.process(receiver())
        ep = wa.create_endpoint(wb.address)
        ep.send("other", payload="no")
        ep.send("wanted", payload="yes")
        eng.run()
        assert got == ["yes"]

    def test_messages_to_closed_worker_dropped(self, env):
        eng, _, ctx_a, ctx_b = env
        wa = ctx_a.create_worker("w")
        wb = ctx_b.create_worker("w")
        ep = wa.create_endpoint(wb.address)
        wb.close()
        ep.send("x", payload=1)
        eng.run()
        assert len(ctx_b.dropped) == 1
        assert ctx_b.dropped_count == 1

    def test_dropped_ring_is_bounded(self, env):
        # The diagnostic ring keeps the last 64 messages; the counter
        # keeps the true total (long fault runs must not grow memory).
        eng, _, ctx_a, ctx_b = env
        wa = ctx_a.create_worker("w")
        wb = ctx_b.create_worker("w")
        ep = wa.create_endpoint(wb.address)
        wb.close()
        for i in range(200):
            ep.send("x", payload=i)
        eng.run()
        assert ctx_b.dropped_count == 200
        assert len(ctx_b.dropped) == 64
        assert [m.payload for m in ctx_b.dropped] == list(range(136, 200))

    def test_downed_context_drops_and_counts(self, env):
        eng, _, ctx_a, ctx_b = env
        wa = ctx_a.create_worker("w")
        wb = ctx_b.create_worker("w")
        got = []
        wb.on("data", lambda msg: got.append(msg.payload))
        ctx_b.down = True
        wa.create_endpoint(wb.address).send("data", payload=1)
        eng.run()
        assert got == []
        assert ctx_b.dropped_count == 1
        # Back up: traffic flows again.
        ctx_b.down = False
        wa.create_endpoint(wb.address).send("data", payload=2)
        eng.run()
        assert got == [2]

    def test_closed_worker_rejects_use(self, env):
        _, _, ctx_a, _ = env
        w = ctx_a.create_worker("w")
        w.close()
        with pytest.raises(UCXError):
            w.recv("t")
        with pytest.raises(UCXError):
            w.create_endpoint(("node-b", "w"))

    def test_duplicate_worker_name_rejected(self, env):
        _, _, ctx_a, _ = env
        ctx_a.create_worker("w")
        with pytest.raises(UCXError):
            ctx_a.create_worker("w")

    def test_duplicate_handler_rejected(self, env):
        _, _, ctx_a, _ = env
        w = ctx_a.create_worker("w")
        w.on("t", lambda m: None)
        with pytest.raises(UCXError):
            w.on("t", lambda m: None)

    def test_two_workers_one_node_are_isolated(self, env):
        eng, _, ctx_a, ctx_b = env
        wa = ctx_a.create_worker("w")
        w1 = ctx_b.create_worker("one")
        w2 = ctx_b.create_worker("two")
        got = {"one": [], "two": []}
        w1.on("t", lambda m: got["one"].append(m.payload))
        w2.on("t", lambda m: got["two"].append(m.payload))
        wa.create_endpoint(w1.address).send("t", payload="for-one")
        wa.create_endpoint(w2.address).send("t", payload="for-two")
        eng.run()
        assert got == {"one": ["for-one"], "two": ["for-two"]}


class TestWorkerPool:
    def test_round_robin_assignment(self, env):
        _, _, ctx_a, _ = env
        pool = WorkerPool(ctx_a, "cs-", n_workers=2)
        w1 = pool.assign("client-1")
        w2 = pool.assign("client-2")
        w3 = pool.assign("client-3")
        assert w1 is not w2
        assert w3 is w1  # wraps around: shared worker

    def test_assignment_is_sticky(self, env):
        _, _, ctx_a, _ = env
        pool = WorkerPool(ctx_a, "cs-", n_workers=3)
        assert pool.assign("c") is pool.assign("c")

    def test_release_destroys_mapping(self, env):
        _, _, ctx_a, _ = env
        pool = WorkerPool(ctx_a, "cs-", n_workers=1)
        pool.assign("c")
        assert pool.release("c") is True
        assert pool.lookup("c") is None
        assert pool.release("c") is False

    def test_release_many(self, env):
        _, _, ctx_a, _ = env
        pool = WorkerPool(ctx_a, "cs-", n_workers=2)
        pool.assign("c1")
        pool.assign("c2")
        assert pool.release_many(["c1", "c2", "ghost"]) == 2
        assert pool.mapped_clients == []

    def test_empty_pool_rejected(self, env):
        _, _, ctx_a, _ = env
        with pytest.raises(UCXError):
            WorkerPool(ctx_a, "p-", n_workers=0)
