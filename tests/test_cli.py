"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, main


class TestListing:
    def test_figures_lists_all(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(FIGURES)

    def test_policies_lists_levels(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "group-user-size-fair" in out
        assert "group -> user -> size" in out


class TestFigure:
    def test_runs_a_small_figure(self, capsys):
        assert main(["figure", "fig08a", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "policy=size-fair" in out
        assert "GB/s" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestSharing:
    def test_adhoc_sharing_run(self, capsys):
        assert main(["sharing", "--policy", "job-fair",
                     "--jobs", "2:a,2:b", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "job1" in out and "job2" in out and "total" in out

    def test_bad_jobs_spec_is_an_error(self, capsys):
        assert main(["sharing", "--jobs", "nonsense"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_policy_is_an_error(self, capsys):
        assert main(["sharing", "--policy", "banana-fair",
                     "--jobs", "1:a"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSweep:
    def _spec(self, tmp_path, scale=0.02):
        import json
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "cli-test", "kind": "sharing",
            "base": {"nodes1": 2, "scale": scale, "n_servers": 1,
                     "seed": 0},
            "axes": {"policy": ["job-fair"], "nodes2": [1, 2]}}))
        return str(path)

    def test_spec_file_cold_then_warm(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_REV", "cli-test-rev")
        spec = self._spec(tmp_path)
        ws = str(tmp_path / "ws")
        out_json = str(tmp_path / "run.json")
        assert main(["sweep", spec, "--workspace", ws,
                     "--json", out_json]) == 0
        out = capsys.readouterr().out
        assert "sweep cli-test (sharing): 2 points" in out
        assert "misses 2" in out
        assert main(["sweep", spec, "--workspace", ws]) == 0
        warm = capsys.readouterr().out
        assert "hits 2" in warm and "misses 0" in warm
        import json
        doc = json.load(open(out_json))
        assert doc["points"] == 2 and doc["digest"]

    def test_no_workspace_flag(self, tmp_path, capsys):
        spec = self._spec(tmp_path)
        assert main(["sweep", spec, "--no-workspace"]) == 0
        assert "misses 2" in capsys.readouterr().out

    def test_bad_spec_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["sweep", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--grid", "no-such-grid"])
