"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, main


class TestListing:
    def test_figures_lists_all(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(FIGURES)

    def test_policies_lists_levels(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "group-user-size-fair" in out
        assert "group -> user -> size" in out


class TestFigure:
    def test_runs_a_small_figure(self, capsys):
        assert main(["figure", "fig08a", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "policy=size-fair" in out
        assert "GB/s" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestSharing:
    def test_adhoc_sharing_run(self, capsys):
        assert main(["sharing", "--policy", "job-fair",
                     "--jobs", "2:a,2:b", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "job1" in out and "job2" in out and "total" in out

    def test_bad_jobs_spec_is_an_error(self, capsys):
        assert main(["sharing", "--jobs", "nonsense"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_policy_is_an_error(self, capsys):
        assert main(["sharing", "--policy", "banana-fair",
                     "--jobs", "1:a"]) == 2
        assert "error:" in capsys.readouterr().err
