"""Hierarchical λ-sync: the k-ary aggregation tree (DESIGN.md §13).

The tree restructures the flat gather→merge→scatter epoch so per-node
peak fan-in is bounded by the branching factor and the root's inbound
gather bytes stop scaling with N, while merging exactly the same
content per epoch — flat and tree must produce identical per-epoch
digest sequences. Also covered here: the gather-direction per-peer
basis deltas (useful to the flat round on their own) and the
cluster-quiescence whole-round skip with its content-hash guard.
"""

import pytest

from repro.bb import Cluster, ClusterConfig, ServerConfig
from repro.bb.controller import (set_sync_delta_enabled,
                                 set_sync_gather_delta_enabled,
                                 subtree_height,
                                 sync_gather_delta_enabled,
                                 tree_children, tree_order)
from repro.core import JobInfo
from repro.errors import ConfigError
from repro.units import GB, MB


def _run_cluster(*, fanout=0, quiescence=False, seed=0, until=6.0,
                 n_servers=3, n_jobs=4, writes=12):
    cluster = Cluster(ClusterConfig(
        n_servers=n_servers, policy="job-fair", seed=seed,
        server=ServerConfig(bandwidth=1 * GB, n_workers=2,
                            batched_sync=True,
                            sync_tree_fanout=fanout,
                            sync_quiescence_skip=quiescence)))
    cluster.fs.makedirs("/fs/d")
    engine = cluster.engine

    def app(client, idx):
        yield from client.register_all()
        path = f"/fs/d/f{idx}"
        yield from client.create(path)
        for _ in range(writes):
            yield from client.write(path, 0, 1 * MB)

    for idx in range(n_jobs):
        client = cluster.add_client(
            JobInfo(job_id=idx + 1, user=f"u{idx % 2}", size=idx + 1))
        engine.process(app(client, idx))
    cluster.run(until=until)
    return cluster


def _sync_only_cluster(*, fanout=0, quiescence=False, n_servers=6,
                       until=5.0, n_jobs=0):
    # No clients: every fabric message is λ-sync traffic. Optional
    # pre-seeded job entries make the snapshots non-trivial without
    # introducing any timing interplay with client traffic.
    cluster = Cluster(ClusterConfig(
        n_servers=n_servers, policy="job-fair",
        server=ServerConfig(bandwidth=1 * GB, n_workers=1,
                            batched_sync=True,
                            sync_tree_fanout=fanout,
                            sync_quiescence_skip=quiescence)))
    for j in range(n_jobs):
        info = JobInfo(job_id=j + 1, user=f"u{j % 3}", size=j + 1)
        server = list(cluster.servers.values())[j % n_servers]
        server.monitor.table.observe(info, 0.0)
    cluster.run(until=until)
    return cluster


def _trace(cluster):
    s = cluster.sampler
    return (list(zip(s._times, s._jobs, s._bytes, s._ops)),
            cluster.engine.now, cluster.total_served_bytes())


def _table_view(server):
    return sorted((e["info"].job_id, e["last_heartbeat"], e["active"])
                  for e in server.monitor.table.snapshot())


@pytest.fixture(autouse=True)
def _restore_toggles():
    yield
    set_sync_delta_enabled(True)
    set_sync_gather_delta_enabled(True)


class TestTreeShape:
    def test_root_schedule_matches_flat_coordinator(self):
        members = [f"bb{i}" for i in range(7)]
        for epoch in range(20):
            order = tree_order(members, epoch)
            assert order[0] == members[epoch % 7]
            assert sorted(order) == members

    def test_children_partition_the_members(self):
        for n in (1, 2, 5, 16, 37):
            for fanout in (2, 3, 8):
                seen = []
                for pos in range(n):
                    kids = tree_children(n, fanout, pos)
                    assert len(kids) <= fanout
                    seen.extend(kids)
                # Every non-root position is the child of exactly one
                # parent; the root (position 0) of none.
                assert sorted(seen) == list(range(1, n))

    def test_subtree_height(self):
        assert subtree_height(1, 2, 0) == 0           # singleton
        assert subtree_height(7, 2, 0) == 2           # full binary, 7
        assert subtree_height(7, 2, 1) == 1
        assert subtree_height(7, 2, 3) == 0           # leaf
        assert subtree_height(9, 8, 0) == 1           # one level, k=8
        assert subtree_height(73, 8, 0) == 2          # 1 + 8 + 64


class TestConfigValidation:
    def test_defaults_are_flat_and_no_skip(self):
        cfg = ServerConfig()
        assert cfg.sync_tree_fanout == 0
        assert cfg.sync_quiescence_skip is False

    def test_fanout_one_rejected(self):
        with pytest.raises(ConfigError):
            ServerConfig(sync_tree_fanout=1)
        with pytest.raises(ConfigError):
            ServerConfig(sync_tree_fanout=-2)

    def test_tree_requires_batched_sync(self):
        with pytest.raises(ConfigError):
            ServerConfig(sync_tree_fanout=4, batched_sync=False)


class TestTreeConvergence:
    def test_tree_converges_to_flat_merged_view(self):
        flat = _run_cluster(fanout=0, n_servers=5)
        tree = _run_cluster(fanout=2, n_servers=5)
        for cluster in (flat, tree):
            ids = [sorted(j.job_id for j in s.monitor.table.active_jobs())
                   for s in cluster.servers.values()]
            assert all(x == ids[0] for x in ids), ids
        f_view = {j.job_id: (j.user, j.size)
                  for j in next(iter(flat.servers.values()))
                  .monitor.table.active_jobs()}
        t_view = {j.job_id: (j.user, j.size)
                  for j in next(iter(tree.servers.values()))
                  .monitor.table.active_jobs()}
        assert f_view == t_view
        assert t_view  # the run actually registered jobs

    def test_flat_and_tree_digest_logs_identical(self):
        """The acceptance bar: per-epoch merged-table digests agree
        between the two layouts on a deterministic workload."""
        flat = _sync_only_cluster(fanout=0, n_servers=9, n_jobs=12)
        tree = _sync_only_cluster(fanout=3, n_servers=9, n_jobs=12)
        f_log = flat.sync_digest_log()
        t_log = tree.sync_digest_log()
        assert f_log
        assert f_log == t_log

    def test_root_rotates_across_servers(self):
        cluster = _sync_only_cluster(fanout=2, n_servers=4, until=6.0)
        for server in cluster.servers.values():
            assert server.controller.coordinated_rounds > 0
            assert server.controller.tree_rounds > 0


class TestFanInAndRootBytes:
    def test_fanin_bounded_by_branching_factor(self):
        tree = _sync_only_cluster(fanout=3, n_servers=9, n_jobs=12)
        flat = _sync_only_cluster(fanout=0, n_servers=9, n_jobs=12)
        assert tree.sync_stats()["max_gather_fanin"] <= 3
        assert flat.sync_stats()["max_gather_fanin"] == 8

    def test_tree_cuts_root_inbound_bytes(self):
        """ISSUE acceptance: the tree cuts the per-epoch root-inbound
        gather bytes by at least 40% versus the flat round (measured
        at N=32; the committed SWEEP ladder covers N=256/1024)."""
        from repro.bench import bench_sync_ladder
        flat = bench_sync_ladder(n_servers=32, mode="flat", epochs=4)
        tree = bench_sync_ladder(n_servers=32, mode="tree", fanout=8,
                                 epochs=4)
        assert flat["max_fanin"] == 31
        assert tree["max_fanin"] <= 8
        assert (tree["root_in_bytes_per_epoch"]
                <= 0.6 * flat["root_in_bytes_per_epoch"])


class TestGatherDelta:
    """Per-peer-basis delta replies in the gather direction — they pay
    off for the flat round on their own (the tree merely reuses them
    per edge)."""

    def test_gather_delta_is_trace_neutral(self):
        assert sync_gather_delta_enabled()
        on = _trace(_run_cluster(seed=4, n_servers=4))
        set_sync_gather_delta_enabled(False)
        try:
            off = _trace(_run_cluster(seed=4, n_servers=4))
        finally:
            set_sync_gather_delta_enabled(True)
        assert on == off

    def test_gather_delta_shrinks_flat_gather_payload(self):
        # Stable entries are where the encoding pays: a live job's
        # heartbeat advances every round (so its entry re-ships), but
        # the pre-seeded idle entries re-confirm as 12-byte summaries
        # instead of 64-byte snapshot rows.
        def measure(flag):
            set_sync_gather_delta_enabled(flag)
            try:
                c = _sync_only_cluster(fanout=0, n_servers=6, n_jobs=12)
            finally:
                set_sync_gather_delta_enabled(True)
            stats = c.sync_stats()
            return (c.fabric.bytes_sent, c.fabric.payload_bytes_sent,
                    stats["gather_delta_replies"],
                    stats["coord_gather_payload_bytes"])

        size_on, payload_on, deltas_on, coord_on = measure(True)
        size_off, payload_off, deltas_off, coord_off = measure(False)
        assert deltas_on > 0 and deltas_off == 0
        # Nominal (timing-bearing) traffic identical; effective payload
        # and the coordinator's inbound gather bytes both shrink.
        assert size_on == size_off
        assert payload_on < payload_off
        assert coord_on < coord_off

    def test_gather_delta_fires_in_tree_mode_too(self):
        cluster = _sync_only_cluster(fanout=2, n_servers=6, n_jobs=8)
        assert cluster.sync_stats()["gather_delta_replies"] > 0

    def test_tree_state_identical_gather_delta_on_off(self):
        def run(flag):
            set_sync_gather_delta_enabled(flag)
            try:
                return _sync_only_cluster(fanout=2, n_servers=6, n_jobs=8)
            finally:
                set_sync_gather_delta_enabled(True)

        on, off = run(True), run(False)
        for name in on.servers:
            assert (_table_view(on.servers[name])
                    == _table_view(off.servers[name])), name
        assert on.sync_digest_log() == off.sync_digest_log()


class TestQuiescenceSkip:
    def test_idle_cluster_skips_whole_rounds(self):
        for fanout in (0, 2):
            cluster = _sync_only_cluster(fanout=fanout, quiescence=True,
                                         n_servers=6, n_jobs=6, until=8.0)
            stats = cluster.sync_stats()
            assert stats["quiescent_skips"] > 0, fanout
            assert stats["quiescent_replies"] > 0, fanout

    def test_skip_off_by_default(self):
        cluster = _sync_only_cluster(fanout=0, n_servers=4, n_jobs=4)
        assert cluster.sync_stats()["quiescent_skips"] == 0

    def test_digest_log_identical_skip_on_off(self):
        # A skipped round logs the guarded qhash — by construction the
        # digest the merge would have produced — so the per-epoch
        # digest sequence is invariant under the skip.
        on = _sync_only_cluster(fanout=0, quiescence=True,
                                n_servers=5, n_jobs=6, until=8.0)
        off = _sync_only_cluster(fanout=0, quiescence=False,
                                 n_servers=5, n_jobs=6, until=8.0)
        assert on.sync_stats()["quiescent_skips"] > 0
        assert on.sync_digest_log() == off.sync_digest_log()
        for name in on.servers:
            assert (_table_view(on.servers[name])
                    == _table_view(off.servers[name])), name

    def test_content_hash_guard_voids_skip_on_local_change(self):
        cluster = _sync_only_cluster(fanout=0, quiescence=True,
                                     n_servers=4, n_jobs=4, until=5.0)
        server = next(iter(cluster.servers.values()))
        ctl = server.controller
        qhash, pre_map = ctl._quiescence_state()
        assert qhash is not None and pre_map
        assert ctl._quiescent_match(qhash)
        # Any local table change since the last merged digest must void
        # the guard: a skip now would hide the new entry cluster-wide.
        server.monitor.table.observe(
            JobInfo(job_id=999, user="new", size=1), cluster.engine.now)
        assert ctl._quiescence_state() == (None, None)
        assert not ctl._quiescent_match(qhash)
