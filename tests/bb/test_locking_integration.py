"""Integration tests of §4.3's concurrency rules in the server workers:
conflicting writes serialise, disjoint writes and reads proceed freely,
namespace updates hold the parent's metadata lock."""

from repro.bb import Cluster, ClusterConfig, ServerConfig
from repro.core import JobInfo
from repro.units import GB, MB


def make_cluster(**server_kw):
    defaults = dict(bandwidth=1 * GB, n_workers=4)
    defaults.update(server_kw)
    cfg = ClusterConfig(n_servers=1, policy="job-fair",
                        server=ServerConfig(**defaults))
    cluster = Cluster(cfg)
    cluster.fs.makedirs("/fs/data")
    return cluster


def job(jid):
    return JobInfo(job_id=jid, user=f"u{jid}", size=1)


def worker_lock_waits(cluster):
    return sum(w.lock_waits for s in cluster.servers.values()
               for w in s.workers)


class TestRangeLocks:
    def test_overlapping_writes_serialise(self):
        cluster = make_cluster()
        client = cluster.add_client(job(1))
        spans = []

        def writer(tag):
            t0 = cluster.engine.now
            yield from client.write("/fs/data/shared", 0, 8 * MB)
            spans.append((tag, t0, cluster.engine.now))

        def boot():
            yield from client.create("/fs/data/shared")
            for i in range(3):
                cluster.engine.process(writer(i))

        cluster.engine.process(boot())
        cluster.run(until=5.0)
        assert len(spans) == 3
        # Service (not just completion) serialised: total duration covers
        # at least 3 back-to-back service times (8 MB @ 250 MB/s = 32 ms).
        t_end = max(s[2] for s in spans)
        t_start = min(s[1] for s in spans)
        assert t_end - t_start >= 3 * 0.032 * 0.95
        assert worker_lock_waits(cluster) > 0

    def test_disjoint_writes_do_not_wait(self):
        cluster = make_cluster()
        client = cluster.add_client(job(1))

        def writer(idx):
            yield from client.write("/fs/data/shared", idx * 8 * MB, 8 * MB)

        def boot():
            yield from client.create("/fs/data/shared")
            for i in range(3):
                cluster.engine.process(writer(i))

        cluster.engine.process(boot())
        cluster.run(until=5.0)
        assert worker_lock_waits(cluster) == 0

    def test_concurrent_reads_lock_free(self):
        cluster = make_cluster()
        client = cluster.add_client(job(1))

        def boot():
            yield from client.create("/fs/data/f")
            yield from client.write("/fs/data/f", 0, 8 * MB)

            def reader():
                yield from client.read("/fs/data/f", 0, 8 * MB)

            for _ in range(4):
                cluster.engine.process(reader())

        cluster.engine.process(boot())
        cluster.run(until=5.0)
        assert worker_lock_waits(cluster) == 0

    def test_locks_released_after_service(self):
        cluster = make_cluster()
        client = cluster.add_client(job(1))

        def app():
            yield from client.create("/fs/data/f")
            yield from client.write("/fs/data/f", 0, MB)
            yield from client.write("/fs/data/f", 0, MB)  # same range again

        cluster.engine.process(app())
        cluster.run(until=5.0)
        node = cluster.fs.nodes["bb0"]
        inode = cluster.fs.lookup("/fs/data/f")
        assert node.range_locks.write_locks_held(inode.ino) == 0


class TestEventDrivenWaits:
    """Blocked workers park on lock-release events instead of polling."""

    @staticmethod
    def _contended_run(until=5.0):
        cluster = make_cluster()
        client = cluster.add_client(job(1))
        completions = []

        def writer(tag):
            yield from client.write("/fs/data/shared", 0, 8 * MB)
            completions.append((tag, cluster.engine.now))

        def boot():
            yield from client.create("/fs/data/shared")
            for i in range(4):
                cluster.engine.process(writer(i))

        cluster.engine.process(boot())
        cluster.run(until=until)
        return cluster, completions

    def test_no_event_flood_while_blocked(self):
        # Four 8 MB writes to the same range serialise over ~128 ms of
        # simulated time. The old 10 us polling loop would schedule
        # ~10,000 retry events per blocked worker over that span; the
        # event-driven wait schedules one wakeup per lock release.
        cluster, completions = self._contended_run()
        assert len(completions) == 4
        assert worker_lock_waits(cluster) > 0
        assert cluster.engine._seq < 2000

    def test_contended_run_is_deterministic(self):
        # Wake-all + FIFO retry makes contention resolution reproducible:
        # two identical runs produce identical completion traces.
        _, first = self._contended_run()
        _, second = self._contended_run()
        assert first == second


class TestMetadataLocks:
    def test_creates_in_same_directory_serialise(self):
        cluster = make_cluster(n_workers=8, meta_latency=1e-3)
        client = cluster.add_client(job(1))

        def creator(i):
            yield from client.create(f"/fs/data/file-{i}")

        def boot():
            yield from client.register_all()
            for i in range(6):
                cluster.engine.process(creator(i))

        cluster.engine.process(boot())
        cluster.run(until=5.0)
        # All files exist despite the contention.
        assert len(cluster.fs.readdir("/fs/data")) == 6
        # With 8 workers and 1 ms metadata ops, concurrent creates in one
        # directory must have contended on the parent's metadata lock.
        assert worker_lock_waits(cluster) > 0

    def test_meta_locks_released(self):
        cluster = make_cluster()
        client = cluster.add_client(job(1))

        def app():
            yield from client.create("/fs/data/a")
            yield from client.unlink("/fs/data/a")

        cluster.engine.process(app())
        cluster.run(until=5.0)
        node = cluster.fs.nodes["bb0"]
        assert node.meta_locks.holders() == set()
