"""A/B acceptance: cancellation and the calendar queue are trace-neutral.

The same seeded cluster workload is run three ways — cancellation
disabled (the pre-optimization baseline), cancellation enabled on the
default heap, and cancellation enabled on the calendar queue — and must
produce bit-identical sampler traces, clocks, and served-byte totals.
"""

import pytest

from repro.bb import ClientConfig, Cluster, ClusterConfig, ServerConfig
from repro.core import JobInfo
from repro.sim import set_cancel_enabled, set_default_eventq
from repro.units import GB, MB


@pytest.fixture(autouse=True)
def _restore_kernel_toggles():
    set_cancel_enabled(True)
    set_default_eventq(None)
    yield
    set_cancel_enabled(True)
    set_default_eventq(None)


def _run_cluster(*, seed=0, until=6.0, n_servers=3, n_jobs=4, writes=12):
    # rpc_timeout/sync_timeout arm expiry timers on every timed call, so
    # the workload actually exercises the cancel path when replies win.
    cluster = Cluster(ClusterConfig(
        n_servers=n_servers, policy="job-fair", seed=seed,
        client=ClientConfig(rpc_timeout=5.0),
        server=ServerConfig(bandwidth=1 * GB, n_workers=2,
                            sync_timeout=2.0)))
    cluster.fs.makedirs("/fs/d")
    engine = cluster.engine

    def app(client, idx):
        yield from client.register_all()
        path = f"/fs/d/f{idx}"
        yield from client.create(path)
        for _ in range(writes):
            yield from client.write(path, 0, 1 * MB)

    for idx in range(n_jobs):
        client = cluster.add_client(
            JobInfo(job_id=idx + 1, user=f"u{idx % 2}", size=idx + 1))
        engine.process(app(client, idx))
    cluster.run(until=until)
    return cluster


def _trace(cluster):
    s = cluster.sampler
    return (list(zip(s._times, s._jobs, s._bytes, s._ops)),
            cluster.engine.now, cluster.total_served_bytes())


def _run(*, cancel, eventq, seed):
    set_cancel_enabled(cancel)
    set_default_eventq(eventq)
    try:
        return _run_cluster(seed=seed)
    finally:
        set_cancel_enabled(True)
        set_default_eventq(None)


class TestCancellationTraceNeutral:
    @pytest.mark.parametrize("seed", [0, 2])
    def test_cancel_on_equals_cancel_off(self, seed):
        on = _trace(_run(cancel=True, eventq=None, seed=seed))
        off = _trace(_run(cancel=False, eventq=None, seed=seed))
        assert on == off

    def test_cancellation_actually_exercised(self):
        """The neutrality claim is vacuous unless the workload cancels."""
        cluster = _run(cancel=True, eventq=None, seed=0)
        assert cluster.engine.stats()["cancelled_total"] > 0


class TestCalendarTraceNeutral:
    @pytest.mark.parametrize("seed", [0, 2])
    def test_calendar_equals_heap(self, seed):
        heap = _trace(_run(cancel=True, eventq=None, seed=seed))
        calendar = _trace(_run(cancel=True, eventq="calendar", seed=seed))
        assert heap == calendar

    def test_calendar_queue_actually_selected(self):
        cluster = _run(cancel=True, eventq="calendar", seed=0)
        assert cluster.engine.stats()["eventq"] == "CalendarEventQueue"

    def test_three_way_triangle(self):
        """Baseline, cancel+heap, cancel+calendar: one identical trace."""
        baseline = _trace(_run(cancel=False, eventq=None, seed=1))
        heap = _trace(_run(cancel=True, eventq=None, seed=1))
        calendar = _trace(_run(cancel=True, eventq="calendar", seed=1))
        assert baseline == heap == calendar
