"""Batched λ-sync protocol: equivalence with the pairwise/lock-step
exchange, determinism, hash-skip trace-neutrality, and the message
economy the batching buys (2·(N−1) pairs per epoch vs N·(N−1))."""

import numpy as np

from repro.bb import Cluster, ClusterConfig, ServerConfig
from repro.bb.controller import (set_sync_delta_enabled,
                                 set_sync_gather_delta_enabled,
                                 set_sync_hash_skip_enabled,
                                 sync_delta_enabled,
                                 sync_gather_delta_enabled,
                                 sync_hash_skip_enabled)
from repro.core import JobInfo
from repro.core import scheduler as schedmod
from repro.core.baselines import gift as giftmod
from repro.core.fairness import all_gather_merge
from repro.core.jobinfo import JobStatusTable
from repro.fs import filesystem as fsmod
from repro.fs import locking as lockmod
from repro.fs import striping as stripemod
from repro.core import policy as policymod
from repro.units import GB, MB


def _run_cluster(batched, *, seed=0, until=6.0, n_servers=3, n_jobs=4,
                 writes=12):
    cluster = Cluster(ClusterConfig(
        n_servers=n_servers, policy="job-fair", seed=seed,
        server=ServerConfig(bandwidth=1 * GB, n_workers=2,
                            batched_sync=batched)))
    cluster.fs.makedirs("/fs/d")
    engine = cluster.engine

    def app(client, idx):
        yield from client.register_all()
        path = f"/fs/d/f{idx}"
        yield from client.create(path)
        for _ in range(writes):
            yield from client.write(path, 0, 1 * MB)

    for idx in range(n_jobs):
        client = cluster.add_client(
            JobInfo(job_id=idx + 1, user=f"u{idx % 2}", size=idx + 1))
        engine.process(app(client, idx))
    cluster.run(until=until)
    return cluster


def _trace(cluster):
    s = cluster.sampler
    return (list(zip(s._times, s._jobs, s._bytes, s._ops)),
            cluster.engine.now, cluster.total_served_bytes())


class TestProtocolEquivalence:
    def test_batched_converges_to_lockstep_merged_table(self):
        batched = _run_cluster(True)
        pairwise = _run_cluster(False)
        for cluster in (batched, pairwise):
            views = [server.monitor.table.active_jobs()
                     for server in cluster.servers.values()]
            # Every server has converged on the same global view...
            ids = [sorted(j.job_id for j in view) for view in views]
            assert all(x == ids[0] for x in ids), ids
        # ...and the view is the same one the lock-step protocol reaches.
        b_view = {j.job_id: (j.user, j.size)
                  for j in next(iter(batched.servers.values()))
                  .monitor.table.active_jobs()}
        p_view = {j.job_id: (j.user, j.size)
                  for j in next(iter(pairwise.servers.values()))
                  .monitor.table.active_jobs()}
        assert b_view == p_view
        assert b_view  # the run actually registered jobs

    def test_batched_matches_reference_all_gather(self):
        """The converged batched table equals an offline all-gather merge
        of the same per-server snapshots."""
        cluster = _run_cluster(True)
        tables = []
        for server in cluster.servers.values():
            table = JobStatusTable(
                server.monitor.table.heartbeat_timeout)
            table.merge(server.monitor.table.snapshot())
            tables.append(table)
        all_gather_merge(tables)
        reference = sorted(j.job_id for j in tables[0].active_jobs())
        for server in cluster.servers.values():
            got = sorted(j.job_id for j in
                         server.monitor.table.active_jobs())
            assert got == reference

    def test_same_seed_same_trace(self):
        a = _trace(_run_cluster(True, seed=3))
        b = _trace(_run_cluster(True, seed=3))
        assert a == b

    def test_batched_round_counters(self):
        cluster = _run_cluster(True)
        coordinated = sum(s.controller.coordinated_rounds
                          for s in cluster.servers.values())
        assert coordinated > 0
        # Rotation: with enough epochs every server has coordinated.
        assert all(s.controller.coordinated_rounds > 0
                   for s in cluster.servers.values())


class TestHashSkip:
    def test_hash_skip_is_trace_neutral(self):
        assert sync_hash_skip_enabled()
        skipping = _trace(_run_cluster(True, seed=1))
        set_sync_hash_skip_enabled(False)
        try:
            merging = _trace(_run_cluster(True, seed=1))
        finally:
            set_sync_hash_skip_enabled(True)
        assert skipping == merging

    def test_skips_happen_on_quiescent_tables(self):
        # No clients: the merged table never changes, so after the first
        # scatter every push carries a repeated digest.
        cluster = _sync_only_cluster(True, until=8.0)
        skips = sum(s.controller.push_hash_skips
                    for s in cluster.servers.values())
        assert skips > 0


def _sync_only_cluster(batched, n_servers=4, until=5.0):
    # No clients: every fabric message is λ-sync traffic.
    cluster = Cluster(ClusterConfig(
        n_servers=n_servers, policy="job-fair",
        server=ServerConfig(bandwidth=1 * GB, n_workers=1,
                            batched_sync=batched)))
    cluster.run(until=until)
    return cluster


class TestMessageEconomy:
    def test_batched_sends_fewer_sync_messages(self):
        batched = _sync_only_cluster(True)
        pairwise = _sync_only_cluster(False)
        assert batched.fabric.messages_sent < pairwise.fabric.messages_sent
        # 2(N-1) pairs vs N(N-1) per epoch: ~N/2 fewer wire messages
        # (at N=4, 12 vs 24 per epoch, modulo boundary epochs).
        assert (batched.fabric.messages_sent
                <= 0.6 * pairwise.fabric.messages_sent)

    def test_fabric_counter_reset(self):
        cluster = _sync_only_cluster(True)
        assert cluster.fabric.messages_sent > 0
        cluster.fabric.reset_counters()
        assert cluster.fabric.messages_sent == 0
        assert cluster.fabric.bytes_sent == 0


class TestDeltaSync:
    """Delta-encoded scatter pushes: same trace, fewer payload bytes."""

    def test_delta_is_trace_neutral(self):
        assert sync_delta_enabled()
        delta = _trace(_run_cluster(True, seed=4, n_servers=4))
        set_sync_delta_enabled(False)
        try:
            full = _trace(_run_cluster(True, seed=4, n_servers=4))
        finally:
            set_sync_delta_enabled(True)
        assert delta == full

    def test_delta_shrinks_payload_bytes_not_wire_size(self):
        def measure(flag):
            set_sync_delta_enabled(flag)
            try:
                c = _run_cluster(True, seed=4, n_servers=4, writes=20)
            finally:
                set_sync_delta_enabled(True)
            pushes = sum(s.controller.delta_pushes
                         for s in c.servers.values())
            return c.fabric.bytes_sent, c.fabric.payload_bytes_sent, pushes

        size_on, payload_on, deltas_on = measure(True)
        size_off, payload_off, deltas_off = measure(False)
        assert deltas_on > 0 and deltas_off == 0
        # Nominal (timing-bearing) traffic is identical; effective
        # payload traffic shrinks by the omitted entries.
        assert size_on == size_off
        assert payload_on < payload_off
        assert payload_off == size_off  # no encoding => payload == wire

    def test_hash_skip_still_functions_with_delta(self):
        cluster = _sync_only_cluster(True, until=8.0)
        skips = sum(s.controller.push_hash_skips
                    for s in cluster.servers.values())
        assert skips > 0


class TestAllTogglesEquivalence:
    """The acceptance bar: one end-to-end run with every fast path
    enabled vs every fast path disabled — bit-identical event trace."""

    TOGGLES = [
        (policymod.set_share_cache_enabled, policymod.share_cache_enabled),
        (set_sync_hash_skip_enabled, sync_hash_skip_enabled),
        (stripemod.set_stripe_memo_enabled, stripemod.stripe_memo_enabled),
        (fsmod.set_path_cache_enabled, fsmod.path_cache_enabled),
        (schedmod.set_sampled_dequeue_enabled,
         schedmod.sampled_dequeue_enabled),
        (set_sync_delta_enabled, sync_delta_enabled),
        (set_sync_gather_delta_enabled, sync_gather_delta_enabled),
        (lockmod.set_range_wake_enabled, lockmod.range_wake_enabled),
        (giftmod.set_gift_quiescence_enabled,
         giftmod.gift_quiescence_enabled),
    ]

    def test_caches_on_equals_caches_off(self):
        assert all(get() for _, get in self.TOGGLES)
        cached = _trace(_run_cluster(True, seed=2, n_servers=2))
        for setter, _ in self.TOGGLES:
            setter(False)
        try:
            uncached = _trace(_run_cluster(True, seed=2, n_servers=2))
        finally:
            for setter, _ in self.TOGGLES:
                setter(True)
        assert cached == uncached

    def test_policy_shares_identical_with_cache_disabled(self):
        from repro.core import Policy
        population = [JobInfo(job_id=i, user=f"u{i % 3}", group=f"g{i % 2}",
                              size=i + 1) for i in range(12)]
        policy = Policy.parse("group-user-size-fair")
        with_cache = policy.shares(population)
        policymod.set_share_cache_enabled(False)
        try:
            without = Policy.parse("group-user-size-fair").shares(population)
        finally:
            policymod.set_share_cache_enabled(True)
        assert with_cache == without
        assert isinstance(with_cache[0], float)
        assert np.isclose(sum(with_cache.values()), 1.0)
