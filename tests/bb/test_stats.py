"""Tests for operational statistics and the cluster summary."""

import pytest

from repro.bb import Cluster, ClusterConfig, cluster_summary, server_stats
from repro.core import JobInfo
from repro.units import MB


@pytest.fixture
def busy_cluster():
    cluster = Cluster(ClusterConfig(n_servers=2, policy="size-fair",
                                    stripe_count=2))
    cluster.fs.makedirs("/fs/data")
    client = cluster.add_client(JobInfo(job_id=1, user="u", size=4))

    def app():
        yield from client.create("/fs/data/f")
        for _ in range(5):
            yield from client.write("/fs/data/f", 0, 4 * MB)
            yield from client.read("/fs/data/f", 0, 4 * MB)

    cluster.engine.process(app())
    cluster.run(until=2.0)
    return cluster


class TestServerStats:
    def test_counters_reflect_activity(self, busy_cluster):
        stats = [server_stats(s) for s in busy_cluster.servers.values()]
        assert sum(s.served_requests for s in stats) >= 10
        assert sum(s.served_bytes for s in stats) == 40 * MB
        assert all(s.backlog == 0 for s in stats)
        assert all(s.errors == 0 for s in stats)
        assert all(s.active_jobs == 1 for s in stats)

    def test_scheduler_name_present(self, busy_cluster):
        stats = server_stats(next(iter(busy_cluster.servers.values())))
        assert stats.scheduler == "themis"

    def test_sync_rounds_counted(self, busy_cluster):
        # Two servers with the default 0.5 s λ over 2 s: a few rounds.
        total = sum(server_stats(s).sync_rounds
                    for s in busy_cluster.servers.values())
        assert total >= 2


class TestClusterSummary:
    def test_renders_all_servers(self, busy_cluster):
        text = cluster_summary(busy_cluster)
        assert "bb0" in text and "bb1" in text
        assert "aggregate service rate" in text
        assert "themis" in text

    def test_summary_on_idle_cluster(self):
        cluster = Cluster(ClusterConfig(n_servers=1))
        text = cluster_summary(cluster)
        assert "bb0" in text
