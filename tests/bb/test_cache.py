"""Tests for the client read cache: unit-level LRU semantics plus the
end-to-end effect (cached reads skip the server entirely)."""

import pytest

from repro.bb import Cluster, ClusterConfig, ClientConfig
from repro.bb.cache import ClientCache
from repro.core import JobInfo
from repro.errors import ConfigError
from repro.units import MB


class TestClientCacheUnit:
    def make(self, capacity=4096, block=1024):
        return ClientCache(capacity, block_size=block)

    def test_miss_then_hit(self):
        cache = self.make()
        assert not cache.covers("/f", 0, 1000)
        cache.fill("/f", 0, 1000)
        assert cache.covers("/f", 0, 1000)
        assert cache.hits == 1 and cache.misses == 1

    def test_partial_coverage_is_a_miss(self):
        cache = self.make()
        cache.fill("/f", 0, 1024)  # block 0 only
        assert not cache.covers("/f", 0, 2048)  # needs blocks 0 and 1

    def test_block_rounding(self):
        cache = self.make()
        cache.fill("/f", 100, 10)  # lands in block 0
        assert cache.covers("/f", 0, 50)

    def test_lru_eviction(self):
        cache = self.make(capacity=2048, block=1024)  # 2 blocks
        cache.fill("/f", 0, 1024)      # block 0
        cache.fill("/f", 1024, 1024)   # block 1
        cache.covers("/f", 0, 100)     # touch block 0 (now most recent)
        cache.fill("/f", 2048, 1024)   # block 2 evicts block 1
        assert cache.covers("/f", 0, 100)
        assert not cache.covers("/f", 1024, 100)
        assert cache.evictions == 1

    def test_write_invalidates_overlap_only(self):
        cache = self.make()
        cache.fill("/f", 0, 3072)  # blocks 0-2
        assert cache.invalidate("/f", 1024, 100) == 1
        assert cache.covers("/f", 0, 1024)
        assert not cache.covers("/f", 1024, 1024)

    def test_invalidate_path(self):
        cache = self.make()
        cache.fill("/a", 0, 2048)
        cache.fill("/b", 0, 1024)
        assert cache.invalidate_path("/a") == 2
        assert cache.covers("/b", 0, 1024)

    def test_paths_do_not_collide(self):
        cache = self.make()
        cache.fill("/a", 0, 1024)
        assert not cache.covers("/b", 0, 1024)

    def test_zero_length_range_covered(self):
        assert self.make().covers("/f", 0, 0)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            ClientCache(0)
        with pytest.raises(ConfigError):
            ClientCache(100, block_size=200)


class TestCacheInTheStack:
    def make_cluster(self, cache_bytes):
        cfg = ClusterConfig(n_servers=1, policy="job-fair",
                            client=ClientConfig(cache_bytes=cache_bytes))
        cluster = Cluster(cfg)
        cluster.fs.makedirs("/fs/data")
        return cluster

    def run_reads(self, cache_bytes, n_reads=5):
        cluster = self.make_cluster(cache_bytes)
        client = cluster.add_client(JobInfo(job_id=1, user="u", size=1))
        done = {}

        def app():
            yield from client.create("/fs/data/f")
            yield from client.write("/fs/data/f", 0, 4 * MB)
            total = 0
            for _ in range(n_reads):
                total += yield from client.read("/fs/data/f", 0, 4 * MB)
            done["read"] = total

        cluster.engine.process(app())
        cluster.run(until=5.0)
        return cluster, done["read"]

    def test_disabled_by_default(self):
        cluster, _ = self.run_reads(cache_bytes=0)
        # Every read hit the server.
        assert cluster.sampler.op_count(op="read") == 5

    def test_repeated_reads_served_from_cache(self):
        cluster, read = self.run_reads(cache_bytes=64 * MB)
        # First read misses; the rest are local.
        assert cluster.sampler.op_count(op="read") == 1
        assert read == 5 * 4 * MB  # caller still sees full byte counts

    def test_write_invalidates_cached_range(self):
        cluster = self.make_cluster(cache_bytes=64 * MB)
        client = cluster.add_client(JobInfo(job_id=1, user="u", size=1))

        def app():
            yield from client.create("/fs/data/f")
            yield from client.write("/fs/data/f", 0, 2 * MB)
            yield from client.read("/fs/data/f", 0, 2 * MB)   # fill
            yield from client.read("/fs/data/f", 0, 2 * MB)   # cached
            yield from client.write("/fs/data/f", 0, 2 * MB)  # invalidate
            yield from client.read("/fs/data/f", 0, 2 * MB)   # miss again

        cluster.engine.process(app())
        cluster.run(until=5.0)
        assert cluster.sampler.op_count(op="read") == 2
