"""Tests for the I/O request type."""

import pytest

from repro.bb import IORequest, META_COST_BYTES, OpType
from repro.core import JobInfo
from repro.errors import InvalidArgument


def job(jid=1, size=4):
    return JobInfo(job_id=jid, user="u", size=size)


def test_data_cost_is_size():
    r = IORequest(op=OpType.WRITE, job=job(), path="/fs/f", size=1000)
    assert r.cost == 1000.0
    assert r.op.is_data


def test_metadata_cost_is_fixed():
    r = IORequest(op=OpType.STAT, job=job(), path="/fs/f")
    assert r.cost == META_COST_BYTES
    assert not r.op.is_data


def test_job_id_comes_from_metadata():
    r = IORequest(op=OpType.READ, job=job(jid=42), path="/fs/f", size=10)
    assert r.job_id == 42


def test_req_ids_unique():
    a = IORequest(op=OpType.STAT, job=job(), path="/fs/f")
    b = IORequest(op=OpType.STAT, job=job(), path="/fs/f")
    assert a.req_id != b.req_id


def test_negative_size_rejected():
    with pytest.raises(InvalidArgument):
        IORequest(op=OpType.READ, job=job(), path="/fs/f", size=-1)


def test_zero_byte_write_rejected():
    with pytest.raises(InvalidArgument):
        IORequest(op=OpType.WRITE, job=job(), path="/fs/f", size=0)


def test_payload_length_must_match_size():
    with pytest.raises(InvalidArgument):
        IORequest(op=OpType.WRITE, job=job(), path="/fs/f", size=5,
                  payload=b"abc")
    r = IORequest(op=OpType.WRITE, job=job(), path="/fs/f", size=3,
                  payload=b"abc")
    assert r.payload == b"abc"
