"""End-to-end tests of the burst-buffer stack: client -> UCX -> server ->
scheduler -> worker -> file system -> reply."""

import pytest

from repro.bb import Cluster, ClusterConfig, ServerConfig
from repro.core import JobInfo
from repro.units import GB, MB, MiB


def make_cluster(n_servers=1, policy="job-fair", stripe_count=1, **server_kw):
    cfg = ClusterConfig(
        n_servers=n_servers, policy=policy, stripe_count=stripe_count,
        server=ServerConfig(**server_kw) if server_kw else ServerConfig())
    cluster = Cluster(cfg)
    cluster.fs.makedirs("/fs/data")
    return cluster


def job(jid, user="alice", group="g0", size=1):
    return JobInfo(job_id=jid, user=user, group=group, size=size)


class TestDataPath:
    def test_write_then_read_roundtrip_accounting(self):
        cluster = make_cluster()
        client = cluster.add_client(job(1))
        out = {}

        def app():
            yield from client.create("/fs/data/f")
            wrote = yield from client.write("/fs/data/f", 0, 8 * MB)
            read = yield from client.read("/fs/data/f", 0, 8 * MB)
            out.update(wrote=wrote, read=read)

        cluster.engine.process(app())
        cluster.run(until=5.0)
        assert out == {"wrote": 8 * MB, "read": 8 * MB}
        assert cluster.fs.stat("/fs/data/f").size == 8 * MB
        assert cluster.sampler.total_bytes(1) == 16 * MB

    def test_payload_write_materialises_real_bytes(self):
        cluster = make_cluster(n_servers=2, stripe_count=2)
        client = cluster.add_client(job(1))
        data = bytes(range(256)) * 512  # 128 KiB

        def app():
            yield from client.create("/fs/data/real")
            yield from client.write("/fs/data/real", 0, len(data), payload=data)

        cluster.engine.process(app())
        cluster.run(until=5.0)
        assert cluster.fs.read("/fs/data/real", 0, len(data)) == data

    def test_read_past_eof_is_short(self):
        cluster = make_cluster()
        client = cluster.add_client(job(1))
        out = {}

        def app():
            yield from client.create("/fs/data/short")
            yield from client.write("/fs/data/short", 0, 1 * MB)
            out["read"] = yield from client.read("/fs/data/short", 0, 10 * MB)

        cluster.engine.process(app())
        cluster.run(until=5.0)
        assert out["read"] == 1 * MB

    def test_striped_write_lands_on_all_servers(self):
        cluster = make_cluster(n_servers=4, stripe_count=4)
        client = cluster.add_client(job(1))

        def app():
            yield from client.create("/fs/data/wide")
            yield from client.write("/fs/data/wide", 0, 64 * MiB)

        cluster.engine.process(app())
        cluster.run(until=5.0)
        touched = [name for name, server in cluster.servers.items()
                   if server.served_bytes > 0]
        assert len(touched) == 4

    def test_metadata_ops(self):
        cluster = make_cluster()
        client = cluster.add_client(job(1))
        out = {}

        def app():
            yield from client.mkdir("/fs/data/dir")
            yield from client.create("/fs/data/dir/x")
            resp = yield from client.stat("/fs/data/dir/x")
            out["stat_ok"] = resp["ok"]
            yield from client.readdir("/fs/data/dir")
            yield from client.unlink("/fs/data/dir/x")

        cluster.engine.process(app())
        cluster.run(until=5.0)
        assert out["stat_ok"]
        assert cluster.fs.exists("/fs/data/dir")
        assert not cluster.fs.exists("/fs/data/dir/x")
        assert cluster.sampler.op_count(op="stat") == 1

    def test_no_server_errors_in_normal_flow(self):
        cluster = make_cluster()
        client = cluster.add_client(job(1))

        def app():
            yield from client.create("/fs/data/f")
            for _ in range(5):
                yield from client.write("/fs/data/f", 0, MB)

        cluster.engine.process(app())
        cluster.run(until=5.0)
        assert all(not s.errors for s in cluster.servers.values())


class TestServiceModel:
    def test_saturated_server_approaches_device_bandwidth(self):
        # 8 concurrent request streams against one server: aggregate
        # throughput should approach the configured 2 GB/s.
        cluster = make_cluster(bandwidth=2 * GB, n_workers=4)
        client = cluster.add_client(job(1))

        def stream(idx):
            path = f"/fs/data/s{idx}"
            yield from client.create(path)
            while cluster.engine.now < 2.0:
                yield from client.write(path, 0, 4 * MB)

        def boot():
            yield from client.register_all()
            for i in range(8):
                cluster.engine.process(stream(i))

        cluster.engine.process(boot())
        cluster.run(until=2.0)
        rate = cluster.sampler.total_bytes() / 2.0
        assert rate > 1.2 * GB  # most of the device

    def test_service_time_scales_with_size(self):
        cluster = make_cluster(bandwidth=1 * GB, n_workers=1)
        client = cluster.add_client(job(1))
        stamps = {}

        def app():
            yield from client.create("/fs/data/f")
            t0 = cluster.engine.now
            yield from client.write("/fs/data/f", 0, 100 * MB)
            stamps["large"] = cluster.engine.now - t0
            t0 = cluster.engine.now
            yield from client.write("/fs/data/f", 0, 10 * MB)
            stamps["small"] = cluster.engine.now - t0

        cluster.engine.process(app())
        cluster.run(until=10.0)
        assert stamps["large"] > 5 * stamps["small"]
        assert stamps["large"] == pytest.approx(0.1, rel=0.5)


class TestJobLifecycle:
    def test_register_populates_job_table(self):
        cluster = make_cluster()
        client = cluster.add_client(job(7, size=16))

        def app():
            yield from client.register_all()

        cluster.engine.process(app())
        cluster.run(until=1.0)
        server = next(iter(cluster.servers.values()))
        assert server.monitor.table.is_active(7)
        assert server.monitor.table.get(7).size == 16

    def test_goodbye_deactivates_job_and_releases_mapping(self):
        cluster = make_cluster()
        client = cluster.add_client(job(7))

        def app():
            yield from client.register_all()
            yield from client.goodbye()

        cluster.engine.process(app())
        cluster.run(until=2.0)
        server = next(iter(cluster.servers.values()))
        assert not server.monitor.table.is_active(7)
        assert server.pool.mapped_clients == []

    def test_heartbeat_keeps_job_alive(self):
        cluster = make_cluster(heartbeat_timeout=1.0)
        client = cluster.add_client(job(7))

        def app():
            yield from client.register_all()
            # Idle for a long time; heartbeats must keep the job active.
            yield cluster.engine.timeout(4.0)

        cluster.engine.process(app())
        cluster.run(until=4.0)
        server = next(iter(cluster.servers.values()))
        assert server.monitor.table.is_active(7)

    def test_silent_client_expires(self):
        cluster = make_cluster(heartbeat_timeout=1.0)
        client = cluster.add_client(job(7))

        def app():
            yield from client.register_all()
            client.closed = True  # crash: heartbeats stop, no goodbye

        cluster.engine.process(app())
        cluster.run(until=5.0)
        server = next(iter(cluster.servers.values()))
        assert not server.monitor.table.is_active(7)
        assert server.pool.mapped_clients == []


class TestSharing:
    def test_job_fair_two_equal_competitors(self):
        cluster = make_cluster(policy="job-fair", bandwidth=1 * GB,
                               n_workers=4)
        c1 = cluster.add_client(job(1, user="a"))
        c2 = cluster.add_client(job(2, user="b"))

        def busy(client, path):
            yield from client.create(path)
            while cluster.engine.now < 3.0:
                yield from client.write(path, 0, 2 * MB)

        for i in range(3):
            cluster.engine.process(busy(c1, f"/fs/data/a{i}"))
            cluster.engine.process(busy(c2, f"/fs/data/b{i}"))
        cluster.run(until=3.0)
        b1 = cluster.sampler.total_bytes(1)
        b2 = cluster.sampler.total_bytes(2)
        assert b1 / b2 == pytest.approx(1.0, abs=0.25)

    def test_size_fair_four_to_one(self):
        # Shares only bind while both jobs are backlogged, so run many
        # more streams than workers (the paper's benchmarks run 56-224
        # processes per job against one server).
        cluster = make_cluster(policy="size-fair", bandwidth=1 * GB,
                               n_workers=2)
        c1 = cluster.add_client(job(1, size=4))
        c2 = cluster.add_client(job(2, size=1))

        def busy(client, path):
            yield from client.create(path)
            while cluster.engine.now < 4.0:
                yield from client.write(path, 0, 2 * MB)

        for i in range(8):
            cluster.engine.process(busy(c1, f"/fs/data/a{i}"))
            cluster.engine.process(busy(c2, f"/fs/data/b{i}"))
        # Skip the first second (startup), compare steady state.
        cluster.run(until=4.0)
        r1 = cluster.sampler.window_throughput(1.0, 4.0, 1)
        r2 = cluster.sampler.window_throughput(1.0, 4.0, 2)
        assert r1 / r2 == pytest.approx(4.0, rel=0.3)

    def test_fifo_burst_blocks_competitor(self):
        cluster = make_cluster(policy="fifo", bandwidth=100 * MB, n_workers=1)
        c1 = cluster.add_client(job(1))
        c2 = cluster.add_client(job(2))
        out = {}

        def burster():
            yield from c1.create("/fs/data/big")
            # Queue a 2-second burst all at once.
            yield from c1.write("/fs/data/big", 0, 200 * MB)

        def victim():
            yield from c2.create("/fs/data/small")
            yield cluster.engine.timeout(0.1)  # arrive after the burst
            t0 = cluster.engine.now
            yield from c2.write("/fs/data/small", 0, 1 * MB)
            out["latency"] = cluster.engine.now - t0

        cluster.engine.process(burster())
        cluster.engine.process(victim())
        cluster.run(until=10.0)
        # The 1 MB write had to wait for most of the 2 s burst.
        assert out["latency"] > 1.0


class TestLambdaSync:
    def test_tables_merge_within_lambda(self):
        cluster = make_cluster(n_servers=2, policy="size-fair",
                               sync_interval=0.2)
        # Job 1's file lives only on one server; job 2's on the other:
        # force disjoint placement with stripe_count=1 and distinct paths.
        c1 = cluster.add_client(job(1, user="a", size=16))
        c2 = cluster.add_client(job(2, user="b", size=8))

        def app(client, path):
            yield from client.create(path)
            while cluster.engine.now < 1.0:
                yield from client.write(path, 0, MB)

        cluster.engine.process(app(c1, "/fs/data/j1"))
        cluster.engine.process(app(c2, "/fs/data/j2"))
        cluster.run(until=1.0)
        # After a few sync rounds every server knows both jobs.
        for server in cluster.servers.values():
            known = {j.job_id for j in server.monitor.table.active_jobs()}
            assert known == {1, 2}

    def test_sync_disabled_keeps_local_views(self):
        cluster = make_cluster(n_servers=2, policy="size-fair",
                               sync_interval=0.0)
        md = cluster.fs.metadata_server("/fs/data/j1")
        # Pick paths whose metadata and data land on different servers.
        other = [n for n in cluster.servers if n != md][0]
        path2 = None
        for i in range(32):
            cand = f"/fs/data/x{i}"
            if cluster.fs.metadata_server(cand) == other:
                path2 = cand
                break
        assert path2 is not None
        c1 = cluster.add_client(job(1))
        c2 = cluster.add_client(job(2))

        def app(client, path):
            yield from client.create(path)
            yield from client.write(path, 0, MB)

        cluster.engine.process(app(c1, "/fs/data/j1"))
        cluster.engine.process(app(c2, path2))
        cluster.run(until=2.0)
        views = [{j.job_id for j in s.monitor.table.active_jobs()}
                 for s in cluster.servers.values()]
        # Without sync, at least one server must be missing a job.
        assert any(v != {1, 2} for v in views)
