"""Property-style checks: the incremental CompositeShareCache is
bitwise-equal to a from-scratch Eq. 1 evaluation under randomized job
churn (adds, removals, resizes, priority changes), for flat and
composite policies alike. Exact ``==`` on the float dicts — the cache
reuses the same matrix builders in the same association order, so not
even an ULP of drift is tolerated."""

import random

import pytest

from repro.core import JobInfo, Policy
from repro.core.matrix import CompositeShareCache, chain_shares


def _mutate(rng: random.Random, jobs: dict, next_id: int) -> int:
    r = rng.random()
    if r < 0.40 or not jobs:
        jid = next_id
        next_id += 1
        jobs[jid] = JobInfo(job_id=jid, user=f"u{rng.randrange(4)}",
                            group=f"g{rng.randrange(3)}",
                            size=rng.randrange(1, 9),
                            priority=float(rng.choice([0.5, 1.0, 2.0])))
    elif r < 0.60:
        jobs.pop(rng.choice(sorted(jobs)))
    else:
        jid = rng.choice(sorted(jobs))
        old = jobs[jid]
        jobs[jid] = JobInfo(job_id=jid, user=old.user, group=old.group,
                            size=rng.randrange(1, 9), priority=old.priority)
    return next_id


@pytest.mark.parametrize("spec", ["job-fair", "size-fair", "priority-fair",
                                  "user-then-size-fair",
                                  "group-user-size-fair"])
@pytest.mark.parametrize("seed", [0, 1])
def test_cache_bitwise_equal_under_random_churn(spec, seed):
    policy = Policy.parse(spec)
    cache = CompositeShareCache(policy.levels)
    rng = random.Random(seed)
    jobs = {}
    next_id = 0
    for _ in range(300):
        next_id = _mutate(rng, jobs, next_id)
        population = list(jobs.values())
        assert cache.shares(population) == chain_shares(policy.levels,
                                                        population)
    # The churn must have actually exercised the incremental path.
    assert cache.levels_rebuilt > 0
    if len(policy.levels) > 1:
        assert cache.levels_reused > 0


def test_exact_input_memo_hits_on_unchanged_population():
    policy = Policy.parse("group-user-size-fair")
    cache = CompositeShareCache(policy.levels)
    population = [JobInfo(job_id=i, user=f"u{i % 2}", group="g0",
                          size=i + 1) for i in range(6)]
    first = cache.shares(population)
    evaluations = cache.evaluations
    again = cache.shares(list(reversed(population)))  # order-insensitive
    assert again == first
    assert cache.hits == 1
    assert cache.evaluations == evaluations
    # The memo hands out copies, not aliases of internal state.
    again[0] = 999.0
    assert cache.shares(population) == first


def test_invalidate_forces_rebuild_with_identical_result():
    policy = Policy.parse("user-then-size-fair")
    cache = CompositeShareCache(policy.levels)
    population = [JobInfo(job_id=i, user=f"u{i % 3}", size=i + 1)
                  for i in range(8)]
    before = cache.shares(population)
    version = cache.version
    cache.invalidate()
    assert cache.version == version + 1
    rebuilt_before = cache.levels_rebuilt
    assert cache.shares(population) == before
    assert cache.levels_rebuilt > rebuilt_before


def test_invalidate_rejects_bad_level_index():
    from repro.errors import PolicyError
    cache = CompositeShareCache(Policy.parse("job-fair").levels)
    with pytest.raises(PolicyError):
        cache.invalidate(5)
