"""Tests for transition matrices and the Eq. 1 chain product."""

import numpy as np
import pytest

from repro.core import (JobInfo, Level, build_transition_matrices,
                        chain_product, chain_shares,
                        validate_transition_matrix)
from repro.errors import PolicyError


def job(jid, user="u0", group="g0", size=1):
    return JobInfo(job_id=jid, user=user, group=group, size=size)


FIG4_JOBS = ([job(i, user="u1") for i in (1, 2)] +
             [job(i, user="u2") for i in (3, 4, 5, 6)])


class TestBuild:
    def test_fig4_user_then_job_matrices(self):
        matrices, job_ids = build_transition_matrices(
            (Level.USER, Level.JOB), FIG4_JOBS)
        assert len(matrices) == 2
        user_matrix, job_matrix = matrices
        # User matrix: 1x2, both users get half.
        assert user_matrix.shape == (1, 2)
        np.testing.assert_allclose(user_matrix, [[0.5, 0.5]])
        # Job matrix: row per user queue; 2 jobs at 1/2, 4 jobs at 1/4.
        assert job_matrix.shape == (2, 6)
        np.testing.assert_allclose(job_matrix[0], [0.5, 0.5, 0, 0, 0, 0])
        np.testing.assert_allclose(job_matrix[1], [0, 0, 0.25, 0.25, 0.25, 0.25])
        assert job_ids == [1, 2, 3, 4, 5, 6]

    def test_every_matrix_satisfies_structural_constraints(self):
        jobs = [job(i, user=f"u{i % 3}", group=f"g{i % 2}", size=i + 1)
                for i in range(9)]
        matrices, _ = build_transition_matrices(
            (Level.GROUP, Level.USER, Level.SIZE), jobs)
        for T in matrices:
            validate_transition_matrix(T)

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(PolicyError):
            build_transition_matrices((Level.JOB,), [job(1), job(1)])

    def test_empty_jobs(self):
        matrices, job_ids = build_transition_matrices((Level.JOB,), [])
        assert matrices == [] and job_ids == []


class TestValidate:
    def test_rejects_bad_row_sum(self):
        with pytest.raises(PolicyError):
            validate_transition_matrix(np.array([[0.5, 0.4]]))

    def test_rejects_multiple_nonzero_per_column(self):
        T = np.array([[0.5, 0.5], [0.5, 0.5]])
        with pytest.raises(PolicyError):
            validate_transition_matrix(T)

    def test_rejects_negative(self):
        with pytest.raises(PolicyError):
            validate_transition_matrix(np.array([[1.5, -0.5]]))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(PolicyError):
            validate_transition_matrix(np.ones(3))

    def test_accepts_valid(self):
        validate_transition_matrix(np.array([[0.25, 0.75, 0.0],
                                             [0.0, 0.0, 1.0]]))
        validate_transition_matrix(np.array([[1.0, 0.0], [0.0, 1.0]]))


class TestChain:
    def test_fig3b_product(self):
        matrices, job_ids = build_transition_matrices(
            (Level.USER, Level.JOB), FIG4_JOBS)
        shares = chain_product(matrices)
        np.testing.assert_allclose(
            shares, [[0.25, 0.25, 0.125, 0.125, 0.125, 0.125]])

    def test_chain_shares_matches_product(self):
        shares = chain_shares((Level.USER, Level.JOB), FIG4_JOBS)
        assert shares == pytest.approx(
            {1: 0.25, 2: 0.25, 3: 0.125, 4: 0.125, 5: 0.125, 6: 0.125})

    def test_empty_chain(self):
        out = chain_product([])
        assert out.shape == (1, 0)

    def test_single_level_size(self):
        shares = chain_shares((Level.SIZE,), [job(1, size=3), job(2, size=1)])
        assert shares == pytest.approx({1: 0.75, 2: 0.25})

    def test_deep_chain_shares_sum_to_one(self):
        jobs = [job(i, user=f"u{i % 4}", group=f"g{i % 2}", size=(i % 5) + 1)
                for i in range(20)]
        shares = chain_shares((Level.GROUP, Level.USER, Level.SIZE), jobs)
        assert sum(shares.values()) == pytest.approx(1.0)
