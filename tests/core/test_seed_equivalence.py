"""Bit-identical equivalence of the optimised arbitration path to the
seed implementation.

The hot-path overhaul (cached restricted assignments, the fast
``_from_backlog`` constructor, the bisect search) must not change a
single scheduling decision: same RNG seed, same request stream, same
choices. This module freezes the seed revision's ``TokenAssignment`` /
``StatisticalTokenScheduler`` logic verbatim (numpy-everything, a fresh
assignment per dequeue) and replays identical workloads through both.
"""

import random

import numpy as np
import pytest

from repro.core import JobInfo, Policy, StatisticalTokenScheduler


class _SeedTokenAssignment:
    """Verbatim seed-revision TokenAssignment (pre-optimisation)."""

    def __init__(self, shares):
        items = sorted(shares.items())
        values = np.array([s for _, s in items], dtype=float)
        total = values.sum()
        self.job_ids = [job_id for job_id, _ in items]
        self.shares = values / total
        self._cum = np.cumsum(self.shares)
        self._cum[-1] = 1.0
        self._index = {job_id: i for i, job_id in enumerate(self.job_ids)}

    def draw(self, u):
        idx = int(np.searchsorted(self._cum, u, side="right"))
        return self.job_ids[min(idx, len(self.job_ids) - 1)]

    def share(self, job_id):
        return float(self.shares[self._index[job_id]])

    def __contains__(self, job_id):
        return job_id in self._index

    def __len__(self):
        return len(self.job_ids)


class _SeedScheduler:
    """Verbatim seed-revision statistical token scheduler dequeue logic,
    over a simple dict-of-lists queue set (sorted() per dequeue, fresh
    restricted assignment per draw — the pre-PR hot path)."""

    def __init__(self, policy, rng):
        self.policy = policy
        self.rng = rng
        self._queues = {}
        self.assignment = None

    def enqueue(self, request, now=0.0):
        self._queues.setdefault(request.job_id, []).append(request)

    def on_jobs_changed(self, active_jobs):
        shares = self.policy.shares(active_jobs)
        self.assignment = _SeedTokenAssignment(shares) if shares else None

    def _pop(self, job_id):
        queue = self._queues[job_id]
        item = queue.pop(0)
        if not queue:
            del self._queues[job_id]
        return item

    def dequeue(self):
        if not self._queues:
            return None
        backlogged = sorted(self._queues)
        if self.assignment is None:
            job_id = backlogged[int(self.rng.integers(0, len(backlogged)))]
            return self._pop(job_id)
        mean_share = 1.0 / max(len(self.assignment), 1)
        shares = {}
        for job_id in backlogged:
            if job_id in self.assignment:
                share = self.assignment.share(job_id)
                shares[job_id] = share if share > 0 else mean_share
            else:
                shares[job_id] = mean_share
        choice = _SeedTokenAssignment(shares).draw(float(self.rng.random()))
        return self._pop(choice)


class _Req:
    __slots__ = ("job_id", "cost", "seq")

    def __init__(self, job_id, seq):
        self.job_id = job_id
        self.cost = 1.0
        self.seq = seq


def _jobs(n, cycle=5):
    return [JobInfo(job_id=i, user=f"u{i % 3}", group=f"g{i % 2}",
                    size=(i % cycle) + 1) for i in range(n)]


def _replay(policy_name, seed, steps, make_scheduler, dequeue, jobs_changed):
    """Drive a scheduler through a deterministic workload; return the
    (choice, request-seq) trace."""
    scheduler = make_scheduler(policy_name, seed)
    jobs_changed(scheduler, _jobs(10))
    workload = random.Random(seed * 7 + 1)
    trace = []
    pending = 0
    for step in range(steps):
        if workload.random() < 0.55 or pending == 0:
            scheduler.enqueue(_Req(workload.randrange(14), step), 0.0)
            pending += 1
        else:
            req = dequeue(scheduler)
            if req is not None:
                pending -= 1
            trace.append(None if req is None else (req.job_id, req.seq))
        if step % 2500 == 2499:
            jobs_changed(scheduler, _jobs(step % 8 + 2, cycle=step % 4 + 2))
    return trace


@pytest.mark.parametrize("policy_name", ["job-fair", "size-fair",
                                         "user-size-fair"])
@pytest.mark.parametrize("seed", [0, 3])
def test_optimised_scheduler_matches_seed_implementation(policy_name, seed):
    """Same seeds -> bit-identical dequeue traces (job AND request
    identity) between the seed implementation and the optimised one."""
    seed_trace = _replay(
        policy_name, seed, 12000,
        lambda p, s: _SeedScheduler(Policy.parse(p), np.random.default_rng(s)),
        lambda sch: sch.dequeue(),
        lambda sch, jobs: sch.on_jobs_changed(jobs))
    new_trace = _replay(
        policy_name, seed, 12000,
        lambda p, s: StatisticalTokenScheduler(Policy.parse(p),
                                               np.random.default_rng(s)),
        lambda sch: sch.dequeue(0.0),
        lambda sch, jobs: sch.on_jobs_changed(jobs, 0.0))
    assert seed_trace == new_trace
