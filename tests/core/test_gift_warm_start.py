"""GIFT warm start: the memoized coupon-redemption LP must change the
number of solver invocations and nothing else — identical budgets,
coupons, and dispatch decisions with the memo on or off."""

import pytest

from repro.core import JobInfo
from repro.core.baselines import GiftScheduler


class Req:
    __slots__ = ("job_id", "cost")

    def __init__(self, job_id, cost=1.0):
        self.job_id = job_id
        self.cost = cost


def _job(job_id, user=None):
    return JobInfo(job_id=job_id, user=user or f"u{job_id}")


def _drive(sched, cycles=25):
    """Steady donate/redeem cycle; returns the full dispatch trace."""
    sched.on_jobs_changed([_job(1), _job(2)], 0.0)
    trace = []
    now = 0.0
    for _ in range(cycles):
        # Donor phase: job 1 under-demands, job 2 over-demands.
        sched.enqueue(Req(1, 5.0), now)
        for _ in range(95):
            sched.enqueue(Req(2, 1.0), now)
        while True:
            r = sched.dequeue(now)
            if r is None:
                break
            trace.append((now, r.job_id, r.cost))
        now += 1.0
        # Redeem phase: job 1 over-demands holding coupons (LP path).
        for _ in range(120):
            sched.enqueue(Req(1, 1.0), now)
        while True:
            r = sched.dequeue(now)
            if r is None:
                break
            trace.append((now, r.job_id, r.cost))
        now += 1.0
    return trace


def test_warm_start_trace_identical_to_cold():
    warm = GiftScheduler(capacity=100.0, mu=1.0, warm_start=True)
    cold = GiftScheduler(capacity=100.0, mu=1.0, warm_start=False)
    assert _drive(warm) == _drive(cold)
    assert warm.coupons == cold.coupons
    assert warm.epochs == cold.epochs


def test_warm_start_skips_repeat_solves():
    warm = GiftScheduler(capacity=100.0, mu=1.0, warm_start=True)
    cold = GiftScheduler(capacity=100.0, mu=1.0, warm_start=False)
    _drive(warm)
    _drive(cold)
    assert warm.lp_calls >= 1          # the memo never removes the first solve
    assert warm.lp_cache_hits > 0
    assert cold.lp_cache_hits == 0
    assert warm.lp_calls < cold.lp_calls
    assert warm.lp_calls + warm.lp_cache_hits == cold.lp_calls


def test_memo_is_bounded():
    s = GiftScheduler(capacity=100.0, mu=1.0, warm_start=True)
    s.on_jobs_changed([_job(1), _job(2)], 0.0)
    now = 0.0
    for i in range(2 * GiftScheduler.LP_MEMO_MAX):
        # Vary the arrival count so (almost) every epoch's LP is novel.
        s.enqueue(Req(1, 5.0), now)
        for _ in range(60 + i):
            s.enqueue(Req(2, 1.0), now)
        while s.dequeue(now) is not None:
            pass
        now += 1.0
    assert len(s._lp_memo) <= GiftScheduler.LP_MEMO_MAX


def test_default_is_warm():
    assert GiftScheduler(capacity=10.0).warm_start is True
    assert GiftScheduler(capacity=10.0, warm_start=False).warm_start is False
    with pytest.raises(Exception):
        GiftScheduler(capacity=0.0)
