"""Tests for job metadata and the heartbeat-driven status table."""

import pytest

from repro.core import JobInfo, JobStatusTable
from repro.errors import SchedulerError


def job(jid, user="alice", group="g0", size=1, priority=1.0):
    return JobInfo(job_id=jid, user=user, group=group, size=size,
                   priority=priority)


class TestJobInfo:
    def test_valid(self):
        j = job(1, size=64)
        assert j.size == 64

    def test_invalid_size(self):
        with pytest.raises(SchedulerError):
            job(1, size=0)

    def test_invalid_priority(self):
        with pytest.raises(SchedulerError):
            job(1, priority=0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            job(1).size = 5


class TestStatusTable:
    def test_observe_registers_active(self):
        table = JobStatusTable()
        assert table.observe(job(1), now=0.0) is True
        assert table.is_active(1)
        assert table.active_jobs() == [job(1)]

    def test_observe_same_job_is_not_a_change(self):
        table = JobStatusTable()
        table.observe(job(1), now=0.0)
        assert table.observe(job(1), now=1.0) is False

    def test_observe_updated_info_is_a_change(self):
        table = JobStatusTable()
        table.observe(job(1, size=4), now=0.0)
        assert table.observe(job(1, size=8), now=1.0) is True
        assert table.get(1).size == 8

    def test_expire_after_timeout(self):
        table = JobStatusTable(heartbeat_timeout=2.0)
        table.observe(job(1), now=0.0)
        assert table.expire(now=1.0) == []
        assert table.expire(now=3.0) == [1]
        assert not table.is_active(1)
        assert table.active_jobs() == []

    def test_heartbeat_keeps_alive_and_reactivates(self):
        table = JobStatusTable(heartbeat_timeout=2.0)
        table.observe(job(1), now=0.0)
        table.expire(now=5.0)
        table.heartbeat(1, now=6.0)
        assert table.is_active(1)

    def test_heartbeat_unknown_job_raises(self):
        table = JobStatusTable()
        with pytest.raises(SchedulerError):
            table.heartbeat(9, now=0.0)

    def test_deactivate_and_remove(self):
        table = JobStatusTable()
        table.observe(job(1), now=0.0)
        assert table.deactivate(1) is True
        assert table.deactivate(1) is False
        assert table.remove(1) is True
        assert 1 not in table
        assert table.remove(1) is False

    def test_active_jobs_sorted_by_id(self):
        table = JobStatusTable()
        for jid in (3, 1, 2):
            table.observe(job(jid), now=0.0)
        assert [j.job_id for j in table.active_jobs()] == [1, 2, 3]

    def test_version_bumps_on_changes_only(self):
        table = JobStatusTable()
        v0 = table.version
        table.observe(job(1), now=0.0)
        v1 = table.version
        assert v1 > v0
        table.observe(job(1), now=1.0)  # refresh, no change
        assert table.version == v1

    def test_invalid_timeout(self):
        with pytest.raises(SchedulerError):
            JobStatusTable(heartbeat_timeout=0.0)


class TestMerge:
    def test_union_of_disjoint_tables(self):
        a, b = JobStatusTable(), JobStatusTable()
        a.observe(job(1, size=16), now=0.0)
        b.observe(job(2, size=8), now=0.0)
        assert a.merge(b.snapshot()) is True
        assert [j.job_id for j in a.active_jobs()] == [1, 2]

    def test_newest_heartbeat_wins(self):
        a, b = JobStatusTable(), JobStatusTable()
        a.observe(job(1, size=4), now=0.0)
        b.observe(job(1, size=32), now=5.0)  # fresher info
        a.merge(b.snapshot())
        assert a.get(1).size == 32

    def test_stale_remote_does_not_regress(self):
        a, b = JobStatusTable(), JobStatusTable()
        a.observe(job(1, size=32), now=5.0)
        b.observe(job(1, size=4), now=0.0)
        assert a.merge(b.snapshot()) is False
        assert a.get(1).size == 32

    def test_inactive_state_propagates(self):
        a, b = JobStatusTable(heartbeat_timeout=1.0), JobStatusTable()
        a.observe(job(1), now=0.0)
        b.observe(job(1), now=0.0)
        a.expire(now=10.0)
        # a's knowledge is newer only if its heartbeat stamp is newer; give
        # b a merge from a snapshot carrying active=False at a later stamp.
        b.observe(job(2), now=0.0)
        snap = a.snapshot()
        for entry in snap:
            entry["last_heartbeat"] = 11.0
        b.merge(snap)
        assert not b.is_active(1)

    def test_merge_is_idempotent(self):
        a, b = JobStatusTable(), JobStatusTable()
        a.observe(job(1), now=0.0)
        b.observe(job(2), now=0.0)
        a.merge(b.snapshot())
        assert a.merge(b.snapshot()) is False
