"""Tests for the FIFO, GIFT, and TBF comparator schedulers."""

from dataclasses import dataclass

import pytest

from repro.core import FifoScheduler, GiftScheduler, JobInfo, TbfScheduler
from repro.errors import SchedulerError


@dataclass
class Req:
    job_id: int
    cost: float = 1.0
    seq: int = 0


def job(jid, size=1):
    return JobInfo(job_id=jid, user=f"u{jid}", size=size)


class TestFifo:
    def test_strict_arrival_order_across_jobs(self):
        s = FifoScheduler()
        s.enqueue(Req(1, seq=0), 0.0)
        s.enqueue(Req(2, seq=1), 0.0)
        s.enqueue(Req(1, seq=2), 0.0)
        assert [s.dequeue(0.0).seq for _ in range(3)] == [0, 1, 2]

    def test_empty_returns_none(self):
        assert FifoScheduler().dequeue(0.0) is None

    def test_backlog(self):
        s = FifoScheduler()
        s.enqueue(Req(1), 0.0)
        assert s.backlog == 1

    def test_drain_preserves_arrival_order(self):
        s = FifoScheduler()
        for i in range(3):
            s.enqueue(Req(1, seq=i), 0.0)
        assert [r.seq for r in s.drain()] == [0, 1, 2]
        assert s.backlog == 0

    def test_small_job_blocks_big_job(self):
        # The paper's motivating pathology: a burst from job 1 queued
        # first delays job 2's single request behind the whole burst.
        s = FifoScheduler()
        for i in range(100):
            s.enqueue(Req(1, seq=i), 0.0)
        s.enqueue(Req(2, seq=999), 0.0)
        order = [s.dequeue(0.0) for _ in range(101)]
        assert order[-1].job_id == 2


class TestGift:
    def test_invalid_params(self):
        with pytest.raises(SchedulerError):
            GiftScheduler(capacity=0)
        with pytest.raises(SchedulerError):
            GiftScheduler(capacity=1, mu=0)

    def test_equal_epoch_allocation_between_backlogged_jobs(self):
        s = GiftScheduler(capacity=100.0, mu=1.0)
        s.on_jobs_changed([job(1), job(2)], 0.0)
        for _ in range(100):
            s.enqueue(Req(1, cost=1.0), 0.0)
            s.enqueue(Req(2, cost=1.0), 0.0)
        served = {1: 0, 2: 0}
        while True:
            r = s.dequeue(0.0)
            if r is None:
                break
            served[r.job_id] += 1
        # Epoch capacity 100 bytes, split evenly: ~50 each.
        assert served[1] == pytest.approx(50, abs=2)
        assert served[2] == pytest.approx(50, abs=2)

    def test_hard_throttle_idles_with_backlog(self):
        # One job with demand far above the epoch capacity: once its
        # budget is spent, dequeue returns None despite backlog.
        s = GiftScheduler(capacity=10.0, mu=1.0)
        s.on_jobs_changed([job(1), job(2)], 0.0)
        for _ in range(100):
            s.enqueue(Req(1, cost=1.0), 0.0)
        while s.dequeue(0.0) is not None:
            pass
        assert s.backlog > 0
        assert s.next_eligible_time(0.0) == pytest.approx(1.0)

    def test_budget_resets_at_next_epoch(self):
        s = GiftScheduler(capacity=10.0, mu=1.0)
        s.on_jobs_changed([job(1)], 0.0)
        for _ in range(30):
            s.enqueue(Req(1, cost=1.0), 0.0)
        n0 = 0
        while s.dequeue(0.0) is not None:
            n0 += 1
        n1 = 0
        while s.dequeue(1.5) is not None:
            n1 += 1
        assert n0 == 10 and n1 == 10

    def test_never_throttled_below_fair_share(self):
        # A solo active job is budgeted the full epoch capacity at once —
        # GIFT throttles contenders, it does not starve.
        s = GiftScheduler(capacity=100.0, mu=1.0)
        s.on_jobs_changed([job(1)], 0.0)
        for _ in range(200):
            s.enqueue(Req(1, cost=1.0), 0.0)
        served = 0
        while s.dequeue(0.0) is not None:
            served += 1
        assert served == 100

    def test_donor_earns_coupons_at_settlement(self):
        s = GiftScheduler(capacity=100.0, mu=1.0)
        s.on_jobs_changed([job(1), job(2)], 0.0)
        # Epoch 1: job 1 uses only 5 of its 50-byte fair share.
        s.enqueue(Req(1, cost=5.0), 0.0)
        for _ in range(100):
            s.enqueue(Req(2, cost=1.0), 0.0)
        while s.dequeue(0.0) is not None:
            pass
        assert s.coupons.get(1, 0.0) == 0.0  # settled only at the boundary
        s.dequeue(1.0)  # epoch 2 boundary: settle
        assert s.coupons.get(1, 0.0) == pytest.approx(45.0)

    def test_spare_flows_to_demanding_job_next_epoch(self):
        s = GiftScheduler(capacity=100.0, mu=1.0)
        s.on_jobs_changed([job(1), job(2)], 0.0)
        s.enqueue(Req(1, cost=5.0), 0.0)
        for _ in range(200):
            s.enqueue(Req(2, cost=1.0), 0.0)
        served_e1 = {1: 0.0, 2: 0.0}
        while True:
            r = s.dequeue(0.0)
            if r is None:
                break
            served_e1[r.job_id] += r.cost
        # Epoch 1 is hard-fair: job 2 capped at its 50-byte share.
        assert served_e1[2] == pytest.approx(50.0, abs=1.0)
        # Epoch 2: last epoch's observed spare (45) is granted to the
        # over-demanding job on top of fair share.
        served_e2 = {1: 0.0, 2: 0.0}
        while True:
            r = s.dequeue(1.0)
            if r is None:
                break
            served_e2[r.job_id] += r.cost
        assert served_e2[2] == pytest.approx(95.0, abs=2.0)

    def test_coupon_redemption_uses_lp(self):
        s = GiftScheduler(capacity=100.0, mu=1.0)
        s.on_jobs_changed([job(1), job(2)], 0.0)
        # Epoch 1: job 1 donates most of its share; job 2 is capped at 50.
        s.enqueue(Req(1, cost=5.0), 0.0)
        for _ in range(95):
            s.enqueue(Req(2, cost=1.0), 0.0)
        while s.dequeue(0.0) is not None:
            pass
        # Epoch 2: job 1 over-demands while holding 45 coupon bytes;
        # last epoch's spare was 45 and the LP grants it to job 1.
        for _ in range(200):
            s.enqueue(Req(1, cost=1.0), 1.0)
        served = {1: 0.0, 2: 0.0}
        while True:
            r = s.dequeue(1.0)
            if r is None:
                break
            served[r.job_id] += r.cost
        assert s.lp_calls >= 1
        assert s.coupons.get(1, 0.0) == pytest.approx(0.0)  # redeemed
        assert served[1] == pytest.approx(95.0, abs=2.0)

    def test_new_job_waits_for_epoch_boundary(self):
        # The adjustment lag: a job arriving mid-epoch has no budget.
        s = GiftScheduler(capacity=100.0, mu=1.0)
        s.on_jobs_changed([job(1)], 0.0)
        s.enqueue(Req(1, cost=1.0), 0.0)
        assert s.dequeue(0.0) is not None  # epoch starts, job 1 budgeted
        s.on_jobs_changed([job(1), job(2)], 0.5)
        s.enqueue(Req(2, cost=1.0), 0.5)
        assert s.dequeue(0.5) is None       # job 2 throttled until t=1.0
        assert s.dequeue(1.0) is not None   # budgeted at the boundary


class TestTbf:
    def test_invalid_params(self):
        with pytest.raises(SchedulerError):
            TbfScheduler(capacity=0)
        with pytest.raises(SchedulerError):
            TbfScheduler(capacity=1, declared_jobs=0)
        with pytest.raises(SchedulerError):
            TbfScheduler(capacity=1, burst_seconds=0)

    def test_rate_limits_throughput(self):
        # Rate 10 B/s, burst 0.5 s: over 10 s the class serves ~100 bytes.
        s = TbfScheduler(capacity=20.0, rates={1: 10.0}, burst_seconds=0.5)
        s.on_jobs_changed([job(1)], 0.0)
        served = 0.0
        t = 0.0
        while t < 10.0:
            s.enqueue(Req(1, cost=1.0), t)
            r = s.dequeue(t)
            if r is not None:
                served += r.cost
            t += 0.05
        assert 80.0 < served < 125.0

    def test_insufficient_tokens_blocks(self):
        s = TbfScheduler(capacity=10.0, rates={1: 1.0}, burst_seconds=1.0)
        s.on_jobs_changed([job(1)], 0.0)
        s.enqueue(Req(1, cost=5.0), 0.0)
        s.dequeue(0.0)  # burst covers the first; drain it
        s.enqueue(Req(1, cost=5.0), 0.0)
        assert s.dequeue(0.0) is None  # tokens exhausted
        eta = s.next_eligible_time(0.0)
        assert 0.0 < eta < float("inf")
        assert s.dequeue(eta + 5.0) is not None  # refilled by then

    def test_pssb_idle_rate_flows_to_backlogged_class(self):
        # Two declared classes at 5 B/s each; class 2 idle -> class 1
        # effectively refills at ~10 B/s.
        s = TbfScheduler(capacity=10.0, rates={1: 5.0, 2: 5.0},
                         burst_seconds=0.2)
        s.on_jobs_changed([job(1), job(2)], 0.0)
        served = 0.0
        t = 0.0
        while t < 10.0:
            s.enqueue(Req(1, cost=1.0), t)
            r = s.dequeue(t)
            if r is not None:
                served += r.cost
            t += 0.05
        assert served > 75.0  # well above the 5 B/s solo guarantee

    def test_htc_compensates_starved_class(self):
        # A class starved past one burst's worth of guaranteed bytes may
        # dispatch on credit.
        s = TbfScheduler(capacity=10.0, rates={1: 10.0}, burst_seconds=0.1)
        s.on_jobs_changed([job(1)], 0.0)
        s.enqueue(Req(1, cost=100.0), 0.0)  # cost far above any bucket
        assert s.dequeue(0.0) is None
        # After 2 s starved, deficit (20) exceeds burst (1): HTC kicks in.
        r = s.dequeue(2.0)
        assert r is not None
        assert s.compensations >= 1

    def test_default_rate_from_declared_jobs(self):
        s = TbfScheduler(capacity=100.0, declared_jobs=4)
        assert s.rate_of(7) == pytest.approx(25.0)

    def test_next_eligible_empty_is_inf(self):
        s = TbfScheduler(capacity=10.0)
        assert s.next_eligible_time(0.0) == float("inf")
