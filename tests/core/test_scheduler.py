"""Tests for the statistical token scheduler and QueueSet."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core import JobInfo, Policy, QueueSet, StatisticalTokenScheduler
from repro.core import scheduler as schedmod
from repro.errors import SchedulerError


@dataclass
class Req:
    job_id: int
    cost: float = 1.0
    seq: int = 0


def job(jid, user="u0", size=1):
    return JobInfo(job_id=jid, user=user, size=size)


def make(policy="job-fair", seed=0, opportunity_fair=True):
    return StatisticalTokenScheduler(
        Policy.parse(policy), np.random.default_rng(seed),
        opportunity_fair=opportunity_fair)


class TestQueueSet:
    def test_fifo_within_job(self):
        q = QueueSet()
        q.push(Req(1, seq=0))
        q.push(Req(1, seq=1))
        assert q.pop(1).seq == 0
        assert q.pop(1).seq == 1

    def test_pop_empty_raises(self):
        q = QueueSet()
        with pytest.raises(SchedulerError):
            q.pop(1)

    def test_counts_and_cost(self):
        q = QueueSet()
        q.push(Req(1, cost=10))
        q.push(Req(2, cost=5))
        q.push(Req(2, cost=5))
        assert q.total == 3
        assert q.total_cost == 20
        assert q.depth(2) == 2
        assert q.queued_cost(2) == 10
        assert q.nonempty_jobs() == [1, 2]
        q.pop(2)
        assert q.total_cost == 15

    def test_bool_and_peek(self):
        q = QueueSet()
        assert not q
        q.push(Req(3, seq=7))
        assert q
        assert q.peek(3).seq == 7
        assert q.peek(9) is None

    def test_drain_returns_everything_in_job_order(self):
        q = QueueSet()
        q.push(Req(2, seq=0))
        q.push(Req(1, seq=0))
        q.push(Req(1, seq=1))
        drained = q.drain()
        assert [(r.job_id, r.seq) for r in drained] == [
            (1, 0), (1, 1), (2, 0)]
        assert not q
        assert q.total == 0 and q.total_cost == 0


class TestDrainAndWake:
    """Crash support (drain) and event-driven worker wake-up points."""

    def test_scheduler_drain_empties_queues(self):
        s = make()
        s.on_jobs_changed([job(1), job(2)], 0.0)
        for i in range(3):
            s.enqueue(Req(1, seq=i), 0.0)
        s.enqueue(Req(2, seq=0), 0.0)
        drained = s.drain()
        assert len(drained) == 4
        assert s.backlog == 0
        assert s.dequeue(0.0) is None

    def test_ablation_mode_stays_on_short_timer(self):
        # opportunity_fair=False can waste a draw on an idle job, so a
        # backlogged queue must be polled again immediately (the worker
        # keeps its pre-existing _BLOCKED_RETRY cadence, trace-identical).
        s = make(opportunity_fair=False)
        s.on_jobs_changed([job(1)], 0.0)
        assert s.next_eligible_time(5.0) == float("inf")  # empty queues
        s.enqueue(Req(1), 5.0)
        assert s.next_eligible_time(5.0) == 5.0

    def test_opportunity_fair_parks_on_work_event(self):
        # dequeue never returns None with backlog here, so a None means
        # "no work at all" and the worker can park on the work event.
        s = make(opportunity_fair=True)
        s.on_jobs_changed([job(1)], 0.0)
        assert s.next_eligible_time(0.0) == float("inf")
        s.enqueue(Req(1), 0.0)
        assert s.next_eligible_time(0.0) == float("inf")


class TestTokenScheduler:
    def test_serves_fifo_within_a_job(self):
        s = make()
        s.on_jobs_changed([job(1)], 0.0)
        for i in range(3):
            s.enqueue(Req(1, seq=i), 0.0)
        assert [s.dequeue(0.0).seq for _ in range(3)] == [0, 1, 2]

    def test_empty_dequeue_returns_none(self):
        s = make()
        assert s.dequeue(0.0) is None

    def test_job_fair_splits_service_evenly(self):
        s = make("job-fair", seed=1)
        s.on_jobs_changed([job(1), job(2)], 0.0)
        for i in range(4000):
            s.enqueue(Req(1), 0.0)
            s.enqueue(Req(2), 0.0)
        served = {1: 0, 2: 0}
        for _ in range(4000):
            served[s.dequeue(0.0).job_id] += 1
        ratio = served[1] / 4000
        assert 0.46 < ratio < 0.54

    def test_size_fair_splits_proportionally(self):
        s = make("size-fair", seed=2)
        s.on_jobs_changed([job(1, size=4), job(2, size=1)], 0.0)
        for _ in range(6000):
            s.enqueue(Req(1), 0.0)
            s.enqueue(Req(2), 0.0)
        served = {1: 0, 2: 0}
        for _ in range(5000):
            served[s.dequeue(0.0).job_id] += 1
        ratio = served[1] / served[2]
        assert 3.4 < ratio < 4.7  # ~4x, Fig 8(a)

    def test_opportunity_fairness_gives_idle_cycles_away(self):
        # Job 1 has no backlog: job 2 must receive every cycle.
        s = make("job-fair", seed=3)
        s.on_jobs_changed([job(1), job(2)], 0.0)
        for _ in range(50):
            s.enqueue(Req(2), 0.0)
        for _ in range(50):
            assert s.dequeue(0.0).job_id == 2
        assert s.wasted_draws == 0

    def test_mandatory_assignment_wastes_idle_segments(self):
        # Ablation: without opportunity fairness, draws landing on the
        # idle job's segment return None.
        s = make("job-fair", seed=4, opportunity_fair=False)
        s.on_jobs_changed([job(1), job(2)], 0.0)
        for _ in range(200):
            s.enqueue(Req(2), 0.0)
        results = [s.dequeue(0.0) for _ in range(200)]
        assert any(r is None for r in results)
        assert s.wasted_draws > 0

    def test_backlogged_job_never_starved(self):
        # With heavy competition, a backlogged job still gets ~its share.
        s = make("size-fair", seed=5)
        s.on_jobs_changed([job(1, size=15), job(2, size=1)], 0.0)
        for _ in range(8000):
            s.enqueue(Req(1), 0.0)
            s.enqueue(Req(2), 0.0)
        served = {1: 0, 2: 0}
        for _ in range(8000):
            served[s.dequeue(0.0).job_id] += 1
        # Job 2's fair share is 1/16 = 6.25%; allow statistical slack.
        assert served[2] / 8000 > 0.04

    def test_unknown_backlogged_job_gets_mean_share(self):
        s = make("job-fair", seed=6)
        s.on_jobs_changed([job(1)], 0.0)
        s.enqueue(Req(99), 0.0)  # job not yet in the table
        assert s.dequeue(0.0).job_id == 99

    def test_no_assignment_serves_uniformly(self):
        s = make("job-fair", seed=7)
        for _ in range(100):
            s.enqueue(Req(1), 0.0)
            s.enqueue(Req(2), 0.0)
        served = {1: 0, 2: 0}
        for _ in range(100):
            served[s.dequeue(0.0).job_id] += 1
        assert served[1] > 20 and served[2] > 20

    def test_jobs_changed_recomputes_shares(self):
        s = make("job-fair", seed=8)
        s.on_jobs_changed([job(1)], 0.0)
        assert s.current_shares() == pytest.approx({1: 1.0})
        s.on_jobs_changed([job(1), job(2)], 1.0)
        assert s.current_shares() == pytest.approx({1: 0.5, 2: 0.5})
        s.on_jobs_changed([], 2.0)
        assert s.current_shares() == {}

    def test_backlog_property(self):
        s = make()
        s.enqueue(Req(1), 0.0)
        s.enqueue(Req(1), 0.0)
        assert s.backlog == 2
        s.dequeue(0.0)
        assert s.backlog == 1

    def test_deterministic_given_seed(self):
        def run(seed):
            s = make("job-fair", seed=seed)
            s.on_jobs_changed([job(1), job(2)], 0.0)
            for _ in range(100):
                s.enqueue(Req(1), 0.0)
                s.enqueue(Req(2), 0.0)
            return [s.dequeue(0.0).job_id for _ in range(100)]

        assert run(42) == run(42)


class TestDrawCache:
    """The cached restricted assignment must be invisible to callers.

    These tests exercise the exact-path draw cache specifically, so the
    Fenwick-sampled dequeue (which bypasses that cache — its own
    equivalence tests live in ``TestSampledDequeue``) is switched off
    around each test.
    """

    @pytest.fixture(autouse=True)
    def _exact_path(self):
        schedmod.set_sampled_dequeue_enabled(False)
        yield
        schedmod.set_sampled_dequeue_enabled(True)

    @staticmethod
    def _run(cache, seed=9, steps=15000):
        import random

        s = StatisticalTokenScheduler(
            Policy.parse("size-fair"), np.random.default_rng(seed),
            cache_draws=cache)
        s.on_jobs_changed([job(i, user=f"u{i % 3}", size=(i % 5) + 1)
                           for i in range(12)], 0.0)
        workload = random.Random(seed)
        choices = []
        for step in range(steps):
            if workload.random() < 0.55 or not s.queues:
                # Includes job ids outside the token table (mean share).
                s.enqueue(Req(workload.randrange(15)), 0.0)
            else:
                req = s.dequeue(0.0)
                choices.append(None if req is None else req.job_id)
            if step % 4000 == 3999:
                # Token reallocation mid-run invalidates the cache.
                s.on_jobs_changed(
                    [job(i, size=(i % 7) + 1) for i in range(step % 10 + 2)],
                    0.0)
        return choices

    def test_cached_and_uncached_sequences_identical(self):
        # Same RNG seed -> bit-identical choice sequences whether the
        # restricted assignment is rebuilt per dequeue or served from
        # the cache.
        assert self._run(cache=True) == self._run(cache=False)

    def test_cache_hits_dominate_steady_backlog(self):
        s = make("job-fair")
        s.on_jobs_changed([job(1), job(2)], 0.0)
        for _ in range(1000):
            s.enqueue(Req(1), 0.0)
            s.enqueue(Req(2), 0.0)
        for _ in range(1500):
            s.dequeue(0.0)
        assert s.cache_hits > 10 * s.cache_misses

    def test_reallocation_invalidates_cache(self):
        s = make("job-fair")
        s.on_jobs_changed([job(1), job(2)], 0.0)
        s.enqueue(Req(1), 0.0)
        s.enqueue(Req(2), 0.0)
        s.dequeue(0.0)
        misses = s.cache_misses
        s.on_jobs_changed([job(1), job(2), job(3)], 1.0)
        s.enqueue(Req(1), 0.0)
        s.enqueue(Req(2), 0.0)
        s.dequeue(1.0)
        assert s.cache_misses == misses + 1
        assert s.current_shares() == pytest.approx(
            {1: 1 / 3, 2: 1 / 3, 3: 1 / 3})


class TestSampledDequeue:
    """The Fenwick-sampled dequeue must be bit-identical to the exact
    restricted-assignment path (same seed, same choice sequence)."""

    @staticmethod
    def _run(sampled, seed=7, steps=20000, n_jobs=96):
        import random

        schedmod.set_sampled_dequeue_enabled(sampled)
        try:
            s = StatisticalTokenScheduler(
                Policy.parse("size-fair"), np.random.default_rng(seed))
            s.on_jobs_changed(
                [job(i, user=f"u{i % 5}", size=(i % 6) + 1)
                 for i in range(n_jobs)], 0.0)
            workload = random.Random(seed)
            choices = []
            for step in range(steps):
                if workload.random() < 0.5 or not s.queues:
                    # Ids beyond the token table exercise the mean-share
                    # weight; heavy churn forces membership transitions.
                    s.enqueue(Req(workload.randrange(n_jobs + 6)), 0.0)
                else:
                    req = s.dequeue(0.0)
                    choices.append(None if req is None else req.job_id)
                if step % 5000 == 4999:
                    # Token reallocation mid-run rebuilds the sampler.
                    s.on_jobs_changed(
                        [job(i, size=(i % 4) + 1)
                         for i in range(step % 17 + 2)], 0.0)
            return choices, s
        finally:
            schedmod.set_sampled_dequeue_enabled(True)

    def test_sampled_and_exact_sequences_identical(self):
        for seed in (7, 21, 1234):
            sampled, s_on = self._run(True, seed=seed)
            exact, s_off = self._run(False, seed=seed)
            assert sampled == exact
            # The sampled run actually used the Fenwick path.
            assert s_on.sampled_draws > 0
            assert s_off.sampled_draws == 0

    def test_fallbacks_are_rare(self):
        _, s = self._run(True)
        # The boundary guard fires ~2**-29 of the time; any systematic
        # fallback (desynced sampler) would show up as a large count.
        assert s.sampled_fallbacks <= 2

    def test_out_of_order_job_id_rebuilds_slot_map(self):
        from repro.core.sampled import BacklogSampler

        sampler = BacklogSampler()
        sampler.bulk_load([2, 5, 9], [0.2, 0.3, 0.5])
        sampler.set_weight(4, 0.25)  # splices between 2 and 5
        assert len(sampler) == 4
        total = sampler.total_weight()
        assert total == pytest.approx(1.25)
        # Prefix structure stays consistent after the splice.
        assert sampler.sample(0.5 * (0.2 + 0.125) / 1.25) in (2, 4)

    def test_small_backlogs_stay_on_exact_path(self):
        # Below _SAMPLED_MIN_JOBS the tree is never even built: tiny
        # populations must not pay Fenwick maintenance (the exact path's
        # cached assignment is faster there).
        s = StatisticalTokenScheduler(
            Policy.parse("job-fair"), np.random.default_rng(0))
        s.on_jobs_changed([job(i) for i in range(4)], 0.0)
        for i in range(4):
            s.enqueue(Req(i), 0.0)
        for _ in range(32):
            req = s.dequeue(0.0)
            if req is not None:
                s.enqueue(Req(req.job_id), 0.0)
        assert s.sampled_draws == 0
        assert s._sampler is None

    def test_sampler_survives_drain(self, monkeypatch):
        monkeypatch.setattr(schedmod, "_SAMPLED_MIN_JOBS", 1)
        s = make("job-fair")
        s.on_jobs_changed([job(1), job(2), job(3)], 0.0)
        for _ in range(6):
            s.enqueue(Req(1), 0.0)
            s.enqueue(Req(2), 0.0)
        assert s.dequeue(0.0) is not None
        dropped = s.drain()
        assert dropped and s.backlog == 0
        s.enqueue(Req(3), 0.0)
        req = s.dequeue(0.0)
        assert req is not None and req.job_id == 3
