"""Tests for the statistical token assignment (segments of [0, 1])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TokenAssignment
from repro.errors import SchedulerError


class TestConstruction:
    def test_shares_normalised(self):
        a = TokenAssignment({1: 2.0, 2: 2.0})
        assert a.share(1) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(SchedulerError):
            TokenAssignment({})

    def test_negative_rejected(self):
        with pytest.raises(SchedulerError):
            TokenAssignment({1: -0.1, 2: 1.1})

    def test_all_zero_rejected(self):
        with pytest.raises(SchedulerError):
            TokenAssignment({1: 0.0})

    def test_contains_and_len(self):
        a = TokenAssignment({1: 0.5, 2: 0.5})
        assert 1 in a and 3 not in a
        assert len(a) == 2


class TestSegments:
    def test_segments_partition_unit_interval(self):
        a = TokenAssignment({1: 0.66, 2: 0.33})
        lo1, hi1 = a.segment(1)
        lo2, hi2 = a.segment(2)
        assert lo1 == 0.0
        assert hi1 == pytest.approx(lo2)
        assert hi2 == 1.0

    def test_fig3a_job_fair_two_jobs(self):
        a = TokenAssignment({1: 1.0, 2: 1.0})
        assert a.segment(1) == (0.0, pytest.approx(0.5))
        assert a.segment(2) == (pytest.approx(0.5), 1.0)

    def test_unknown_job_raises(self):
        a = TokenAssignment({1: 1.0})
        with pytest.raises(SchedulerError):
            a.segment(2)


class TestDraws:
    def test_draw_maps_u_to_segment(self):
        a = TokenAssignment({1: 0.5, 2: 0.5})
        assert a.draw(0.0) == 1
        assert a.draw(0.49) == 1
        assert a.draw(0.5) == 2
        assert a.draw(0.99) == 2

    def test_draw_out_of_range_rejected(self):
        a = TokenAssignment({1: 1.0})
        with pytest.raises(SchedulerError):
            a.draw(1.0)
        with pytest.raises(SchedulerError):
            a.draw(-0.01)

    def test_draw_frequency_approximates_shares(self):
        a = TokenAssignment({1: 3.0, 2: 1.0})
        rng = np.random.default_rng(0)
        hits = sum(a.draw(float(u)) == 1 for u in rng.random(20000))
        assert 0.73 < hits / 20000 < 0.77


class TestRestrict:
    def test_restrict_renormalises(self):
        a = TokenAssignment({1: 0.5, 2: 0.25, 3: 0.25})
        r = a.restrict([2, 3])
        assert r.share(2) == pytest.approx(0.5)
        assert r.share(3) == pytest.approx(0.5)

    def test_restrict_preserves_proportions(self):
        a = TokenAssignment({1: 0.6, 2: 0.3, 3: 0.1})
        r = a.restrict([2, 3])
        assert r.share(2) / r.share(3) == pytest.approx(3.0)

    def test_restrict_ignores_unknown_jobs(self):
        a = TokenAssignment({1: 1.0})
        r = a.restrict([1, 99])
        assert len(r) == 1

    def test_restrict_to_nothing_returns_none(self):
        a = TokenAssignment({1: 1.0})
        assert a.restrict([99]) is None
        assert a.restrict([]) is None


class TestDrawBoundaries:
    """Edge geometry of the segment search (both search paths)."""

    def test_u_exactly_on_segment_edge_goes_to_next_job(self):
        # cum boundaries at 0.25 / 0.5 / 0.75: an exact hit belongs to
        # the following segment ([lo, hi) semantics, side="right").
        a = TokenAssignment({1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0})
        assert a.draw(0.25) == 2
        assert a.draw(0.5) == 3
        assert a.draw(0.75) == 4
        # Just below the edge still lands in the earlier segment.
        assert a.draw(np.nextafter(0.25, 0.0)) == 1

    def test_single_job_assignment_always_wins(self):
        a = TokenAssignment({7: 3.5})
        for u in (0.0, 0.3, 0.999999):
            assert a.draw(u) == 7
        assert a.segment(7) == (0.0, 1.0)

    def test_zero_share_job_excluded_by_restrict(self):
        a = TokenAssignment({1: 1.0, 2: 0.0, 3: 1.0})
        r = a.restrict([1, 2, 3])
        assert 2 not in r
        assert r.share(1) == pytest.approx(0.5)

    def test_large_population_uses_numpy_path_consistently(self):
        # Above SMALL_N_THRESHOLD the numpy search runs; results must
        # agree with the bisect answer over the same boundaries.
        from bisect import bisect_right

        from repro.core.tokens import SMALL_N_THRESHOLD

        n = SMALL_N_THRESHOLD + 72
        a = TokenAssignment({i: float((i % 9) + 1) for i in range(n)})
        assert not a._small
        rng = np.random.default_rng(5)
        for u in rng.random(500):
            u = float(u)
            idx = min(bisect_right(a._cum_list, u), n - 1)
            assert a.draw(u) == a.job_ids[idx]

    def test_fast_constructor_bitwise_equals_dict_constructor(self):
        from repro.core.tokens import SMALL_N_THRESHOLD

        rng = np.random.default_rng(11)
        for n in (1, 2, 7, 8, 9, 31, 100, SMALL_N_THRESHOLD,
                  SMALL_N_THRESHOLD + 10):
            ids = sorted(int(j) for j in
                         rng.choice(10 * n, size=n, replace=False))
            vals = [float(v) + 1e-9 for v in rng.random(n)]
            a = TokenAssignment(dict(zip(ids, vals)))
            b = TokenAssignment._from_backlog(ids, vals)
            assert a.job_ids == b.job_ids
            assert a._cum_list == b._cum_list        # bitwise, no approx
            assert a._shares_list == b._shares_list  # bitwise, no approx


@settings(max_examples=60)
@given(st.dictionaries(st.integers(0, 50),
                       st.floats(0.01, 100.0),
                       min_size=1, max_size=12),
       st.floats(0.0, 0.999999))
def test_property_draw_consistent_with_segments(shares, u):
    """draw(u) always returns the job whose [lo, hi) segment contains u,
    and segments tile [0, 1] without gaps or overlaps."""
    a = TokenAssignment(shares)
    chosen = a.draw(u)
    lo, hi = a.segment(chosen)
    assert lo <= u < hi or (u >= hi == 1.0)
    # Segments tile the interval in job-id order.
    edges = [a.segment(j) for j in a.job_ids]
    assert edges[0][0] == 0.0
    assert edges[-1][1] == 1.0
    for (a_lo, a_hi), (b_lo, b_hi) in zip(edges, edges[1:]):
        assert a_hi == pytest.approx(b_lo)
