"""Tests for the policy language and share evaluation (§2.2.2, §3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JobInfo, Level, Policy
from repro.errors import PolicyError


def job(jid, user="u0", group="g0", size=1, priority=1.0):
    return JobInfo(job_id=jid, user=user, group=group, size=size,
                   priority=priority)


class TestParsing:
    @pytest.mark.parametrize("spec,levels", [
        ("job-fair", (Level.JOB,)),
        ("size-fair", (Level.SIZE,)),
        ("priority-fair", (Level.PRIORITY,)),
        ("user-fair", (Level.USER, Level.JOB)),
        ("group-fair", (Level.GROUP, Level.JOB)),
        ("user-then-job-fair", (Level.USER, Level.JOB)),
        ("user-then-size-fair", (Level.USER, Level.SIZE)),
        ("group-then-user-fair", (Level.GROUP, Level.USER, Level.JOB)),
        ("group-user-then-size-fair", (Level.GROUP, Level.USER, Level.SIZE)),
        ("group-user-size-fair", (Level.GROUP, Level.USER, Level.SIZE)),
        ("Group-User-Size-FAIR", (Level.GROUP, Level.USER, Level.SIZE)),
    ])
    def test_accepted(self, spec, levels):
        assert Policy.parse(spec).levels == levels

    @pytest.mark.parametrize("spec", [
        "", "fair", "banana-fair", "size-then-user-fair",
        "user-then-group-fair", "user-user-fair", "fifo",
    ])
    def test_rejected(self, spec):
        with pytest.raises(PolicyError):
            Policy.parse(spec)

    def test_name_roundtrip(self):
        p = Policy.parse("group-user-then-size-fair")
        assert Policy.parse(p.name) == p

    def test_depth_is_eq1_N(self):
        assert Policy.parse("size-fair").depth == 1
        assert Policy.parse("group-user-size-fair").depth == 3

    def test_direct_construction_validates(self):
        with pytest.raises(PolicyError):
            Policy(())
        with pytest.raises(PolicyError):
            Policy((Level.USER,))  # non-terminal tail
        with pytest.raises(PolicyError):
            Policy((Level.SIZE, Level.JOB))  # terminal not last


class TestPrimitiveShares:
    def test_job_fair_is_even(self):
        shares = Policy.parse("job-fair").shares([job(1), job(2), job(3)])
        assert shares == pytest.approx({1: 1 / 3, 2: 1 / 3, 3: 1 / 3})

    def test_size_fair_is_proportional(self):
        shares = Policy.parse("size-fair").shares(
            [job(1, size=16), job(2, size=8), job(3, size=8)])
        assert shares == pytest.approx({1: 0.5, 2: 0.25, 3: 0.25})

    def test_priority_fair(self):
        shares = Policy.parse("priority-fair").shares(
            [job(1, priority=3.0), job(2, priority=1.0)])
        assert shares == pytest.approx({1: 0.75, 2: 0.25})

    def test_user_fair_splits_users_then_jobs(self):
        # Fig 8(c): user A runs two jobs, user B runs one; A's jobs get a
        # quarter each, B's job gets half.
        shares = Policy.parse("user-fair").shares([
            job(1, user="A"), job(2, user="A"), job(3, user="B")])
        assert shares == pytest.approx({1: 0.25, 2: 0.25, 3: 0.5})

    def test_single_job_gets_everything(self):
        assert Policy.parse("size-fair").shares([job(7, size=999)]) == {7: 1.0}

    def test_no_jobs_empty(self):
        assert Policy.parse("job-fair").shares([]) == {}


class TestCompositeShares:
    def test_fig3b_user_then_job_fair(self):
        # Two users: one with 2 jobs, the other with 4 (Figs. 2-4).
        jobs = ([job(i, user="u1") for i in (1, 2)] +
                [job(i, user="u2") for i in (3, 4, 5, 6)])
        shares = Policy.parse("user-then-job-fair").shares(jobs)
        assert shares == pytest.approx(
            {1: 0.25, 2: 0.25, 3: 0.125, 4: 0.125, 5: 0.125, 6: 0.125})

    def test_fig9_user_then_size_fair(self):
        # §5.3.2: user 1 jobs of 1 and 2 nodes; user 2 jobs of 4 and 6.
        jobs = [job(1, user="u1", size=1), job(2, user="u1", size=2),
                job(3, user="u2", size=4), job(4, user="u2", size=6)]
        shares = Policy.parse("user-then-size-fair").shares(jobs)
        assert shares == pytest.approx(
            {1: 0.5 / 3, 2: 1.0 / 3, 3: 0.2, 4: 0.3})

    def test_group_user_size_three_tier(self):
        # Fig 11-style: 2 groups; group1 has 1 user, group2 has 3 users.
        jobs = [
            job(1, group="G1", user="u1", size=2),
            job(2, group="G1", user="u1", size=2),
            job(3, group="G2", user="u2", size=2),
            job(4, group="G2", user="u2", size=3),
            job(5, group="G2", user="u2", size=2),
            job(6, group="G2", user="u3", size=1),
            job(7, group="G2", user="u4", size=1),
        ]
        shares = Policy.parse("group-user-size-fair").shares(jobs)
        # Groups: 1/2 each. G1/u1: jobs 1,2 split evenly by size -> 1/4 each.
        assert shares[1] == pytest.approx(0.25)
        assert shares[2] == pytest.approx(0.25)
        # G2 users get 1/6 each; u2's jobs split 2:3:2.
        assert shares[3] == pytest.approx((1 / 6) * (2 / 7))
        assert shares[4] == pytest.approx((1 / 6) * (3 / 7))
        assert shares[6] == pytest.approx(1 / 6)
        assert shares[7] == pytest.approx(1 / 6)

    def test_shares_always_sum_to_one(self):
        jobs = [job(i, user=f"u{i % 3}", group=f"g{i % 2}", size=i + 1)
                for i in range(10)]
        for spec in ("job-fair", "size-fair", "user-fair",
                     "user-then-size-fair", "group-user-size-fair"):
            total = sum(Policy.parse(spec).shares(jobs).values())
            assert total == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 2), st.integers(1, 32),
              st.floats(0.1, 10.0)),
    min_size=1, max_size=12),
    st.sampled_from(["job-fair", "size-fair", "user-fair", "priority-fair",
                     "user-then-size-fair", "group-user-size-fair",
                     "group-then-user-fair"]))
def test_property_shares_partition_unity(raw_jobs, spec):
    """For any job population and policy: all shares positive, sum to 1."""
    jobs = [job(i, user=f"u{u}", group=f"g{g}", size=s, priority=p)
            for i, (u, g, s, p) in enumerate(raw_jobs)]
    shares = Policy.parse(spec).shares(jobs)
    assert set(shares) == {j.job_id for j in jobs}
    assert all(s > 0 for s in shares.values())
    assert sum(shares.values()) == pytest.approx(1.0)
