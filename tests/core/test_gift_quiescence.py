"""GIFT quiescence forecasting: skipping _allocate on provably-idle
epoch boundaries must change the skip counter and nothing else —
bit-identical dispatch traces, budgets, coupons, and epoch bookkeeping
with the toggle on or off."""

import pytest

from repro.core import JobInfo
from repro.core.baselines import GiftScheduler
from repro.core.baselines import gift as giftmod


class Req:
    __slots__ = ("job_id", "cost")

    def __init__(self, job_id, cost=1.0):
        self.job_id = job_id
        self.cost = cost


def _job(job_id):
    return JobInfo(job_id=job_id, user=f"u{job_id}")


def _state(sched):
    return (sched.epochs, sched._epoch_end, dict(sched._budgets),
            dict(sched._fair_last), dict(sched._arrived_last),
            dict(sched.coupons), sched.lp_calls)


def _drive_bursty(sched, bursts=6, idle_epochs=50):
    """Bursts of demand separated by long fully-idle stretches; returns
    the dispatch trace. The idle stretches cross many epoch boundaries
    with empty queues — the quiescent regime the skip targets."""
    sched.on_jobs_changed([_job(1), _job(2), _job(3)], 0.0)
    trace = []
    now = 0.0
    for burst in range(bursts):
        for _ in range(30):
            sched.enqueue(Req(1 + burst % 3, 1.0), now)
        for _ in range(20):
            sched.enqueue(Req(2, 2.0), now)
        while sched.queues:
            r = sched.dequeue(now)
            if r is None:
                # Backlogged but throttled: advance to the boundary.
                now += sched.mu
                continue
            trace.append((now, r.job_id, r.cost))
        # Idle stretch: periodic polls (e.g. a server's timer loop)
        # cross one quiescent boundary per call.
        for _ in range(idle_epochs):
            now += sched.mu
            assert sched.dequeue(now) is None
            trace.append((now, None, sched.epochs))
    return trace


@pytest.fixture
def _restore_toggle():
    yield
    giftmod.set_gift_quiescence_enabled(True)


def _run(enabled, **kwargs):
    giftmod.set_gift_quiescence_enabled(enabled)
    try:
        sched = GiftScheduler(capacity=100.0, mu=1.0)
        trace = _drive_bursty(sched, **kwargs)
        return trace, sched
    finally:
        giftmod.set_gift_quiescence_enabled(True)


def test_quiescent_skip_trace_identical(_restore_toggle):
    trace_on, on = _run(True)
    trace_off, off = _run(False)
    assert trace_on == trace_off
    assert _state(on) == _state(off)


def test_skips_happen_and_count_boundaries(_restore_toggle):
    trace_on, on = _run(True)
    _, off = _run(False)
    assert on.quiescent_skips > 0
    assert off.quiescent_skips == 0
    # Every boundary is either a full allocation or a skip; both modes
    # cross the same number of boundaries.
    assert on.epochs == off.epochs


def test_job_set_change_forces_full_allocation(_restore_toggle):
    giftmod.set_gift_quiescence_enabled(True)
    sched = GiftScheduler(capacity=100.0, mu=1.0)
    sched.on_jobs_changed([_job(1), _job(2)], 0.0)
    now = 0.0
    assert sched.dequeue(now) is None          # first boundary: full
    for _ in range(5):
        now += 1.0
        sched.dequeue(now)
    assert sched.quiescent_skips == 5
    # A membership change invalidates the standing budgets: the next
    # boundary must re-derive fair shares for the new set.
    sched.on_jobs_changed([_job(1), _job(2), _job(3)], now)
    now += 1.0
    sched.dequeue(now)
    assert sched.quiescent_skips == 5          # no skip on this boundary
    assert len(sched._budgets) == 3
    now += 1.0
    sched.dequeue(now)
    assert sched.quiescent_skips == 6          # skipping resumes


def test_served_traffic_blocks_skip(_restore_toggle):
    giftmod.set_gift_quiescence_enabled(True)
    sched = GiftScheduler(capacity=100.0, mu=1.0)
    sched.on_jobs_changed([_job(1)], 0.0)
    assert sched.dequeue(0.0) is None
    sched.dequeue(1.0)
    assert sched.quiescent_skips == 1
    sched.enqueue(Req(1, 3.0), 1.5)            # demand arrives mid-epoch
    r = sched.dequeue(2.0)                     # boundary: must reallocate
    assert r is not None and r.job_id == 1
    assert sched.quiescent_skips == 1
