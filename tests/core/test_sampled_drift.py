"""Error-tracked Fenwick rebuilds: the sampler rebuilds on *measured*
drift instead of a fixed update count, without weakening the
bit-identity guard (GUARD_MARGIN stays 16x above DRIFT_FRACTION)."""

from repro.core.sampled import (BacklogSampler, DRIFT_FRACTION,
                                GUARD_MARGIN, REBUILD_EVERY)


def _loaded(n=64):
    sampler = BacklogSampler()
    sampler.bulk_load(list(range(n)), [1.0] * n)
    return sampler


class TestDriftTracking:
    def test_margin_headroom_invariant(self):
        # The guard's proof needs the tracked drift cap well inside the
        # fallback margin; 2**-34 vs 2**-30 is the 16x documented.
        assert DRIFT_FRACTION * 16 <= GUARD_MARGIN

    def test_updates_accumulate_error_bound(self):
        sampler = _loaded()
        assert sampler._err_bound == 0.0
        for i in range(10):
            sampler.set_weight(i, 2.0)
        assert sampler._err_bound > 0.0

    def test_rebuild_resets_error_bound(self):
        sampler = _loaded()
        sampler.set_weight(0, 2.0)
        assert sampler._err_bound > 0.0
        sampler._rebuild_tree()
        assert sampler._err_bound == 0.0

    def test_light_churn_never_rebuilds(self):
        # 4096 updates would have forced 4 rebuilds under the old fixed
        # 1024-update cadence; tracked drift stays far under threshold.
        sampler = _loaded()
        rebuilds = sampler.rebuilds
        for i in range(4096):
            sampler.set_weight(i % 64, 1.0 + (i % 7) * 0.125)
        sampler.sample(0.5)
        assert sampler.rebuilds == rebuilds
        assert sampler.drift_rebuilds == 0

    def test_draw_rebuilds_when_bound_exceeded(self):
        sampler = _loaded()
        sampler.set_weight(0, 2.0)
        sampler._err_bound = 1.0  # force the bound over threshold
        job = sampler.sample(0.5)
        assert sampler.drift_rebuilds == 1
        assert sampler._err_bound == 0.0
        assert job is not None  # the draw itself still lands

    def test_draws_identical_across_forced_rebuild(self):
        a, b = _loaded(), _loaded()
        for i in range(50):
            a.set_weight(i, 1.0 + i * 0.01)
            b.set_weight(i, 1.0 + i * 0.01)
        b._err_bound = 1.0  # b rebuilds on its next draw, a does not
        draws = [0.013 * k % 1.0 for k in range(100)]
        assert [a.sample(u) for u in draws] == [b.sample(u) for u in draws]
        assert b.drift_rebuilds == 1

    def test_update_count_backstop_still_fires(self):
        sampler = _loaded(8)
        sampler._updates = REBUILD_EVERY - 1
        rebuilds = sampler.rebuilds
        sampler.set_weight(0, 3.0)
        assert sampler.rebuilds == rebuilds + 1
        assert sampler._updates == 0
