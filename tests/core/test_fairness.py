"""Tests for λ-delayed fairness: all-gather merge and unfairness metric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (JobInfo, JobStatusTable, Policy, all_gather_merge,
                        global_share_error, placement_shares,
                        total_variation)


def job(jid, size=1, user="u"):
    return JobInfo(job_id=jid, user=f"{user}{jid}", size=size)


class TestAllGather:
    def test_fig5_size_fair_convergence(self):
        """Fig. 5: server 1 sees jobs {1 (16 nodes), 2 (8)}, server 2 sees
        {1 (16), 3 (8)}. Locally job 1 gets 0.66; after sync every server
        computes the global 16:8:8 split and job 1 drops to 0.5."""
        policy = Policy.parse("size-fair")
        t1, t2 = JobStatusTable(), JobStatusTable()
        t1.observe(job(1, size=16), now=0.0)
        t1.observe(job(2, size=8), now=0.0)
        t2.observe(job(1, size=16), now=0.0)
        t2.observe(job(3, size=8), now=0.0)

        local1 = policy.shares(t1.active_jobs())
        assert local1[1] == pytest.approx(2 / 3)

        assert all_gather_merge([t1, t2]) is True
        for table in (t1, t2):
            shares = policy.shares(table.active_jobs())
            assert shares == pytest.approx({1: 0.5, 2: 0.25, 3: 0.25})

    def test_merge_is_order_independent(self):
        tables = [JobStatusTable() for _ in range(3)]
        for i, table in enumerate(tables):
            table.observe(job(i + 1), now=float(i))
        all_gather_merge(tables)
        views = [tuple(j.job_id for j in t.active_jobs()) for t in tables]
        assert views == [(1, 2, 3)] * 3

    def test_second_gather_is_noop(self):
        tables = [JobStatusTable(), JobStatusTable()]
        tables[0].observe(job(1), now=0.0)
        tables[1].observe(job(2), now=0.0)
        assert all_gather_merge(tables) is True
        assert all_gather_merge(tables) is False

    def test_single_table_noop(self):
        t = JobStatusTable()
        t.observe(job(1), now=0.0)
        assert all_gather_merge([t]) is False


class TestPlacementShares:
    def test_fig5_token_adjustment(self):
        """The paper's Fig. 5: job 1 on both servers drops from its local
        0.66 to 0.5 on each; jobs 2 and 3 rise to 0.5 on their server."""
        presence = {"s1": {1, 2}, "s2": {1, 3}}
        global_shares = {1: 0.5, 2: 0.25, 3: 0.25}
        rows = placement_shares(presence, global_shares)
        assert rows["s1"] == pytest.approx({1: 0.5, 2: 0.5})
        assert rows["s2"] == pytest.approx({1: 0.5, 3: 0.5})

    def test_uniform_presence_reduces_to_global_shares(self):
        presence = {"s1": {1, 2}, "s2": {1, 2}}
        global_shares = {1: 0.75, 2: 0.25}
        rows = placement_shares(presence, global_shares)
        for row in rows.values():
            assert row == pytest.approx(global_shares)

    def test_single_server(self):
        rows = placement_shares({"s1": {1, 2}}, {1: 0.6, 2: 0.4})
        assert rows["s1"] == pytest.approx({1: 0.6, 2: 0.4})

    def test_job_absent_from_server_gets_no_segment(self):
        rows = placement_shares({"s1": {1}, "s2": {2}},
                                {1: 0.5, 2: 0.5})
        assert rows["s1"] == pytest.approx({1: 1.0})
        assert rows["s2"] == pytest.approx({2: 1.0})

    def test_infeasible_entitlement_degrades_gracefully(self):
        # Job 1 is entitled to 90% globally but present on only one of
        # two servers: the best it can get is that whole server.
        rows = placement_shares({"s1": {1, 2}, "s2": {2}},
                                {1: 0.9, 2: 0.1})
        assert rows["s1"][1] > 0.9
        assert sum(rows["s1"].values()) == pytest.approx(1.0)

    def test_empty_inputs(self):
        assert placement_shares({}, {1: 1.0}) == {}
        assert placement_shares({"s1": set()}, {}) == {"s1": {}}

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 4), st.integers(2, 8), st.integers(0, 10_000))
    def test_property_rows_are_distributions(self, n_servers, n_jobs, seed):
        import numpy as np
        rng = np.random.default_rng(seed)
        presence = {}
        for s in range(n_servers):
            hosted = {j for j in range(n_jobs) if rng.random() < 0.6}
            presence[f"s{s}"] = hosted
        # Every job must be hosted somewhere.
        for j in range(n_jobs):
            presence[f"s{int(rng.integers(n_servers))}"].add(j)
        weights = rng.random(n_jobs) + 0.05
        shares = {j: float(w / weights.sum()) for j, w in enumerate(weights)}
        rows = placement_shares(presence, shares)
        for server, row in rows.items():
            assert set(row) <= presence[server]
            if row:
                assert sum(row.values()) == pytest.approx(1.0)
                assert all(v > 0 for v in row.values())


class TestMetrics:
    def test_total_variation_identical(self):
        assert total_variation({1: 0.5, 2: 0.5}, {1: 0.5, 2: 0.5}) == 0.0

    def test_total_variation_disjoint(self):
        assert total_variation({1: 1.0}, {2: 1.0}) == pytest.approx(1.0)

    def test_total_variation_partial(self):
        assert total_variation({1: 0.66, 2: 0.34},
                               {1: 0.5, 2: 0.25, 3: 0.25}) == pytest.approx(0.25)

    def test_global_share_error_is_worst_server(self):
        global_shares = {1: 0.5, 2: 0.25, 3: 0.25}
        locals_ = [{1: 0.5, 2: 0.25, 3: 0.25},  # converged server
                   {1: 2 / 3, 2: 1 / 3}]        # stale server
        err = global_share_error(locals_, global_shares)
        assert err == pytest.approx(total_variation(locals_[1], global_shares))

    def test_global_share_error_empty(self):
        assert global_share_error([], {1: 1.0}) == 0.0
