"""Event cancellation: semantics, queue hygiene, and the Ticker."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, cancel_enabled, set_cancel_enabled


@pytest.fixture(autouse=True)
def _cancel_on():
    set_cancel_enabled(True)
    yield
    set_cancel_enabled(True)


# -------------------------------------------------------------- semantics
def test_cancelled_timer_never_fires():
    eng = Engine()
    fired = []
    t = eng.timeout(1.0)
    t.callbacks.append(lambda ev: fired.append(ev))
    assert t.cancel() is True
    assert t.cancelled
    eng.run()
    assert fired == []
    assert eng.now == 0.0  # the corpse is skipped, not fired


def test_cancel_is_idempotent():
    eng = Engine()
    t = eng.timeout(1.0)
    assert t.cancel() is True
    assert t.cancel() is True
    assert eng.stats()["cancelled_total"] == 1


def test_cancel_after_trigger_raises():
    eng = Engine()
    ev = eng.event()
    ev.succeed(42)
    with pytest.raises(SimulationError):
        ev.cancel()


def test_cancel_after_fire_raises():
    eng = Engine()
    t = eng.timeout(1.0)
    eng.run()
    assert t.processed
    with pytest.raises(SimulationError):
        t.cancel()


def test_cancelled_event_cannot_be_scheduled():
    eng = Engine()
    ev = eng.event()
    ev.cancel()
    with pytest.raises(SimulationError):
        ev.succeed(1)


def test_toggle_off_is_noop():
    eng = Engine()
    fired = []
    t = eng.timeout(1.0)
    t.callbacks.append(lambda ev: fired.append(eng.now))
    set_cancel_enabled(False)
    assert not cancel_enabled()
    assert t.cancel() is False
    assert not t.cancelled
    eng.run()
    assert fired == [1.0]  # baseline semantics: the timer still fires


def test_cancelled_heads_skipped_in_order():
    eng = Engine()
    fired = []
    timers = [eng.timeout(float(i)) for i in range(6)]
    for t in timers:
        t.callbacks.append(lambda ev, t=t: fired.append(timers.index(t)))
    for i in (0, 2, 3, 5):
        timers[i].cancel()
    eng.run()
    assert fired == [1, 4]
    assert eng.now == 4.0


def test_peek_skips_corpses():
    eng = Engine()
    first = eng.timeout(1.0)
    eng.timeout(2.0)
    assert eng.peek() == 1.0
    first.cancel()
    assert eng.peek() == 2.0
    lone = eng.timeout(0.5)
    assert eng.peek() == 0.5
    lone.cancel()
    assert eng.peek() == 2.0


# ----------------------------------------------------------------- census
def test_stats_census_counts():
    eng = Engine()
    live = eng.timeout(5.0)
    dead = [eng.timeout(1.0) for _ in range(10)]
    for t in dead:
        t.cancel()
    s = eng.stats()
    assert s["eventq"] == "heap"
    assert s["pending"] == 11
    assert s["dead_pending"] == 10
    assert s["live_pending"] == 1
    assert s["cancelled_total"] == 10
    eng.run()
    assert live.processed
    assert eng.stats()["pending"] == 0
    assert eng.stats()["dead_pending"] == 0


def test_compaction_triggers_when_dead_dominates():
    eng = Engine()
    eng.timeout(10.0)
    doomed = [eng.timeout(5.0) for _ in range(3000)]
    for t in doomed:
        t.cancel()
    # Nothing compacts at cancel time (O(1) cancels)...
    assert eng.stats()["compactions"] == 0
    assert eng.stats()["dead_pending"] == 3000
    # ...but the first pops trip the dead-majority threshold.
    eng.timeout(0.0)
    eng.step()
    eng.step()
    s = eng.stats()
    assert s["compactions"] >= 1
    assert s["dead_pending"] == 0
    assert s["pending"] == 0
    assert eng.now == 10.0


def test_compaction_preserves_live_ordering():
    eng = Engine()
    fired = []
    for i in range(4000):
        t = eng.timeout(float(i % 7) + 1.0, value=i)
        if i % 3 == 0:
            t.callbacks.append(lambda ev: fired.append(ev.value))
        else:
            t.cancel()
    eng.run()
    expected = sorted((i for i in range(4000) if i % 3 == 0),
                      key=lambda i: (float(i % 7) + 1.0, i))
    assert fired == expected
    assert eng.stats()["compactions"] >= 1


# -------------------------------------------------- cancellation downstream
def test_resource_release_skips_cancelled_waiter():
    from repro.sim import Resource
    eng = Engine()
    res = Resource(eng, capacity=1)
    first = res.request()
    quitter = res.request()
    third = res.request()
    quitter.cancel()
    res.release(first)
    eng.run()
    assert third.processed and third.ok
    assert not quitter.processed


def test_store_dispatch_skips_cancelled_getter():
    from repro.sim import Store
    eng = Engine()
    store = Store(eng)
    quitter = store.get()
    keeper = store.get()
    quitter.cancel()
    store.put("x")
    eng.run()
    assert keeper.processed and keeper.value == "x"
    assert not quitter.processed


def test_lock_wake_skips_cancelled_waiter():
    from repro.fs.locking import RangeLockTable
    eng = Engine()
    table = RangeLockTable()
    assert table.try_lock_write(1, 0, 100, "a")
    ev_b, ev_c = eng.event(), eng.event()
    table.wait(1, ev_b, 0, 100, owner="b")
    table.wait(1, ev_c, 0, 100, owner="c")
    ev_b.cancel()
    table.unlock_write(1, "a")
    eng.run()
    assert ev_c.processed and ev_c.ok
    assert not ev_b.processed


# ------------------------------------------------------------------ ticker
def test_ticker_stop_ends_loop_and_cancels_sleep():
    eng = Engine()
    ticks = []
    ticker = eng.every(1.0, lambda: ticks.append(eng.now))
    eng.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    ticker.stop()
    assert eng.stats()["dead_pending"] == 1  # the abandoned sleep
    eng.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]
    assert ticker.processed  # the ticker process ended cleanly
    assert eng.stats()["pending"] == 0


def test_ticker_stop_is_idempotent():
    eng = Engine()
    ticker = eng.every(1.0, lambda: None)
    eng.run(until=1.5)
    ticker.stop()
    ticker.stop()
    eng.run()
    assert ticker.processed


def test_ticker_stop_before_start():
    eng = Engine()
    ticks = []
    ticker = eng.every(1.0, lambda: ticks.append(eng.now))
    ticker.stop()
    eng.run(until=5.0)
    assert ticks == []
    assert ticker.processed


def test_ticker_stop_from_within_tick():
    eng = Engine()
    ticks = []
    holder = {}

    def tick():
        ticks.append(eng.now)
        if len(ticks) == 2:
            holder["t"].stop()

    holder["t"] = eng.every(1.0, tick)
    eng.run(until=10.0)
    assert ticks == [1.0, 2.0]
    assert holder["t"].processed


def test_ticker_interval_start_delay_interplay():
    eng = Engine()
    ticks = []
    eng.every(2.0, lambda: ticks.append(eng.now), start_delay=0.5)
    eng.run(until=7.0)
    # First tick at start_delay, then strictly every interval after it.
    assert ticks == [0.5, 2.5, 4.5, 6.5]


def test_ticker_stop_with_cancel_disabled_still_stops():
    eng = Engine()
    ticks = []
    ticker = eng.every(1.0, lambda: ticks.append(eng.now))
    eng.run(until=1.5)
    set_cancel_enabled(False)
    ticker.stop()
    eng.run(until=6.0)
    # The abandoned sleep fires as a detached no-op; no further ticks.
    assert ticks == [1.0]
    assert ticker.processed


# ------------------------------------------------------- interrupt regression
def test_interrupt_behind_thousands_of_waiters():
    """Interrupting a process parked on a contended event is O(1):
    the detach must not disturb the other waiters or the event."""
    eng = Engine()
    gate = eng.event()
    woken = []

    def waiter(i):
        yield gate
        woken.append(i)

    def victim():
        try:
            yield gate
        except Exception:  # InterruptError
            woken.append("interrupted")

    n = 5000
    for i in range(n // 2):
        eng.process(waiter(i))
    victim_proc = eng.process(victim())
    for i in range(n // 2, n):
        eng.process(waiter(i))

    def driver():
        yield eng.timeout(1.0)
        victim_proc.interrupt("test")
        yield eng.timeout(1.0)
        gate.succeed("open")

    eng.process(driver())
    eng.run()
    assert woken[0] == "interrupted"
    assert sorted(w for w in woken[1:]) == list(range(n))


def test_interrupt_detach_keeps_condition_events_live():
    from repro.sim import AnyOf
    eng = Engine()
    results = []

    def racer():
        a, b = eng.timeout(1.0, "a"), eng.timeout(2.0, "b")
        got = yield AnyOf(eng, [a, b])
        results.append(got)

    eng.process(racer())
    eng.run()
    assert results == [["a"]]
