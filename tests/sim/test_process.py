"""Tests for events, processes, interrupts, and composite conditions."""

import pytest

from repro.errors import InterruptError, SimulationError
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


class TestEvent:
    def test_succeed_delivers_value(self, eng):
        got = []

        def proc():
            value = yield ev
            got.append(value)

        ev = eng.event()

        def trigger():
            yield eng.timeout(1.0)
            ev.succeed("payload")

        eng.process(proc())
        eng.process(trigger())
        eng.run()
        assert got == ["payload"]

    def test_double_succeed_raises(self, eng):
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_raises_inside_waiter(self, eng):
        caught = []

        def proc():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        ev = eng.event()
        eng.process(proc())
        ev.fail(RuntimeError("broken"))
        eng.run()
        assert caught == ["broken"]

    def test_fail_needs_exception(self, eng):
        ev = eng.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_unwaited_failure_propagates_unless_defused(self, eng):
        ev = eng.event()
        ev.fail(RuntimeError("nobody listening"))
        with pytest.raises(RuntimeError):
            eng.run()

        eng2 = Engine()
        ev2 = eng2.event()
        ev2.fail(RuntimeError("quiet"))
        ev2.defuse()
        eng2.run()  # no raise

    def test_value_before_trigger_raises(self, eng):
        ev = eng.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_yield_already_processed_event_resumes_immediately(self, eng):
        trail = []

        def proc():
            ev = eng.timeout(1.0, value="x")
            yield eng.timeout(2.0)
            assert ev.processed
            value = yield ev  # must not deadlock
            trail.append((eng.now, value))

        eng.process(proc())
        eng.run()
        assert trail == [(pytest.approx(2.0), "x")]


class TestProcess:
    def test_yield_non_event_raises_in_process(self, eng):
        def proc():
            yield 42

        p = eng.process(proc())
        with pytest.raises(SimulationError):
            eng.run()
        assert p.triggered and not p.ok

    def test_is_alive_lifecycle(self, eng):
        def proc():
            yield eng.timeout(1.0)

        p = eng.process(proc())
        assert p.is_alive
        eng.run()
        assert not p.is_alive
        assert p.ok

    def test_interrupt_wakes_blocked_process(self, eng):
        trail = []

        def victim():
            try:
                yield eng.timeout(100.0)
            except InterruptError as exc:
                trail.append((eng.now, exc.cause))

        def attacker(p):
            yield eng.timeout(1.0)
            p.interrupt(cause="reason")

        p = eng.process(victim())
        eng.process(attacker(p))
        eng.run()
        assert trail == [(pytest.approx(1.0), "reason")]

    def test_interrupt_finished_process_raises(self, eng):
        def quick():
            yield eng.timeout(0.1)

        p = eng.process(quick())
        eng.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self, eng):
        trail = []

        def victim():
            try:
                yield eng.timeout(100.0)
            except InterruptError:
                pass
            yield eng.timeout(1.0)
            trail.append(eng.now)

        def attacker(p):
            yield eng.timeout(2.0)
            p.interrupt()

        p = eng.process(victim())
        eng.process(attacker(p))
        eng.run()
        assert trail == [pytest.approx(3.0)]

    def test_process_failure_joins_as_exception(self, eng):
        caught = []

        def child():
            yield eng.timeout(1.0)
            raise KeyError("inner")

        def parent():
            try:
                yield eng.process(child())
            except KeyError:
                caught.append("yes")

        eng.process(parent())
        eng.run()
        assert caught == ["yes"]

    def test_non_generator_rejected(self, eng):
        with pytest.raises(SimulationError):
            eng.process(lambda: None)


class TestConditions:
    def test_all_of_waits_for_every_event(self, eng):
        done_at = []

        def proc():
            yield eng.all_of([eng.timeout(1.0), eng.timeout(3.0), eng.timeout(2.0)])
            done_at.append(eng.now)

        eng.process(proc())
        eng.run()
        assert done_at == [pytest.approx(3.0)]

    def test_any_of_fires_on_first(self, eng):
        done_at = []

        def proc():
            yield eng.any_of([eng.timeout(5.0), eng.timeout(1.0)])
            done_at.append(eng.now)

        eng.process(proc())
        eng.run()
        assert done_at == [pytest.approx(1.0)]

    def test_all_of_empty_fires_immediately(self, eng):
        done = []

        def proc():
            yield eng.all_of([])
            done.append(eng.now)

        eng.process(proc())
        eng.run()
        assert done == [pytest.approx(0.0)]

    def test_all_of_propagates_failure(self, eng):
        caught = []
        bad = eng.event()

        def proc():
            try:
                yield eng.all_of([eng.timeout(1.0), bad])
            except RuntimeError:
                caught.append(eng.now)

        eng.process(proc())
        bad.fail(RuntimeError("x"))
        eng.run()
        assert len(caught) == 1

    def test_all_of_collects_values(self, eng):
        got = []

        def proc():
            values = yield eng.all_of(
                [eng.timeout(1.0, value="a"), eng.timeout(2.0, value="b")])
            got.append(values)

        eng.process(proc())
        eng.run()
        assert got == [["a", "b"]]
