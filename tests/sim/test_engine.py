"""Unit tests for the DES kernel: clock, ordering, run/step semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


def test_clock_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_clock_custom_start():
    eng = Engine(start=5.0)
    assert eng.now == 5.0


def test_timeout_advances_clock():
    eng = Engine()

    def proc():
        yield eng.timeout(1.5)

    eng.process(proc())
    eng.run()
    assert eng.now == pytest.approx(1.5)


def test_events_fire_in_time_order():
    eng = Engine()
    order = []

    def proc(delay, tag):
        yield eng.timeout(delay)
        order.append(tag)

    eng.process(proc(3.0, "c"))
    eng.process(proc(1.0, "a"))
    eng.process(proc(2.0, "b"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    eng = Engine()
    order = []

    def proc(tag):
        yield eng.timeout(1.0)
        order.append(tag)

    for tag in ["first", "second", "third"]:
        eng.process(proc(tag))
    eng.run()
    assert order == ["first", "second", "third"]


def test_run_until_stops_clock_at_deadline():
    eng = Engine()

    def proc():
        yield eng.timeout(10.0)

    eng.process(proc())
    eng.run(until=4.0)
    assert eng.now == pytest.approx(4.0)
    # The event is still pending; continuing completes it.
    eng.run()
    assert eng.now == pytest.approx(10.0)


def test_run_until_past_raises():
    eng = Engine(start=5.0)
    with pytest.raises(SimulationError):
        eng.run(until=1.0)


def test_run_until_with_empty_queue_advances_clock():
    eng = Engine()
    eng.run(until=7.0)
    assert eng.now == pytest.approx(7.0)


def test_step_without_events_raises():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.step()


def test_peek_reports_next_event_time():
    eng = Engine()
    eng.timeout(2.5)
    assert eng.peek() == pytest.approx(2.5)


def test_peek_empty_is_inf():
    eng = Engine()
    assert eng.peek() == float("inf")


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.timeout(-1.0)


def test_stop_from_callback_halts_run():
    eng = Engine()
    seen = []

    def proc():
        yield eng.timeout(1.0)
        seen.append("early")
        eng.stop()
        seen.append("unreached")  # pragma: no cover

    def late():
        yield eng.timeout(2.0)
        seen.append("late")  # pragma: no cover

    eng.process(proc())
    eng.process(late())
    eng.run()
    assert seen == ["early"]


def test_call_at_runs_callback_at_time():
    eng = Engine()
    hits = []
    eng.call_at(3.0, lambda: hits.append(eng.now))
    eng.run()
    assert hits == [pytest.approx(3.0)]


def test_call_at_past_raises():
    eng = Engine(start=2.0)
    with pytest.raises(SimulationError):
        eng.call_at(1.0, lambda: None)


def test_every_ticks_at_interval():
    eng = Engine()
    ticks = []
    eng.every(1.0, lambda: ticks.append(eng.now))
    eng.run(until=3.5)
    assert ticks == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_every_with_start_delay():
    eng = Engine()
    ticks = []
    eng.every(2.0, lambda: ticks.append(eng.now), start_delay=0.5)
    eng.run(until=5.0)
    assert ticks == [pytest.approx(0.5), pytest.approx(2.5), pytest.approx(4.5)]


def test_every_rejects_nonpositive_interval():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.every(0.0, lambda: None)


def test_every_rejects_negative_start_delay():
    eng = Engine()
    with pytest.raises(SimulationError, match="start_delay"):
        eng.every(1.0, lambda: None, start_delay=-1.0)


def test_every_zero_start_delay_fires_immediately():
    eng = Engine()
    ticks = []
    eng.every(2.0, lambda: ticks.append(eng.now), start_delay=0.0)
    eng.run(until=5.0)
    assert ticks == [pytest.approx(0.0), pytest.approx(2.0), pytest.approx(4.0)]


def test_unhandled_process_exception_propagates():
    eng = Engine()

    def bad():
        yield eng.timeout(1.0)
        raise ValueError("boom")

    eng.process(bad())
    with pytest.raises(ValueError, match="boom"):
        eng.run()


def test_process_return_value_is_event_value():
    eng = Engine()
    results = []

    def child():
        yield eng.timeout(1.0)
        return 42

    def parent():
        value = yield eng.process(child())
        results.append(value)

    eng.process(parent())
    eng.run()
    assert results == [42]
