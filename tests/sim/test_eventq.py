"""Calendar event queue: unit coverage + heap-equivalence property test."""

import heapq
import random

import pytest

from repro.errors import SimulationError
from repro.sim import (
    CalendarEventQueue,
    Engine,
    default_eventq,
    set_default_eventq,
    set_cancel_enabled,
)


@pytest.fixture(autouse=True)
def _defaults():
    set_cancel_enabled(True)
    set_default_eventq(None)
    yield
    set_cancel_enabled(True)
    set_default_eventq(None)


class _Stub:
    """Minimal event standing in for sim Events in raw-queue tests."""

    __slots__ = ("_cancelled",)

    def __init__(self):
        self._cancelled = False


# ------------------------------------------------------------- raw queue
def test_rejects_degenerate_bucket_count():
    with pytest.raises(ValueError):
        CalendarEventQueue(n_buckets=1)


def test_empty_queue_peeks_and_pops_none():
    q = CalendarEventQueue()
    assert len(q) == 0
    assert q.peek() is None
    assert q.pop() is None


def test_pop_order_matches_heap_order():
    q = CalendarEventQueue(n_buckets=8)
    entries = [(float(t), s, _Stub())
               for s, t in enumerate([5, 1, 3, 1, 9, 0, 7, 2, 8, 4])]
    for e in entries:
        q.push(*e)
    drained = []
    while True:
        e = q.pop()
        if e is None:
            break
        drained.append(e)
    assert drained == sorted(entries, key=lambda e: (e[0], e[1]))
    assert len(q) == 0


def test_seq_breaks_time_ties():
    q = CalendarEventQueue(n_buckets=4)
    stubs = [_Stub() for _ in range(5)]
    for s in (3, 0, 4, 1, 2):
        q.push(1.0, s, stubs[s])
    assert [q.pop()[1] for _ in range(5)] == [0, 1, 2, 3, 4]


def test_late_arrival_lands_in_current_drain():
    q = CalendarEventQueue(n_buckets=4)
    for s, t in enumerate([0.0, 1.0, 2.0, 3.0]):
        q.push(t, s, _Stub())
    first = q.pop()
    assert first[:2] == (0.0, 0)
    # A push at-or-after the popped time but before the window's tail
    # must slot into the live drain without breaking ascending order.
    q.push(0.5, 99, _Stub())
    assert q.pop()[:2] == (0.5, 99)
    assert q.pop()[:2] == (1.0, 1)


def test_rollover_retunes_width_and_preserves_order():
    q = CalendarEventQueue(n_buckets=4)
    # Two regimes: a dense cluster near zero, a sparse tail far away.
    times = [0.001 * i for i in range(20)] + [1000.0 + 50.0 * i
                                              for i in range(20)]
    entries = [(t, s, _Stub()) for s, t in enumerate(times)]
    for e in reversed(entries):
        q.push(*e)
    drained = [q.pop() for _ in range(len(entries))]
    assert drained == sorted(entries, key=lambda e: (e[0], e[1]))
    assert q.pop() is None


def test_all_events_at_one_instant():
    q = CalendarEventQueue(n_buckets=4)
    for s in range(100):
        q.push(7.0, s, _Stub())
    assert [q.pop()[1] for _ in range(100)] == list(range(100))


def test_compact_drops_corpses_everywhere():
    q = CalendarEventQueue(n_buckets=4)
    stubs = {}
    for s in range(40):
        stubs[s] = _Stub()
        q.push(float(s), s, stubs[s])
    q.pop()  # prime the drain region
    for s in range(1, 40, 2):
        stubs[s]._cancelled = True
    assert q.compact() == 20  # every odd seq was a corpse
    assert len(q) == 19
    seqs = []
    while True:
        e = q.pop()
        if e is None:
            break
        seqs.append(e[1])
    assert seqs == [s for s in range(2, 40, 2)]


# ------------------------------------------------------------ engine glue
def test_engine_accepts_calendar_kind():
    eng = Engine(eventq="calendar")
    assert eng.stats()["eventq"] == "CalendarEventQueue"
    fired = []
    for d in (3.0, 1.0, 2.0):
        eng.timeout(d).callbacks.append(lambda ev, d=d: fired.append(d))
    eng.run()
    assert fired == [1.0, 2.0, 3.0]


def test_engine_accepts_duck_typed_queue():
    eng = Engine(eventq=CalendarEventQueue(n_buckets=16))
    eng.timeout(1.0)
    eng.run()
    assert eng.now == 1.0


def test_engine_rejects_unknown_eventq():
    with pytest.raises(SimulationError):
        Engine(eventq="splay")


def test_module_default_eventq_applies_to_new_engines():
    assert default_eventq() is None
    set_default_eventq("calendar")
    assert default_eventq() == "calendar"
    assert Engine().stats()["eventq"] == "CalendarEventQueue"
    set_default_eventq("heap")
    assert Engine().stats()["eventq"] == "heap"
    with pytest.raises(SimulationError):
        set_default_eventq("splay")


def test_calendar_engine_cancel_and_compaction():
    eng = Engine(eventq="calendar")
    eng.timeout(10.0)
    doomed = [eng.timeout(5.0) for _ in range(3000)]
    for t in doomed:
        t.cancel()
    eng.timeout(0.0)
    eng.step()
    eng.step()
    s = eng.stats()
    assert s["compactions"] >= 1
    assert s["dead_pending"] == 0
    assert eng.now == 10.0


# -------------------------------------------------------------- property
def _churn_script(eng, rng, log):
    """One seeded workload: timers, processes, cancels, interrupts."""

    def napper(tag, delays):
        try:
            for d in delays:
                yield eng.timeout(d)
                log.append(("nap", tag, eng.now))
        except Exception:
            log.append(("intr", tag, eng.now))

    procs = []
    for i in range(40):
        delays = [round(rng.uniform(0.1, 50.0), 3)
                  for _ in range(rng.randrange(1, 5))]
        procs.append(eng.process(napper(i, delays)))
    timers = []
    for i in range(400):
        t = eng.timeout(round(rng.uniform(0.0, 200.0), 3), value=i)
        t.callbacks.append(lambda ev: log.append(("t", ev.value, eng.now)))
        timers.append(t)
    for i in rng.sample(range(400), 150):
        timers[i].cancel()

    def saboteur():
        for victim in rng.sample(procs, 10):
            yield eng.timeout(round(rng.uniform(0.5, 20.0), 3))
            if victim.is_alive:
                victim.interrupt("chaos")

    eng.process(saboteur())


@pytest.mark.parametrize("seed", [7, 23, 1009])
def test_heap_and_calendar_fire_identically(seed):
    """Same seeded churn script on both queues: identical firing logs."""
    logs = []
    for kind in ("heap", "calendar"):
        eng = Engine(eventq=kind)
        log = []
        _churn_script(eng, random.Random(seed), log)
        eng.run()
        logs.append((log, eng.now))
    assert logs[0] == logs[1]


@pytest.mark.parametrize("seed", [3, 91])
def test_raw_queue_matches_heap_under_random_interleaving(seed):
    """Interleaved push/pop streams drain in identical (time, seq) order."""
    rng = random.Random(seed)
    cal = CalendarEventQueue(n_buckets=8)
    heap = []
    seq = 0
    clock = 0.0
    for _ in range(2000):
        if heap and rng.random() < 0.45:
            a = heapq.heappop(heap)
            b = cal.pop()
            assert b == a
            clock = a[0]
        else:
            when = clock + rng.choice((0.0, rng.uniform(0.0, 30.0)))
            entry = (when, seq, _Stub())
            seq += 1
            heapq.heappush(heap, entry)
            cal.push(*entry)
    while heap:
        assert cal.pop() == heapq.heappop(heap)
    assert cal.pop() is None
