"""Tests for Store, PriorityStore, Resource, and BandwidthPipe."""

import pytest

from repro.errors import SimulationError
from repro.sim import BandwidthPipe, Engine, PriorityStore, Resource, Store


@pytest.fixture
def eng():
    return Engine()


class TestStore:
    def test_fifo_order(self, eng):
        store = Store(eng)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self, eng):
        store = Store(eng)
        got = []

        def consumer():
            item = yield store.get()
            got.append((eng.now, item))

        def producer():
            yield eng.timeout(2.0)
            yield store.put("x")

        eng.process(consumer())
        eng.process(producer())
        eng.run()
        assert got == [(pytest.approx(2.0), "x")]

    def test_bounded_put_blocks_when_full(self, eng):
        store = Store(eng, capacity=1)
        trail = []

        def producer():
            yield store.put("a")
            trail.append(("a", eng.now))
            yield store.put("b")
            trail.append(("b", eng.now))

        def consumer():
            yield eng.timeout(5.0)
            yield store.get()

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert trail == [("a", pytest.approx(0.0)), ("b", pytest.approx(5.0))]

    def test_try_get_nonblocking(self, eng):
        store = Store(eng)
        assert store.try_get() is None
        store.put("v")
        eng.run()
        assert store.try_get() == "v"
        assert store.try_get() is None

    def test_capacity_must_be_positive(self, eng):
        with pytest.raises(SimulationError):
            Store(eng, capacity=0)

    def test_len_counts_items(self, eng):
        store = Store(eng)
        store.put(1)
        store.put(2)
        eng.run()
        assert len(store) == 2


class TestPriorityStore:
    def test_get_returns_smallest(self, eng):
        store = PriorityStore(eng)
        got = []

        def run():
            yield store.put((3, "c"))
            yield store.put((1, "a"))
            yield store.put((2, "b"))
            for _ in range(3):
                item = yield store.get()
                got.append(item[1])

        eng.process(run())
        eng.run()
        assert got == ["a", "b", "c"]

    def test_try_get_pops_min(self, eng):
        store = PriorityStore(eng)
        store.put((5, "z"))
        store.put((1, "a"))
        eng.run()
        assert store.try_get() == (1, "a")


class TestResource:
    def test_exclusive_access_serialises(self, eng):
        res = Resource(eng, capacity=1)
        trail = []

        def user(tag, hold):
            req = res.request()
            yield req
            trail.append((tag, "in", eng.now))
            yield eng.timeout(hold)
            res.release(req)
            trail.append((tag, "out", eng.now))

        eng.process(user("A", 2.0))
        eng.process(user("B", 1.0))
        eng.run()
        assert trail == [
            ("A", "in", pytest.approx(0.0)),
            ("A", "out", pytest.approx(2.0)),
            ("B", "in", pytest.approx(2.0)),
            ("B", "out", pytest.approx(3.0)),
        ]

    def test_capacity_allows_concurrency(self, eng):
        res = Resource(eng, capacity=2)
        starts = []

        def user(tag):
            req = res.request()
            yield req
            starts.append((tag, eng.now))
            yield eng.timeout(1.0)
            res.release(req)

        for tag in "abc":
            eng.process(user(tag))
        eng.run()
        assert starts == [
            ("a", pytest.approx(0.0)),
            ("b", pytest.approx(0.0)),
            ("c", pytest.approx(1.0)),
        ]

    def test_release_without_hold_raises(self, eng):
        res = Resource(eng)
        stray = eng.event()
        with pytest.raises(SimulationError):
            res.release(stray)

    def test_count_and_queued(self, eng):
        res = Resource(eng, capacity=1)
        r1 = res.request()
        res.request()
        assert res.count == 1
        assert res.queued == 1
        res.release(r1)
        assert res.count == 1  # waiter promoted
        assert res.queued == 0


class TestBandwidthPipe:
    def test_transfer_time_is_size_over_rate(self, eng):
        pipe = BandwidthPipe(eng, rate=100.0)
        done_at = []

        def proc():
            yield pipe.transfer(250.0)
            done_at.append(eng.now)

        eng.process(proc())
        eng.run()
        assert done_at == [pytest.approx(2.5)]

    def test_transfers_serialise(self, eng):
        pipe = BandwidthPipe(eng, rate=100.0)
        done = []

        def proc(tag, size):
            yield pipe.transfer(size)
            done.append((tag, eng.now))

        eng.process(proc("first", 100.0))
        eng.process(proc("second", 100.0))
        eng.run()
        assert done == [("first", pytest.approx(1.0)), ("second", pytest.approx(2.0))]

    def test_latency_added_after_serialisation(self, eng):
        pipe = BandwidthPipe(eng, rate=100.0, latency=0.5)
        done = []

        def proc():
            yield pipe.transfer(100.0)
            done.append(eng.now)

        eng.process(proc())
        eng.run()
        assert done == [pytest.approx(1.5)]

    def test_idle_pipe_restarts_from_now(self, eng):
        pipe = BandwidthPipe(eng, rate=100.0)
        done = []

        def proc():
            yield pipe.transfer(100.0)
            yield eng.timeout(10.0)  # pipe idles
            yield pipe.transfer(100.0)
            done.append(eng.now)

        eng.process(proc())
        eng.run()
        assert done == [pytest.approx(12.0)]

    def test_eta_matches_actual_completion(self, eng):
        pipe = BandwidthPipe(eng, rate=50.0, latency=0.1)
        eta = pipe.eta(100.0)
        done = []

        def proc():
            yield pipe.transfer(100.0)
            done.append(eng.now)

        eng.process(proc())
        eng.run()
        assert done == [pytest.approx(eta)]

    def test_bytes_moved_accumulates(self, eng):
        pipe = BandwidthPipe(eng, rate=10.0)
        pipe.transfer(30.0)
        pipe.transfer(20.0)
        assert pipe.bytes_moved == 50

    def test_invalid_parameters(self, eng):
        with pytest.raises(SimulationError):
            BandwidthPipe(eng, rate=0.0)
        with pytest.raises(SimulationError):
            BandwidthPipe(eng, rate=1.0, latency=-1.0)
        pipe = BandwidthPipe(eng, rate=1.0)
        with pytest.raises(SimulationError):
            pipe.transfer(-5.0)
