"""Tests for the named RNG registry and the tracer."""

import numpy as np
import pytest

from repro.sim import Engine, RngRegistry, Tracer, stable_hash


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=7).stream("tokens").random(5)
        b = RngRegistry(seed=7).stream("tokens").random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("tokens").random(5)
        b = RngRegistry(seed=2).stream("tokens").random(5)
        assert not np.array_equal(a, b)

    def test_streams_are_independent_by_name(self):
        reg = RngRegistry(seed=0)
        a = reg.stream("a").random(5)
        b = reg.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        reg = RngRegistry(seed=0)
        assert reg.stream("x") is reg.stream("x")

    def test_adding_consumer_does_not_perturb_existing(self):
        reg1 = RngRegistry(seed=3)
        first = reg1.stream("main").random(3)

        reg2 = RngRegistry(seed=3)
        reg2.stream("other").random(100)  # interleaved consumer
        second = reg2.stream("main").random(3)
        assert np.array_equal(first, second)

    def test_uniform_in_range(self):
        reg = RngRegistry(seed=0)
        for _ in range(100):
            u = reg.uniform("u")
            assert 0.0 <= u < 1.0

    def test_spawn_is_reproducible_and_distinct(self):
        parent = RngRegistry(seed=9)
        c1 = parent.spawn("child").stream("s").random(4)
        c2 = RngRegistry(seed=9).spawn("child").stream("s").random(4)
        assert np.array_equal(c1, c2)
        assert not np.array_equal(c1, parent.stream("s").random(4))

    def test_stable_hash_is_stable(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash("abc") != stable_hash("abd")


class TestTracer:
    def test_records_time_and_payload(self):
        eng = Engine()
        tr = Tracer(eng)

        def proc():
            yield eng.timeout(1.0)
            tr.emit("io.done", {"bytes": 10})

        eng.process(proc())
        eng.run()
        recs = list(tr.select("io.done"))
        assert len(recs) == 1
        assert recs[0].time == pytest.approx(1.0)
        assert recs[0].payload == {"bytes": 10}

    def test_enabled_filter(self):
        eng = Engine()
        tr = Tracer(eng, enabled={"keep"})
        tr.emit("keep", 1)
        tr.emit("drop", 2)
        assert len(tr) == 1

    def test_select_prefix(self):
        eng = Engine()
        tr = Tracer(eng)
        tr.emit("io.read", 1)
        tr.emit("io.write", 2)
        tr.emit("sync.gather", 3)
        assert len(list(tr.select_prefix("io."))) == 2

    def test_clear(self):
        eng = Engine()
        tr = Tracer(eng)
        tr.emit("x")
        tr.clear()
        assert len(tr) == 0

    def test_record_unpacks(self):
        eng = Engine()
        tr = Tracer(eng)
        tr.emit("cat", "pay")
        t, c, p = tr.records[0]
        assert (t, c, p) == (0.0, "cat", "pay")
