#!/usr/bin/env python
"""Compare a fresh ``BENCH_*.json`` against a committed baseline.

Prints a per-kernel GitHub-flavoured markdown table and exits non-zero
when any kernel's ``ops_per_s`` regressed by more than ``--threshold``
(default 15%) relative to the baseline, or when a baseline kernel is
missing from the current run. Improvements are reported. Kernels that
exist only in the current run have no baseline to gate against, so by
default they fail the comparison too — an unannounced name usually
means an accidental rename, which would otherwise silently drop the
kernel's regression gate. Pass ``--allow-new`` when the kernel set
legitimately grew (a PR adding kernels compared against an older
committed baseline); new kernels are then listed as ``new`` in the
table and do not gate.

When both revisions also have a ``SWEEP_<rev>.json`` scale-sweep
artifact next to their BENCH file (or in the repo root), a second,
informational per-ladder table compares the fast-path speedups and
delta savings across the population ladder. Sweep rows never gate:
speedup ratios are far noisier than single-kernel rates.
``--sweep-workspace DIR`` sources the *current* sweep rows straight
from a content-addressed experiment workspace (see
``repro.harness.sweep``) instead of a SWEEP file — useful right after
``python -m repro bench --scale-sweep`` populated the store.

Usage::

    python scripts/bench_compare.py CURRENT.json [BASELINE.json] \
        [--threshold 0.15] [--allow-new] [--md PATH] \
        [--sweep-workspace DIR]

With no explicit baseline, the newest committed ``BENCH_*.json`` (by
its ``generated_at`` stamp) in the repository root is used. ``--md``
additionally writes the tables to *PATH* (e.g. for a CI job summary).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def find_sweep(bench_doc: dict, bench_path: str) -> Optional[str]:
    """Path of the ``SWEEP_<rev>.json`` matching *bench_doc*, if any.

    Looks next to the bench file first, then in the repo root.
    """
    rev = bench_doc.get("rev")
    if not rev:
        return None
    for base in (os.path.dirname(os.path.abspath(bench_path)), REPO_ROOT):
        candidate = os.path.join(base, f"SWEEP_{rev}.json")
        if os.path.exists(candidate):
            return candidate
    return None


def sweep_from_workspace(workspace_dir: str) -> dict:
    """A SWEEP-shaped doc assembled from a content-addressed workspace."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.harness.sweep import sweep_doc_from_workspace
    from repro.harness.workspace import Workspace
    return sweep_doc_from_workspace(Workspace(workspace_dir))


def _sweep_cell(row: Optional[dict]) -> str:
    if row is None:
        return "—"
    if "speedup" in row:
        return f"{row['speedup']:.2f}x"
    if "root_in_bytes_per_epoch" in row:
        # λ-sync cost ladder: the coordinator/root inbound gather bytes
        # per epoch (the fan-in hotspot) plus the observed peak fan-in.
        return (f"{row['root_in_bytes_per_epoch']:,} B/ep root-in, "
                f"fan-in {row['max_fanin']}")
    if "delta_saved_frac" in row:
        return f"{row['delta_saved_frac']:.1%} saved"
    return "?"


def _sweep_key(row: dict) -> Tuple:
    """Row key within a ladder: population plus any layout variant.

    Sync-ladder rows carry a ``mode`` (flat/tree, optionally with the
    quiescence skip active), so the same cluster size appears once per
    layout rather than the layouts overwriting each other.
    """
    tag = row.get("mode", "")
    if tag and row.get("quiescent_skips"):
        tag += "+skip"
    return (row.get("population"), tag)


def sweep_compare(current: dict, baseline: dict) -> List[str]:
    """Markdown rows comparing two SWEEP docs per ladder point.

    Informational only — fast-path speedups are host-noise-sensitive,
    so sweep drift never fails the comparison.
    """
    rows = ["| ladder | n | baseline | current |",
            "|---|---:|---:|---:|"]
    cur_sweep = current.get("sweep", {})
    base_sweep = baseline.get("sweep", {})
    for name in sorted(set(cur_sweep) | set(base_sweep)):
        cur = {_sweep_key(r): r for r in cur_sweep.get(name, [])}
        base = {_sweep_key(r): r for r in base_sweep.get(name, [])}
        for key in sorted(set(cur) | set(base),
                          key=lambda k: (k[0] or 0, k[1])):
            n, tag = key
            label = f"{n} {tag}".rstrip()
            rows.append(f"| {name} | {label} | {_sweep_cell(base.get(key))} | "
                        f"{_sweep_cell(cur.get(key))} |")
    return rows


def newest_committed_baseline(exclude: str) -> str:
    candidates = [p for p in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))
                  if os.path.abspath(p) != os.path.abspath(exclude)]
    if not candidates:
        raise SystemExit("no committed BENCH_*.json baseline found")
    return max(candidates, key=lambda p: load(p).get("generated_at", ""))


def compare(current: dict, baseline: dict, threshold: float,
            allow_new: bool = False) -> Tuple[List[str], List[Tuple[str, str]]]:
    """Build the markdown table rows and the list of failures."""
    rows = ["| kernel | baseline ops/s | current ops/s | ratio | status |",
            "|---|---:|---:|---:|---|"]
    failures: List[Tuple[str, str]] = []
    base_results = baseline.get("results", {})
    cur_results = current.get("results", {})

    for name, base in sorted(base_results.items()):
        cur = cur_results.get(name)
        if cur is None:
            rows.append(f"| {name} | — | — | — | **MISSING** |")
            failures.append((name, "kernel missing from current run"))
            continue
        base_rate = base.get("ops_per_s", 0)
        cur_rate = cur.get("ops_per_s", 0)
        if base_rate <= 0:
            continue
        ratio = cur_rate / base_rate
        if ratio < 1.0 - threshold:
            status = "**REGRESSION**"
            failures.append(
                (name, f"{base_rate:,.0f} -> {cur_rate:,.0f} ops/s "
                       f"({ratio:.2f}x)"))
        elif ratio >= 1.0 + threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append(f"| {name} | {base_rate:,.0f} | {cur_rate:,.0f} | "
                    f"{ratio:.2f}x | {status} |")

    for name in sorted(set(cur_results) - set(base_results)):
        cur_rate = cur_results[name].get("ops_per_s", 0)
        if allow_new:
            rows.append(f"| {name} | — | {cur_rate:,.0f} | — | new |")
        else:
            rows.append(f"| {name} | — | {cur_rate:,.0f} | — | **NEW** |")
            failures.append(
                (name, "kernel absent from baseline (accidental rename? "
                       "pass --allow-new if intentionally added)"))
    return rows, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH json")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="baseline BENCH json (default: newest committed)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated fractional regression (0.15 = 15%%)")
    parser.add_argument("--allow-new", action="store_true",
                        help="kernels absent from the baseline are listed "
                             "as informational 'new' rows instead of "
                             "failing the comparison")
    parser.add_argument("--md", default=None,
                        help="also write the markdown table to this path")
    parser.add_argument("--sweep-workspace", default=None,
                        help="read the current scale-sweep rows from this "
                             "content-addressed workspace dir instead of a "
                             "SWEEP_<rev>.json file")
    args = parser.parse_args(argv)

    current = load(args.current)
    baseline_path = args.baseline or newest_committed_baseline(args.current)
    baseline = load(baseline_path)

    rows, failures = compare(current, baseline, args.threshold,
                             allow_new=args.allow_new)
    table = "\n".join(rows)

    print(f"current  rev={current.get('rev')} ({args.current})")
    print(f"baseline rev={baseline.get('rev')} ({baseline_path})")
    print(f"threshold: {args.threshold:.0%} regression\n")
    print(table)

    # Informational per-ladder scale-sweep comparison (never gates).
    if args.sweep_workspace:
        cur_sweep = sweep_from_workspace(args.sweep_workspace)
        cur_sweep_src = f"workspace {args.sweep_workspace}"
    else:
        cur_sweep_path = find_sweep(current, args.current)
        cur_sweep = load(cur_sweep_path) if cur_sweep_path else None
        cur_sweep_src = cur_sweep_path or ""
    base_sweep_path = find_sweep(baseline, baseline_path)
    base_sweep = load(base_sweep_path) if base_sweep_path else None
    sweep_table = None
    if cur_sweep is not None and cur_sweep.get("sweep") and \
            base_sweep is not None:
        sweep_table = "\n".join(sweep_compare(cur_sweep, base_sweep))
        print(f"\nscale sweep: {cur_sweep_src} vs {base_sweep_path}\n")
        print(sweep_table)

    if args.md:
        with open(args.md, "w") as fh:
            fh.write(f"**bench:** `{current.get('rev')}` vs "
                     f"`{baseline.get('rev')}` "
                     f"(threshold {args.threshold:.0%})\n\n")
            fh.write(table + "\n")
            if sweep_table is not None:
                fh.write("\n**scale sweep** (informational)\n\n")
                fh.write(sweep_table + "\n")

    if failures:
        print(f"\nFAIL: {len(failures)} kernel(s) regressed beyond "
              f"{args.threshold:.0%} or changed the kernel set:")
        for name, detail in failures:
            print(f"  - {name}: {detail}")
        return 1
    print("\nOK: no kernel regressed beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
