#!/usr/bin/env python
"""Compare a fresh ``BENCH_*.json`` against a committed baseline.

Prints a per-kernel GitHub-flavoured markdown table and exits non-zero
when any kernel's ``ops_per_s`` regressed by more than ``--threshold``
(default 15%) relative to the baseline, or when a baseline kernel is
missing from the current run. Improvements are reported. Kernels that
exist only in the current run have no baseline to gate against, so by
default they fail the comparison too — an unannounced name usually
means an accidental rename, which would otherwise silently drop the
kernel's regression gate. Pass ``--allow-new`` when the kernel set
legitimately grew (a PR adding kernels compared against an older
committed baseline); new kernels are then listed as ``new`` in the
table and do not gate.

Usage::

    python scripts/bench_compare.py CURRENT.json [BASELINE.json] \
        [--threshold 0.15] [--allow-new] [--md PATH]

With no explicit baseline, the newest committed ``BENCH_*.json`` (by
its ``generated_at`` stamp) in the repository root is used. ``--md``
additionally writes the table to *PATH* (e.g. for a CI job summary).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def newest_committed_baseline(exclude: str) -> str:
    candidates = [p for p in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))
                  if os.path.abspath(p) != os.path.abspath(exclude)]
    if not candidates:
        raise SystemExit("no committed BENCH_*.json baseline found")
    return max(candidates, key=lambda p: load(p).get("generated_at", ""))


def compare(current: dict, baseline: dict, threshold: float,
            allow_new: bool = False) -> Tuple[List[str], List[Tuple[str, str]]]:
    """Build the markdown table rows and the list of failures."""
    rows = ["| kernel | baseline ops/s | current ops/s | ratio | status |",
            "|---|---:|---:|---:|---|"]
    failures: List[Tuple[str, str]] = []
    base_results = baseline.get("results", {})
    cur_results = current.get("results", {})

    for name, base in sorted(base_results.items()):
        cur = cur_results.get(name)
        if cur is None:
            rows.append(f"| {name} | — | — | — | **MISSING** |")
            failures.append((name, "kernel missing from current run"))
            continue
        base_rate = base.get("ops_per_s", 0)
        cur_rate = cur.get("ops_per_s", 0)
        if base_rate <= 0:
            continue
        ratio = cur_rate / base_rate
        if ratio < 1.0 - threshold:
            status = "**REGRESSION**"
            failures.append(
                (name, f"{base_rate:,.0f} -> {cur_rate:,.0f} ops/s "
                       f"({ratio:.2f}x)"))
        elif ratio >= 1.0 + threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append(f"| {name} | {base_rate:,.0f} | {cur_rate:,.0f} | "
                    f"{ratio:.2f}x | {status} |")

    for name in sorted(set(cur_results) - set(base_results)):
        cur_rate = cur_results[name].get("ops_per_s", 0)
        if allow_new:
            rows.append(f"| {name} | — | {cur_rate:,.0f} | — | new |")
        else:
            rows.append(f"| {name} | — | {cur_rate:,.0f} | — | **NEW** |")
            failures.append(
                (name, "kernel absent from baseline (accidental rename? "
                       "pass --allow-new if intentionally added)"))
    return rows, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH json")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="baseline BENCH json (default: newest committed)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated fractional regression (0.15 = 15%%)")
    parser.add_argument("--allow-new", action="store_true",
                        help="kernels absent from the baseline are listed "
                             "as informational 'new' rows instead of "
                             "failing the comparison")
    parser.add_argument("--md", default=None,
                        help="also write the markdown table to this path")
    args = parser.parse_args(argv)

    current = load(args.current)
    baseline_path = args.baseline or newest_committed_baseline(args.current)
    baseline = load(baseline_path)

    rows, failures = compare(current, baseline, args.threshold,
                             allow_new=args.allow_new)
    table = "\n".join(rows)

    print(f"current  rev={current.get('rev')} ({args.current})")
    print(f"baseline rev={baseline.get('rev')} ({baseline_path})")
    print(f"threshold: {args.threshold:.0%} regression\n")
    print(table)

    if args.md:
        with open(args.md, "w") as fh:
            fh.write(f"**bench:** `{current.get('rev')}` vs "
                     f"`{baseline.get('rev')}` "
                     f"(threshold {args.threshold:.0%})\n\n")
            fh.write(table + "\n")

    if failures:
        print(f"\nFAIL: {len(failures)} kernel(s) regressed beyond "
              f"{args.threshold:.0%} or changed the kernel set:")
        for name, detail in failures:
            print(f"  - {name}: {detail}")
        return 1
    print("\nOK: no kernel regressed beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
