#!/usr/bin/env python
"""Compare a fresh ``BENCH_*.json`` against a committed baseline.

Exits non-zero when any kernel's ``ops_per_s`` regressed by more than
``--threshold`` (default 15%) relative to the baseline. Improvements
and new kernels are reported but never fail the check.

Usage::

    python scripts/bench_compare.py CURRENT.json [BASELINE.json] \
        [--threshold 0.15]

With no explicit baseline, the newest committed ``BENCH_*.json`` (by
its ``generated_at`` stamp) in the repository root is used.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def newest_committed_baseline(exclude: str) -> str:
    candidates = [p for p in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))
                  if os.path.abspath(p) != os.path.abspath(exclude)]
    if not candidates:
        raise SystemExit("no committed BENCH_*.json baseline found")
    return max(candidates, key=lambda p: load(p).get("generated_at", ""))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH json")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="baseline BENCH json (default: newest committed)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated fractional regression (0.15 = 15%%)")
    args = parser.parse_args(argv)

    current = load(args.current)
    baseline_path = args.baseline or newest_committed_baseline(args.current)
    baseline = load(baseline_path)

    print(f"current  rev={current.get('rev')} ({args.current})")
    print(f"baseline rev={baseline.get('rev')} ({baseline_path})")
    print(f"threshold: {args.threshold:.0%} regression\n")
    header = f"{'kernel':32s} {'baseline/s':>14s} {'current/s':>14s} {'ratio':>7s}"
    print(header)
    print("-" * len(header))

    regressions = []
    for name, base in sorted(baseline.get("results", {}).items()):
        cur = current.get("results", {}).get(name)
        if cur is None:
            print(f"{name:32s} {'(missing in current)':>14s}")
            regressions.append((name, "kernel missing from current run"))
            continue
        base_rate, cur_rate = base.get("ops_per_s", 0), cur.get("ops_per_s", 0)
        if base_rate <= 0:
            continue
        ratio = cur_rate / base_rate
        flag = ""
        if ratio < 1.0 - args.threshold:
            flag = "  <-- REGRESSION"
            regressions.append(
                (name, f"{base_rate:,.0f} -> {cur_rate:,.0f} ops/s "
                       f"({ratio:.2f}x)"))
        print(f"{name:32s} {base_rate:>14,.0f} {cur_rate:>14,.0f} "
              f"{ratio:>6.2f}x{flag}")

    for name in sorted(set(current.get("results", {}))
                       - set(baseline.get("results", {}))):
        print(f"{name:32s} {'(new kernel)':>14s}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} kernel(s) regressed "
              f"beyond {args.threshold:.0%}:")
        for name, detail in regressions:
            print(f"  - {name}: {detail}")
        return 1
    print("\nOK: no kernel regressed beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
