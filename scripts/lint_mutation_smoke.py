#!/usr/bin/env python
"""Mutation smoke test for the whole-program lint rules.

A clean sweep is only trustworthy if the rules demonstrably catch the
regressions they exist for. This script copies ``src/`` to a temp
directory, seeds one defect at a time, and asserts the lint run fails
with the expected rule:

* ``proto``: disable the ``tpull`` branch of
  ``Controller.handle_sync`` (simulates deleting a tree-sync handler)
  -> PROTO101 on every tpull send site.
* ``trace``: add a presence-map write to the hash-skip fast path in
  ``Controller._apply_push`` (a toggle-guarded trace-state mutation)
  -> TRACE101 on the guard.

Each mutation is a textual anchor replacement; if an anchor stops
matching after a refactor the script fails loudly rather than passing
vacuously. Exit 0 iff both mutants are caught.

Usage: ``PYTHONPATH=src python scripts/lint_mutation_smoke.py``
"""

import os
import shutil
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.lint.runner import lint_paths  # noqa: E402

CONTROLLER = os.path.join("repro", "bb", "controller.py")

MUTATIONS = [
    {
        "name": "delete tree-sync handler branch",
        "file": CONTROLLER,
        "anchor": 'elif kind == "tpull":',
        "replacement": 'elif kind == "tpull-disabled":',
        "expect_rule": "PROTO101",
        "expect_fragment": "tpull",
    },
    {
        "name": "trace-state write under toggle guard",
        "file": CONTROLLER,
        "anchor": "self.push_hash_skips += 1",
        "replacement": ("self.push_hash_skips += 1\n"
                        "            self.local_jobs.add(body['host'])"),
        "expect_rule": "TRACE101",
        "expect_fragment": "local_jobs",
    },
]


def run_mutant(mutation):
    workdir = tempfile.mkdtemp(prefix="lint-smoke-")
    try:
        mutated_src = os.path.join(workdir, "src")
        shutil.copytree(os.path.join(ROOT, "src"), mutated_src,
                        ignore=shutil.ignore_patterns("__pycache__"))
        target = os.path.join(mutated_src, mutation["file"])
        with open(target, "r", encoding="utf-8") as fh:
            source = fh.read()
        if mutation["anchor"] not in source:
            print(f"FAIL [{mutation['name']}]: anchor not found in "
                  f"{mutation['file']} — update the smoke script to "
                  "match the refactored code")
            return False
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(source.replace(mutation["anchor"],
                                    mutation["replacement"], 1))
        result = lint_paths([mutated_src])
        hits = [f for f in result.new
                if f.rule == mutation["expect_rule"]
                and mutation["expect_fragment"] in f.message]
        if not hits:
            print(f"FAIL [{mutation['name']}]: expected a "
                  f"{mutation['expect_rule']} finding mentioning "
                  f"{mutation['expect_fragment']!r}; got:")
            for f in result.new:
                print("   ", f.render())
            return False
        print(f"ok   [{mutation['name']}]: caught by "
              f"{mutation['expect_rule']} ({hits[0].message[:72]}...)")
        return True
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main():
    ok = all([run_mutant(m) for m in MUTATIONS])
    if ok:
        print("mutation smoke: all seeded defects caught")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
