"""Legacy setup entry point.

Kept because the offline environment has no ``wheel`` package, so pip must
use the ``setup.py develop`` editable path instead of PEP 517.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "ThemisIO reproduction: fine-grained policy-driven I/O sharing "
        "for burst buffers (SC 2023)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy"],
)
