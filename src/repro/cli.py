"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``
    List the reproducible paper figures.
``figure NAME``
    Run one figure experiment and print its paper-style report
    (e.g. ``python -m repro figure fig08a --scale 0.1``).
``policies``
    List accepted sharing-policy spellings with their parsed levels.
``sharing``
    Ad-hoc two-phase sharing run: ``--policy size-fair --jobs
    4:alice,1:bob`` runs one job per entry (``nodes:user[:group]``),
    first job for the whole window, the rest joining a quarter in.
``faults``
    Availability scenario: N jobs through one server crash + restart
    with journaling, log-structured storage and fault-tolerant clients
    enabled; prints recovery time, fairness through the outage, and the
    run's fault counters.
``repair``
    Repair-vs-fairness study: erasure-coded jobs burst through a
    mid-run server crash, once per sharing policy; prints the policy x
    metric matrix (foreground slowdown, repair completion, loss
    counters) and whether size-fair starves the size-1 repair job.
``bench``
    Run the hot-path benchmark kernels and write ``BENCH_<rev>.json``
    (see :mod:`repro.bench`; compare with ``scripts/bench_compare.py``).
``sweep``
    Expand a declarative sweep (JSON spec file or ``--grid`` name) and
    run it through the content-addressed workspace: unchanged points
    are cache hits, cold points fan out over ``--jobs`` processes, and
    the summary reports hits/misses/speedup plus the results digest
    (see :mod:`repro.harness.sweep`).
``lint``
    Static determinism & sim-safety analysis over the tree (see
    :mod:`repro.lint` and DESIGN.md §9); exits non-zero on new
    violations. ``python -m repro lint --list-rules`` prints the
    catalogue.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core.policy import Policy
from .errors import ReproError
from .harness import experiments as exps
from .harness.config import JobRun
from .harness.experiments import REPAIR_POLICIES, run_sharing_experiment
from .harness.sweep import BUILTIN_GRIDS
from .units import fmt_bw
from .workloads import JobSpec, WriteReadCycle
from .units import MB

__all__ = ["main", "FIGURES"]


def _figure_workspace(args):
    """The figure ladders' optional workspace (``--workspace DIR``)."""
    if getattr(args, "workspace", None):
        from .harness.workspace import Workspace
        return Workspace(args.workspace)
    return None


#: figure name -> (callable, kwargs builder from args)
FIGURES = {
    "fig01": lambda a: exps.fig01_interference(seed=a.seed),
    "fig07": lambda a: exps.fig07_scaling(
        workspace=_figure_workspace(a), jobs=a.jobs),
    "fig08a": lambda a: exps.fig08_primitive("size-fair", scale=a.scale,
                                             seed=a.seed),
    "fig08b": lambda a: exps.fig08_primitive("job-fair", scale=a.scale,
                                             seed=a.seed),
    "fig08c": lambda a: exps.fig08c_user_fair(scale=a.scale, seed=a.seed),
    "fig09": lambda a: exps.fig09_user_then_size(scale=a.scale, seed=a.seed),
    "fig10": lambda a: exps.fig10_group_user_size(scale=a.scale, seed=a.seed),
    "fig12": lambda a: exps.fig12_baselines(scale=a.scale, seed=a.seed),
    "fig13": lambda a: exps.fig13_applications(seed=a.seed),
    "fig14": lambda a: exps.fig14_lambda(
        seed=a.seed, workspace=_figure_workspace(a), jobs=a.jobs),
    "datawarp": lambda a: exps.related_datawarp(seed=a.seed),
}

_POLICY_EXAMPLES = [
    "job-fair", "size-fair", "user-fair", "priority-fair", "group-fair",
    "user-then-job-fair", "user-then-size-fair", "group-then-user-fair",
    "group-user-then-size-fair", "group-user-size-fair",
]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ThemisIO reproduction: run paper experiments and "
                    "ad-hoc sharing studies.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list reproducible figures")
    sub.add_parser("policies", help="list sharing-policy spellings")

    fig = sub.add_parser("figure", help="run one figure experiment")
    fig.add_argument("name", choices=sorted(FIGURES))
    fig.add_argument("--scale", type=float, default=0.1,
                     help="timeline scale vs the paper's 60 s (default 0.1)")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--jobs", type=int, default=1,
                     help="parallel workers for point-structured figures "
                          "(fig07, fig14)")
    fig.add_argument("--workspace", default=None,
                     help="cache fig07/fig14 cells in this workspace dir")

    share = sub.add_parser("sharing", help="ad-hoc two-phase sharing run")
    share.add_argument("--policy", default="size-fair",
                       help="policy string, or fifo/gift/tbf")
    share.add_argument("--jobs", default="4:alice,1:bob",
                       help="comma list of nodes:user[:group] entries")
    share.add_argument("--scale", type=float, default=0.1)
    share.add_argument("--seed", type=int, default=0)
    share.add_argument("--servers", type=int, default=1)

    faults = sub.add_parser(
        "faults", help="availability run through a server crash + restart")
    faults.add_argument("--jobs", type=int, default=3,
                        help="number of concurrent jobs (default 3)")
    faults.add_argument("--servers", type=int, default=2)
    faults.add_argument("--duration", type=float, default=6.0)
    faults.add_argument("--crash-at", type=float, default=2.0)
    faults.add_argument("--restart-at", type=float, default=3.5)
    faults.add_argument("--seed", type=int, default=0)

    repair = sub.add_parser(
        "repair", help="repair-vs-fairness study: erasure-coded burst "
                       "through a crash, one run per policy")
    repair.add_argument("--policies", default=",".join(REPAIR_POLICIES),
                        help="comma list of policies (default: "
                             f"{','.join(REPAIR_POLICIES)})")
    repair.add_argument("--duration", type=float, default=6.0)
    repair.add_argument("--crash-at", type=float, default=2.0)
    repair.add_argument("--seed", type=int, default=0)
    repair.add_argument("--jobs", type=int, default=1,
                        help="parallel workers, one policy per point")
    repair.add_argument("--workspace", default=None,
                        help="cache policy points in this workspace dir")

    sub.add_parser(
        "lint", add_help=False,
        help="static determinism & sim-safety analysis (repro.lint)")

    bench = sub.add_parser(
        "bench", help="run benchmark kernels, write BENCH_<rev>.json")
    bench.add_argument("--quick", action="store_true",
                       help="fewer rounds / smaller system run (CI smoke)")
    bench.add_argument("--out", default=None,
                       help="output path (default BENCH_<rev>.json in cwd)")
    bench.add_argument("--scale-sweep", action="store_true",
                       help="sweep scale-regime kernels across populations "
                            "with fast paths on/off (writes SWEEP_<rev>.json)")
    bench.add_argument("--jobs", type=int, default=1,
                       help="parallel workers for cold --scale-sweep cells")
    bench.add_argument("--workspace", default=".workspace",
                       help="content-addressed store for --scale-sweep "
                            "cells (default .workspace)")
    bench.add_argument("--no-workspace", action="store_true",
                       help="compute every sweep cell, bypassing the store")
    bench.add_argument("--rerun", action="store_true",
                       help="invalidate stored sweep cells before running")

    sweep = sub.add_parser(
        "sweep", help="run a declarative sweep through the "
                      "content-addressed workspace")
    sweep.add_argument("spec", nargs="?", default=None,
                       help="JSON sweep spec file (default: --grid)")
    sweep.add_argument("--grid", default="quick",
                       choices=sorted(BUILTIN_GRIDS),
                       help="built-in grid to run when no spec file is given")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="parallel workers for cold points (default 1)")
    sweep.add_argument("--workspace", default=".workspace",
                       help="content-addressed store directory")
    sweep.add_argument("--no-workspace", action="store_true",
                       help="compute every point, bypassing the store")
    sweep.add_argument("--rerun", action="store_true",
                       help="invalidate this sweep's stored points first")
    sweep.add_argument("--json", default=None, dest="json_out",
                       help="also write the run summary (hits/misses/"
                            "digest) to this path")
    return parser


def _parse_jobs(spec: str) -> List[JobSpec]:
    jobs = []
    for idx, entry in enumerate(spec.split(",")):
        parts = entry.strip().split(":")
        if len(parts) < 2:
            raise ReproError(
                f"bad job entry {entry!r}: expected nodes:user[:group]")
        nodes = int(parts[0])
        user = parts[1]
        group = parts[2] if len(parts) > 2 else "g0"
        jobs.append(JobSpec(job_id=idx + 1, user=user, group=group,
                            nodes=nodes))
    return jobs


def _cmd_figures() -> int:
    for name in sorted(FIGURES):
        print(name)
    return 0


def _cmd_policies() -> int:
    width = max(len(s) for s in _POLICY_EXAMPLES)
    for spec in _POLICY_EXAMPLES:
        policy = Policy.parse(spec)
        levels = " -> ".join(level.value for level in policy.levels)
        print(f"{spec.ljust(width)}  {levels}")
    return 0


def _cmd_figure(args) -> int:
    result = FIGURES[args.name](args)
    print(result.report())
    return 0


def _cmd_sharing(args) -> int:
    specs = _parse_jobs(args.jobs)
    window = 60.0 * args.scale
    join_at = window / 4
    runs = []
    for i, spec in enumerate(specs):
        start = 0.0 if i == 0 else join_at
        runs.append(JobRun(
            spec=spec,
            workload=WriteReadCycle(file_size=10 * MB, streams_per_node=16),
            start=start, stop=window))
    result = run_sharing_experiment(args.policy, runs,
                                    n_servers=args.servers,
                                    scale=args.scale, seed=args.seed)
    interval = result.config.sample_interval
    print(f"policy={args.policy} servers={args.servers} "
          f"window={window:.1f}s")
    for spec in specs:
        rate = result.median_throughput(spec.job_id,
                                        t0=join_at + 2 * interval, t1=window)
        print(f"  job{spec.job_id} ({spec.nodes} nodes, {spec.user}/"
              f"{spec.group}): {fmt_bw(rate)}")
    total = result.window_throughput(join_at + 2 * interval, window)
    print(f"  total: {fmt_bw(total)}")
    return 0


def _cmd_sweep(args) -> int:
    from .harness.sweep import ParallelRunner, load_spec
    from .harness.workspace import Workspace
    if args.spec:
        spec = load_spec(args.spec)
    else:
        spec = BUILTIN_GRIDS[args.grid]
    workspace = None if args.no_workspace else Workspace(args.workspace)
    runner = ParallelRunner(workspace=workspace, jobs=args.jobs)
    run = runner.run_spec(spec, rerun=args.rerun)
    print(f"sweep {spec.name} ({spec.kind}): "
          f"{len(run.points)} points")
    print(run.summary())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(run.to_summary(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    return 0


def _cmd_faults(args) -> int:
    out = exps.availability_outage(
        n_jobs=args.jobs, n_servers=args.servers, duration=args.duration,
        crash_at=args.crash_at, restart_at=args.restart_at, seed=args.seed)
    print(out.report())
    print()
    print("fault counters:")
    print(out.stats.report())
    return 0


def _cmd_repair(args) -> int:
    workspace = None
    if args.workspace:
        from .harness.workspace import Workspace
        workspace = Workspace(args.workspace)
    out = exps.repair_fairness(
        policies=[p.strip() for p in args.policies.split(",") if p.strip()],
        seed=args.seed, duration=args.duration, crash_at=args.crash_at,
        workspace=workspace, jobs=args.jobs)
    print(out.report())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Delegated before parsing so the analyzer owns its own argparse
        # surface (paths, --baseline, --select, ...).
        from .lint import main as lint_main
        return lint_main(argv[1:])
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "figures":
            return _cmd_figures()
        if args.command == "policies":
            return _cmd_policies()
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "sharing":
            return _cmd_sharing(args)
        if args.command == "faults":
            return _cmd_faults(args)
        if args.command == "repair":
            return _cmd_repair(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "bench":
            # Imported lazily: the bench kernels pull in the whole stack.
            from .bench import run_and_write, run_and_write_sweep
            if args.scale_sweep:
                from .harness.workspace import Workspace
                ws = (None if args.no_workspace
                      else Workspace(args.workspace))
                return run_and_write_sweep(quick=args.quick, out=args.out,
                                           workspace=ws, jobs=args.jobs,
                                           rerun=args.rerun)
            return run_and_write(quick=args.quick, out=args.out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
