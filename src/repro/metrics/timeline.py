"""Per-job share timelines for the λ-delayed fairness experiment.

Fig. 14 plots "the sharing percentage of each job's I/O usage" over
time. :class:`ShareTimeline` turns completion records into per-interval
usage fractions, and :func:`convergence_interval` finds when the
observed split first matches the fair split.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ConfigError
from .sampler import ThroughputSampler

__all__ = ["ShareTimeline", "convergence_interval"]


class ShareTimeline:
    """Per-interval fraction of total served bytes attributed to each job."""

    def __init__(self, sampler: ThroughputSampler, interval: float,
                 start: float = 0.0, end: Optional[float] = None):
        if interval <= 0:
            raise ConfigError(f"interval must be positive: {interval}")
        self.interval = interval
        self.job_ids = sampler.job_ids()
        series = {job_id: sampler.series(job_id, interval, start, end)[1]
                  for job_id in self.job_ids}
        if series:
            n = max(len(v) for v in series.values())
            self.times = start + np.arange(n) * interval
            self._matrix = np.zeros((len(self.job_ids), n))
            for row, job_id in enumerate(self.job_ids):
                v = series[job_id]
                self._matrix[row, :len(v)] = v
        else:
            self.times = np.zeros(0)
            self._matrix = np.zeros((0, 0))

    def shares_at(self, index: int) -> Dict[int, float]:
        """Observed job shares (fractions summing to 1) in interval *index*."""
        column = self._matrix[:, index]
        total = column.sum()
        if total <= 0:
            return {job_id: 0.0 for job_id in self.job_ids}
        return {job_id: float(v / total)
                for job_id, v in zip(self.job_ids, column)}

    def share_series(self, job_id: int) -> np.ndarray:
        """One job's observed share per interval, as an array."""
        row = self.job_ids.index(job_id)
        totals = self._matrix.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            shares = np.where(totals > 0, self._matrix[row] / totals, 0.0)
        return shares

    @property
    def n_intervals(self) -> int:
        return self._matrix.shape[1]


def convergence_interval(timeline: ShareTimeline,
                         fair_shares: Dict[int, float],
                         tolerance: float = 0.1,
                         sustain: int = 2) -> Optional[int]:
    """First interval index from which observed shares stay within
    *tolerance* (total variation) of *fair_shares* for *sustain*
    consecutive intervals. None if never reached.
    """
    if sustain < 1:
        raise ConfigError("sustain must be >= 1")
    good_run = 0
    for idx in range(timeline.n_intervals):
        observed = timeline.shares_at(idx)
        tv = 0.5 * sum(abs(observed.get(k, 0.0) - fair_shares.get(k, 0.0))
                       for k in sorted(set(observed) | set(fair_shares)))
        total = sum(observed.values())
        if total > 0 and tv <= tolerance:
            good_run += 1
            if good_run >= sustain:
                return idx - sustain + 1
        else:
            good_run = 0
    return None
