"""Fault-handling counters.

One :class:`FaultStats` instance is shared by every component of a
cluster (servers, clients, controller sync loops, the fault injector):
each layer increments the counters that describe its own recovery
actions, so an availability experiment can report *how much* fault
handling a run needed — retries, failovers, degraded λ-sync rounds —
next to its throughput and fairness numbers.

All counters are zero-cost when no faults occur: they are only touched
on fault-handling paths (a retry, a timeout, a crash), never on the
request hot path.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["FaultStats"]


@dataclass
class FaultStats:
    """Mutable counter block describing a run's fault-handling activity."""

    #: client-side request retries (timeout or error reply, then re-sent).
    retries: int = 0
    #: RPC calls whose timeout expired before a response arrived.
    rpc_timeouts: int = 0
    #: times a client tore down a server connection and re-registered.
    failovers: int = 0
    #: requests abandoned after exhausting their retry budget.
    requests_failed: int = 0
    #: server replies carrying ``ok=False`` (e.g. injected EIO).
    error_replies: int = 0
    #: λ-sync rounds completed on a partial table (a peer timed out).
    degraded_sync_rounds: int = 0
    #: fabric messages dropped by link faults or down nodes.
    messages_dropped: int = 0
    #: fabric messages delivered late by link-degradation faults.
    messages_delayed: int = 0
    #: heartbeat messages suppressed by a heartbeat-loss fault.
    heartbeats_dropped: int = 0
    #: server crash events.
    server_crashes: int = 0
    #: server recover/restart events.
    server_recoveries: int = 0
    #: queued requests discarded when their server crashed.
    requests_dropped_in_crash: int = 0
    #: duplicate (retried) requests answered from the idempotency cache
    #: or suppressed because the original was still in flight.
    duplicate_requests: int = 0
    #: storage operations failed by an injected device error.
    storage_errors: int = 0
    #: clients disconnected abruptly (no goodbye) by fault injection.
    client_disconnects: int = 0
    #: erasure-tier reads that reconstructed around down share servers.
    degraded_reads: int = 0
    #: erasure-tier writes that skipped down share servers (the missing
    #: shares are repair's backlog).
    degraded_writes: int = 0
    #: shares rebuilt from surviving shares (degraded reads + repair).
    shares_reconstructed: int = 0
    #: bytes of share traffic moved by the repair path.
    repair_bytes: int = 0
    #: stripe groups with fewer than ``k`` reachable shares — actual
    #: data loss, accounted (zero-filled) rather than crashed on.
    data_lost_groups: int = 0

    def snapshot(self) -> dict:
        """All counters as a plain ``{name: value}`` dict."""
        return asdict(self)

    def report(self) -> str:
        """Human-readable one-counter-per-line summary (non-zero first)."""
        items = sorted(self.snapshot().items(),
                       key=lambda kv: (kv[1] == 0, kv[0]))
        return "\n".join(f"{name:26s} {value}" for name, value in items)
