"""Measurement utilities: throughput sampling, statistics, share timelines."""

from .faultstats import FaultStats
from .sampler import ThroughputSampler
from .stats import (jain_index, median_nonzero, percentile_nonzero,
                    scaling_efficiency, share_ratio, size_fair_bound,
                    slowdown, speedup, stddev_nonzero)
from .timeline import ShareTimeline, convergence_interval

__all__ = [
    "FaultStats",
    "ThroughputSampler",
    "median_nonzero",
    "stddev_nonzero",
    "percentile_nonzero",
    "size_fair_bound",
    "slowdown",
    "speedup",
    "jain_index",
    "scaling_efficiency",
    "share_ratio",
    "ShareTimeline",
    "convergence_interval",
]
