"""Statistics used by the paper's evaluation.

Median/stddev of throughput series (Figs. 8, 12), slowdown relative to
an exclusive baseline (Figs. 1, 13), Jain's fairness index, and scaling
efficiency (Fig. 7).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError

__all__ = ["median_nonzero", "stddev_nonzero", "percentile_nonzero",
           "slowdown", "speedup", "jain_index", "scaling_efficiency",
           "share_ratio", "size_fair_bound"]


def _active(values: Sequence[float]) -> np.ndarray:
    """The samples where the job was actually doing I/O (non-zero bins).

    Ramp-up/ramp-down zero bins would otherwise dominate medians of short
    runs; the paper's medians are over the active phase.
    """
    arr = np.asarray(values, dtype=float)
    return arr[arr > 0]


def median_nonzero(values: Sequence[float]) -> float:
    """Median over non-zero samples (0.0 if all zero)."""
    active = _active(values)
    return float(np.median(active)) if active.size else 0.0


def stddev_nonzero(values: Sequence[float]) -> float:
    """Population standard deviation over non-zero samples."""
    active = _active(values)
    return float(np.std(active)) if active.size else 0.0


def percentile_nonzero(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100) over non-zero samples (0.0 if all zero)."""
    if not 0 <= q <= 100:
        raise ConfigError(f"percentile must be in [0, 100]: {q}")
    active = _active(values)
    return float(np.percentile(active, q)) if active.size else 0.0


def size_fair_bound(app_nodes: int, background_nodes: int = 1) -> float:
    """The paper's maximum-possible size-fair slowdown for an app sharing
    with a background job: the background's node-count share (§5.5's
    "1/65 = 1.5%" for 64-node NAMD), assuming the app were entirely I/O."""
    if app_nodes < 1 or background_nodes < 1:
        raise ConfigError("node counts must be >= 1")
    return background_nodes / (app_nodes + background_nodes)


def slowdown(baseline_time: float, measured_time: float) -> float:
    """Fractional slowdown: 0.10 means 10% slower than baseline."""
    if baseline_time <= 0:
        raise ConfigError(f"baseline_time must be positive: {baseline_time}")
    return measured_time / baseline_time - 1.0


def speedup(reference_time: float, measured_time: float) -> float:
    """How much faster *measured* is than *reference* (>1 = faster)."""
    if measured_time <= 0:
        raise ConfigError(f"measured_time must be positive: {measured_time}")
    return reference_time / measured_time


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1 = perfectly even, 1/n = maximally unfair."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigError("jain_index of empty sequence")
    denom = arr.size * np.sum(arr ** 2)
    if denom == 0:
        return 1.0
    return float(np.sum(arr) ** 2 / denom)


def scaling_efficiency(throughputs: Sequence[float],
                       nodes: Sequence[int]) -> np.ndarray:
    """Per-point efficiency vs. linear scaling from the first point.

    Fig. 7 reports e.g. 82% at 8 servers and 68% at 128 relative to the
    single-server throughput.
    """
    tp = np.asarray(throughputs, dtype=float)
    n = np.asarray(nodes, dtype=float)
    if tp.shape != n.shape or tp.size == 0:
        raise ConfigError("throughputs and nodes must be equal-length, non-empty")
    if tp[0] <= 0 or n[0] <= 0:
        raise ConfigError("first point must be positive")
    per_node_ref = tp[0] / n[0]
    return tp / (n * per_node_ref)


def share_ratio(a: float, b: float) -> float:
    """Throughput ratio a/b (Fig. 8a's '3.96x')."""
    if b <= 0:
        raise ConfigError(f"denominator must be positive: {b}")
    return a / b
