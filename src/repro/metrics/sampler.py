"""Throughput sampling.

The paper reports "measured I/O throughput with samples taken at
1-second intervals" (Fig. 8). The sampler records every completed
request as ``(time, job_id, bytes, op)`` and bins on demand with numpy,
so recording stays O(1) on the hot path.

Aggregate queries never re-scan the record stream: byte totals and op
counts are maintained incrementally at :meth:`record` time, and
per-record cumulative byte prefixes let :meth:`window_throughput`
answer any ``[t0, t1)`` window with two binary searches (completion
times arrive in nondecreasing simulation order).

Long runs (multi-hour fault scenarios) can cap memory with
``bin_interval``: completions are then folded into fixed-width time
bins on the fly instead of kept as raw records, so memory scales with
simulated duration / ``bin_interval`` rather than with the request
count. Binned mode trades record-level resolution for that bound —
series and window queries answer at ``bin_interval`` granularity.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = ["ThroughputSampler", "CompletionRecord"]

CompletionRecord = Tuple[float, int, int, str]  # (time, job_id, nbytes, op)


class ThroughputSampler:
    """Accumulates request completions; produces binned throughput series.

    With ``bin_interval=None`` (the default) every completion is kept as
    a raw record — full resolution, memory grows with the request count.
    With a positive ``bin_interval`` completions are merged into
    per-``bin_interval`` byte totals at record time (bounded memory).
    """

    def __init__(self, bin_interval: Optional[float] = None):
        if bin_interval is not None and bin_interval <= 0:
            raise ConfigError(
                f"bin_interval must be positive: {bin_interval}")
        self.bin_interval = bin_interval
        self._n = 0
        self._times: List[float] = []
        self._jobs: List[int] = []
        self._bytes: List[int] = []
        self._ops: List[str] = []
        # Incremental aggregates (satisfy totals/counts without scans).
        self._total_bytes = 0
        self._job_bytes: Dict[int, int] = {}
        self._job_op_counts: Counter = Counter()  # (job_id, op) -> n
        # Cumulative bytes after each record, per job and globally, for
        # O(log n) window queries (parallel to the per-job time lists).
        self._cum_bytes: List[int] = []
        self._job_times: Dict[int, List[float]] = {}
        self._job_cum_bytes: Dict[int, List[int]] = {}
        # Binned mode state: bin index -> bytes, globally and per job.
        self._total_bins: Dict[int, float] = {}
        self._job_bins: Dict[int, Dict[int, float]] = {}
        self._last_time = 0.0

    def record(self, now: float, job_id: int, nbytes: int, op: str) -> None:
        """Record one completed request."""
        self._n += 1
        self._total_bytes += nbytes
        self._job_bytes[job_id] = self._job_bytes.get(job_id, 0) + nbytes
        self._job_op_counts[(job_id, op)] += 1
        if self.bin_interval is not None:
            b = int(now // self.bin_interval)
            self._total_bins[b] = self._total_bins.get(b, 0.0) + nbytes
            job_bins = self._job_bins.setdefault(job_id, {})
            job_bins[b] = job_bins.get(b, 0.0) + nbytes
            if now > self._last_time:
                self._last_time = now
            return
        self._times.append(now)
        self._jobs.append(job_id)
        self._bytes.append(nbytes)
        self._ops.append(op)
        self._cum_bytes.append(self._total_bytes)
        times = self._job_times.get(job_id)
        if times is None:
            times = self._job_times[job_id] = []
            self._job_cum_bytes[job_id] = []
        times.append(now)
        self._job_cum_bytes[job_id].append(self._job_bytes[job_id])

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------ reads
    def job_ids(self) -> List[int]:
        """Distinct job ids observed, sorted."""
        return sorted(self._job_bytes)

    def total_bytes(self, job_id: Optional[int] = None) -> int:
        """Total recorded bytes (optionally for one job)."""
        if job_id is None:
            return self._total_bytes
        return self._job_bytes.get(job_id, 0)

    def op_count(self, job_id: Optional[int] = None,
                 op: Optional[str] = None) -> int:
        """Number of completions, filtered by job and/or op kind.

        Served from the incrementally maintained ``(job, op)`` counter —
        O(distinct job/op pairs), never O(records).
        """
        if job_id is not None and op is not None:
            return self._job_op_counts[(job_id, op)]
        return sum(n for (j, o), n in self._job_op_counts.items()
                   if (job_id is None or j == job_id)
                   and (op is None or o == op))

    def _bin_points(self, job_id: Optional[int]
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Binned-mode records as (bin-center times, bytes) point masses."""
        bins = (self._total_bins if job_id is None
                else self._job_bins.get(job_id, {}))
        if not bins:
            return np.empty(0), np.empty(0)
        idx = np.fromiter(bins.keys(), dtype=float, count=len(bins))
        vals = np.fromiter(bins.values(), dtype=float, count=len(bins))
        return (idx + 0.5) * self.bin_interval, vals

    def series(self, job_id: Optional[int] = None, interval: float = 1.0,
               start: float = 0.0,
               end: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Binned throughput: ``(bin_starts, bytes_per_second)``.

        *job_id* None aggregates all jobs. Bins cover ``[start, end)``;
        *end* defaults to the last completion time. In on-the-fly
        binning mode each stored bin contributes at its centre time, so
        the answer is exact when *interval* is a multiple of
        ``bin_interval`` and approximate below that resolution. A
        simulation rarely ends on a ``bin_interval`` boundary, so the
        final stored bin is usually partial; the default *end* is pushed
        past that bin's centre to flush it into the series — without
        this, any *interval* finer than ``bin_interval`` would silently
        drop the tail bytes recorded after the last full bin.
        """
        if self.bin_interval is not None:
            times, sizes = self._bin_points(job_id)
            if end is None:
                if times.size:
                    # times.max() is the last (possibly partial) bin's
                    # centre; covering centre + bin_interval/2 closes
                    # out that bin regardless of how fine *interval* is.
                    end = max(self._last_time + interval,
                              float(times.max()) + 0.5 * self.bin_interval)
                else:
                    end = start + interval
        else:
            times = np.asarray(self._times)
            sizes = np.asarray(self._bytes, dtype=float)
            if job_id is not None:
                mask = np.asarray(self._jobs) == job_id
                times, sizes = times[mask], sizes[mask]
            if end is None:
                end = (float(times.max()) + interval if times.size
                       else start + interval)
        n_bins = max(1, int(np.ceil((end - start) / interval)))
        edges = start + np.arange(n_bins + 1) * interval
        binned, _ = np.histogram(times, bins=edges, weights=sizes)
        return edges[:-1], binned / interval

    def per_job_series(self, interval: float = 1.0, start: float = 0.0,
                       end: Optional[float] = None
                       ) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Binned series for every observed job."""
        return {job_id: self.series(job_id, interval, start, end)
                for job_id in self.job_ids()}

    def window_throughput(self, t0: float, t1: float,
                          job_id: Optional[int] = None) -> float:
        """Mean bytes/second over ``[t0, t1)``.

        Raw mode is O(log n): two binary searches over the
        (nondecreasing) record times bracket the window, and the
        cumulative-byte prefixes give the windowed sum by subtraction.
        Binned mode apportions each stored bin by its fractional overlap
        with the window (exact at ``bin_interval`` resolution). The bin
        containing the last completion is treated as spanning only up to
        that completion time — a simulation rarely ends on a bin
        boundary, and spreading the tail bytes across the full bin width
        would under-count any window that covers the whole recording.
        """
        if t1 <= t0:
            return 0.0
        if self.bin_interval is not None:
            return self._binned_window(t0, t1, job_id)
        if job_id is None:
            times, cum = self._times, self._cum_bytes
        else:
            times = self._job_times.get(job_id)
            if times is None:
                return 0.0
            cum = self._job_cum_bytes[job_id]
        lo = bisect_left(times, t0)
        hi = bisect_left(times, t1)
        if hi <= lo:
            return 0.0
        total = cum[hi - 1] - (cum[lo - 1] if lo > 0 else 0)
        return total / (t1 - t0)

    def _binned_window(self, t0: float, t1: float,
                       job_id: Optional[int]) -> float:
        bins = (self._total_bins if job_id is None
                else self._job_bins.get(job_id))
        if not bins:
            return 0.0
        w = self.bin_interval
        last = self._last_time
        lo_bin = int(t0 // w)
        hi_bin = int(np.ceil(t1 / w))

        def contrib(b: int, nbytes: float) -> float:
            lo = b * w
            hi = min((b + 1) * w, last)
            # Bins exist only for times <= last, so lo <= last always;
            # the clamp truncates exactly one bin — the one holding the
            # final completion. If that leaves a zero-width span (all of
            # the bin's records landed exactly on its left edge), the
            # bytes are a point mass at lo, counted iff the half-open
            # window covers that instant.
            if hi <= lo:
                return nbytes if t0 <= lo < t1 else 0.0
            overlap = min(t1, hi) - max(t0, lo)
            if overlap <= 0:
                return 0.0
            return nbytes * (overlap / (hi - lo))

        total = 0.0
        if hi_bin - lo_bin < len(bins):
            get = bins.get
            for b in range(lo_bin, hi_bin):
                nbytes = get(b)
                if nbytes:
                    # lint: disable=PERF102 -- hot query path; bins are few
                    total += contrib(b, nbytes)
        else:
            for b, nbytes in bins.items():
                # lint: disable=PERF102 -- hot query path; bins are few
                total += contrib(b, nbytes)
        return total / (t1 - t0)
