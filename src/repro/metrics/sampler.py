"""Throughput sampling.

The paper reports "measured I/O throughput with samples taken at
1-second intervals" (Fig. 8). The sampler records every completed
request as ``(time, job_id, bytes, op)`` and bins on demand with numpy,
so recording stays O(1) on the hot path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["ThroughputSampler", "CompletionRecord"]

CompletionRecord = Tuple[float, int, int, str]  # (time, job_id, nbytes, op)


class ThroughputSampler:
    """Accumulates request completions; produces binned throughput series."""

    def __init__(self):
        self._times: List[float] = []
        self._jobs: List[int] = []
        self._bytes: List[int] = []
        self._ops: List[str] = []

    def record(self, now: float, job_id: int, nbytes: int, op: str) -> None:
        """Record one completed request."""
        self._times.append(now)
        self._jobs.append(job_id)
        self._bytes.append(nbytes)
        self._ops.append(op)

    def __len__(self) -> int:
        return len(self._times)

    # ------------------------------------------------------------------ reads
    def job_ids(self) -> List[int]:
        """Distinct job ids observed, sorted."""
        return sorted(set(self._jobs))

    def total_bytes(self, job_id: Optional[int] = None) -> int:
        """Total recorded bytes (optionally for one job)."""
        if job_id is None:
            return int(sum(self._bytes))
        return int(sum(b for j, b in zip(self._jobs, self._bytes)
                       if j == job_id))

    def op_count(self, job_id: Optional[int] = None,
                 op: Optional[str] = None) -> int:
        """Number of completions, filtered by job and/or op kind."""
        count = 0
        for j, o in zip(self._jobs, self._ops):
            if (job_id is None or j == job_id) and (op is None or o == op):
                count += 1
        return count

    def series(self, job_id: Optional[int] = None, interval: float = 1.0,
               start: float = 0.0,
               end: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Binned throughput: ``(bin_starts, bytes_per_second)``.

        *job_id* None aggregates all jobs. Bins cover ``[start, end)``;
        *end* defaults to the last completion time.
        """
        times = np.asarray(self._times)
        sizes = np.asarray(self._bytes, dtype=float)
        if job_id is not None:
            mask = np.asarray(self._jobs) == job_id
            times, sizes = times[mask], sizes[mask]
        if end is None:
            end = float(times.max()) + interval if times.size else start + interval
        n_bins = max(1, int(np.ceil((end - start) / interval)))
        edges = start + np.arange(n_bins + 1) * interval
        binned, _ = np.histogram(times, bins=edges, weights=sizes)
        return edges[:-1], binned / interval

    def per_job_series(self, interval: float = 1.0, start: float = 0.0,
                       end: Optional[float] = None
                       ) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Binned series for every observed job."""
        return {job_id: self.series(job_id, interval, start, end)
                for job_id in self.job_ids()}

    def window_throughput(self, t0: float, t1: float,
                          job_id: Optional[int] = None) -> float:
        """Mean bytes/second over ``[t0, t1)``."""
        if t1 <= t0:
            return 0.0
        total = 0.0
        for t, j, b in zip(self._times, self._jobs, self._bytes):
            if t0 <= t < t1 and (job_id is None or j == job_id):
                total += b
        return total / (t1 - t0)
