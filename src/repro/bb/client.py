"""The ThemisIO client (§4.1, §4.2).

Runs with the application on a compute node. It gathers job metadata
(job id, user, group, size), registers with each server it talks to
(receiving the UCP pool worker the server assigned to it), forwards I/O
requests, sends periodic heartbeats, and notifies servers on exit so
they can destroy the worker mapping entries.

Data placement is deterministic (consistent hashing + stripe records),
so the client computes each operation's target servers itself and splits
multi-server operations into per-server requests, awaiting all slices.

All operations are simulation generators: drive them with
``yield from client.write(...)`` inside a process, or wrap with
``engine.process(...)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..core.jobinfo import JobInfo
from ..errors import ConfigError, FileNotFound, InterruptError, RpcTimeout
from ..fs.filesystem import ThemisFS
from ..fs.striping import (ErasureSpec, group_range, map_range,
                           parity_spans, server_spans)
from ..metrics.faultstats import FaultStats
from ..net.fabric import Fabric
from ..sim.process import Event
from ..ucx import Address, RpcClient, UCPContext
from .cache import ClientCache

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine

__all__ = ["Client", "ClientConfig"]

#: Fixed wire bytes of a request header (op, path, job metadata, offsets).
_HEADER_BYTES = 64


@dataclass
class ClientConfig:
    heartbeat_interval: float = 0.5
    #: client read-cache size; 0 disables caching, as every experiment
    #: in the paper does (§5.1).
    cache_bytes: int = 0
    cache_block: int = 1 << 20
    #: per-RPC timeout in seconds; 0 disables the fault-tolerant path
    #: entirely (requests wait forever, exactly the original behaviour —
    #: and the original event traces, bit for bit).
    rpc_timeout: float = 0.0
    #: retry budget per logical request; negative = retry forever.
    rpc_retries: int = -1
    #: first retry backoff in seconds (doubles per retry, plus jitter).
    retry_backoff: float = 0.05
    #: backoff growth cap in seconds.
    retry_backoff_max: float = 1.0

    def __post_init__(self):
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be positive")
        if self.cache_bytes < 0:
            raise ConfigError("cache_bytes must be >= 0")
        if self.rpc_timeout < 0:
            raise ConfigError("rpc_timeout must be >= 0")
        if self.retry_backoff <= 0 or self.retry_backoff_max < self.retry_backoff:
            raise ConfigError(
                "need 0 < retry_backoff <= retry_backoff_max")


class Client:
    """One application process-group's connection to the burst buffer."""

    def __init__(self, engine: "Engine", fabric: Fabric, node_name: str,
                 client_id: str, job: JobInfo, fs: ThemisFS,
                 server_ctl: Dict[str, Address],
                 config: Optional[ClientConfig] = None,
                 rng=None, fault_stats: Optional[FaultStats] = None):
        self.engine = engine
        self.client_id = client_id
        self.job = job
        self.fs = fs
        self.config = config or ClientConfig()
        self.ctx = UCPContext(engine, fabric, node_name)
        self._server_ctl = dict(server_ctl)   # server name -> ctl address
        self._ctl: Dict[str, RpcClient] = {}
        self._io: Dict[str, RpcClient] = {}
        self._io_pending: Dict[str, object] = {}  # server -> in-progress Event
        self._heartbeat_proc = None
        self._hb_sleep: Optional[Event] = None  # pending inter-beat timer
        self.closed = False
        self.ops_completed = 0
        self.cache = (ClientCache(self.config.cache_bytes,
                                  self.config.cache_block)
                      if self.config.cache_bytes > 0 else None)
        #: fault tolerance on? (timeout + retry + failover + req ids)
        self._ft = self.config.rpc_timeout > 0
        self._rng = rng  # jitter source (optional; None = no jitter)
        self.stats = fault_stats if fault_stats is not None else FaultStats()
        self._req_seq = itertools.count(1)

    # ------------------------------------------------------------ connection
    def _ctl_client(self, server: str) -> RpcClient:
        client = self._ctl.get(server)
        if client is None:
            worker = self.ctx.create_worker(f"ctl-{server}")
            client = RpcClient(worker, self._server_ctl[server])
            self._ctl[server] = client
        return client

    def _ensure_io(self, server: str):
        """Generator: the RPC client for *server*'s assigned IO worker.

        Concurrent first contacts to the same server wait on one shared
        registration instead of racing to create duplicate workers.
        """
        client = self._io.get(server)
        if client is not None:
            return client
        pending = self._io_pending.get(server)
        if pending is not None:
            yield pending
            return self._io[server]
        pending = Event(self.engine)
        self._io_pending[server] = pending
        try:
            if self._ft:
                resp = yield from self._register_ft(server)
            else:
                resp = yield self._ctl_client(server).call(
                    "register",
                    {"kind": "register", "client_id": self.client_id,
                     "job": self.job},
                    size=_HEADER_BYTES)
        except BaseException:
            # Registration gave up (bounded retry budget): unblock any
            # ops sharing this registration with the same failure.
            del self._io_pending[server]
            pending.defuse()
            pending.fail(RpcTimeout(f"registration with {server} failed"))
            raise
        worker = self.ctx.create_worker(f"io-{server}")
        server_node = self._server_ctl[server][0]
        client = RpcClient(worker, (server_node, resp["io_worker"]))
        self._io[server] = client
        del self._io_pending[server]
        pending.succeed()
        if self._heartbeat_proc is None:
            self._heartbeat_proc = self.engine.process(self._heartbeat_loop())
        return client

    def _register_ft(self, server: str):
        """Generator: register with *server*, retrying through outages."""
        cfg = self.config
        delay = cfg.retry_backoff
        attempt = 0
        while True:
            call = self._ctl_client(server).call(
                "register",
                {"kind": "register", "client_id": self.client_id,
                 "job": self.job},
                size=_HEADER_BYTES, timeout=cfg.rpc_timeout)
            try:
                return (yield call)
            except RpcTimeout:
                self.stats.rpc_timeouts += 1
                attempt += 1
                if 0 <= cfg.rpc_retries < attempt:
                    self.stats.requests_failed += 1
                    raise
                self.stats.retries += 1
                yield self.engine.timeout(delay + self._jitter(delay))
                delay = min(delay * 2, cfg.retry_backoff_max)

    def _jitter(self, delay: float) -> float:
        """Up to 10% extra backoff from the client's rng stream (0 if
        no rng was supplied); keeps retry storms de-synchronised while
        staying deterministic per seed."""
        if self._rng is None:
            return 0.0
        return float(self._rng.random()) * delay * 0.1

    def _failover(self, server: str) -> None:
        """Tear down the IO connection to *server*; the next request
        re-registers (the server may assign a different pool worker)."""
        client = self._io.pop(server, None)
        if client is None:
            return
        self.stats.failovers += 1
        client.worker.close()

    def _next_req_id(self) -> str:
        """A fresh idempotency id, reused verbatim across retries."""
        return f"{self.client_id}#{next(self._req_seq)}"

    def _request(self, server: str, body: Dict[str, Any], wire_size: int):
        """Generator: deliver one idempotent request, retrying with
        exponential backoff + jitter through timeouts, error replies,
        and server restarts. *body* carries a ``req_id`` so the server
        deduplicates retries that raced a slow original.
        """
        cfg = self.config
        delay = cfg.retry_backoff
        attempt = 0
        last_error = "timeout"
        while True:
            client = yield from self._ensure_io(server)
            call = client.call("io", body, size=wire_size,
                               timeout=cfg.rpc_timeout)
            try:
                resp = yield call
            except RpcTimeout:
                self.stats.rpc_timeouts += 1
                self._failover(server)
                resp = None
                last_error = "timeout"
            if resp is not None:
                if resp.get("ok", True):
                    return resp
                last_error = resp.get("error", "EIO")
            attempt += 1
            if 0 <= cfg.rpc_retries < attempt:
                self.stats.requests_failed += 1
                raise RpcTimeout(
                    f"request to {server} abandoned after {attempt} "
                    f"attempts (last error: {last_error})")
            self.stats.retries += 1
            yield self.engine.timeout(delay + self._jitter(delay))
            delay = min(delay * 2, cfg.retry_backoff_max)

    def register_all(self):
        """Generator: eagerly register with every known server."""
        for server in sorted(self._server_ctl):
            yield from self._ensure_io(server)

    def _heartbeat_loop(self):
        try:
            yield from self._beat()
        except InterruptError:
            # _stop_heartbeat() retired us between beats.
            return

    def _beat(self):
        while not self.closed:
            self._hb_sleep = self.engine.timeout(
                self.config.heartbeat_interval)
            yield self._hb_sleep
            if self.closed:
                return
            if self._ft:
                # Fire-and-forget with a timeout: a dead server must not
                # stall the beats that keep live servers' tables warm.
                for server in sorted(self._io):
                    self._ctl_client(server).call(
                        "heartbeat",
                        {"kind": "heartbeat", "client_id": self.client_id,
                         "job": self.job},
                        size=_HEADER_BYTES, timeout=self.config.rpc_timeout)
                continue
            calls = [
                self._ctl_client(server).call(
                    "heartbeat",
                    {"kind": "heartbeat", "client_id": self.client_id,
                     "job": self.job},
                    size=_HEADER_BYTES)
                for server in sorted(self._io)
            ]
            if calls:
                yield self.engine.all_of(calls)

    def _stop_heartbeat(self) -> None:
        """Retire the heartbeat loop now instead of at its next wake.

        Interrupts the loop out of its inter-beat sleep and cancels the
        abandoned timer, so a long run with client churn doesn't carry
        one dead wake per departed client in the event queue. (With
        cancellation disabled the timer simply fires into the detached
        event — the pre-cancellation behaviour.)
        """
        proc = self._heartbeat_proc
        if proc is None:
            return
        self._heartbeat_proc = None
        sleep = self._hb_sleep
        self._hb_sleep = None
        if proc.is_alive and self.engine.active_process is not proc:
            proc.interrupt("client closed")
        if sleep is not None and not sleep.processed and not sleep.cancelled:
            sleep.cancel()

    def goodbye(self):
        """Generator: notify every registered server, stop heartbeats."""
        self.closed = True
        self._stop_heartbeat()
        if self._ft:
            # Best-effort farewell: a crashed server will expire us via
            # heartbeats instead; don't block shutdown on it.
            for server in sorted(self._io):
                call = self._ctl_client(server).call(
                    "goodbye",
                    {"kind": "goodbye", "client_id": self.client_id,
                     "job": self.job},
                    size=_HEADER_BYTES, timeout=self.config.rpc_timeout)
                try:
                    yield call
                except RpcTimeout:
                    self.stats.rpc_timeouts += 1
            return
        calls = [
            self._ctl_client(server).call(
                "goodbye",
                {"kind": "goodbye", "client_id": self.client_id,
                 "job": self.job},
                size=_HEADER_BYTES)
            for server in sorted(self._io)
        ]
        if calls:
            yield self.engine.all_of(calls)

    def disconnect(self) -> None:
        """Abrupt exit (fault injection): stop all traffic with no
        goodbye; servers notice via heartbeat expiry and clean up."""
        self.closed = True
        self._stop_heartbeat()
        self.stats.client_disconnects += 1

    # ------------------------------------------------------------------- I/O
    def _io_call(self, server: str, op: str, path: str, offset: int = 0,
                 size: int = 0, payload: Optional[bytes] = None,
                 wire: Optional[int] = None,
                 extra: Optional[Dict[str, Any]] = None):
        """Generator: one request/response against *server*."""
        body = {"op": op, "path": path, "offset": offset, "size": size,
                "payload": payload, "client_id": self.client_id,
                "job": self.job}
        if extra:
            body.update(extra)
        wire_size = _HEADER_BYTES + (wire if wire is not None else 0)
        if self._ft:
            body["req_id"] = self._next_req_id()
            resp = yield from self._request(server, body, wire_size)
        else:
            client = yield from self._ensure_io(server)
            resp = yield client.call("io", body, size=wire_size)
        self.ops_completed += 1
        return resp

    def _require_inode(self, path: str):
        """Generator: the inode of *path*; raises FileNotFound if absent.

        In fault-tolerant mode a miss is retried with backoff: the
        metadata may live on a crashed server and reappear once journal
        replay recovers it.
        """
        inode = self.fs.lookup(path)
        if inode is not None:
            return inode
        if not self._ft:
            raise FileNotFound(path)
        cfg = self.config
        delay = cfg.retry_backoff
        attempt = 0
        while inode is None:
            attempt += 1
            if 0 <= cfg.rpc_retries < attempt:
                self.stats.requests_failed += 1
                raise FileNotFound(path)
            self.stats.retries += 1
            yield self.engine.timeout(delay + self._jitter(delay))
            delay = min(delay * 2, cfg.retry_backoff_max)
            inode = self.fs.lookup(path)
        return inode

    def create(self, path: str):
        """Generator: create-or-open *path* (metadata server handles it)."""
        server = self.fs.metadata_server(path)
        return (yield from self._io_call(server, "open", path))

    def mkdir(self, path: str):
        """Generator: create directory *path* on its metadata server."""
        server = self.fs.metadata_server(path)
        return (yield from self._io_call(server, "mkdir", path))

    def stat(self, path: str):
        """Generator: stat *path* on its metadata server."""
        server = self.fs.metadata_server(path)
        return (yield from self._io_call(server, "stat", path))

    def readdir(self, path: str):
        """Generator: list directory *path* on its metadata server."""
        server = self.fs.metadata_server(path)
        return (yield from self._io_call(server, "readdir", path))

    def unlink(self, path: str):
        """Generator: remove *path*, invalidating any cached blocks."""
        if self.cache is not None:
            self.cache.invalidate_path(path)
        server = self.fs.metadata_server(path)
        return (yield from self._io_call(server, "unlink", path))

    def write(self, path: str, offset: int, size: int,
              payload: Optional[bytes] = None) -> int:
        """Generator: write *size* bytes at *offset*; returns bytes written.

        Without *payload* (the default for workloads) the write is
        accounted but bytes are not materialised; with *payload* real
        bytes go to the exact chunks (verification paths).
        """
        inode = yield from self._require_inode(path)
        if self.cache is not None:
            self.cache.invalidate(path, offset, size)
        down = set()
        if isinstance(inode.stripe, ErasureSpec):
            # Degraded write: skip down share servers instead of
            # retrying into the void — the skipped shares are exactly
            # what repair later rebuilds from the written ones.
            down = {s for s in inode.stripe.servers
                    if self.ctx.fabric.node_is_down(s)}
        if payload is not None:
            calls = []
            skipped = False
            for piece in map_range(inode.stripe, offset, size):
                if piece.server in down:
                    skipped = True
                    continue
                lo = piece.file_offset - offset
                calls.append((piece.server, piece.file_offset, piece.length,
                              payload[lo:lo + piece.length]))
            if skipped:
                self.stats.degraded_writes += 1
            total = 0
            pending = []
            if self._ft:
                for server, s_off, s_len, chunk in calls:
                    body = {"op": "write", "path": path, "offset": s_off,
                            "size": s_len, "payload": chunk,
                            "client_id": self.client_id, "job": self.job,
                            "req_id": self._next_req_id()}
                    pending.append(self.engine.process(self._request(
                        server, body, _HEADER_BYTES + s_len)))
            else:
                for server, s_off, s_len, chunk in calls:
                    client = yield from self._ensure_io(server)
                    pending.append(client.call(
                        "io",
                        {"op": "write", "path": path, "offset": s_off,
                         "size": s_len, "payload": chunk,
                         "client_id": self.client_id, "job": self.job},
                        size=_HEADER_BYTES + s_len))
            results = yield self.engine.all_of(pending)
            total = sum(r["bytes"] for r in results)
            if isinstance(inode.stripe, ErasureSpec):
                yield from self._parity_fanout(path, inode.stripe, offset,
                                               size, down=down,
                                               payload=payload)
            self.ops_completed += 1
            return total

        per_server = self._split(inode, offset, size)
        if down and any(server in down for server in per_server):
            per_server = {server: span
                          for server, span in per_server.items()
                          if server not in down}
            self.stats.degraded_writes += 1
        pending = []
        if self._ft:
            for server, (first_offset, nbytes) in sorted(per_server.items()):
                body = {"op": "write", "path": path, "offset": first_offset,
                        "size": nbytes, "payload": None,
                        "client_id": self.client_id, "job": self.job,
                        "req_id": self._next_req_id()}
                pending.append(self.engine.process(self._request(
                    server, body, _HEADER_BYTES + nbytes)))
        else:
            for server, (first_offset, nbytes) in sorted(per_server.items()):
                client = yield from self._ensure_io(server)
                pending.append(client.call(
                    "io",
                    {"op": "write", "path": path, "offset": first_offset,
                     "size": nbytes, "payload": None,
                     "client_id": self.client_id, "job": self.job},
                    size=_HEADER_BYTES + nbytes))
        results = yield self.engine.all_of(pending)
        # Accounting writes extend per-server; make sure the logical end
        # is visible even if this server's last slice ends earlier. (In
        # fault-tolerant mode re-resolve: recovery may have rebuilt the
        # inode object while our slices were retrying.)
        if self._ft:
            inode = self.fs.lookup(path) or inode
        if inode.size < offset + size:
            inode.size = offset + size
        if isinstance(inode.stripe, ErasureSpec):
            yield from self._parity_fanout(path, inode.stripe, offset, size,
                                           down=down)
        self.ops_completed += 1
        return sum(r["bytes"] for r in results)

    def _parity_fanout(self, path: str, spec: ErasureSpec, offset: int,
                       size: int, down=frozenset(),
                       payload: Optional[bytes] = None):
        """Generator: parity share updates of an erasure write — one
        share request per parity server, awaited after the data shares
        land (the serving side rebuilds exactly the dirtied groups).

        Down parity servers are skipped (degraded write). For payload
        writes that skipped a *data* server, the parity content is
        recomputed afterwards with the write overlaid, so surviving
        parity encodes the true bytes the dead server never received —
        that is what makes the skipped share reconstructible.
        """
        spans = parity_spans(spec, offset, size)
        skipped = any(server in down for server in spans)
        pending = []
        for server, (anchor, nbytes, groups) in sorted(spans.items()):
            if server in down:
                continue
            body = {"op": "write", "path": path, "offset": anchor,
                    "size": nbytes, "payload": None,
                    "client_id": self.client_id, "job": self.job,
                    "share": True, "groups": groups}
            if self._ft:
                body["req_id"] = self._next_req_id()
                pending.append(self.engine.process(self._request(
                    server, body, _HEADER_BYTES + nbytes)))
            else:
                client = yield from self._ensure_io(server)
                pending.append(client.call("io", body,
                                           size=_HEADER_BYTES + nbytes))
        if skipped:
            self.stats.degraded_writes += 1
        if pending:
            yield self.engine.all_of(pending)
        if payload is not None and down:
            for group, _ in group_range(spec, offset, size):
                self.fs.rebuild_parity(path, group,
                                       overlay=(offset, payload),
                                       skip_servers=down)

    def read(self, path: str, offset: int, size: int) -> int:
        """Generator: read up to *size* bytes at *offset*; returns bytes read."""
        inode = yield from self._require_inode(path)
        avail = max(0, min(size, inode.size - offset))
        if avail == 0:
            return 0
        if self.cache is not None and self.cache.covers(path, offset, avail):
            self.ops_completed += 1
            return avail  # served locally, no server round trip
        per_server = self._split(inode, offset, avail)
        if isinstance(inode.stripe, ErasureSpec):
            down = {s for s in sorted(per_server)
                    if self.ctx.fabric.node_is_down(s)}
            if down:
                return (yield from self._degraded_read(
                    path, inode, offset, avail, down))
        pending = []
        if self._ft:
            for server, (first_offset, nbytes) in sorted(per_server.items()):
                body = {"op": "read", "path": path, "offset": first_offset,
                        "size": nbytes, "payload": None,
                        "client_id": self.client_id, "job": self.job,
                        "req_id": self._next_req_id()}
                pending.append(self.engine.process(self._request(
                    server, body, _HEADER_BYTES)))
        else:
            for server, (first_offset, nbytes) in sorted(per_server.items()):
                client = yield from self._ensure_io(server)
                pending.append(client.call(
                    "io",
                    {"op": "read", "path": path, "offset": first_offset,
                     "size": nbytes, "payload": None,
                     "client_id": self.client_id, "job": self.job},
                    size=_HEADER_BYTES))
        results = yield self.engine.all_of(pending)
        self.ops_completed += 1
        if self.cache is not None:
            self.cache.fill(path, offset, avail)
        return sum(r["bytes"] for r in results)

    def _degraded_read(self, path: str, inode, offset: int, avail: int,
                       down: set) -> int:
        """Generator: erasure degraded read around *down* share servers.

        Pieces on up servers are read normally; for every stripe group
        with a piece stranded on a down server the client fetches ``k``
        full shares from reachable servers and reconstructs (the read
        amplification is the price of degraded mode). Groups with fewer
        than ``k`` reachable shares are accounted as lost — zero-filled,
        never an exception. Returns bytes read (``avail`` minus loss).
        """
        spec = inode.stripe
        self.stats.degraded_reads += 1
        per_server = self._split(inode, offset, avail)
        affected: Dict[int, int] = {}
        for piece in map_range(spec, offset, avail):
            if piece.server in down:
                group = piece.chunk_index // spec.k
                affected[group] = affected.get(group, 0) + piece.length
        lost = 0
        share_reads: Dict[str, Tuple[int, int]] = {}
        for group in sorted(affected):
            reachable = [s for s in range(spec.n)
                         if spec.server_of_share(group, s) not in down]
            if len(reachable) < spec.k:
                self.stats.data_lost_groups += 1
                lost += affected[group]
                continue
            self.stats.shares_reconstructed += sum(
                1 for s in range(spec.k)
                if spec.server_of_share(group, s) in down)
            anchor = group * spec.group_bytes
            for s in reachable[:spec.k]:
                server = spec.server_of_share(group, s)
                first, nbytes = share_reads.get(server, (anchor, 0))
                share_reads[server] = (min(first, anchor),
                                       nbytes + spec.stripe_size)
        plan = [(server, span, False)
                for server, span in sorted(per_server.items())
                if server not in down]
        plan += [(server, span, True)
                 for server, span in sorted(share_reads.items())]
        pending = []
        for server, (first_offset, nbytes), share in plan:
            body = {"op": "read", "path": path, "offset": first_offset,
                    "size": nbytes, "payload": None,
                    "client_id": self.client_id, "job": self.job}
            if share:
                body["share"] = True
            if self._ft:
                body["req_id"] = self._next_req_id()
                pending.append(self.engine.process(self._request(
                    server, body, _HEADER_BYTES)))
            else:
                client = yield from self._ensure_io(server)
                pending.append(client.call("io", body, size=_HEADER_BYTES))
        if pending:
            yield self.engine.all_of(pending)
        self.ops_completed += 1
        return avail - lost

    def write_read_cycle(self, path: str, size: int) -> int:
        """Generator: one §5.3.1 benchmark cycle (write then read back)."""
        yield from self.write(path, 0, size)
        return (yield from self.read(path, 0, size))

    # --------------------------------------------------------------- routing
    @staticmethod
    def _split(inode, offset: int, size: int) -> Dict[str, Tuple[int, int]]:
        """Per-server ``(first_offset, total_bytes)`` of a byte range
        (memoised on the stripe spec — see :func:`server_spans`)."""
        return server_spans(inode.stripe, offset, size)
