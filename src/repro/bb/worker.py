"""Server I/O workers (§4.1).

"Each worker pops one token at a time and an I/O request identified by
the token, then processes the I/O request. There can be multiple
workers for higher I/O throughput."

The token pop is inside the scheduler's ``dequeue``; the worker charges
the request's service time against its slice of the device bandwidth,
applies the file-system operation, replies to the client, and records
the completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import FileNotFound, FSError
from ..fs.striping import map_range
from ..sim.process import Event
from .request import IORequest, OpType

if TYPE_CHECKING:  # pragma: no cover
    from .server import Server

__all__ = ["IOWorker"]

#: Retry delay when a throttling scheduler blocks a backlog and cannot
#: name a wake-up time (defensive; normal paths use next_eligible_time).
_BLOCKED_RETRY = 1e-3


class IOWorker:
    """One service loop; ``n_workers`` of these share the device."""

    def __init__(self, server: "Server", index: int):
        self.server = server
        self.index = index
        self.served_requests = 0
        self.served_bytes = 0
        self.idle_cycles = 0
        self.lock_waits = 0
        self.throttle_waits = 0  # parks with backlog but no wake time
        self.abandoned = 0       # requests dropped mid-service by a crash
        self.locked_ino = None   # range-locked inode during a write
        self.locked_meta = None  # metadata-locked parent during namespace ops
        self.process = server.engine.process(self._loop())

    # ------------------------------------------------------------------ loop
    def _loop(self):
        server = self.server
        engine = server.engine
        scheduler = server.scheduler
        while True:
            if server.crashed:
                yield server.restart_event()
                continue
            request = scheduler.dequeue(engine.now)
            if request is None:
                if scheduler.backlog == 0:
                    yield server.work_event()
                else:
                    # Throttled (GIFT budget / TBF tokens): idle cycle.
                    self.idle_cycles += 1
                    wake = scheduler.next_eligible_time(engine.now)
                    if wake == float("inf"):
                        # Backlogged but the scheduler cannot name a
                        # wake-up time: park until new work or a token
                        # refresh triggers a notify (event-driven; the
                        # old path polled on a 1 ms timer here).
                        self.throttle_waits += 1
                        yield server.work_event()
                    else:
                        yield engine.timeout(
                            max(wake - engine.now, _BLOCKED_RETRY))
                continue
            # A crash between here and the reply wipes the server's
            # state; the epoch check makes the worker drop the request
            # on the floor (no reply — the client's retry re-executes).
            epoch = server.crash_epoch
            yield from self._acquire_locks(request)
            if server.crashed or server.crash_epoch != epoch:
                self._abandon(request)
                continue
            yield engine.timeout(server.service_time(request))
            if server.crashed or server.crash_epoch != epoch:
                self._abandon(request)
                continue
            moved = self._apply(request)
            self._release_locks(request)
            self._complete(request, moved)

    def _abandon(self, request: IORequest) -> None:
        """Drop a request whose service straddled a crash (no reply)."""
        self.abandoned += 1
        self._release_locks(request)
        server = self.server
        server.requests_dropped_in_crash += 1
        if server.fault_stats is not None:
            server.fault_stats.requests_dropped_in_crash += 1

    # --------------------------------------------------------------- locking
    def _lock_node(self):
        return self.server.fs.nodes[self.server.name]

    def _acquire_locks(self, request: IORequest):
        """Enforce §4.3's concurrency rules before servicing.

        Reads take no lock; writes take byte-range write locks
        (conflicting ranges serialise); namespace updates take the
        parent directory's metadata lock. A conflicting worker parks on
        a waiter event the lock table triggers at the next release on
        that inode — no polling, so contention adds no timer events to
        the engine heap and the lock is acquired the instant it frees.
        """
        engine = self.server.engine
        node = self._lock_node()
        if request.op is OpType.WRITE:
            inode = self.server.fs.lookup(request.path)
            if inode is None:
                return
            self.locked_ino = inode.ino
            while not node.range_locks.try_lock_write(
                    inode.ino, request.offset, request.size, self):
                self.lock_waits += 1
                released = Event(engine)
                node.range_locks.wait(inode.ino, released, request.offset,
                                      request.size, owner=self)
                yield released
        elif request.op in (OpType.OPEN, OpType.UNLINK, OpType.MKDIR):
            parent = self.server.fs.lookup(
                request.path.rsplit("/", 1)[0] or "/")
            if parent is None:
                return
            self.locked_meta = parent.ino
            while not node.meta_locks.try_lock(parent.ino, self):
                self.lock_waits += 1
                released = Event(engine)
                node.meta_locks.wait(parent.ino, released, owner=self)
                yield released

    def _release_locks(self, request: IORequest) -> None:
        node = self._lock_node()
        if self.locked_ino is not None:
            node.range_locks.unlock_write(self.locked_ino, self)
            self.locked_ino = None
        if self.locked_meta is not None:
            # unlock_if_held: a crash may have wiped the table (and our
            # ownership) between acquire and release.
            node.meta_locks.unlock_if_held(self.locked_meta, self)
            self.locked_meta = None

    # --------------------------------------------------------------- execute
    def _apply(self, request: IORequest) -> int:
        """Run the FS operation; returns data bytes moved."""
        fs = self.server.fs
        path = request.path
        op = request.op
        hook = self.server.storage_fault
        if hook is not None:
            exc = hook(request, self.server.engine.now)
            if exc is not None:
                # Injected device error (e.g. EIO): fail the op without
                # touching the FS; the reply carries ok=False.
                self.server.record_error(request, exc)
                request.error = exc
                if self.server.fault_stats is not None:
                    self.server.fault_stats.storage_errors += 1
                return 0
        try:
            if request.share and op.is_data:
                return self._apply_share(request)
            if op is OpType.WRITE:
                if request.payload is not None:
                    return self._write_exact(request)
                end = request.offset + request.size
                fs.write_accounting(path, end, 0)
                return request.size
            if op is OpType.READ:
                if request.payload is not None:  # pragma: no cover - reads carry none
                    raise FSError("read requests carry no payload")
                return fs.read_accounting(path, request.offset, request.size)
            if op is OpType.OPEN:
                if not fs.exists(path):
                    fs.create(path, uid=request.job.job_id)
                return 0
            if op is OpType.STAT:
                fs.stat(path)
                return 0
            if op is OpType.READDIR:
                fs.readdir(path)
                return 0
            if op is OpType.UNLINK:
                if fs.exists(path):
                    fs.unlink(path)
                return 0
            if op is OpType.MKDIR:
                if not fs.exists(path):
                    fs.mkdir(path)
                return 0
        except FileNotFound as exc:
            if op.is_data:
                self.server.record_error(request, FileNotFound(path))
                request.error = exc
            # Metadata miss (e.g. iops_stat's random names): a normal
            # ENOENT outcome, served and answered like any other op.
            return 0
        except FSError as exc:
            self.server.record_error(request, exc)
            request.error = exc
            return 0
        raise FSError(f"unhandled op {op}")  # pragma: no cover

    def _apply_share(self, request: IORequest) -> int:
        """Erasure share traffic: charge device bytes with no logical
        file-range clipping. A share WRITE also recomputes this server's
        parity shares for the dirtied groups (a no-op for hole groups,
        so accounting-mode workloads pay only the bandwidth)."""
        fs = self.server.fs
        if request.op is OpType.WRITE and request.groups:
            for group in request.groups:
                fs.rebuild_parity(request.path, group,
                                  only_server=self.server.name)
        return request.size

    def _write_exact(self, request: IORequest) -> int:
        """Verification path: write real bytes to this server's chunks only."""
        fs = self.server.fs
        inode = fs.lookup(request.path)
        if inode is None:
            self.server.record_error(request, FSError(request.path))
            return 0
        written = 0
        node = fs.nodes[self.server.name]
        for piece in map_range(inode.stripe, request.offset, request.size):
            if piece.server != self.server.name:
                continue
            lo = piece.file_offset - request.offset
            data = request.payload[lo:lo + piece.length]
            node.write_chunk(inode.ino, piece.chunk_index, piece.chunk_offset,
                             data, fs.stripe_size)
            written += piece.length
        end = request.offset + request.size
        if end > inode.size:
            # Route the size advance through the FS so a journaled FS
            # logs the extension (durability of acknowledged writes).
            fs.write_accounting(request.path, end, 0)
        return written

    def _complete(self, request: IORequest, moved: int) -> None:
        server = self.server
        data_bytes = moved if request.op.is_data else 0
        self.served_requests += 1
        self.served_bytes += data_bytes
        server.sampler.record(server.engine.now, request.job_id,
                              data_bytes, request.op.value)
        if (server.restarted_at is not None
                and server.first_completion_after_restart is None):
            server.first_completion_after_restart = server.engine.now
        if request.rpc is not None:
            resp_size = moved if request.op is OpType.READ else 0
            if request.error is None:
                body = {"ok": True, "bytes": moved}
            else:
                body = {"ok": False, "bytes": moved,
                        "error": getattr(request.error, "errno_name",
                                         "EIO")}
                if server.fault_stats is not None:
                    server.fault_stats.error_replies += 1
            request.rpc.reply(body, size=resp_size)
            if request.client_req_id is not None:
                if request.error is None:
                    server.cache_reply(request.client_req_id, body,
                                       resp_size)
                else:
                    # Failed requests were not applied: let a retry of
                    # the same id re-execute instead of replaying EIO.
                    server.forget_request(request.client_req_id)
