"""Crash-driven erasure repair (the durability tier's recovery half).

A :class:`RepairManager` watches the fabric's liveness oracle (the same
down-set the heartbeat machinery reflects): when a server goes down it
starts a *repair episode* — for every erasure-coded file with shares on
the dead server, rebuild the lost share of each stripe group onto a
substitute server, then restripe the file so future I/O routes around
the dead node.

Repair traffic is **first-class scheduled I/O**: the manager drives it
through a dedicated :class:`~repro.bb.client.Client` whose requests
carry a distinct repair :class:`~repro.core.jobinfo.JobInfo`, so
GIFT / TBF / size-fair / opportunity-fair arbitrate repair against
foreground bandwidth exactly like any other job — the repair-vs-fairness
experiment measures precisely that contention. Share *content* moves at
the fs layer (instantaneous, like every ThemisFS call); the scheduled
share reads/writes charge the simulated time.

Robust under compound faults: a second crash mid-repair shrinks the
survivor set — groups still holding ``k`` reachable shares repair
normally, groups below ``k`` are accounted as lost (``data_lost_groups``)
and skipped, never raised. Injected storage errors fail individual share
requests, which are counted and retried or skipped without aborting the
episode.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

from ..core.jobinfo import JobInfo
from ..errors import FileNotFound, RpcTimeout
from ..fs.striping import ErasureSpec
from .client import Client
from .server import Server

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster

__all__ = ["RepairManager", "REPAIR_JOB_ID", "REPAIR_USER"]

#: job id repair traffic is billed to (outside any workload's id range).
REPAIR_JOB_ID = 1 << 20
#: user/group the repair job runs as (size-fair sees a size-1 job).
REPAIR_USER = "repair"


class RepairManager:
    """Detects dead share servers and rebuilds their shares elsewhere."""

    def __init__(self, cluster: "Cluster", detect_interval: float = 0.5):
        self.cluster = cluster
        self.engine = cluster.engine
        self.fs = cluster.fs
        self.stats = cluster.fault_stats
        self.detect_interval = detect_interval
        #: dead server -> detection time, while its episode runs.
        self.active: Dict[str, float] = {}
        #: crashes already handled; cleared when the server is seen up
        #: again, so only a fresh crash starts a fresh episode.
        self._handled: Set[str] = set()
        #: finished episode records (oldest first).
        self.episodes: List[Dict[str, Any]] = []
        self._client: Optional[Client] = None
        self.process = self.engine.process(self._watch())

    # ------------------------------------------------------------- detection
    def _watch(self):
        """Failure-detector loop: poll the down-set every
        ``detect_interval`` (heartbeat-granularity detection latency)."""
        while True:
            yield self.engine.timeout(self.detect_interval)
            for name in sorted(self.cluster.servers):
                if not self.cluster.fabric.node_is_down(name):
                    self._handled.discard(name)
                elif name not in self._handled:
                    self._handled.add(name)
                    self.active[name] = self.engine.now
                    self.engine.process(self._episode(name))

    def _down_set(self) -> Set[str]:
        return {name for name in sorted(self.cluster.servers)
                if self.cluster.fabric.node_is_down(name)}

    def _pick_substitute(self, spec: ErasureSpec) -> Optional[str]:
        """First live server outside the file's placement (determinism:
        name order)."""
        for name in sorted(self.cluster.servers):
            if name in spec.servers:
                continue
            if self.cluster.fabric.node_is_down(name):
                continue
            return name
        return None

    # ---------------------------------------------------------- repair client
    def _repair_client(self) -> Client:
        """The dedicated client whose requests carry the repair job.

        Retries are bounded even if the cluster's clients retry forever:
        a repair source that dies mid-episode must fail the share fetch
        (so the group is re-planned or accounted lost), not wedge the
        episode until a restart that may never come.
        """
        if self._client is None:
            cfg = self.cluster.config.client
            cfg = replace(cfg,
                          rpc_timeout=cfg.rpc_timeout or 0.25,
                          rpc_retries=cfg.rpc_retries if cfg.rpc_retries >= 0
                          else 8)
            job = JobInfo(job_id=REPAIR_JOB_ID, user=REPAIR_USER,
                          group=REPAIR_USER, size=1)
            ctl = {name: (name, Server.CTL_WORKER)
                   for name in self.cluster.servers}
            self._client = Client(
                self.engine, self.cluster.fabric, "cn-repair", "repair-0",
                job, self.fs, ctl, config=cfg,
                rng=self.cluster.rng.stream("client.repair"),
                fault_stats=self.stats)
            self.cluster.clients["repair-0"] = self._client
        return self._client

    # --------------------------------------------------------------- episode
    def _episode(self, dead: str):
        """Generator: repair everything *dead* held, then record stats."""
        episode: Dict[str, Any] = {
            "server": dead, "detected_at": self.engine.now,
            "files": 0, "groups_repaired": 0, "groups_clean": 0,
            "groups_lost": 0, "io_failures": 0, "skipped_files": 0,
            "repair_bytes": 0,
        }
        try:
            for path in self.fs.erasure_files_on(dead):
                inode = self.fs.lookup(path)
                if inode is None or not isinstance(inode.stripe, ErasureSpec):
                    continue
                spec = inode.stripe
                if dead not in spec.servers:
                    continue
                substitute = self._pick_substitute(spec)
                if substitute is None:
                    # Nowhere to rebuild (every live server already holds
                    # a share): stay degraded, reads reconstruct inline.
                    episode["skipped_files"] += 1
                    continue
                episode["files"] += 1
                yield from self._repair_file(path, spec, inode.size, dead,
                                             substitute, episode)
        finally:
            episode["finished_at"] = self.engine.now
            self.episodes.append(episode)
            self.active.pop(dead, None)

    def _repair_file(self, path: str, spec: ErasureSpec, size: int,
                     dead: str, substitute: str,
                     episode: Dict[str, Any]):
        """Generator: rebuild every group's lost share, then restripe."""
        file_lost = 0
        for group in range(spec.n_groups(size)):
            down = self._down_set() | {dead}
            lost_share = spec.share_of_server(group, dead)
            sources = [s for s in range(spec.n)
                       if s != lost_share
                       and spec.server_of_share(group, s) not in down]
            sources = sources[:spec.k]
            if len(sources) < spec.k or substitute in down:
                # A compound fault ate the survivors (or the target):
                # account the loss and move on — repair never crashes.
                self.stats.data_lost_groups += 1
                episode["groups_lost"] += 1
                file_lost += 1
                continue
            moved = yield from self._group_io(path, spec, group, sources,
                                              substitute, episode)
            outcome, _ = self.fs.repair_group(
                path, group, dead, substitute,
                unavailable=self._down_set())
            if outcome == "lost":
                self.stats.data_lost_groups += 1
                episode["groups_lost"] += 1
                file_lost += 1
                continue
            key = "groups_repaired" if outcome == "repaired" else \
                "groups_clean"
            episode[key] += 1
            if outcome == "repaired":
                # Only content actually reconstructed counts as a
                # rebuilt share; "clean" groups (accounting-mode holes)
                # still cost the share traffic, billed below.
                self.stats.shares_reconstructed += 1
            self.stats.repair_bytes += moved
            episode["repair_bytes"] += moved
        inode = self.fs.lookup(path)
        if (file_lost == 0
                and inode is not None
                and isinstance(inode.stripe, ErasureSpec)
                and dead in inode.stripe.servers
                and substitute not in inode.stripe.servers):
            # Only a fully rebuilt file routes away from the dead
            # server. Restriping after a lossy episode would make the
            # substitute's hole chunks read as valid zero shares and
            # hide the loss; and a concurrent episode (compound crash)
            # may have restriped this substitute in already — in both
            # cases stay degraded.
            self.fs.restripe(path, dead, substitute)

    def _group_io(self, path: str, spec: ErasureSpec, group: int,
                  sources, substitute: str, episode: Dict[str, Any]):
        """Generator: scheduled share traffic of one group's rebuild —
        ``k`` share reads off the survivors, one share write to the
        substitute — billed to the repair job. Returns bytes moved
        (individual failures are counted and tolerated: the fs-level
        content move decides data fate)."""
        client = self._repair_client()
        anchor = group * spec.group_bytes
        moved = 0
        reads = []
        for s in sources:
            server = spec.server_of_share(group, s)
            reads.append(self.engine.process(self._safe_call(
                client._io_call(server, "read", path, offset=anchor,
                                size=spec.stripe_size,
                                extra={"share": True}))))
        results = yield self.engine.all_of(reads)
        for ok in results:
            if ok is None:
                episode["io_failures"] += 1
            else:
                moved += spec.stripe_size
        if (yield from self._safe_call(client._io_call(
                substitute, "write", path, offset=anchor,
                size=spec.stripe_size, wire=spec.stripe_size,
                extra={"share": True}))) is None:
            episode["io_failures"] += 1
        else:
            moved += spec.stripe_size
        return moved

    @staticmethod
    def _safe_call(gen):
        """Generator: run one share request, absorbing its failure
        (returns None) so a compound fault can never fail the AllOf —
        and through it, the engine — out from under the episode."""
        try:
            return (yield from gen)
        except (RpcTimeout, FileNotFound):
            return None

    # --------------------------------------------------------------- summary
    def summary(self) -> Dict[str, Any]:
        """Aggregate episode statistics (the experiment's repair half)."""
        done = self.episodes
        return {
            "episodes": len(done),
            "active": sorted(self.active),
            "files": sum(e["files"] for e in done),
            "groups_repaired": sum(e["groups_repaired"] for e in done),
            "groups_clean": sum(e["groups_clean"] for e in done),
            "groups_lost": sum(e["groups_lost"] for e in done),
            "io_failures": sum(e["io_failures"] for e in done),
            "repair_bytes": sum(e["repair_bytes"] for e in done),
            "repair_seconds": sum(e["finished_at"] - e["detected_at"]
                                  for e in done),
        }
