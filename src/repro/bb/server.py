"""The ThemisIO burst-buffer server (§4.1).

Four components on each burst-buffer node:

- **job monitor** (:mod:`repro.bb.monitor`) — heartbeat-driven job table;
- **I/O request communicator** — the RPC surface on the client-facing
  UCP worker pool; groups inbound requests into per-job queues (inside
  the scheduler);
- **controller** (:mod:`repro.bb.controller`) — token allocation and
  λ-delayed synchronisation with peer servers;
- **workers** (:mod:`repro.bb.worker`) — service loops sharing the
  storage device's bandwidth.

The queueing discipline is pluggable: ThemisIO's statistical token
scheduler or any comparator (FIFO / GIFT / TBF).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Tuple)

from ..core.jobinfo import JobInfo
from ..core.scheduler import Scheduler
from ..errors import ConfigError
from ..fs.filesystem import ThemisFS
from ..metrics.faultstats import FaultStats
from ..metrics.sampler import ThroughputSampler
from ..net.fabric import Fabric
from ..sim.process import Event
from ..ucx import Address, RpcRequest, RpcServer, UCPContext, WorkerPool
from ..units import GB, USEC
from .controller import Controller
from .monitor import JobMonitor
from .request import IORequest, OpType
from .worker import IOWorker

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine

__all__ = ["Server", "ServerConfig"]


@dataclass
class ServerConfig:
    """Tunables of one burst-buffer server.

    Defaults approximate the paper's testbed: ~22 GB/s combined
    read+write service rate per server (§1), microsecond-scale request
    latencies (§5.3.1: "actual response time of each I/O operation is on
    the order of 1 microsecond").
    """

    bandwidth: float = 22 * GB        # device service rate, bytes/second
    n_workers: int = 8                # concurrent I/O workers
    op_latency: float = 5 * USEC      # fixed per-data-request overhead
    meta_latency: float = 20 * USEC   # metadata op service time
    heartbeat_timeout: float = 5.0    # job -> inactive after this silence
    expire_check_interval: float = 1.0
    sync_interval: float = 0.5        # λ of §3.1 (500 ms default, §5.6)
    #: time a controller spends serialising/merging one table exchange;
    #: §5.6 observes ~50 ms as ThemisIO's effectiveness boundary on
    #: Frontera, dominated by server processing speed — λ below this
    #: cannot speed convergence up further.
    sync_processing_time: float = 0.035
    client_pool_workers: int = 4      # UCP workers shared among clients
    #: per-peer λ-sync RPC timeout; a peer that does not answer within
    #: this window is skipped and the round proceeds on the partial
    #: table (degraded mode). 0 disables timeouts: the all-gather is the
    #: original lock-step exchange, which a dead peer would wedge — keep
    #: it 0 only for runs that never crash servers.
    sync_timeout: float = 0.0
    #: λ-sync wire protocol: True (default) runs one coordinator-driven
    #: gather→merge→scatter round per epoch (2·(N-1) message pairs
    #: cluster-wide, content-hash skip on unchanged state); False runs
    #: the original per-pair exchange (N·(N-1) pairs per epoch).
    batched_sync: bool = True
    #: branching factor of the hierarchical λ-sync aggregation tree
    #: (DESIGN.md §13). 0 (default) keeps the flat batched round; k >= 2
    #: arranges each epoch's members in a deterministic k-ary tree under
    #: the rotating root, with interior nodes merging their subtree
    #: before forwarding — peak per-node fan-in drops from N−1 to k and
    #: the two layouts produce identical merged tables per epoch.
    sync_tree_fanout: int = 0
    #: skip the entire merge round when nothing changed cluster-wide:
    #: the gather probes carry the last merged content hash, peers whose
    #: state still hashes identically answer with a probe-sized "same",
    #: and if everyone does the coordinator skips the merge and scatter
    #: outright. Off by default — the skip changes wire traffic, so it
    #: is not trace-neutral the way the delta encodings are.
    sync_quiescence_skip: bool = False

    def __post_init__(self):
        if self.bandwidth <= 0 or self.n_workers < 1:
            raise ConfigError("bandwidth must be > 0 and n_workers >= 1")
        if self.op_latency < 0 or self.meta_latency < 0:
            raise ConfigError("latencies must be non-negative")
        if self.sync_tree_fanout < 0 or self.sync_tree_fanout == 1:
            raise ConfigError(
                "sync_tree_fanout must be 0 (flat round) or >= 2")
        if self.sync_tree_fanout and not self.batched_sync:
            raise ConfigError("tree sync requires batched_sync=True")


class Server:
    """One burst-buffer node running the full server stack."""

    #: worker name clients address their register/heartbeat traffic to.
    CTL_WORKER = "ctl"

    #: completed replies remembered per client request id (idempotency).
    _REQ_CACHE_MAX = 1024

    def __init__(self, engine: "Engine", fabric: Fabric, name: str,
                 fs: ThemisFS, scheduler: Scheduler,
                 config: Optional[ServerConfig] = None,
                 sampler: Optional[ThroughputSampler] = None,
                 fault_stats: Optional[FaultStats] = None):
        self.engine = engine
        self.fabric = fabric
        self.name = name
        self.fs = fs
        self.scheduler = scheduler
        self.config = config or ServerConfig()
        self.sampler = sampler if sampler is not None else ThroughputSampler()
        self.fault_stats = fault_stats

        # --- crash/restart lifecycle state -----------------------------
        self.crashed = False
        #: bumped on every crash; workers snapshot it per request and
        #: abandon work that straddles a crash.
        self.crash_epoch = 0
        self.crashes = 0
        self.recoveries = 0
        self.crashed_at: Optional[float] = None
        self.restarted_at: Optional[float] = None
        #: time of the first request served after the latest restart
        #: (recovery-time metric); None until it happens.
        self.first_completion_after_restart: Optional[float] = None
        self.last_recovery: Optional[Dict[str, Any]] = None
        self._restart_waiters: List[Event] = []
        #: fault-injection hook: called per request before the FS op;
        #: returns an exception to fail the op with, or None.
        self.storage_fault: Optional[
            Callable[[IORequest, float], Optional[Exception]]] = None
        self.requests_dropped_in_crash = 0
        self.duplicate_requests = 0
        # Idempotency: completed replies by client request id (LRU) plus
        # the ids currently being serviced (duplicates of those are
        # dropped; the original's reply answers the retry too).
        self._req_cache: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._inflight_req: set = set()

        self.ctx = UCPContext(engine, fabric, name)
        self.monitor = JobMonitor(
            engine, heartbeat_timeout=self.config.heartbeat_timeout,
            check_interval=self.config.expire_check_interval,
            on_expire=self._on_jobs_expired)
        self.controller = Controller(self, self.config.sync_interval)

        # Communicator: control worker + client-facing pool, one RPC
        # dispatcher per worker.
        ctl = self.ctx.create_worker(self.CTL_WORKER)
        RpcServer(ctl, self._on_control)
        self.pool = WorkerPool(self.ctx, "cs-",
                               self.config.client_pool_workers)
        for worker in self.pool.workers:
            RpcServer(worker, self._on_request)
        # Server-server sync surface.
        sync_worker = self.ctx.create_worker("ss")
        RpcServer(sync_worker, self._on_sync)
        self.sync_address: Address = sync_worker.address

        self.workers: List[IOWorker] = [
            IOWorker(self, i) for i in range(self.config.n_workers)]
        self._work_waiters: List[Event] = []
        self.errors: List[Tuple[IORequest, Exception]] = []

    # --------------------------------------------------------------- service
    def service_time(self, request: IORequest) -> float:
        """Simulated device time one worker spends on *request*."""
        if request.op.is_data:
            per_worker_bw = self.config.bandwidth / self.config.n_workers
            return self.config.op_latency + request.size / per_worker_bw
        return self.config.meta_latency

    def work_event(self) -> Event:
        """Event a worker parks on when the scheduler is empty."""
        ev = Event(self.engine)
        self._work_waiters.append(ev)
        return ev

    def _notify_work(self) -> None:
        waiters, self._work_waiters = self._work_waiters, []
        for ev in waiters:
            ev.succeed()

    def record_error(self, request: IORequest, exc: Exception) -> None:
        """Log a failed request (inspected by tests and operators)."""
        self.errors.append((request, exc))

    def policy_shares(self, active_jobs) -> Dict[int, float]:
        """Global policy shares, if this server runs a policy scheduler
        (comparator disciplines have no share concept -> {})."""
        policy = getattr(self.scheduler, "policy", None)
        if policy is None:
            return {}
        return policy.shares(active_jobs)

    # ----------------------------------------------------------- communicator
    def _on_request(self, rpc: RpcRequest) -> None:
        """An I/O request arrived on a pool worker."""
        body = rpc.body
        creq = body.get("req_id")
        if creq is not None:
            cached = self._req_cache.get(creq)
            if cached is not None:
                # Retry of an already-completed request: replay the
                # stored reply instead of re-executing (idempotency).
                self._req_cache.move_to_end(creq)
                self.duplicate_requests += 1
                if self.fault_stats is not None:
                    self.fault_stats.duplicate_requests += 1
                rpc.reply(cached[0], size=cached[1])
                return
            if creq in self._inflight_req:
                # Retry raced the original, which is still being
                # serviced; its eventual reply answers this retry too.
                self.duplicate_requests += 1
                if self.fault_stats is not None:
                    self.fault_stats.duplicate_requests += 1
                return
            self._inflight_req.add(creq)
        info: JobInfo = body["job"]
        changed = self.monitor.observe(info, body.get("client_id", ""))
        if changed:
            self.controller.refresh_tokens()
        request = IORequest(
            op=OpType(body["op"]),
            job=info,
            path=body["path"],
            offset=body.get("offset", 0),
            size=body.get("size", 0),
            client_id=body.get("client_id", ""),
            payload=body.get("payload"),
            rpc=rpc,
            arrival=self.engine.now,
            client_req_id=creq,
            share=body.get("share", False),
            groups=body.get("groups"),
        )
        self.scheduler.enqueue(request, self.engine.now)
        self._notify_work()

    def cache_reply(self, req_id: str, body: Any, size: int) -> None:
        """Remember a completed reply for client request id *req_id*."""
        self._inflight_req.discard(req_id)
        self._req_cache[req_id] = (body, size)
        if len(self._req_cache) > self._REQ_CACHE_MAX:
            self._req_cache.popitem(last=False)

    def forget_request(self, req_id: str) -> None:
        """Drop a request id without caching its reply.

        Used for error replies: the request was *not* applied, so a
        client retry must re-execute it rather than replay the failure
        (a cached EIO would otherwise outlive the fault that caused it).
        """
        self._inflight_req.discard(req_id)

    def _on_control(self, rpc: RpcRequest) -> None:
        """register / heartbeat / goodbye traffic."""
        body = rpc.body
        kind = body["kind"]
        client_id = body["client_id"]
        if kind == "register":
            info: JobInfo = body["job"]
            if self.monitor.observe(info, client_id):
                self.controller.refresh_tokens()
            worker = self.pool.assign(client_id)
            rpc.reply({"ok": True, "io_worker": worker.name})
        elif kind == "heartbeat":
            self.monitor.heartbeat(body["job"], client_id)
            rpc.reply({"ok": True})
        elif kind == "goodbye":
            self.pool.release(client_id)
            job_id = self.monitor.client_exit(client_id)
            if job_id is not None and not self.monitor.clients_of(job_id):
                if self.monitor.table.deactivate(job_id):
                    self.controller.refresh_tokens()
            rpc.reply({"ok": True})
        else:
            rpc.reply({"ok": False, "error": f"unknown control op {kind!r}"})

    def _on_sync(self, rpc: RpcRequest) -> None:
        self.controller.handle_sync(rpc)

    # ----------------------------------------------------------------- expiry
    def _on_jobs_expired(self, job_ids: List[int]) -> None:
        """Heartbeat timeout: drop the jobs' client mappings and re-token."""
        for job_id in job_ids:
            clients = self.monitor.clients_of(job_id)
            self.pool.release_many(clients)
            for client_id in clients:
                self.monitor.client_exit(client_id)
        self.controller.refresh_tokens()

    # ----------------------------------------------------------- crash model
    def crash(self) -> None:
        """Fail-stop this server: every volatile structure is lost.

        The node stops transmitting and receiving, queued requests
        vanish, the reply cache / client mappings / job table / peer
        knowledge are wiped, locks are released (waiters wake and
        observe the crash), and the file system loses whatever its
        backend loses (:meth:`ThemisFS.crash_node`). Clients see only
        silence and recover via timeout + retry. Idempotent while down.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_epoch += 1
        self.crashes += 1
        self.crashed_at = self.engine.now
        if self.fault_stats is not None:
            self.fault_stats.server_crashes += 1
        self.ctx.down = True
        self.fabric.set_node_down(self.name)
        dropped = self.scheduler.drain()
        self.requests_dropped_in_crash += len(dropped)
        if self.fault_stats is not None:
            self.fault_stats.requests_dropped_in_crash += len(dropped)
        self._req_cache.clear()
        self._inflight_req.clear()
        self.pool.release_many(self.pool.mapped_clients)
        self.monitor.reset()
        self.controller.reset()
        if hasattr(self.fs, "crash_node"):
            self.fs.crash_node(self.name)
        # Wake idle workers so they observe the crash and park on the
        # restart event instead of the (now meaningless) work event.
        self._notify_work()

    def restart(self) -> None:
        """Recover and rejoin: rebuild storage state, resume service.

        Runs :meth:`ThemisFS.recover_node` (journal replay + log-segment
        scan when those layers are configured), clears the down flags,
        recomputes tokens from the empty-but-alive table, and wakes the
        workers. Clients re-register on their next retry; peers re-merge
        this server's table at their next λ-sync round.
        """
        if not self.crashed:
            return
        if hasattr(self.fs, "recover_node"):
            self.last_recovery = self.fs.recover_node(self.name)
        self.crashed = False
        self.recoveries += 1
        self.restarted_at = self.engine.now
        self.first_completion_after_restart = None
        if self.fault_stats is not None:
            self.fault_stats.server_recoveries += 1
        self.ctx.down = False
        self.fabric.set_node_down(self.name, down=False)
        self.controller.refresh_tokens(force=True)
        waiters, self._restart_waiters = self._restart_waiters, []
        for ev in waiters:
            ev.succeed()
        self._notify_work()

    def restart_event(self) -> Event:
        """Event a worker parks on while the server is crashed.

        Fires at the next :meth:`restart`; already-succeeded if the
        server is currently up.
        """
        ev = Event(self.engine)
        if not self.crashed:
            ev.succeed()
            return ev
        self._restart_waiters.append(ev)
        return ev

    # ------------------------------------------------------------------ intro
    def connect_peers(self, peers: Dict[str, Address]) -> None:
        """Give the controller the peer sync addresses (λ loop starts)."""
        self.controller.connect_peers(peers)

    @property
    def served_bytes(self) -> int:
        return sum(worker.served_bytes for worker in self.workers)

    @property
    def served_requests(self) -> int:
        return sum(worker.served_requests for worker in self.workers)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Server {self.name} sched={self.scheduler.name}>"
