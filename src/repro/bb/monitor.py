"""The server's job monitor (§4.1).

"The job monitor may receive heartbeats from multiple clients of
multiple applications. It maintains a job status table ... Job status is
set to active when the corresponding job is new to the server. It is
changed to inactive if a job heartbeat is not received for a predefined
period of time."

The monitor also tracks which clients belong to which job so that when a
job goes inactive (or a client says goodbye) the server can destroy the
corresponding UCP worker mapping entries (§4.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..core.jobinfo import JobInfo, JobStatusTable

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine

__all__ = ["JobMonitor"]


class JobMonitor:
    """Heartbeat-driven job tracking for one server."""

    def __init__(self, engine: "Engine", heartbeat_timeout: float = 5.0,
                 check_interval: float = 1.0,
                 on_expire: Optional[Callable[[List[int]], None]] = None):
        self.engine = engine
        self.table = JobStatusTable(heartbeat_timeout)
        self.check_interval = check_interval
        self.on_expire = on_expire
        self._client_job: Dict[str, int] = {}
        #: jobs that have contacted THIS server directly (vs. learned via
        #: λ-sync merges) — the placement information Fig. 5's token
        #: adjustment needs.
        self.local_jobs: set = set()
        self._process = engine.process(self._expiry_loop())

    # ---------------------------------------------------------------- intake
    def observe(self, info: JobInfo, client_id: str = "") -> bool:
        """Record job metadata from a register or I/O request."""
        if client_id:
            self._client_job[client_id] = info.job_id
        self.local_jobs.add(info.job_id)
        return self.table.observe(info, self.engine.now)

    def heartbeat(self, info: JobInfo, client_id: str = "") -> None:
        """Refresh a job's liveness (observe covers unknown jobs too)."""
        self.observe(info, client_id)

    def reset(self) -> None:
        """Forget everything (server crash): the job table, client→job
        mappings, and placement knowledge all restart empty. The expiry
        loop keeps running — an empty table expires nothing."""
        self.table = JobStatusTable(self.table.heartbeat_timeout)
        self._client_job.clear()
        self.local_jobs.clear()

    def client_exit(self, client_id: str) -> Optional[int]:
        """Forget a client; returns its job id if it was known."""
        return self._client_job.pop(client_id, None)

    def clients_of(self, job_id: int) -> List[str]:
        """Client ids currently mapped to *job_id*, sorted."""
        return sorted(cid for cid, jid in self._client_job.items()
                      if jid == job_id)

    # ---------------------------------------------------------------- expiry
    def _expiry_loop(self):
        while True:
            yield self.engine.timeout(self.check_interval)
            expired = self.table.expire(self.engine.now)
            if expired and self.on_expire is not None:
                self.on_expire(expired)

    def active_jobs(self) -> List[JobInfo]:
        """Active jobs in this server's table, sorted by id."""
        return self.table.active_jobs()

    def active_local_jobs(self) -> set:
        """Active jobs whose files/clients touch this server directly."""
        return {j for j in self.local_jobs if self.table.is_active(j)}
