"""Client-side read cache.

§5.1: "We disable client caching in all tests as ThemisIO is designed
for remote-shared burst buffer, and we are investigating the I/O
sharing capability in particular" — i.e. the client *has* a cache, the
evaluation just turns it off. This module provides that piece: a
block-granular LRU read cache consulted before forwarding reads, with
write-through invalidation of the writer's own overlapping blocks.

Scope note: coherence across clients is intentionally out of scope (as
in most HPC client caches, consistency across ranks is delegated to the
application/library level); the cache defaults to **disabled**, matching
every experiment in the paper.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from ..errors import ConfigError

__all__ = ["ClientCache"]


class ClientCache:
    """Block-granular LRU over ``(path, block_index)`` keys.

    Tracks *coverage*, not contents: the simulator's accounting-mode
    reads carry no payload, so a cached block means "this range needs no
    server round trip".
    """

    def __init__(self, capacity_bytes: int, block_size: int = 1 << 20):
        if capacity_bytes <= 0 or block_size <= 0:
            raise ConfigError("capacity_bytes and block_size must be positive")
        if block_size > capacity_bytes:
            raise ConfigError("block_size exceeds capacity")
        self.capacity_blocks = capacity_bytes // block_size
        self.block_size = block_size
        self._blocks: "OrderedDict[Tuple[str, int], bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------- geometry
    def _range_blocks(self, offset: int, size: int) -> range:
        if size <= 0:
            return range(0)
        first = offset // self.block_size
        last = (offset + size - 1) // self.block_size
        return range(first, last + 1)

    @property
    def cached_blocks(self) -> int:
        return len(self._blocks)

    # ---------------------------------------------------------------- reads
    def covers(self, path: str, offset: int, size: int) -> bool:
        """True if the whole range is cached (and refresh its recency)."""
        blocks = list(self._range_blocks(offset, size))
        if not blocks:
            return True
        if all((path, b) in self._blocks for b in blocks):
            for b in blocks:
                self._blocks.move_to_end((path, b))
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, path: str, offset: int, size: int) -> None:
        """Record that the range was fetched (post-read insertion)."""
        for b in self._range_blocks(offset, size):
            key = (path, b)
            if key in self._blocks:
                self._blocks.move_to_end(key)
            else:
                self._blocks[key] = True
                while len(self._blocks) > self.capacity_blocks:
                    self._blocks.popitem(last=False)
                    self.evictions += 1

    # --------------------------------------------------------------- writes
    def invalidate(self, path: str, offset: int, size: int) -> int:
        """Drop cached blocks overlapping a write; returns blocks dropped."""
        dropped = 0
        for b in self._range_blocks(offset, size):
            if self._blocks.pop((path, b), None) is not None:
                dropped += 1
        self.invalidations += dropped
        return dropped

    def invalidate_path(self, path: str) -> int:
        """Drop every cached block of *path* (unlink/truncate)."""
        keys = [k for k in self._blocks if k[0] == path]
        for key in keys:
            del self._blocks[key]
        self.invalidations += len(keys)
        return len(keys)

    def clear(self) -> None:
        """Drop every cached block."""
        self._blocks.clear()
