"""The ThemisIO burst-buffer system: servers, clients, cluster assembly."""

from .cache import ClientCache
from .client import Client, ClientConfig
from .cluster import Cluster, ClusterConfig, make_scheduler
from .controller import Controller
from .monitor import JobMonitor
from .request import IORequest, META_COST_BYTES, OpType
from .server import Server, ServerConfig
from .stats import ServerStats, cluster_summary, server_stats
from .worker import IOWorker

__all__ = [
    "Cluster",
    "ClusterConfig",
    "make_scheduler",
    "Server",
    "ServerConfig",
    "Client",
    "ClientConfig",
    "ClientCache",
    "Controller",
    "JobMonitor",
    "IOWorker",
    "IORequest",
    "OpType",
    "META_COST_BYTES",
    "ServerStats",
    "server_stats",
    "cluster_summary",
]
