"""I/O request types carried from clients to burst-buffer servers.

Every request embeds the job metadata (job id, user, group, size) that
ThemisIO's policies key on (§1: "we embed job-related information, such
as job id, user id, and job size, in the I/O request").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional, Tuple

from ..core.jobinfo import JobInfo
from ..errors import InvalidArgument

__all__ = ["OpType", "IORequest", "META_COST_BYTES"]

#: Service cost (in byte-equivalents) charged for a metadata operation by
#: budget-based schedulers (GIFT/TBF); roughly one small device page.
META_COST_BYTES = 4096

_req_ids = itertools.count(1)


class OpType(Enum):
    """The I/O operation kinds a request can carry."""
    WRITE = "write"
    READ = "read"
    OPEN = "open"       # create-or-open
    STAT = "stat"
    READDIR = "readdir"
    UNLINK = "unlink"
    MKDIR = "mkdir"

    @property
    def is_data(self) -> bool:
        return self in (OpType.WRITE, OpType.READ)


@dataclass
class IORequest:
    """One server-side unit of work (a single-server slice of a client op)."""

    op: OpType
    job: JobInfo
    path: str
    offset: int = 0
    size: int = 0                 # payload bytes for data ops
    client_id: str = ""
    payload: Optional[bytes] = None  # real bytes (verification paths only)
    rpc: Any = None               # RpcRequest to reply on (None in unit tests)
    arrival: float = 0.0
    req_id: int = field(default_factory=lambda: next(_req_ids))
    #: client-issued idempotency id ("{client_id}#{seq}"); reused across
    #: retries so the server can deduplicate. None for legacy clients.
    client_req_id: Optional[str] = None
    #: failure the worker hit applying this request (reported in the
    #: reply as ok=False); None on success.
    error: Optional[Exception] = None
    #: erasure-tier share traffic (parity updates, degraded-read and
    #: repair share fetches): charged as raw device bytes, no logical
    #: file-range clipping. False on every non-erasure request.
    share: bool = False
    #: stripe groups a share WRITE dirties (parity rebuild targets).
    groups: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        if self.size < 0 or self.offset < 0:
            raise InvalidArgument(
                f"negative offset/size: {self.offset}/{self.size}")
        if self.payload is not None and len(self.payload) != self.size:
            raise InvalidArgument(
                f"payload length {len(self.payload)} != size {self.size}")
        if self.op.is_data and self.size == 0 and self.op is OpType.WRITE:
            raise InvalidArgument("zero-byte write request")

    @property
    def job_id(self) -> int:
        return self.job.job_id

    @property
    def cost(self) -> float:
        """Service cost in byte-equivalents (scheduler budgeting unit)."""
        return float(self.size) if self.op.is_data else float(META_COST_BYTES)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<IORequest #{self.req_id} {self.op.value} job={self.job_id} "
                f"{self.path}@{self.offset}+{self.size}>")
