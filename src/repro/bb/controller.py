"""The server controller (§4.1, §3.1).

"The controller synchronizes with other servers to get the global status
of active jobs, and allocates a number of tokens according to the fair
sharing policy."

Token allocation: whenever the job table's active set changes (new job,
expiry, merge), the controller recomputes the statistical token
assignment. With a single server — or before any peer information has
arrived — shares come straight from the policy over the local table.
Once λ-sync has exchanged tables *and placement* (which jobs each server
hosts), every server solves the same placement-constrained assignment
(:func:`repro.core.fairness.placement_shares`, the Fig. 5 adjustment)
and installs its own row, so the cluster-wide split matches the global
policy even when files live on disjoint servers.

λ-delayed fairness: every ``sync_interval`` seconds the servers
synchronise over the server↔server UCP workers (the all-gather of
§3.1). Three wire protocols implement it:

- **batched** (the default, ``ServerConfig.batched_sync``): each sync
  epoch one *coordinator* — rotating by epoch index over the sorted
  member names, so no server is a single point of coordination — pulls
  every peer's snapshot, merges them, and scatters the merged table
  plus the placement map back out: one gather→merge→scatter round per
  epoch, ``2·(N-1)`` request/response pairs cluster-wide instead of the
  pairwise exchange's ``N·(N-1)``. The push carries a content hash of
  the merged state; a peer whose previous push had the same hash skips
  the merge and token refresh entirely (the skip is trace-neutral: the
  wire traffic and simulated timing are identical, only the redundant
  host-side work is elided).
- **tree** (``ServerConfig.sync_tree_fanout >= 2``): the batched round
  restructured as a deterministic k-ary aggregation tree over the same
  rotated member order. The epoch's root pulls only its k children;
  each interior node recursively pulls *its* children, merges the
  subtree's tables, and replies the aggregate, so per-node peak fan-in
  drops from N−1 to k and the root's inbound bytes stop scaling with
  N. The scatter reuses the same edges top-down: each node forwards
  the merged global table to exactly the children that answered its
  gather, delta-encoded per edge against what that child provably
  holds. A crash, restart, or partition on one edge degrades (and
  later full-table-resyncs) only the subtree hanging off that edge.
- **pairwise** (``batched_sync=False``, the original protocol): every
  server exchanges snapshots with every peer each round; each exchange
  is a request/response pair where the peer merges our snapshot and
  replies with its own.

Delta encoding runs in *both* directions of the batched/tree rounds:
scatter pushes omit entries the receiver echoed with an equal-or-newer
heartbeat (PR 5), and gather replies omit entries the requester has
confirmed applying from this responder before — the per-peer basis is
an opaque token minted with each reply and echoed back in the next
probe, so a lost reply or a crash on either side falls back to a full
snapshot (see DESIGN.md §13). Omitted gather entries still ship a
compact ``(job_id, heartbeat)`` summary so the requester's scatter
deltas keep an exact picture of what the responder holds.
"""

from __future__ import annotations

from collections import deque
from hashlib import blake2b
from typing import (TYPE_CHECKING, Deque, Dict, List, Optional, Set,
                    Tuple)

from ..core.fairness import placement_shares
from ..errors import RpcTimeout
from ..ucx import Address, RpcClient

if TYPE_CHECKING:  # pragma: no cover
    from .server import Server

__all__ = ["Controller", "set_sync_hash_skip_enabled",
           "sync_hash_skip_enabled", "set_sync_delta_enabled",
           "sync_delta_enabled", "set_sync_gather_delta_enabled",
           "sync_gather_delta_enabled", "tree_order", "tree_children",
           "subtree_height"]

#: Estimated wire bytes per job-status-table entry (id, uid, gid, size,
#: priority, status, heartbeat stamp).
_ENTRY_WIRE_BYTES = 64

#: Wire bytes of a pull probe / push acknowledgement (headers only).
_PROBE_WIRE_BYTES = 16

#: Wire bytes of one omitted-entry summary in a delta-encoded gather
#: reply: the job id plus its heartbeat stamp, no status fields.
_SUMMARY_WIRE_BYTES = 12

#: Process-wide switch for the push content-hash skip. Skipped and
#: unskipped application are trace-identical (the skip only elides a
#: no-op merge and a memoised token refresh); the toggle exists for the
#: seed-equivalence suite and for measuring the skip's effect.
_HASH_SKIP_ENABLED = True


def set_sync_hash_skip_enabled(enabled: bool) -> None:
    """Enable/disable the λ-sync push content-hash skip."""
    global _HASH_SKIP_ENABLED
    _HASH_SKIP_ENABLED = bool(enabled)


def sync_hash_skip_enabled() -> bool:
    """Whether push application skips on an unchanged content hash."""
    return _HASH_SKIP_ENABLED


#: Process-wide switch for delta-encoded scatter pushes (batched/tree
#: protocols only). The coordinator already holds every responder's
#: full snapshot from the gather phase, so it can omit the entries a
#: responder provably already has (equal-or-newer heartbeat — the
#: merge's update condition) from that responder's push. Omitted
#: entries would merge as byte-for-byte no-ops, so delta and full
#: pushes leave the receiver in the identical state; the push's
#: nominal ``size`` (and hence all simulated timing) still reflects
#: the full table, and the saving is reported separately through
#: :attr:`~repro.net.message.Message.payload_bytes`.
_DELTA_SYNC_ENABLED = True


def set_sync_delta_enabled(enabled: bool) -> None:
    """Enable/disable λ-sync delta encoding (both directions)."""
    global _DELTA_SYNC_ENABLED
    _DELTA_SYNC_ENABLED = bool(enabled)


def sync_delta_enabled() -> bool:
    """Whether scatter pushes carry only entries the receiver lacks."""
    return _DELTA_SYNC_ENABLED


#: Process-wide switch for the gather-direction per-peer-basis deltas
#: (subordinate to the master delta toggle above: gather deltas run iff
#: both are on). A responder's pull reply omits the entries whose
#: heartbeat is not newer than what the requester *confirmed applying*
#: from this responder — confirmation being the basis token of the last
#: reply, echoed back in the requester's next probe. Heartbeats only
#: move forward and live tables never remove entries, so a confirmed
#: entry merges as a no-op at the requester forever after; omitted
#: entries still ship a ``(job_id, heartbeat)`` summary so the
#: requester's scatter ``seen`` map stays exact. Timing-neutral the
#: same way as scatter deltas: nominal size covers the full snapshot.
_GATHER_DELTA_ENABLED = True


def set_sync_gather_delta_enabled(enabled: bool) -> None:
    """Enable/disable gather-direction per-peer-basis delta replies."""
    global _GATHER_DELTA_ENABLED
    _GATHER_DELTA_ENABLED = bool(enabled)


def sync_gather_delta_enabled() -> bool:
    """Whether pull replies delta-encode against a confirmed basis."""
    return _GATHER_DELTA_ENABLED


def _content_hash(entries: List[dict], presence: Dict[str, List[int]]) -> str:
    """Deterministic digest of a merged table + placement map.

    Canonical order (entries by job id, hosts sorted) and exact float
    ``repr`` make the digest a function of content only — two pushes
    hash equal iff applying them is the same no-op.
    """
    h = blake2b(digest_size=16)
    for entry in sorted(entries, key=lambda e: e["info"].job_id):
        info = entry["info"]
        h.update(repr((info.job_id, info.user, info.group, info.size,
                       info.priority, entry["last_heartbeat"],
                       entry["active"])).encode())
    for host in sorted(presence):
        h.update(repr((host, sorted(presence[host]))).encode())
    return h.hexdigest()


# ------------------------------------------------------------- tree shape
def tree_order(members: List[str], epoch: int) -> List[str]:
    """The epoch's member order: root first, rotated by epoch index.

    Rotation (rather than re-sorting under a different key) keeps the
    root schedule identical to the flat round's coordinator schedule:
    ``tree_order(members, e)[0] == members[e % N]``.
    """
    root = epoch % len(members)
    return members[root:] + members[:root]


def tree_children(order_len: int, fanout: int, pos: int) -> List[int]:
    """Positions of *pos*'s children in a complete k-ary tree laid out
    breadth-first over ``order_len`` members."""
    lo = fanout * pos + 1
    return list(range(lo, min(lo + fanout, order_len)))


def subtree_height(order_len: int, fanout: int, pos: int) -> int:
    """Edge-height of the subtree rooted at *pos* (0 for a leaf).

    Used to scale per-edge RPC timeouts: a pull to a child cannot
    complete before the child's whole subtree has answered, so the
    budget grows linearly with the subtree's depth.
    """
    height = 0
    lo = hi = pos
    while True:
        lo = fanout * lo + 1
        if lo >= order_len:
            return height
        hi = min(fanout * hi + fanout, order_len - 1)
        height += 1


class Controller:
    """Token allocation plus λ-delayed table synchronisation."""

    def __init__(self, server: "Server", sync_interval: float):
        self.server = server
        self.sync_interval = float(sync_interval)
        # Peer wiring is lazy: addresses arrive via connect_peers, RPC
        # clients (and their UCP workers) materialise on first use. At
        # N=1024 the flat wiring would mint ~N² workers cluster-wide;
        # the tree only ever touches O(k) edges per node per epoch.
        # Worker creation has no simulation side effects, so laziness
        # is trace-neutral.
        self._peer_addrs: Dict[str, Address] = {}
        self._peers: Dict[str, RpcClient] = {}
        #: which jobs each server hosts, learned via sync (self included).
        self.presence: Dict[str, Set[int]] = {}
        self._table_version_seen = -1
        self._presence_seen: Dict[str, frozenset] = {}
        self.sync_rounds = 0
        #: rounds completed on a partial table (some peer timed out).
        self.degraded_rounds = 0
        #: epochs this controller drove as the rotating coordinator/root.
        self.coordinated_rounds = 0
        #: pushes applied as a no-op via the content-hash short circuit.
        self.push_hash_skips = 0
        self._last_push_hash: Optional[str] = None
        # Delta-encoding state. The basis token identifies one
        # uninterrupted lifetime of this controller's sync state: it is
        # echoed through pull replies into the matching push, and a
        # mismatch at apply time proves the state the delta was computed
        # against is gone (crash/restart in between) — the push is then
        # discarded and a full-table resync requested instead.
        self._sync_basis = 0
        self._needs_full_sync = False
        #: scatter pushes sent delta-encoded vs. as the full table.
        self.delta_pushes = 0
        self.full_pushes = 0
        #: delta pushes discarded because the receiver restarted between
        #: its pull reply and the push's arrival.
        self.basis_mismatches = 0
        #: full-table pushes applied while a resync was pending.
        self.full_resyncs = 0
        # Gather-direction delta state: per requester, the token and
        # content map of the last reply we sent it; per responder, the
        # token of the last reply we applied from it. Tokens carry the
        # minting side's _sync_basis so a crash on either end can never
        # alias a stale confirmation.
        self._gather_sent: Dict[str, Tuple[Tuple[int, int],
                                           Dict[int, float]]] = {}
        self._have_basis: Dict[str, Tuple[int, int]] = {}
        self._gather_seq = 0
        #: gather replies sent delta-encoded vs. as the full snapshot.
        self.gather_delta_replies = 0
        self.gather_full_replies = 0
        #: whole merge rounds skipped because every responder proved
        #: (by content hash) it already holds the merged state.
        self.quiescent_skips = 0
        #: probe-sized "same" replies sent instead of a snapshot.
        self.quiescent_replies = 0
        #: epochs driven as the root of the aggregation tree.
        self.tree_rounds = 0
        #: tree pushes forwarded as full tables because the same-epoch
        #: gather basis for that child was lost (subtree resync).
        self.subtree_full_pushes = 0
        #: gather bytes this node absorbed as the epoch's root (the
        #: hotspot metric) vs. as an interior relay.
        self.coord_gather_payload_bytes = 0
        self.relay_gather_payload_bytes = 0
        #: peak number of gather replies awaited at once (flat: N−1;
        #: tree: bounded by the branching factor).
        self.max_gather_fanin = 0
        #: (epoch, merged-table digest) per round driven from here.
        self.digest_log: Deque[Tuple[int, str]] = deque(maxlen=4096)
        # Per-epoch gather bookkeeping of an interior tree node:
        # child name -> (seen map, child basis, child wants full),
        # consumed when the matching push arrives to forward down.
        self._tree_gather: Dict[int, dict] = {}
        self._sync_process = None

    def reset(self) -> None:
        """Forget peer-derived state (server crash): presence knowledge,
        the refresh memo, and the push-hash memo restart cold. Peer RPC
        clients stay wired — the endpoints are addresses, not
        connections, and the λ loop resumes using them after restart."""
        self.presence.clear()
        self._table_version_seen = -1
        self._presence_seen = {}
        self._last_push_hash = None
        # Invalidate any in-flight delta computed against the old state
        # and ask the next coordinator for the full table.
        self._sync_basis += 1
        self._needs_full_sync = True
        # Both gather-delta ledgers die with the state they describe:
        # replies we sent (peers may still echo their tokens — the
        # basis component no longer matches) and confirmations we hold.
        self._gather_sent.clear()
        self._have_basis.clear()
        self._tree_gather.clear()

    # ---------------------------------------------------------------- tokens
    def refresh_tokens(self, force: bool = False) -> bool:
        """Recompute the scheduler's tokens if anything relevant changed."""
        server = self.server
        table = server.monitor.table
        self.presence[server.name] = server.monitor.active_local_jobs()
        presence_now = {name: frozenset(jobs)
                        for name, jobs in self.presence.items()}
        if (not force and table.version == self._table_version_seen
                and presence_now == self._presence_seen):
            return False
        self._table_version_seen = table.version
        self._presence_seen = presence_now

        active = table.active_jobs()
        now = server.engine.now
        informative_peers = [name for name, jobs in self.presence.items()
                             if name != server.name and jobs]
        if not informative_peers:
            server.scheduler.on_jobs_changed(active, now)
            return True
        # Placement-aware assignment (Fig. 5): global policy shares,
        # projected onto each server's hosted-job set.
        global_shares = server.policy_shares(active)
        if not global_shares:
            server.scheduler.on_jobs_changed(active, now)
            return True
        rows = placement_shares(
            {name: set(jobs) for name, jobs in presence_now.items()
             if jobs}, global_shares)
        row = rows.get(server.name)
        if row:
            server.scheduler.set_assignment(row, now)
        else:
            server.scheduler.on_jobs_changed(active, now)
        return True

    # ----------------------------------------------------------------- peers
    def connect_peers(self, peers: Dict[str, Address]) -> None:
        """Record the peer sync addresses and start the λ loop. RPC
        clients are created lazily, on the first edge that uses them."""
        engine = self.server.engine
        for name, address in peers.items():
            if name == self.server.name:
                continue
            self._peer_addrs[name] = address
        if self._peer_addrs and self.sync_interval > 0 \
                and self._sync_process is None:
            self._sync_process = engine.process(self._sync_loop())

    def _peer(self, name: str) -> RpcClient:
        client = self._peers.get(name)
        if client is None:
            worker = self.server.ctx.create_worker(f"ss-to-{name}")
            client = RpcClient(worker, self._peer_addrs[name])
            self._peers[name] = client
        return client

    def _members(self) -> List[str]:
        return sorted([self.server.name, *self._peer_addrs])

    @property
    def peer_names(self) -> List[str]:
        return sorted(self._peer_addrs)

    # ------------------------------------------------------------------ sync
    def _payload(self) -> dict:
        monitor = self.server.monitor
        return {
            "entries": monitor.table.snapshot(),
            "host": self.server.name,
            "host_jobs": sorted(monitor.active_local_jobs()),
            # Delta-encoding handshake (consumed by the batched
            # coordinator; ignored by the pairwise protocol).
            "basis": self._sync_basis,
            "full": self._needs_full_sync,
        }

    def _sync_loop(self):
        engine = self.server.engine
        epoch = 1
        while True:
            if self.server.config.batched_sync:
                # Epoch-aligned cadence: every server wakes at the same
                # absolute times k·λ, so the epoch index — and with it
                # the rotating coordinator — agrees cluster-wide even
                # when individual rounds overrun.
                target = epoch * self.sync_interval
                if target > engine.now:
                    yield engine.timeout(target - engine.now)
                if not self.server.crashed:
                    if self.server.config.sync_tree_fanout >= 2:
                        yield from self._tree_round(epoch)
                    else:
                        yield from self._batched_round(epoch)
                # Skip past any epochs the round overran (strictly
                # increasing, so the loop can never spin in place).
                epoch = max(epoch + 1,
                            int(engine.now / self.sync_interval) + 1)
            else:
                yield engine.timeout(self.sync_interval)
                if self.server.crashed:
                    # A crashed server exchanges nothing; the loop idles
                    # until restart and then resumes the λ cadence.
                    continue
                yield from self._pairwise_round()

    # ------------------------------------------------------- batched protocol
    def _batched_round(self, epoch: int):
        """One gather→merge→scatter epoch, if we are its coordinator."""
        members = self._members()
        if members[epoch % len(members)] != self.server.name:
            return
        self.coordinated_rounds += 1
        timeout = self.server.config.sync_timeout
        timeout = timeout if timeout > 0 else None

        # Gather: probe every peer for its snapshot, harvest in name
        # order; a silent peer costs at most `timeout` and the round
        # proceeds on the partial table (degraded mode).
        qhash, pre_map = self._quiescence_state()
        pulls = []
        for name in sorted(self._peer_addrs):
            probe = {"kind": "pull", "host": self.server.name,
                     "have": self._have_basis.get(name), "qhash": qhash}
            pulls.append((name, self._peer(name).call(
                "sync", probe, size=_PROBE_WIRE_BYTES, timeout=timeout)))
        self.max_gather_fanin = max(self.max_gather_fanin, len(pulls))
        degraded = False
        all_same = True
        responders: List[tuple] = []
        for name, call in pulls:
            try:
                resp = yield call
            except RpcTimeout:
                degraded = True
                continue
            if resp.get("same"):
                self.coord_gather_payload_bytes += _PROBE_WIRE_BYTES
                responders.append((name, resp, pre_map))
                continue
            all_same = False
            seen, wire = self._harvest_reply(name, resp)
            self.coord_gather_payload_bytes += wire
            responders.append((name, resp, seen))

        if qhash is not None and all_same:
            # Every responder proved (by content hash) it already holds
            # exactly the state a merge+scatter would reproduce: skip
            # the whole round. Merged content is by definition qhash.
            self._quiescent_finish(epoch, qhash, degraded)
            return

        # Scatter: the merged table + placement map, stamped with a
        # content hash so unchanged state costs the peers nothing. With
        # delta encoding on, each responder's push body carries only the
        # entries that responder lacks (judged against the snapshot —
        # or omitted-entry summary — it just replied with); the nominal
        # wire size — and therefore all simulated timing — still covers
        # the full table, so the two encodings are trace-identical and
        # the saving shows up only in the fabric's payload_bytes_sent
        # accounting.
        self.presence[self.server.name] = \
            self.server.monitor.active_local_jobs()
        entries = self.server.monitor.table.snapshot()
        presence = {host: sorted(jobs)
                    for host, jobs in self.presence.items()}
        digest = _content_hash(entries, presence)
        self.digest_log.append((epoch, digest))
        size = _ENTRY_WIRE_BYTES * max(1, len(entries))
        acks = []
        for name, resp, seen in responders:
            push, wire = self._encode_push(entries, presence, digest,
                                           resp, seen)
            acks.append((name, self._peer(name).call(
                "sync", push, size=size, timeout=timeout,
                payload_bytes=wire)))
        for name, call in acks:
            try:
                yield call
            except RpcTimeout:
                degraded = True

        if degraded:
            self.degraded_rounds += 1
            if self.server.fault_stats is not None:
                self.server.fault_stats.degraded_sync_rounds += 1
        self._last_push_hash = digest
        self.sync_rounds += 1
        self.refresh_tokens()

    def _quiescence_state(self):
        """``(qhash, pre_map)`` when this round is allowed to quiesce.

        A round may quiesce only if our own current content still
        hashes to the last merged digest we scattered/applied — any
        local traffic since then voids the guard and the round runs in
        full. ``pre_map`` doubles as the exact ``seen`` map for scatter
        deltas to peers that answer "same".
        """
        if not self.server.config.sync_quiescence_skip:
            return None, None
        if self._last_push_hash is None or self._needs_full_sync:
            return None, None
        entries = self.server.monitor.table.snapshot()
        view = {h: sorted(j) for h, j in self.presence.items()}
        view[self.server.name] = sorted(
            self.server.monitor.active_local_jobs())
        if _content_hash(entries, view) != self._last_push_hash:
            return None, None
        pre_map = {e["info"].job_id: e["last_heartbeat"] for e in entries}
        return self._last_push_hash, pre_map

    def _quiescent_match(self, qhash) -> bool:
        """Responder side of the quiescence guard: may we answer a
        probe carrying *qhash* with a probe-sized "same" instead of a
        snapshot? Only if our own content provably hashes to it."""
        if qhash is None or self._needs_full_sync:
            return False
        if self._last_push_hash != qhash:
            return False
        entries = self.server.monitor.table.snapshot()
        view = {h: sorted(j) for h, j in self.presence.items()}
        view[self.server.name] = sorted(
            self.server.monitor.active_local_jobs())
        return _content_hash(entries, view) == qhash

    def _quiescent_finish(self, epoch: int, qhash: str,
                          degraded: bool) -> None:
        """Close out a round whose merge+scatter was skipped."""
        self.quiescent_skips += 1
        self.digest_log.append((epoch, qhash))
        if degraded:
            self.degraded_rounds += 1
            if self.server.fault_stats is not None:
                self.server.fault_stats.degraded_sync_rounds += 1
        self._last_push_hash = qhash
        self.sync_rounds += 1
        self.refresh_tokens()

    def _harvest_reply(self, name: str, resp: dict):
        """Merge one gather reply into our table and presence map.

        Returns ``(seen, wire)``: the exact content map the responder
        holds — delta entries plus the omitted-entry summaries, the
        basis for this responder's scatter delta — and the reply's
        effective wire bytes for the fan-in accounting.
        """
        self.server.monitor.table.merge(resp["entries"])
        pres = resp.get("presence")
        if pres is not None:
            # Tree replies aggregate a whole subtree's placement.
            for host, jobs in pres.items():
                if host != self.server.name:
                    self.presence[host] = set(jobs)
        else:
            self.presence[resp["host"]] = set(resp["host_jobs"])
        seen = {e["info"].job_id: e["last_heartbeat"]
                for e in resp["entries"]}
        omitted = resp.get("omitted")
        if omitted:
            seen.update(omitted)
        token = resp.get("gather_basis")
        if token is not None:
            self._have_basis[name] = token
        return seen, _reply_wire(resp)

    def _encode_gather_reply(self, requester, have, entries):
        """Build the entry part of a pull reply for *requester*.

        Returns ``(reply_fields, nominal_size, payload_bytes)``. The
        nominal size always covers the full snapshot (timing-neutral);
        with the gather-delta toggles on and the requester echoing the
        token of the last reply it applied from us, entries it
        provably holds are demoted to ``(job_id, heartbeat)`` summary
        pairs in ``omitted``.
        """
        full_map = {e["info"].job_id: e["last_heartbeat"] for e in entries}
        size = _ENTRY_WIRE_BYTES * max(1, len(entries))
        self._gather_seq += 1
        token = (self._sync_basis, self._gather_seq)
        stored = self._gather_sent.get(requester) \
            if requester is not None else None
        wire = None
        if (_DELTA_SYNC_ENABLED and _GATHER_DELTA_ENABLED
                and have is not None and stored is not None
                and stored[0] == have
                and any(stored[1].get(e["info"].job_id, -1.0)
                        >= e["last_heartbeat"] for e in entries)):
            # Only take the delta form when it actually omits
            # something: a delta that re-ships every entry (all
            # heartbeats moved) costs the summary bookkeeping for
            # zero wire savings.
            base = stored[1]
            absent = float("-inf")
            delta = [e for e in entries
                     if base.get(e["info"].job_id,
                                 absent) < e["last_heartbeat"]]
            delta_ids = {e["info"].job_id for e in delta}
            omitted = {jid: hb for jid, hb in full_map.items()
                       if jid not in delta_ids}
            reply = {"entries": delta, "omitted": omitted,
                     "gather_delta": True, "gather_basis": token}
            wire = max(_PROBE_WIRE_BYTES,
                       _ENTRY_WIRE_BYTES * len(delta)
                       + _SUMMARY_WIRE_BYTES * len(omitted))
            self.gather_delta_replies += 1
        else:
            reply = {"entries": entries, "gather_basis": token}
            self.gather_full_replies += 1
        if requester is not None:
            self._gather_sent[requester] = (token, full_map)
        return reply, size, wire

    def _encode_push(self, entries, presence, digest, resp, seen,
                     kind: str = "push", epoch: Optional[int] = None):
        """The push body for one responder, plus its effective wire
        bytes (``None`` = nominal).

        Delta-encodable iff the toggle is on and the responder neither
        requested a full resync nor predates the handshake. The delta
        keeps exactly the entries whose merge at the responder would do
        something: the merge updates on strictly-newer heartbeats, so an
        entry the responder reported with an equal-or-newer heartbeat is
        provably a no-op there (local heartbeats only move forward, so
        the proof survives the reply→push latency) and is omitted.
        """
        push = {"kind": kind, "host": self.server.name,
                "entries": entries, "presence": presence, "hash": digest}
        if epoch is not None:
            push["epoch"] = epoch
        if not _DELTA_SYNC_ENABLED or resp.get("basis") is None \
                or resp.get("full") or seen is None:
            self.full_pushes += 1
            return push, None
        absent = float("-inf")
        delta = [e for e in entries
                 if seen.get(e["info"].job_id, absent) < e["last_heartbeat"]]
        push = dict(push, entries=delta, delta=True, basis=resp["basis"])
        self.delta_pushes += 1
        return push, _ENTRY_WIRE_BYTES * max(1, len(delta))

    def _answer_pull(self, rpc):
        """A coordinator probed us: reply our snapshot after the
        controller's processing time (serialisation cost, §5.6)."""
        processing = self.server.config.sync_processing_time
        if processing > 0:
            yield self.server.engine.timeout(processing)
        if self.server.crashed:
            return  # crashed mid-processing: the reply is lost
        body = rpc.body
        if self._quiescent_match(body.get("qhash")):
            self.quiescent_replies += 1
            rpc.reply({"same": True, "host": self.server.name,
                       "basis": self._sync_basis, "full": False},
                      size=_PROBE_WIRE_BYTES)
            return
        monitor = self.server.monitor
        entries = monitor.table.snapshot()
        reply, size, wire = self._encode_gather_reply(
            body.get("host"), body.get("have"), entries)
        reply.update(host=self.server.name,
                     host_jobs=sorted(monitor.active_local_jobs()),
                     basis=self._sync_basis,
                     full=self._needs_full_sync)
        rpc.reply(reply, size=size, payload_bytes=wire)

    def _apply_push(self, rpc):
        """A coordinator scattered the merged state: apply and ack.

        When the push's content hash matches the last one we applied,
        the merge would be a byte-for-byte no-op (entries merge by
        strictly-newer heartbeat, so replaying an applied snapshot
        changes nothing) and the token refresh would hit its memo — both
        are skipped. The ack and its timing are identical either way, so
        the skip never perturbs the simulated trace.
        """
        processing = self.server.config.sync_processing_time
        if processing > 0:
            yield self.server.engine.timeout(processing)
        if self.server.crashed:
            return  # crashed mid-processing: stale merge + ack lost
        body = rpc.body
        rpc.reply({"ok": True}, size=_PROBE_WIRE_BYTES)
        self.sync_rounds += 1
        if body.get("delta"):
            if body["basis"] != self._sync_basis:
                # We restarted between our pull reply and this push: the
                # delta was computed against state we no longer hold, so
                # applying it could leave silently-omitted entries
                # missing forever. Drop it and pull the full table next
                # round (our next reply advertises ``full``). This is
                # the protocol's designed degraded window: until that
                # resync lands we run on the post-restart local view,
                # exactly as a crash already implies.
                self.basis_mismatches += 1
                self._needs_full_sync = True
                return
        elif self._needs_full_sync:
            self._needs_full_sync = False
            self.full_resyncs += 1
        digest = body["hash"]
        if _HASH_SKIP_ENABLED and digest == self._last_push_hash:
            self.push_hash_skips += 1
            return
        self.server.monitor.table.merge(body["entries"])
        for host, jobs in body["presence"].items():
            if host != self.server.name:
                self.presence[host] = set(jobs)
        self._last_push_hash = digest
        self.refresh_tokens()

    # ---------------------------------------------------------- tree protocol
    def _edge_timeout(self, order_len: int, fanout: int,
                      child_pos: int) -> Optional[float]:
        """Per-edge RPC budget, scaled by the child's subtree depth
        (its answer transitively awaits its whole subtree)."""
        t = self.server.config.sync_timeout
        if t <= 0:
            return None
        return t * (1.0 + subtree_height(order_len, fanout, child_pos))

    def _tree_round(self, epoch: int):
        """One aggregation-tree epoch, if we are its rotating root.

        The root's round mirrors the flat one but only touches its k
        children; interior nodes answer :meth:`_answer_tree_pull` by
        recursively gathering their own subtree first, and
        :meth:`_apply_tree_push` forwards the scatter down the same
        edges. Merged content per epoch is identical to the flat round
        (merge is order-independent and the member set is the same).
        """
        members = self._members()
        order = tree_order(members, epoch)
        if order[0] != self.server.name:
            return
        self.coordinated_rounds += 1
        self.tree_rounds += 1
        fanout = self.server.config.sync_tree_fanout
        n = len(order)

        qhash, pre_map = self._quiescence_state()
        pulls = []
        for pos in tree_children(n, fanout, 0):
            name = order[pos]
            probe = {"kind": "tpull", "epoch": epoch,
                     "host": self.server.name,
                     "have": self._have_basis.get(name), "qhash": qhash}
            pulls.append((name, pos, self._peer(name).call(
                "sync", probe, size=_PROBE_WIRE_BYTES,
                timeout=self._edge_timeout(n, fanout, pos))))
        self.max_gather_fanin = max(self.max_gather_fanin, len(pulls))
        degraded = False
        all_same = True
        responders: List[tuple] = []
        for name, pos, call in pulls:
            try:
                resp = yield call
            except RpcTimeout:
                degraded = True
                continue
            if resp.get("same"):
                self.coord_gather_payload_bytes += _PROBE_WIRE_BYTES
                responders.append((name, pos, resp, pre_map))
                continue
            all_same = False
            seen, wire = self._harvest_reply(name, resp)
            self.coord_gather_payload_bytes += wire
            responders.append((name, pos, resp, seen))

        if qhash is not None and all_same:
            # Every subtree hashed identical to the last merged state:
            # nothing to merge, nothing to scatter, cluster-wide.
            self._quiescent_finish(epoch, qhash, degraded)
            return

        self.presence[self.server.name] = \
            self.server.monitor.active_local_jobs()
        entries = self.server.monitor.table.snapshot()
        presence = {host: sorted(jobs)
                    for host, jobs in self.presence.items()}
        digest = _content_hash(entries, presence)
        self.digest_log.append((epoch, digest))
        size = _ENTRY_WIRE_BYTES * max(1, len(entries))
        acks = []
        for name, pos, resp, seen in responders:
            push, wire = self._encode_push(entries, presence, digest,
                                           resp, seen, kind="tpush",
                                           epoch=epoch)
            acks.append((name, self._peer(name).call(
                "sync", push, size=size,
                timeout=self._edge_timeout(n, fanout, pos),
                payload_bytes=wire)))
        for name, call in acks:
            try:
                yield call
            except RpcTimeout:
                degraded = True

        if degraded:
            self.degraded_rounds += 1
            if self.server.fault_stats is not None:
                self.server.fault_stats.degraded_sync_rounds += 1
        self._last_push_hash = digest
        self.sync_rounds += 1
        self.refresh_tokens()

    def _answer_tree_pull(self, rpc):
        """A tree parent probed us: gather our subtree, merge it, and
        reply the aggregate (delta-encoded against what the parent has
        confirmed from us). Leaves skip straight to the reply."""
        processing = self.server.config.sync_processing_time
        if processing > 0:
            yield self.server.engine.timeout(processing)
        if self.server.crashed:
            return  # crashed mid-processing: the reply is lost
        body = rpc.body
        epoch = body["epoch"]
        fanout = self.server.config.sync_tree_fanout
        members = self._members()
        order = tree_order(members, epoch)
        n = len(order)
        try:
            pos = order.index(self.server.name)
        except ValueError:  # pragma: no cover - membership drift
            pos = 0
        child_pos = tree_children(n, fanout, pos)

        qhash = body.get("qhash")
        quiet = self._quiescent_match(qhash)
        pre_map = None
        if quiet:
            pre_map = {e["info"].job_id: e["last_heartbeat"]
                       for e in self.server.monitor.table.snapshot()}

        gather: dict = {}
        degraded = False
        all_same = True
        if child_pos:
            self.max_gather_fanin = max(self.max_gather_fanin,
                                        len(child_pos))
            pulls = []
            for cp in child_pos:
                name = order[cp]
                probe = {"kind": "tpull", "epoch": epoch,
                         "host": self.server.name,
                         "have": self._have_basis.get(name),
                         "qhash": qhash if quiet else None}
                pulls.append((name, cp, self._peer(name).call(
                    "sync", probe, size=_PROBE_WIRE_BYTES,
                    timeout=self._edge_timeout(n, fanout, cp))))
            for name, cp, call in pulls:
                try:
                    resp = yield call
                except RpcTimeout:
                    degraded = True
                    continue
                if resp.get("same"):
                    self.relay_gather_payload_bytes += _PROBE_WIRE_BYTES
                    gather[name] = (pre_map, resp["basis"],
                                    resp.get("full", False))
                    continue
                all_same = False
                seen, wire = self._harvest_reply(name, resp)
                self.relay_gather_payload_bytes += wire
                gather[name] = (seen, resp.get("basis"),
                                resp.get("full", False))
        if self.server.crashed:
            return
        # Remember this epoch's gather so the matching push can reuse
        # the same edges with exact per-child deltas.
        self._tree_gather[epoch] = gather
        for old in [e for e in self._tree_gather if e < epoch - 1]:
            del self._tree_gather[old]
        if degraded:
            self.degraded_rounds += 1
            if self.server.fault_stats is not None:
                self.server.fault_stats.degraded_sync_rounds += 1

        if quiet and all_same:
            # Our content and every responding child's subtree hash to
            # the probe's digest: the aggregate is provably "no news".
            self.quiescent_replies += 1
            rpc.reply({"same": True, "host": self.server.name,
                       "basis": self._sync_basis, "full": False},
                      size=_PROBE_WIRE_BYTES)
            return

        self.presence[self.server.name] = \
            self.server.monitor.active_local_jobs()
        entries = self.server.monitor.table.snapshot()
        presence = {host: sorted(jobs)
                    for host, jobs in self.presence.items()}
        reply, size, wire = self._encode_gather_reply(
            body.get("host"), body.get("have"), entries)
        reply.update(host=self.server.name,
                     host_jobs=sorted(presence.get(self.server.name, [])),
                     presence=presence,
                     basis=self._sync_basis,
                     full=self._needs_full_sync)
        rpc.reply(reply, size=size, payload_bytes=wire)

    def _apply_tree_push(self, rpc):
        """A tree parent scattered the merged state: apply it, forward
        it down our gather edges, then ack (the ack therefore covers
        the whole subtree — the root's round ends when every reachable
        descendant holds the merged table)."""
        processing = self.server.config.sync_processing_time
        if processing > 0:
            yield self.server.engine.timeout(processing)
        if self.server.crashed:
            return  # crashed mid-processing: stale merge + ack lost
        body = rpc.body
        epoch = body["epoch"]
        self.sync_rounds += 1
        if body.get("delta") and body["basis"] != self._sync_basis:
            # Restarted between our subtree reply and this push: the
            # delta's basis is gone. Drop it, request a full resync,
            # and forward nothing — our children heal on a later
            # epoch's edges (the tree reshapes every epoch).
            self.basis_mismatches += 1
            rpc.reply({"ok": True}, size=_PROBE_WIRE_BYTES)
            self._needs_full_sync = True
            return
        if not body.get("delta") and self._needs_full_sync:
            self._needs_full_sync = False
            self.full_resyncs += 1
        digest = body["hash"]
        if _HASH_SKIP_ENABLED and digest == self._last_push_hash:
            self.push_hash_skips += 1
        else:
            self.server.monitor.table.merge(body["entries"])
            for host, jobs in body["presence"].items():
                if host != self.server.name:
                    self.presence[host] = set(jobs)
            self._last_push_hash = digest
            self.refresh_tokens()
        yield from self._forward_tree_push(epoch, digest)
        if self.server.crashed:
            return
        rpc.reply({"ok": True}, size=_PROBE_WIRE_BYTES)

    def _forward_tree_push(self, epoch: int, digest: str):
        """Scatter the merged state down this epoch's gather edges."""
        gather = self._tree_gather.pop(epoch, None)
        fanout = self.server.config.sync_tree_fanout
        members = self._members()
        order = tree_order(members, epoch)
        n = len(order)
        try:
            pos = order.index(self.server.name)
        except ValueError:  # pragma: no cover - membership drift
            return
        child_pos = tree_children(n, fanout, pos)
        if not child_pos:
            return
        self.presence[self.server.name] = \
            self.server.monitor.active_local_jobs()
        entries = self.server.monitor.table.snapshot()
        presence = {host: sorted(jobs)
                    for host, jobs in self.presence.items()}
        size = _ENTRY_WIRE_BYTES * max(1, len(entries))
        acks = []
        for cp in child_pos:
            name = order[cp]
            if gather is None:
                # Our gather bookkeeping for this epoch is gone (we
                # restarted in between and the parent pushed full):
                # resync the whole subtree with full tables.
                self.subtree_full_pushes += 1
                self.full_pushes += 1
                push = {"kind": "tpush", "host": self.server.name,
                        "entries": entries, "presence": presence,
                        "hash": digest, "epoch": epoch}
                wire = None
            elif name in gather:
                seen, basis, wants_full = gather[name]
                push, wire = self._encode_push(
                    entries, presence, digest,
                    {"basis": basis, "full": wants_full}, seen,
                    kind="tpush", epoch=epoch)
            else:
                # The child never answered this epoch's gather
                # (crash/partition on the edge): it holds no basis for
                # a push, and a full push would race its recovery —
                # skip it; a later epoch's reshaped tree resyncs it.
                continue
            acks.append((name, self._peer(name).call(
                "sync", push, size=size,
                timeout=self._edge_timeout(n, fanout, cp),
                payload_bytes=wire)))
        degraded = False
        for name, call in acks:
            try:
                yield call
            except RpcTimeout:
                degraded = True
        if degraded:
            self.degraded_rounds += 1
            if self.server.fault_stats is not None:
                self.server.fault_stats.degraded_sync_rounds += 1

    # ------------------------------------------------------ pairwise protocol
    def _pairwise_round(self):
        """One round of the original per-pair exchange protocol."""
        engine = self.server.engine
        table = self.server.monitor.table
        payload = self._payload()
        size = _ENTRY_WIRE_BYTES * max(1, len(payload["entries"]))
        timeout = self.server.config.sync_timeout
        if timeout <= 0:
            # Lock-step all-gather (original behaviour, byte-
            # identical traces when timeouts are disabled).
            calls = [self._peer(name).call("sync", payload, size=size)
                     for name in sorted(self._peer_addrs)]
            responses = yield engine.all_of(calls)
            for resp in responses:
                table.merge(resp["entries"])
                self.presence[resp["host"]] = set(resp["host_jobs"])
        else:
            # Per-peer timeout: issue every exchange up front, then
            # harvest; a silent peer costs at most `timeout` and the
            # round proceeds on the partial table (degraded mode).
            calls = [(name, self._peer(name).call(
                        "sync", payload, size=size, timeout=timeout))
                     for name in sorted(self._peer_addrs)]
            degraded = False
            for name, call in calls:
                try:
                    resp = yield call
                except RpcTimeout:
                    degraded = True
                    continue
                table.merge(resp["entries"])
                self.presence[resp["host"]] = set(resp["host_jobs"])
            if degraded:
                self.degraded_rounds += 1
                if self.server.fault_stats is not None:
                    self.server.fault_stats.degraded_sync_rounds += 1
        self.sync_rounds += 1
        self.refresh_tokens()

    def _answer_pairwise(self, rpc):
        """Peer pushed its snapshot (pairwise protocol): merge and reply
        after the controller's processing time (§5.6)."""
        processing = self.server.config.sync_processing_time
        if processing > 0:
            yield self.server.engine.timeout(processing)
        if self.server.crashed:
            return  # crashed mid-processing: stale merge + reply lost
        table = self.server.monitor.table
        table.merge(rpc.body["entries"])
        self.presence[rpc.body["host"]] = set(rpc.body["host_jobs"])
        payload = self._payload()
        rpc.reply(payload,
                  size=_ENTRY_WIRE_BYTES * max(1, len(payload["entries"])))
        self.refresh_tokens()

    def handle_sync(self, rpc) -> None:
        """Dispatch an inbound sync message by protocol role."""
        if self.server.crashed:
            return  # a dead server neither merges nor answers
        kind = rpc.body.get("kind")
        if kind == "pull":
            self.server.engine.process(self._answer_pull(rpc))
        elif kind == "push":
            self.server.engine.process(self._apply_push(rpc))
        elif kind == "tpull":
            self.server.engine.process(self._answer_tree_pull(rpc))
        elif kind == "tpush":
            self.server.engine.process(self._apply_tree_push(rpc))
        else:
            self.server.engine.process(self._answer_pairwise(rpc))


def _reply_wire(resp: dict) -> int:
    """Effective wire bytes of one gather reply (for the fan-in
    accounting; mirrors the payload_bytes the responder attached)."""
    if resp.get("same"):
        return _PROBE_WIRE_BYTES
    if resp.get("gather_delta"):
        return max(_PROBE_WIRE_BYTES,
                   _ENTRY_WIRE_BYTES * len(resp["entries"])
                   + _SUMMARY_WIRE_BYTES * len(resp.get("omitted") or ()))
    return _ENTRY_WIRE_BYTES * max(1, len(resp["entries"]))
