"""The server controller (§4.1, §3.1).

"The controller synchronizes with other servers to get the global status
of active jobs, and allocates a number of tokens according to the fair
sharing policy."

Token allocation: whenever the job table's active set changes (new job,
expiry, merge), the controller recomputes the statistical token
assignment. With a single server — or before any peer information has
arrived — shares come straight from the policy over the local table.
Once λ-sync has exchanged tables *and placement* (which jobs each server
hosts), every server solves the same placement-constrained assignment
(:func:`repro.core.fairness.placement_shares`, the Fig. 5 adjustment)
and installs its own row, so the cluster-wide split matches the global
policy even when files live on disjoint servers.

λ-delayed fairness: every ``sync_interval`` seconds the controller
exchanges snapshots with every peer over the server↔server UCP workers
(the all-gather of §3.1). Each exchange is a request/response pair: the
peer merges our snapshot and replies with its own.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from ..core.fairness import placement_shares
from ..errors import RpcTimeout
from ..ucx import Address, RpcClient

if TYPE_CHECKING:  # pragma: no cover
    from .server import Server

__all__ = ["Controller"]

#: Estimated wire bytes per job-status-table entry (id, uid, gid, size,
#: priority, status, heartbeat stamp).
_ENTRY_WIRE_BYTES = 64


class Controller:
    """Token allocation plus λ-delayed table synchronisation."""

    def __init__(self, server: "Server", sync_interval: float):
        self.server = server
        self.sync_interval = float(sync_interval)
        self._peers: Dict[str, RpcClient] = {}
        #: which jobs each server hosts, learned via sync (self included).
        self.presence: Dict[str, Set[int]] = {}
        self._table_version_seen = -1
        self._presence_seen: Dict[str, frozenset] = {}
        self.sync_rounds = 0
        #: rounds completed on a partial table (some peer timed out).
        self.degraded_rounds = 0
        self._sync_process = None

    def reset(self) -> None:
        """Forget peer-derived state (server crash): presence knowledge
        and the refresh memo restart cold. Peer RPC clients stay wired —
        the endpoints are addresses, not connections, and the λ loop
        resumes using them after restart."""
        self.presence.clear()
        self._table_version_seen = -1
        self._presence_seen = {}

    # ---------------------------------------------------------------- tokens
    def refresh_tokens(self, force: bool = False) -> bool:
        """Recompute the scheduler's tokens if anything relevant changed."""
        server = self.server
        table = server.monitor.table
        self.presence[server.name] = server.monitor.active_local_jobs()
        presence_now = {name: frozenset(jobs)
                        for name, jobs in self.presence.items()}
        if (not force and table.version == self._table_version_seen
                and presence_now == self._presence_seen):
            return False
        self._table_version_seen = table.version
        self._presence_seen = presence_now

        active = table.active_jobs()
        now = server.engine.now
        informative_peers = [name for name, jobs in self.presence.items()
                             if name != server.name and jobs]
        if not informative_peers:
            server.scheduler.on_jobs_changed(active, now)
            return True
        # Placement-aware assignment (Fig. 5): global policy shares,
        # projected onto each server's hosted-job set.
        global_shares = server.policy_shares(active)
        if not global_shares:
            server.scheduler.on_jobs_changed(active, now)
            return True
        rows = placement_shares(
            {name: set(jobs) for name, jobs in presence_now.items()
             if jobs}, global_shares)
        row = rows.get(server.name)
        if row:
            server.scheduler.set_assignment(row, now)
        else:
            server.scheduler.on_jobs_changed(active, now)
        return True

    # ----------------------------------------------------------------- peers
    def connect_peers(self, peers: Dict[str, Address]) -> None:
        """Wire server↔server RPC clients and start the λ loop."""
        engine = self.server.engine
        for name, address in peers.items():
            if name == self.server.name:
                continue
            worker = self.server.ctx.create_worker(f"ss-to-{name}")
            self._peers[name] = RpcClient(worker, address)
        if self._peers and self.sync_interval > 0 and self._sync_process is None:
            self._sync_process = engine.process(self._sync_loop())

    @property
    def peer_names(self) -> List[str]:
        return sorted(self._peers)

    # ------------------------------------------------------------------ sync
    def _payload(self) -> dict:
        monitor = self.server.monitor
        return {
            "entries": monitor.table.snapshot(),
            "host": self.server.name,
            "host_jobs": sorted(monitor.active_local_jobs()),
        }

    def _sync_loop(self):
        engine = self.server.engine
        while True:
            yield engine.timeout(self.sync_interval)
            if self.server.crashed:
                # A crashed server exchanges nothing; the loop idles
                # until restart and then resumes the λ cadence.
                continue
            table = self.server.monitor.table
            payload = self._payload()
            size = _ENTRY_WIRE_BYTES * max(1, len(payload["entries"]))
            timeout = self.server.config.sync_timeout
            if timeout <= 0:
                # Lock-step all-gather (original behaviour, byte-
                # identical traces when timeouts are disabled).
                calls = [client.call("sync", payload, size=size)
                         for client in self._peers.values()]
                responses = yield engine.all_of(calls)
                for resp in responses:
                    table.merge(resp["entries"])
                    self.presence[resp["host"]] = set(resp["host_jobs"])
            else:
                # Per-peer timeout: issue every exchange up front, then
                # harvest; a silent peer costs at most `timeout` and the
                # round proceeds on the partial table (degraded mode).
                calls = [(name, client.call("sync", payload, size=size,
                                            timeout=timeout))
                         for name, client in sorted(self._peers.items())]
                degraded = False
                for name, call in calls:
                    try:
                        resp = yield call
                    except RpcTimeout:
                        degraded = True
                        continue
                    table.merge(resp["entries"])
                    self.presence[resp["host"]] = set(resp["host_jobs"])
                if degraded:
                    self.degraded_rounds += 1
                    if self.server.fault_stats is not None:
                        self.server.fault_stats.degraded_sync_rounds += 1
            self.sync_rounds += 1
            self.refresh_tokens()

    def handle_sync(self, rpc) -> None:
        """Peer pushed its snapshot: merge and reply after the controller's
        processing time (serialisation + merge cost, §5.6)."""
        if self.server.crashed:
            return  # a dead server neither merges nor answers
        def respond():
            processing = self.server.config.sync_processing_time
            if processing > 0:
                yield self.server.engine.timeout(processing)
            if self.server.crashed:
                return  # crashed mid-processing: stale merge + reply lost
            table = self.server.monitor.table
            table.merge(rpc.body["entries"])
            self.presence[rpc.body["host"]] = set(rpc.body["host_jobs"])
            payload = self._payload()
            rpc.reply(payload,
                      size=_ENTRY_WIRE_BYTES * max(1, len(payload["entries"])))
            self.refresh_tokens()

        self.server.engine.process(respond())
