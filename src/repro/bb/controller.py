"""The server controller (§4.1, §3.1).

"The controller synchronizes with other servers to get the global status
of active jobs, and allocates a number of tokens according to the fair
sharing policy."

Token allocation: whenever the job table's active set changes (new job,
expiry, merge), the controller recomputes the statistical token
assignment. With a single server — or before any peer information has
arrived — shares come straight from the policy over the local table.
Once λ-sync has exchanged tables *and placement* (which jobs each server
hosts), every server solves the same placement-constrained assignment
(:func:`repro.core.fairness.placement_shares`, the Fig. 5 adjustment)
and installs its own row, so the cluster-wide split matches the global
policy even when files live on disjoint servers.

λ-delayed fairness: every ``sync_interval`` seconds the servers
synchronise over the server↔server UCP workers (the all-gather of
§3.1). Two wire protocols implement it:

- **batched** (the default, ``ServerConfig.batched_sync``): each sync
  epoch one *coordinator* — rotating by epoch index over the sorted
  member names, so no server is a single point of coordination — pulls
  every peer's snapshot, merges them, and scatters the merged table
  plus the placement map back out: one gather→merge→scatter round per
  epoch, ``2·(N-1)`` request/response pairs cluster-wide instead of the
  pairwise exchange's ``N·(N-1)``. The push carries a content hash of
  the merged state; a peer whose previous push had the same hash skips
  the merge and token refresh entirely (the skip is trace-neutral: the
  wire traffic and simulated timing are identical, only the redundant
  host-side work is elided).
- **pairwise** (``batched_sync=False``, the original protocol): every
  server exchanges snapshots with every peer each round; each exchange
  is a request/response pair where the peer merges our snapshot and
  replies with its own.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from ..core.fairness import placement_shares
from ..errors import RpcTimeout
from ..ucx import Address, RpcClient

if TYPE_CHECKING:  # pragma: no cover
    from .server import Server

__all__ = ["Controller", "set_sync_hash_skip_enabled",
           "sync_hash_skip_enabled", "set_sync_delta_enabled",
           "sync_delta_enabled"]

#: Estimated wire bytes per job-status-table entry (id, uid, gid, size,
#: priority, status, heartbeat stamp).
_ENTRY_WIRE_BYTES = 64

#: Wire bytes of a pull probe / push acknowledgement (headers only).
_PROBE_WIRE_BYTES = 16

#: Process-wide switch for the push content-hash skip. Skipped and
#: unskipped application are trace-identical (the skip only elides a
#: no-op merge and a memoised token refresh); the toggle exists for the
#: seed-equivalence suite and for measuring the skip's effect.
_HASH_SKIP_ENABLED = True


def set_sync_hash_skip_enabled(enabled: bool) -> None:
    """Enable/disable the λ-sync push content-hash skip."""
    global _HASH_SKIP_ENABLED
    _HASH_SKIP_ENABLED = bool(enabled)


def sync_hash_skip_enabled() -> bool:
    """Whether push application skips on an unchanged content hash."""
    return _HASH_SKIP_ENABLED


#: Process-wide switch for delta-encoded scatter pushes (batched
#: protocol only). The coordinator already holds every responder's
#: full snapshot from the gather phase, so it can omit the entries a
#: responder provably already has (equal-or-newer heartbeat — the
#: merge's update condition) from that responder's push. Omitted
#: entries would merge as byte-for-byte no-ops, so delta and full
#: pushes leave the receiver in the identical state; the push's
#: nominal ``size`` (and hence all simulated timing) still reflects
#: the full table, and the saving is reported separately through
#: :attr:`~repro.net.message.Message.payload_bytes`.
_DELTA_SYNC_ENABLED = True


def set_sync_delta_enabled(enabled: bool) -> None:
    """Enable/disable λ-sync scatter-push delta encoding."""
    global _DELTA_SYNC_ENABLED
    _DELTA_SYNC_ENABLED = bool(enabled)


def sync_delta_enabled() -> bool:
    """Whether scatter pushes carry only entries the receiver lacks."""
    return _DELTA_SYNC_ENABLED


def _content_hash(entries: List[dict], presence: Dict[str, List[int]]) -> str:
    """Deterministic digest of a merged table + placement map.

    Canonical order (entries by job id, hosts sorted) and exact float
    ``repr`` make the digest a function of content only — two pushes
    hash equal iff applying them is the same no-op.
    """
    h = blake2b(digest_size=16)
    for entry in sorted(entries, key=lambda e: e["info"].job_id):
        info = entry["info"]
        h.update(repr((info.job_id, info.user, info.group, info.size,
                       info.priority, entry["last_heartbeat"],
                       entry["active"])).encode())
    for host in sorted(presence):
        h.update(repr((host, sorted(presence[host]))).encode())
    return h.hexdigest()


class Controller:
    """Token allocation plus λ-delayed table synchronisation."""

    def __init__(self, server: "Server", sync_interval: float):
        self.server = server
        self.sync_interval = float(sync_interval)
        self._peers: Dict[str, RpcClient] = {}
        #: which jobs each server hosts, learned via sync (self included).
        self.presence: Dict[str, Set[int]] = {}
        self._table_version_seen = -1
        self._presence_seen: Dict[str, frozenset] = {}
        self.sync_rounds = 0
        #: rounds completed on a partial table (some peer timed out).
        self.degraded_rounds = 0
        #: epochs this controller drove as the rotating coordinator.
        self.coordinated_rounds = 0
        #: pushes applied as a no-op via the content-hash short circuit.
        self.push_hash_skips = 0
        self._last_push_hash: Optional[str] = None
        # Delta-encoding state. The basis token identifies one
        # uninterrupted lifetime of this controller's sync state: it is
        # echoed through pull replies into the matching push, and a
        # mismatch at apply time proves the state the delta was computed
        # against is gone (crash/restart in between) — the push is then
        # discarded and a full-table resync requested instead.
        self._sync_basis = 0
        self._needs_full_sync = False
        #: scatter pushes sent delta-encoded vs. as the full table.
        self.delta_pushes = 0
        self.full_pushes = 0
        #: delta pushes discarded because the receiver restarted between
        #: its pull reply and the push's arrival.
        self.basis_mismatches = 0
        #: full-table pushes applied while a resync was pending.
        self.full_resyncs = 0
        self._sync_process = None

    def reset(self) -> None:
        """Forget peer-derived state (server crash): presence knowledge,
        the refresh memo, and the push-hash memo restart cold. Peer RPC
        clients stay wired — the endpoints are addresses, not
        connections, and the λ loop resumes using them after restart."""
        self.presence.clear()
        self._table_version_seen = -1
        self._presence_seen = {}
        self._last_push_hash = None
        # Invalidate any in-flight delta computed against the old state
        # and ask the next coordinator for the full table.
        self._sync_basis += 1
        self._needs_full_sync = True

    # ---------------------------------------------------------------- tokens
    def refresh_tokens(self, force: bool = False) -> bool:
        """Recompute the scheduler's tokens if anything relevant changed."""
        server = self.server
        table = server.monitor.table
        self.presence[server.name] = server.monitor.active_local_jobs()
        presence_now = {name: frozenset(jobs)
                        for name, jobs in self.presence.items()}
        if (not force and table.version == self._table_version_seen
                and presence_now == self._presence_seen):
            return False
        self._table_version_seen = table.version
        self._presence_seen = presence_now

        active = table.active_jobs()
        now = server.engine.now
        informative_peers = [name for name, jobs in self.presence.items()
                             if name != server.name and jobs]
        if not informative_peers:
            server.scheduler.on_jobs_changed(active, now)
            return True
        # Placement-aware assignment (Fig. 5): global policy shares,
        # projected onto each server's hosted-job set.
        global_shares = server.policy_shares(active)
        if not global_shares:
            server.scheduler.on_jobs_changed(active, now)
            return True
        rows = placement_shares(
            {name: set(jobs) for name, jobs in presence_now.items()
             if jobs}, global_shares)
        row = rows.get(server.name)
        if row:
            server.scheduler.set_assignment(row, now)
        else:
            server.scheduler.on_jobs_changed(active, now)
        return True

    # ----------------------------------------------------------------- peers
    def connect_peers(self, peers: Dict[str, Address]) -> None:
        """Wire server↔server RPC clients and start the λ loop."""
        engine = self.server.engine
        for name, address in peers.items():
            if name == self.server.name:
                continue
            worker = self.server.ctx.create_worker(f"ss-to-{name}")
            self._peers[name] = RpcClient(worker, address)
        if self._peers and self.sync_interval > 0 and self._sync_process is None:
            self._sync_process = engine.process(self._sync_loop())

    @property
    def peer_names(self) -> List[str]:
        return sorted(self._peers)

    # ------------------------------------------------------------------ sync
    def _payload(self) -> dict:
        monitor = self.server.monitor
        return {
            "entries": monitor.table.snapshot(),
            "host": self.server.name,
            "host_jobs": sorted(monitor.active_local_jobs()),
            # Delta-encoding handshake (consumed by the batched
            # coordinator; ignored by the pairwise protocol).
            "basis": self._sync_basis,
            "full": self._needs_full_sync,
        }

    def _sync_loop(self):
        engine = self.server.engine
        epoch = 1
        while True:
            if self.server.config.batched_sync:
                # Epoch-aligned cadence: every server wakes at the same
                # absolute times k·λ, so the epoch index — and with it
                # the rotating coordinator — agrees cluster-wide even
                # when individual rounds overrun.
                target = epoch * self.sync_interval
                if target > engine.now:
                    yield engine.timeout(target - engine.now)
                if not self.server.crashed:
                    yield from self._batched_round(epoch)
                # Skip past any epochs the round overran (strictly
                # increasing, so the loop can never spin in place).
                epoch = max(epoch + 1,
                            int(engine.now / self.sync_interval) + 1)
            else:
                yield engine.timeout(self.sync_interval)
                if self.server.crashed:
                    # A crashed server exchanges nothing; the loop idles
                    # until restart and then resumes the λ cadence.
                    continue
                yield from self._pairwise_round()

    # ------------------------------------------------------- batched protocol
    def _batched_round(self, epoch: int):
        """One gather→merge→scatter epoch, if we are its coordinator."""
        members = sorted([self.server.name, *self._peers])
        if members[epoch % len(members)] != self.server.name:
            return
        self.coordinated_rounds += 1
        table = self.server.monitor.table
        timeout = self.server.config.sync_timeout
        timeout = timeout if timeout > 0 else None

        # Gather: probe every peer for its snapshot, harvest in name
        # order; a silent peer costs at most `timeout` and the round
        # proceeds on the partial table (degraded mode).
        probe = {"kind": "pull", "host": self.server.name}
        pulls = [(name, self._peers[name].call(
                    "sync", probe, size=_PROBE_WIRE_BYTES, timeout=timeout))
                 for name in sorted(self._peers)]
        degraded = False
        responders: List[tuple] = []
        for name, call in pulls:
            try:
                resp = yield call
            except RpcTimeout:
                degraded = True
                continue
            table.merge(resp["entries"])
            self.presence[resp["host"]] = set(resp["host_jobs"])
            responders.append((name, resp))

        # Scatter: the merged table + placement map, stamped with a
        # content hash so unchanged state costs the peers nothing. With
        # delta encoding on, each responder's push body carries only the
        # entries that responder lacks (judged against the snapshot it
        # just replied with); the nominal wire size — and therefore all
        # simulated timing — still covers the full table, so the two
        # encodings are trace-identical and the saving shows up only in
        # the fabric's payload_bytes_sent accounting.
        self.presence[self.server.name] = \
            self.server.monitor.active_local_jobs()
        entries = table.snapshot()
        presence = {host: sorted(jobs)
                    for host, jobs in self.presence.items()}
        digest = _content_hash(entries, presence)
        size = _ENTRY_WIRE_BYTES * max(1, len(entries))
        acks = []
        for name, resp in responders:
            push, wire = self._encode_push(entries, presence, digest, resp)
            acks.append((name, self._peers[name].call(
                "sync", push, size=size, timeout=timeout,
                payload_bytes=wire)))
        for name, call in acks:
            try:
                yield call
            except RpcTimeout:
                degraded = True

        if degraded:
            self.degraded_rounds += 1
            if self.server.fault_stats is not None:
                self.server.fault_stats.degraded_sync_rounds += 1
        self._last_push_hash = digest
        self.sync_rounds += 1
        self.refresh_tokens()

    def _encode_push(self, entries, presence, digest, resp):
        """The push body for one responder, plus its effective wire
        bytes (``None`` = nominal).

        Delta-encodable iff the toggle is on and the responder neither
        requested a full resync nor predates the handshake. The delta
        keeps exactly the entries whose merge at the responder would do
        something: the merge updates on strictly-newer heartbeats, so an
        entry the responder reported with an equal-or-newer heartbeat is
        provably a no-op there (local heartbeats only move forward, so
        the proof survives the reply→push latency) and is omitted.
        """
        push = {"kind": "push", "host": self.server.name,
                "entries": entries, "presence": presence, "hash": digest}
        if not _DELTA_SYNC_ENABLED or resp.get("basis") is None \
                or resp.get("full"):
            self.full_pushes += 1
            return push, None
        seen = {e["info"].job_id: e["last_heartbeat"]
                for e in resp["entries"]}
        absent = float("-inf")
        delta = [e for e in entries
                 if seen.get(e["info"].job_id, absent) < e["last_heartbeat"]]
        push = dict(push, entries=delta, delta=True, basis=resp["basis"])
        self.delta_pushes += 1
        return push, _ENTRY_WIRE_BYTES * max(1, len(delta))

    def _answer_pull(self, rpc):
        """A coordinator probed us: reply our snapshot after the
        controller's processing time (serialisation cost, §5.6)."""
        processing = self.server.config.sync_processing_time
        if processing > 0:
            yield self.server.engine.timeout(processing)
        if self.server.crashed:
            return  # crashed mid-processing: the reply is lost
        payload = self._payload()
        rpc.reply(payload,
                  size=_ENTRY_WIRE_BYTES * max(1, len(payload["entries"])))

    def _apply_push(self, rpc):
        """A coordinator scattered the merged state: apply and ack.

        When the push's content hash matches the last one we applied,
        the merge would be a byte-for-byte no-op (entries merge by
        strictly-newer heartbeat, so replaying an applied snapshot
        changes nothing) and the token refresh would hit its memo — both
        are skipped. The ack and its timing are identical either way, so
        the skip never perturbs the simulated trace.
        """
        processing = self.server.config.sync_processing_time
        if processing > 0:
            yield self.server.engine.timeout(processing)
        if self.server.crashed:
            return  # crashed mid-processing: stale merge + ack lost
        body = rpc.body
        rpc.reply({"ok": True}, size=_PROBE_WIRE_BYTES)
        self.sync_rounds += 1
        if body.get("delta"):
            if body["basis"] != self._sync_basis:
                # We restarted between our pull reply and this push: the
                # delta was computed against state we no longer hold, so
                # applying it could leave silently-omitted entries
                # missing forever. Drop it and pull the full table next
                # round (our next reply advertises ``full``). This is
                # the protocol's designed degraded window: until that
                # resync lands we run on the post-restart local view,
                # exactly as a crash already implies.
                self.basis_mismatches += 1
                self._needs_full_sync = True
                return
        elif self._needs_full_sync:
            self._needs_full_sync = False
            self.full_resyncs += 1
        digest = body["hash"]
        if _HASH_SKIP_ENABLED and digest == self._last_push_hash:
            self.push_hash_skips += 1
            return
        self.server.monitor.table.merge(body["entries"])
        for host, jobs in body["presence"].items():
            if host != self.server.name:
                self.presence[host] = set(jobs)
        self._last_push_hash = digest
        self.refresh_tokens()

    # ------------------------------------------------------ pairwise protocol
    def _pairwise_round(self):
        """One round of the original per-pair exchange protocol."""
        engine = self.server.engine
        table = self.server.monitor.table
        payload = self._payload()
        size = _ENTRY_WIRE_BYTES * max(1, len(payload["entries"]))
        timeout = self.server.config.sync_timeout
        if timeout <= 0:
            # Lock-step all-gather (original behaviour, byte-
            # identical traces when timeouts are disabled).
            calls = [client.call("sync", payload, size=size)
                     for client in self._peers.values()]
            responses = yield engine.all_of(calls)
            for resp in responses:
                table.merge(resp["entries"])
                self.presence[resp["host"]] = set(resp["host_jobs"])
        else:
            # Per-peer timeout: issue every exchange up front, then
            # harvest; a silent peer costs at most `timeout` and the
            # round proceeds on the partial table (degraded mode).
            calls = [(name, client.call("sync", payload, size=size,
                                        timeout=timeout))
                     for name, client in sorted(self._peers.items())]
            degraded = False
            for name, call in calls:
                try:
                    resp = yield call
                except RpcTimeout:
                    degraded = True
                    continue
                table.merge(resp["entries"])
                self.presence[resp["host"]] = set(resp["host_jobs"])
            if degraded:
                self.degraded_rounds += 1
                if self.server.fault_stats is not None:
                    self.server.fault_stats.degraded_sync_rounds += 1
        self.sync_rounds += 1
        self.refresh_tokens()

    def _answer_pairwise(self, rpc):
        """Peer pushed its snapshot (pairwise protocol): merge and reply
        after the controller's processing time (§5.6)."""
        processing = self.server.config.sync_processing_time
        if processing > 0:
            yield self.server.engine.timeout(processing)
        if self.server.crashed:
            return  # crashed mid-processing: stale merge + reply lost
        table = self.server.monitor.table
        table.merge(rpc.body["entries"])
        self.presence[rpc.body["host"]] = set(rpc.body["host_jobs"])
        payload = self._payload()
        rpc.reply(payload,
                  size=_ENTRY_WIRE_BYTES * max(1, len(payload["entries"])))
        self.refresh_tokens()

    def handle_sync(self, rpc) -> None:
        """Dispatch an inbound sync message by protocol role."""
        if self.server.crashed:
            return  # a dead server neither merges nor answers
        kind = rpc.body.get("kind")
        if kind == "pull":
            self.server.engine.process(self._answer_pull(rpc))
        elif kind == "push":
            self.server.engine.process(self._apply_push(rpc))
        else:
            self.server.engine.process(self._answer_pairwise(rpc))
