"""Operational statistics: what a burst-buffer operator would watch.

:func:`server_stats` snapshots one server's counters;
:func:`cluster_summary` renders the whole deployment as a table —
useful at the end of an experiment to see where cycles went (service,
idle throttling, lock waits) and whether the token scheduler wasted
draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from ..harness.report import table
from ..units import fmt_bw, fmt_bytes

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster
    from .server import Server

__all__ = ["ServerStats", "server_stats", "cluster_summary"]


@dataclass(frozen=True)
class ServerStats:
    """Snapshot of one server's counters."""

    name: str
    scheduler: str
    served_requests: int
    served_bytes: int
    backlog: int
    idle_cycles: int
    lock_waits: int
    errors: int
    active_jobs: int
    sync_rounds: int
    draws: int
    wasted_draws: int
    used_bytes: int

    def as_row(self) -> List[object]:
        """The snapshot as a table row for :func:`cluster_summary`."""
        return [self.name, self.scheduler, self.served_requests,
                fmt_bytes(self.served_bytes), self.backlog,
                self.idle_cycles, self.lock_waits, self.errors,
                self.active_jobs, self.sync_rounds,
                f"{self.wasted_draws}/{self.draws}",
                fmt_bytes(self.used_bytes)]


def server_stats(server: "Server") -> ServerStats:
    """Collect *server*'s counters into a snapshot."""
    scheduler = server.scheduler
    return ServerStats(
        name=server.name,
        scheduler=scheduler.name,
        served_requests=server.served_requests,
        served_bytes=server.served_bytes,
        backlog=scheduler.backlog,
        idle_cycles=sum(w.idle_cycles for w in server.workers),
        lock_waits=sum(w.lock_waits for w in server.workers),
        errors=len(server.errors),
        active_jobs=len(server.monitor.table.active_jobs()),
        sync_rounds=server.controller.sync_rounds,
        draws=getattr(scheduler, "draws", 0),
        wasted_draws=getattr(scheduler, "wasted_draws", 0),
        used_bytes=server.fs.nodes[server.name].backend.used_bytes,
    )


def cluster_summary(cluster: "Cluster") -> str:
    """A per-server counter table plus the aggregate service rate."""
    rows = [server_stats(server).as_row()
            for server in cluster.servers.values()]
    text = table(
        ("server", "sched", "reqs", "served", "backlog", "idle",
         "lock-waits", "errors", "jobs", "syncs", "wasted-draws", "device"),
        rows, title="cluster summary")
    now = cluster.engine.now
    if now > 0:
        rate = cluster.total_served_bytes() / now
        text += f"\naggregate service rate: {fmt_bw(rate)} over {now:.2f}s"
    return text
