"""Cluster assembly: fabric + servers + shared FS + client factory.

Builds a complete ThemisIO deployment (Fig. 6): N burst-buffer nodes
each running a :class:`~repro.bb.server.Server` over one shared
:class:`~repro.fs.ThemisFS` namespace, wired for λ-delayed
synchronisation, plus compute-node clients created on demand.

The queueing discipline is chosen per cluster: a policy string selects
ThemisIO's statistical token scheduler; ``"fifo"``, ``"gift"`` or
``"tbf"`` select the comparators of §5.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.baselines import FifoScheduler, GiftScheduler, TbfScheduler
from ..core.policy import FIFO_POLICY_NAME, Policy
from ..core.scheduler import Scheduler, StatisticalTokenScheduler
from ..errors import ConfigError
from ..core.jobinfo import JobInfo
from ..fs.filesystem import ThemisFS
from ..fs.journal import JournaledFS
from ..metrics.faultstats import FaultStats
from ..metrics.sampler import ThroughputSampler
from ..net.fabric import Fabric
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..units import GB, MiB, TiB, USEC
from .client import Client, ClientConfig
from .server import Server, ServerConfig

__all__ = ["Cluster", "ClusterConfig", "make_scheduler"]


@dataclass
class ClusterConfig:
    """Shape of a deployment."""

    n_servers: int = 1
    policy: str = "job-fair"            # or "fifo" / "gift" / "tbf"
    server: ServerConfig = field(default_factory=ServerConfig)
    client: ClientConfig = field(default_factory=ClientConfig)
    capacity_per_server: int = 6 * TiB   # §1: 6.2 TB Optane per node
    stripe_size: int = MiB
    stripe_count: int = 1                # servers per file by default
    storage_backend: str = "extent"      # or "log" (§7 future-work design)
    #: journal namespace mutations (JournaledFS) so crashed servers can
    #: rebuild their metadata; combine with storage_backend="log" for
    #: full crash durability of acknowledged writes.
    journal: bool = False
    fabric_latency: float = 2 * USEC
    link_bandwidth: float = 25 * GB
    seed: int = 0
    opportunity_fair: bool = True        # ablation knob for ThemisIO
    gift_mu: float = 0.5                 # §5.4 reference interval
    tbf_declared_jobs: int = 2           # "user-supplied" rate divisor
    tbf_rates: Optional[Dict[int, float]] = None
    #: erasure-coded placement ``(k, n)``: every file gets k data +
    #: (n - k) parity shares on n distinct servers. None (the default)
    #: keeps plain striping — and the exact pre-erasure traces.
    erasure: Optional[Tuple[int, int]] = None
    #: run the crash-driven repair manager (requires ``erasure``).
    repair: bool = False
    #: failure-detector poll period of the repair manager (seconds).
    repair_detect_interval: float = 0.5

    def __post_init__(self):
        if self.n_servers < 1:
            raise ConfigError("n_servers must be >= 1")
        if self.stripe_count < 1:
            raise ConfigError("stripe_count must be >= 1")
        if self.erasure is not None:
            k, n = self.erasure
            if not 1 <= k < n:
                raise ConfigError(f"erasure needs 1 <= k < n: k={k} n={n}")
            if n > self.n_servers:
                raise ConfigError(
                    f"erasure n={n} exceeds n_servers={self.n_servers}")
        if self.repair:
            if self.erasure is None:
                raise ConfigError("repair requires erasure=(k, n)")
            if self.repair_detect_interval <= 0:
                raise ConfigError("repair_detect_interval must be positive")


def make_scheduler(config: ClusterConfig, server_name: str,
                   rng: np.random.Generator) -> Scheduler:
    """Instantiate the configured queueing discipline for one server."""
    name = config.policy.strip().lower()
    if name == FIFO_POLICY_NAME:
        return FifoScheduler()
    if name == "gift":
        return GiftScheduler(capacity=config.server.bandwidth,
                             mu=config.gift_mu)
    if name == "tbf":
        return TbfScheduler(capacity=config.server.bandwidth,
                            rates=config.tbf_rates,
                            declared_jobs=config.tbf_declared_jobs)
    policy = Policy.parse(config.policy)
    return StatisticalTokenScheduler(policy, rng,
                                     opportunity_fair=config.opportunity_fair)


class Cluster:
    """A running deployment plus its client factory."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config or ClusterConfig()
        self.engine = Engine()
        self.rng = RngRegistry(self.config.seed)
        self.fabric = Fabric(self.engine,
                             latency=self.config.fabric_latency,
                             link_bandwidth=self.config.link_bandwidth)
        self.sampler = ThroughputSampler()
        self.fault_stats = FaultStats()
        server_names = [f"bb{i}" for i in range(self.config.n_servers)]
        fs_cls = JournaledFS if self.config.journal else ThemisFS
        self.fs = fs_cls(server_names,
                         capacity_per_server=self.config.capacity_per_server,
                         stripe_size=self.config.stripe_size,
                         default_stripe_count=self.config.stripe_count,
                         clock=lambda: self.engine.now,
                         storage_backend=self.config.storage_backend,
                         erasure=self.config.erasure)
        self.servers: Dict[str, Server] = {}
        for name in server_names:
            scheduler = make_scheduler(
                self.config, name, self.rng.stream(f"sched.{name}"))
            self.servers[name] = Server(
                self.engine, self.fabric, name, self.fs, scheduler,
                config=self.config.server, sampler=self.sampler,
                fault_stats=self.fault_stats)
        # λ-delayed fairness wiring (no-op for a single server).
        sync_addresses = {name: server.sync_address
                          for name, server in self.servers.items()}
        if len(self.servers) > 1 and self.config.server.sync_interval > 0:
            for server in self.servers.values():
                server.connect_peers(sync_addresses)
        self._client_seq = 0
        self.clients: Dict[str, Client] = {}
        self.repair = None
        if self.config.repair:
            from .repair import RepairManager
            self.repair = RepairManager(
                self, detect_interval=self.config.repair_detect_interval)

    # ---------------------------------------------------------------- clients
    def add_client(self, job: JobInfo,
                   client_id: Optional[str] = None) -> Client:
        """Create a compute-node client for *job* (one per node typically)."""
        self._client_seq += 1
        client_id = client_id or f"client-{self._client_seq}"
        node_name = f"cn-{client_id}"
        ctl_addresses = {name: (name, Server.CTL_WORKER)
                         for name in self.servers}
        rng = (self.rng.stream(f"client.{client_id}")
               if self.config.client.rpc_timeout > 0 else None)
        client = Client(self.engine, self.fabric, node_name, client_id, job,
                        self.fs, ctl_addresses, config=self.config.client,
                        rng=rng, fault_stats=self.fault_stats)
        self.clients[client_id] = client
        return client

    # ----------------------------------------------------------- fault model
    def crash_server(self, name: str) -> None:
        """Fail-stop server *name* now (see :meth:`Server.crash`)."""
        self.servers[name].crash()

    def restart_server(self, name: str) -> None:
        """Recover server *name* now (see :meth:`Server.restart`)."""
        self.servers[name].restart()

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation until *until* (or until idle)."""
        self.engine.run(until=until)

    @property
    def scheduler_name(self) -> str:
        return next(iter(self.servers.values())).scheduler.name

    def total_served_bytes(self) -> int:
        """Data bytes served across every server."""
        return sum(server.served_bytes for server in self.servers.values())

    # ------------------------------------------------------------------ sync
    def sync_digest_log(self) -> list:
        """Merged-table digests per sync epoch, cluster-wide.

        Each λ-sync epoch is driven by one rotating coordinator (flat)
        or root (tree), which logs ``(epoch, digest)``; collecting and
        sorting across servers yields the per-epoch digest sequence —
        the flat and tree layouts must produce identical sequences for
        the same workload (DESIGN.md §13).
        """
        log: list = []
        for server in self.servers.values():
            log.extend(server.controller.digest_log)
        return sorted(log)

    def sync_stats(self) -> Dict[str, int]:
        """Cluster-wide λ-sync counters, plus the peak coordinator/root
        inbound gather bytes per epoch-driving node (the fan-in hotspot
        the aggregation tree exists to flatten)."""
        totals = {
            "sync_rounds": 0, "coordinated_rounds": 0, "tree_rounds": 0,
            "degraded_rounds": 0, "delta_pushes": 0, "full_pushes": 0,
            "gather_delta_replies": 0, "gather_full_replies": 0,
            "quiescent_skips": 0, "quiescent_replies": 0,
            "push_hash_skips": 0, "basis_mismatches": 0,
            "full_resyncs": 0, "subtree_full_pushes": 0,
            "coord_gather_payload_bytes": 0, "relay_gather_payload_bytes": 0,
        }
        max_fanin = 0
        for server in self.servers.values():
            ctl = server.controller
            for key in totals:
                totals[key] += getattr(ctl, key)
            max_fanin = max(max_fanin, ctl.max_gather_fanin)
        totals["max_gather_fanin"] = max_fanin
        return totals
