"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class StopSimulation(Exception):
    """Internal control-flow signal that stops :meth:`Engine.run`.

    Deliberately *not* a :class:`ReproError`: it must never be swallowed by
    user code catching the package error base class.
    """


class InterruptError(ReproError):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class NetworkError(ReproError):
    """Raised for fabric misconfiguration or unreachable nodes."""


class UCXError(ReproError):
    """Raised by the UCX-like communication layer."""


class RpcTimeout(UCXError):
    """An RPC call received no response within its timeout window.

    Raised into the caller when a request's timeout expires (server
    crashed, link partitioned, or message dropped); the fault-tolerant
    client retries on it with exponential backoff.
    """


class FSError(ReproError):
    """Base class for file-system errors (carries an errno-like code)."""

    errno_name = "EIO"


class FileNotFound(FSError):
    """ENOENT: the path does not exist."""

    errno_name = "ENOENT"


class FileExists(FSError):
    """EEXIST: the path already exists."""

    errno_name = "EEXIST"


class NotADirectory(FSError):
    """ENOTDIR: a path component is not a directory."""

    errno_name = "ENOTDIR"


class IsADirectory(FSError):
    """EISDIR: data I/O attempted on a directory."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(FSError):
    """ENOTEMPTY: rmdir on a non-empty directory."""

    errno_name = "ENOTEMPTY"


class NoSpace(FSError):
    """ENOSPC: the device cannot satisfy the allocation."""

    errno_name = "ENOSPC"


class BadFileDescriptor(FSError):
    """EBADF: the descriptor is not open (or wrong mode)."""

    errno_name = "EBADF"


class InvalidArgument(FSError):
    """EINVAL: malformed offset, size, path, or flag."""

    errno_name = "EINVAL"


class PermissionDenied(FSError):
    """EACCES: the operation is not permitted."""

    errno_name = "EACCES"


class PolicyError(ReproError):
    """Raised for malformed sharing-policy specifications."""


class SchedulerError(ReproError):
    """Raised for scheduler misuse (e.g. dequeue from an unknown job)."""


class ConfigError(ReproError):
    """Raised for invalid experiment/harness configuration."""
