"""File-descriptor table and directory streams.

POSIX semantics the shim relies on: descriptors are small non-negative
integers, the lowest free number is allocated first (0–2 are reserved for
stdio), each open file tracks its own offset, and directory streams
snapshot entries at ``opendir`` time with a cursor advanced by
``readdir``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import BadFileDescriptor

__all__ = ["OpenFile", "DirStream", "FDTable"]

FIRST_FD = 3  # 0,1,2 belong to stdio


@dataclass
class OpenFile:
    """State of one open regular file."""

    fd: int
    path: str
    flags: int
    offset: int = 0
    append: bool = False


@dataclass
class DirStream:
    """An open directory stream (``DIR *``)."""

    handle: int
    path: str
    entries: List[str] = field(default_factory=list)
    cursor: int = 0

    def next_entry(self) -> Optional[str]:
        """The next entry name, or None at end of stream."""
        if self.cursor >= len(self.entries):
            return None
        name = self.entries[self.cursor]
        self.cursor += 1
        return name

    def rewind(self) -> None:
        """Reset the stream to its first entry (rewinddir)."""
        self.cursor = 0


class FDTable:
    """Per-process descriptor table with lowest-free-fd allocation."""

    def __init__(self):
        self._files: Dict[int, OpenFile] = {}
        self._dirs: Dict[int, DirStream] = {}
        self._next_dir_handle = 1

    # ----------------------------------------------------------------- files
    def allocate(self, path: str, flags: int, append: bool = False) -> OpenFile:
        """Open a file at the lowest free descriptor number."""
        fd = FIRST_FD
        while fd in self._files:
            fd += 1
        open_file = OpenFile(fd=fd, path=path, flags=flags, append=append)
        self._files[fd] = open_file
        return open_file

    def get(self, fd: int) -> OpenFile:
        """The open file behind *fd* (raises EBADF-style error)."""
        try:
            return self._files[fd]
        except KeyError:
            raise BadFileDescriptor(f"fd {fd}") from None

    def close(self, fd: int) -> None:
        """Release *fd* (raises if not open)."""
        if fd not in self._files:
            raise BadFileDescriptor(f"fd {fd}")
        del self._files[fd]

    @property
    def open_count(self) -> int:
        return len(self._files)

    def open_fds(self) -> List[int]:
        """The open descriptor numbers, sorted."""
        return sorted(self._files)

    # ----------------------------------------------------------- directories
    def open_dir(self, path: str, entries: List[str]) -> DirStream:
        """Open a directory stream snapshotting *entries*."""
        stream = DirStream(handle=self._next_dir_handle, path=path,
                           entries=list(entries))
        self._next_dir_handle += 1
        self._dirs[stream.handle] = stream
        return stream

    def get_dir(self, handle: int) -> DirStream:
        """The stream behind *handle* (raises if closed)."""
        try:
            return self._dirs[handle]
        except KeyError:
            raise BadFileDescriptor(f"dir handle {handle}") from None

    def close_dir(self, handle: int) -> None:
        """Close a directory stream."""
        if handle not in self._dirs:
            raise BadFileDescriptor(f"dir handle {handle}")
        del self._dirs[handle]
