"""I/O function interception (§4.4).

Production supercomputers rarely grant root, so ThemisIO intercepts glibc
I/O functions in user space using one of two techniques:

- **override** — expose same-named symbols so the dynamic linker binds
  the application's calls to ThemisIO's implementations (LD_PRELOAD
  style);
- **trampoline** — rewrite the first instructions of the original
  function with a jump into ThemisIO, keeping a relocated prologue so the
  original can still be invoked.

This module models the dispatch semantics of both: a registry maps
function names to (replacement, original) pairs. Under ``OVERRIDE`` the
replacement simply shadows the original. Under ``TRAMPOLINE`` the
original is reachable *through the registry only* via the saved
prologue — calling the patched symbol re-enters the replacement, which is
exactly the hazard the real technique has; :meth:`call_original` is the
"jump back" path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict

from ..errors import ReproError

__all__ = ["InterceptionMode", "InterposeRegistry", "InterceptStats"]


class InterceptionMode(Enum):
    """The two §4.4 techniques: symbol override or binary trampoline."""
    OVERRIDE = "override"
    TRAMPOLINE = "trampoline"


@dataclass
class InterceptStats:
    """Per-function call accounting."""

    intercepted: int = 0
    passed_through: int = 0


@dataclass
class _Hook:
    replacement: Callable
    original: Callable
    stats: InterceptStats = field(default_factory=InterceptStats)


class InterposeRegistry:
    """Function interception table for one client process."""

    def __init__(self, mode: InterceptionMode = InterceptionMode.OVERRIDE):
        self.mode = mode
        self._hooks: Dict[str, _Hook] = {}

    def install(self, name: str, replacement: Callable,
                original: Callable) -> None:
        """Hook *name*: calls route to *replacement*; *original* is saved."""
        if name in self._hooks:
            raise ReproError(f"function {name!r} already intercepted")
        self._hooks[name] = _Hook(replacement=replacement, original=original)

    def uninstall(self, name: str) -> None:
        """Remove the hook for *name* (raises if absent)."""
        if name not in self._hooks:
            raise ReproError(f"function {name!r} is not intercepted")
        del self._hooks[name]

    def is_intercepted(self, name: str) -> bool:
        """True if *name* currently has a hook installed."""
        return name in self._hooks

    def intercepted_functions(self):
        """The hooked function names, sorted."""
        return sorted(self._hooks)

    def call(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke *name* the way the application would (post-patching).

        Unhooked functions raise — the application would have called the
        real symbol directly, which the model has no business emulating.
        """
        hook = self._hooks.get(name)
        if hook is None:
            raise ReproError(f"function {name!r} is not intercepted")
        hook.stats.intercepted += 1
        return hook.replacement(*args, **kwargs)

    def call_original(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """The replacement's escape hatch to the real implementation.

        Under OVERRIDE this is the next symbol in link order (dlsym
        RTLD_NEXT); under TRAMPOLINE it is the relocated prologue jump.
        Either way it bypasses the replacement.
        """
        hook = self._hooks.get(name)
        if hook is None:
            raise ReproError(f"function {name!r} is not intercepted")
        hook.stats.passed_through += 1
        return hook.original(*args, **kwargs)

    def stats(self, name: str) -> InterceptStats:
        """Call accounting for the hooked function *name*."""
        hook = self._hooks.get(name)
        if hook is None:
            raise ReproError(f"function {name!r} is not intercepted")
        return hook.stats
