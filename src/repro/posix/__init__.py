"""POSIX interception substrate (§4.4 of the paper)."""

from .api import (O_APPEND, O_CREAT, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY,
                  SEEK_CUR, SEEK_END, SEEK_SET, PosixShim,
                  install_interception)
from .fdtable import DirStream, FDTable, OpenFile
from .interpose import InterceptionMode, InterceptStats, InterposeRegistry

__all__ = [
    "PosixShim",
    "install_interception",
    "FDTable",
    "OpenFile",
    "DirStream",
    "InterposeRegistry",
    "InterceptionMode",
    "InterceptStats",
    "O_RDONLY", "O_WRONLY", "O_RDWR", "O_CREAT", "O_TRUNC", "O_APPEND",
    "SEEK_SET", "SEEK_CUR", "SEEK_END",
]
