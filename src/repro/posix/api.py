"""POSIX-compliant shim (§4.4, Listing 1).

Applications use ThemisIO "as a traditional file system": any path under
the burst-buffer namespace prefix (``/fs`` by default) is routed to the
burst buffer; everything else passes through to the node-local file
system. The shim implements the intercepted functions of Listing 1 —
``open/close/read/write/lseek/opendir/readdir/closedir`` — plus ``stat``
and ``unlink`` (exercised by the paper's ``iops_stat`` benchmark and
cleanup paths).

The *backend* is any object with the :class:`~repro.fs.ThemisFS` data
API (``create/write/read/stat/readdir/unlink/truncate/exists/lookup``);
in the full system it is the burst-buffer client's blocking facade, in
unit tests the FS itself.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import (BadFileDescriptor, FileNotFound, InvalidArgument,
                      IsADirectory, PermissionDenied)
from ..fs.path import DEFAULT_NAMESPACE, in_namespace, normalize
from .fdtable import DirStream, FDTable
from .interpose import InterposeRegistry

__all__ = ["PosixShim", "O_RDONLY", "O_WRONLY", "O_RDWR", "O_CREAT",
           "O_TRUNC", "O_APPEND", "SEEK_SET", "SEEK_CUR", "SEEK_END",
           "install_interception"]

# Linux x86-64 flag values.
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

_ACCMODE = 0o3


class PosixShim:
    """One client process's view of the intercepted POSIX surface."""

    def __init__(self, backend: Any, namespace: str = DEFAULT_NAMESPACE,
                 passthrough: Optional[Any] = None):
        self.backend = backend
        self.namespace = namespace
        self.passthrough = passthrough
        self.fdtable = FDTable()

    # ------------------------------------------------------------- routing
    def _route(self, path: str) -> Any:
        """The backend serving *path*; None means not interceptable."""
        if in_namespace(path, self.namespace):
            return self.backend
        if self.passthrough is not None:
            return self.passthrough
        raise PermissionDenied(
            f"{path!r} is outside the ThemisIO namespace and no "
            f"passthrough file system is configured")

    def is_intercepted_path(self, path: str) -> bool:
        """True if *path* falls under the burst-buffer namespace."""
        return in_namespace(path, self.namespace)

    # ---------------------------------------------------------------- files
    def open(self, path: str, flags: int = O_RDONLY) -> int:
        """POSIX ``open``; returns a file descriptor."""
        norm = normalize(path)
        fs = self._route(norm)
        inode = fs.lookup(norm)
        if inode is None:
            if not flags & O_CREAT:
                raise FileNotFound(norm)
            fs.create(norm)
        elif inode.is_dir and (flags & _ACCMODE) != O_RDONLY:
            raise IsADirectory(norm)
        if flags & O_TRUNC and (flags & _ACCMODE) != O_RDONLY:
            fs.truncate(norm, 0)
        open_file = self.fdtable.allocate(norm, flags,
                                          append=bool(flags & O_APPEND))
        return open_file.fd

    def close(self, fd: int) -> int:
        """POSIX ``close``; returns 0."""
        self.fdtable.close(fd)
        return 0

    def read(self, fd: int, size: int) -> bytes:
        """POSIX ``read``: up to *size* bytes from the fd's offset."""
        if size < 0:
            raise InvalidArgument(f"negative read size: {size}")
        open_file = self.fdtable.get(fd)
        if (open_file.flags & _ACCMODE) == O_WRONLY:
            raise BadFileDescriptor(f"fd {fd} is write-only")
        fs = self._route(open_file.path)
        data = fs.read(open_file.path, open_file.offset, size)
        open_file.offset += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        """POSIX ``write``: bytes written at the fd's offset (EOF if append)."""
        open_file = self.fdtable.get(fd)
        if (open_file.flags & _ACCMODE) == O_RDONLY:
            raise BadFileDescriptor(f"fd {fd} is read-only")
        fs = self._route(open_file.path)
        if open_file.append:
            open_file.offset = fs.stat(open_file.path).size
        written = fs.write(open_file.path, open_file.offset, data)
        open_file.offset += written
        return written

    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        """POSIX ``lseek``; returns the new offset."""
        open_file = self.fdtable.get(fd)
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = open_file.offset + offset
        elif whence == SEEK_END:
            fs = self._route(open_file.path)
            new = fs.stat(open_file.path).size + offset
        else:
            raise InvalidArgument(f"bad whence: {whence}")
        if new < 0:
            raise InvalidArgument(f"seek before start: {new}")
        open_file.offset = new
        return new

    # ---------------------------------------------------------- directories
    def opendir(self, path: str) -> DirStream:
        """POSIX ``opendir``; returns a directory stream."""
        norm = normalize(path)
        fs = self._route(norm)
        entries = fs.readdir(norm)
        return self.fdtable.open_dir(norm, entries)

    def readdir(self, stream: DirStream) -> Optional[str]:
        """POSIX ``readdir``; next entry name or None at end."""
        return self.fdtable.get_dir(stream.handle).next_entry()

    def closedir(self, stream: DirStream) -> int:
        """POSIX ``closedir``; returns 0."""
        self.fdtable.close_dir(stream.handle)
        return 0

    # -------------------------------------------------------------- metadata
    def stat(self, path: str):
        """POSIX ``stat``; returns a :class:`~repro.fs.Stat`."""
        norm = normalize(path)
        return self._route(norm).stat(norm)

    def unlink(self, path: str) -> int:
        """POSIX ``unlink``; returns 0."""
        norm = normalize(path)
        self._route(norm).unlink(norm)
        return 0

    def mkdir(self, path: str) -> int:
        """POSIX ``mkdir``; returns 0."""
        norm = normalize(path)
        self._route(norm).mkdir(norm)
        return 0


#: The Listing-1 function names wired by :func:`install_interception`.
LISTING1 = ["open", "close", "read", "write", "lseek",
            "opendir", "readdir", "closedir", "stat", "unlink"]


def install_interception(registry: InterposeRegistry, shim: PosixShim,
                         originals: Optional[Any] = None) -> None:
    """Install the shim's Listing-1 functions into *registry*.

    *originals* supplies the un-intercepted implementations (the "real
    glibc"); by default each original raises, which models a system where
    the call would leave the simulation.
    """

    def _missing(name):
        def _raise(*_a, **_k):
            raise FileNotFound(f"original {name}() outside the simulation")
        return _raise

    for name in LISTING1:
        replacement = getattr(shim, name)
        original = (getattr(originals, name, None) if originals is not None
                    else None) or _missing(name)
        registry.install(name, replacement, original)
