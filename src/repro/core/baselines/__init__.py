"""Comparator scheduling disciplines (§5.4): FIFO, GIFT, TBF."""

from .fifo import FifoScheduler
from .gift import GiftScheduler
from .tbf import TbfScheduler

__all__ = ["FifoScheduler", "GiftScheduler", "TbfScheduler"]
