"""TBF-style classful token bucket filter (Qian et al., SC '17),
reconstructed inside the ThemisIO server as §5.4 describes: "we
implement the core HTC (Hard Token Compensation) and PSSB (Proportional
Sharing Spare Bandwidth) strategies and integrate them with ThemisIO's
I/O resource allocation mechanism."

Each job is a TBF class with a **user-supplied** service rate (the
paper's central critique: "it is difficult to know the exact I/O request
rate of an application, even for an experienced user"). Buckets refill
continuously and are capped at a small burst:

- a request runs when its class holds enough tokens (cost = bytes);
- **PSSB** — rate left idle by classes without backlog is shared among
  backlogged classes in proportion to their configured rates;
- **HTC** — a class starved below its guaranteed rate accumulates a
  deficit; once the deficit exceeds one burst it may dispatch on credit
  (the bucket goes negative), hard-compensating the guarantee.

Bucket granularity and burst caps make the resulting allocation
jittery — the higher throughput variance ThemisIO's Figure 12 reports.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ...errors import SchedulerError
from ..jobinfo import JobInfo
from ..queues import QueueSet
from ..scheduler import Scheduler

__all__ = ["TbfScheduler"]


class TbfScheduler(Scheduler):
    """Classful token buckets with HTC and PSSB."""

    name = "tbf"

    def __init__(self, capacity: float, rates: Optional[Dict[int, float]] = None,
                 declared_jobs: int = 2, burst_seconds: float = 0.05,
                 ceiling_factor: float = 1.75,
                 refill_quantum: float = 0.02):
        if capacity <= 0:
            raise SchedulerError(f"capacity must be positive: {capacity}")
        if declared_jobs < 1:
            raise SchedulerError("declared_jobs must be >= 1")
        if burst_seconds <= 0:
            raise SchedulerError("burst_seconds must be positive")
        if ceiling_factor < 1.0:
            raise SchedulerError("ceiling_factor must be >= 1")
        self.capacity = float(capacity)
        #: user-supplied per-class rates; unlisted classes get the default.
        self.rates: Dict[int, float] = dict(rates or {})
        self.default_rate = self.capacity / declared_jobs
        self.burst_seconds = float(burst_seconds)
        #: classful upper rate limit: a class never exceeds
        #: ``ceiling_factor x`` its configured rate even with spare
        #: bandwidth (TBF rules carry hard upper bounds for QoS) — the
        #: utilisation the rule set leaves on the table when the
        #: user-supplied rates underestimate reality.
        self.ceiling_factor = float(ceiling_factor)
        if refill_quantum < 0:
            raise SchedulerError("refill_quantum must be >= 0")
        #: tokens arrive in discrete quanta (the classful TBF grants
        #: tokens per scheduling tick, not continuously) — the source of
        #: the allocation jitter Fig. 12 measures.
        self.refill_quantum = float(refill_quantum)
        self.queues = QueueSet()
        self._tokens: Dict[int, float] = {}
        self._deficit: Dict[int, float] = {}
        self._last_refill: Optional[float] = None
        # Classes from the rule set exist before any job shows up.
        self._known: List[int] = sorted(self.rates)
        for job_id in self._known:
            self._tokens[job_id] = self._burst(job_id)
            self._deficit[job_id] = 0.0
        self.compensations = 0

    # ------------------------------------------------------------- interface
    def enqueue(self, request: Any, now: float) -> None:
        self._refill(now)
        self.queues.push(request)
        job_id = request.job_id
        if job_id not in self._tokens:
            self._tokens[job_id] = self._burst(job_id)
            self._deficit[job_id] = 0.0
            self._known = sorted(set(self._known) | {job_id})

    def on_jobs_changed(self, active_jobs: Sequence[JobInfo],
                        now: float) -> None:
        for info in active_jobs:
            if info.job_id not in self._tokens:
                self._tokens[info.job_id] = self._burst(info.job_id)
                self._deficit[info.job_id] = 0.0
        self._known = sorted(set(self._known) |
                             {info.job_id for info in active_jobs})

    def dequeue(self, now: float) -> Optional[Any]:
        self._refill(now)
        if not self.queues:
            return None
        chosen: Optional[int] = None
        chosen_tokens = float("-inf")
        for job_id in self.queues.nonempty_jobs():
            head = self.queues.peek(job_id)
            tokens = self._tokens.get(job_id, 0.0)
            eligible = tokens >= head.cost
            if not eligible and self._deficit.get(job_id, 0.0) > self._burst(job_id):
                eligible = True  # HTC: dispatch on credit
                self.compensations += 1
            if eligible and tokens > chosen_tokens:
                chosen, chosen_tokens = job_id, tokens
        if chosen is None:
            return None
        request = self.queues.pop(chosen)
        self._tokens[chosen] = self._tokens.get(chosen, 0.0) - request.cost
        self._deficit[chosen] = max(
            0.0, self._deficit.get(chosen, 0.0) - request.cost)
        return request

    @property
    def backlog(self) -> int:
        return self.queues.total

    def next_eligible_time(self, now: float) -> float:
        """Earliest instant a backlogged class can afford its head request."""
        if not self.queues:
            return float("inf")
        rates = self._effective_rates()
        best = float("inf")
        for job_id in self.queues.nonempty_jobs():
            head = self.queues.peek(job_id)
            missing = head.cost - self._tokens.get(job_id, 0.0)
            rate = rates.get(job_id, self.default_rate)
            if missing <= 0:
                return now
            if rate > 0:
                best = min(best, now + missing / rate)
        return best

    # --------------------------------------------------------------- buckets
    def rate_of(self, job_id: int) -> float:
        """The configured (user-supplied) rate of class *job_id*."""
        return self.rates.get(job_id, self.default_rate)

    def _burst(self, job_id: int) -> float:
        return self.rate_of(job_id) * self.burst_seconds

    def _effective_rates(self) -> Dict[int, float]:
        """PSSB: idle classes' rates are shared proportionally among
        backlogged classes."""
        backlogged = set(self.queues.nonempty_jobs())
        if not backlogged:
            return {j: self.rate_of(j) for j in self._known}
        idle_rate = sum(self.rate_of(j) for j in self._known
                        if j not in backlogged)
        busy_total = sum(self.rate_of(j) for j in sorted(backlogged))
        rates = {}
        for j in self._known:
            base = self.rate_of(j)
            if j in backlogged and busy_total > 0:
                shared = base + idle_rate * (base / busy_total)
                rates[j] = min(shared, base * self.ceiling_factor)
            else:
                rates[j] = base
        return rates

    def _refill(self, now: float) -> None:
        if self._last_refill is None:
            self._last_refill = now
            return
        dt = now - self._last_refill
        if dt <= 0:
            return
        if self.refill_quantum > 0:
            # Quantised ticks: grant whole quanta only.
            ticks = int(dt / self.refill_quantum)
            if ticks == 0:
                return
            dt = ticks * self.refill_quantum
            self._last_refill += dt
        else:
            self._last_refill = now
        rates = self._effective_rates()
        backlogged = set(self.queues.nonempty_jobs())
        for job_id in self._known:
            rate = rates.get(job_id, self.default_rate)
            burst = max(self._burst(job_id),
                        rate * self.burst_seconds)
            self._tokens[job_id] = min(
                self._tokens.get(job_id, 0.0) + rate * dt, burst)
            # Guaranteed-rate deficit only grows while the class is starved
            # (backlogged but unserved); served bytes pay it down in dequeue.
            if job_id in backlogged:
                self._deficit[job_id] = (
                    self._deficit.get(job_id, 0.0) + self.rate_of(job_id) * dt)
            else:
                self._deficit[job_id] = 0.0
