"""FIFO: the production-default baseline (§1, §2.2.1).

One global queue, arrival order. This is what lets "highly concurrent
and bursty I/O traffic from one application saturate the I/O system's
queue, then block the I/O of another application" — the behaviour every
experiment in the paper compares against.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from ..scheduler import Scheduler

__all__ = ["FifoScheduler"]


class FifoScheduler(Scheduler):
    """First-in-first-out over a single shared queue."""

    name = "fifo"

    def __init__(self):
        self._queue: Deque[Any] = deque()

    def enqueue(self, request: Any, now: float) -> None:
        self._queue.append(request)

    def dequeue(self, now: float) -> Optional[Any]:
        return self._queue.popleft() if self._queue else None

    def drain(self) -> list:
        """Remove and return every queued request in arrival order."""
        items = list(self._queue)
        self._queue.clear()
        return items

    @property
    def backlog(self) -> int:
        return len(self._queue)
