"""GIFT-style coupon-based throttle-and-reward scheduler (Patel et al.,
FAST '20), reconstructed inside the ThemisIO server as §5.4 describes:
"we copy the GIFT core algorithms, BSIP (Basic Synchronous I/O
Progress) and the linear programming algorithm ... and replace the I/O
resource allocation and throttling mechanisms of Linux cgroups with"
the server's request-dispatch path.

Mechanics per allocation epoch of length ``mu`` (the paper's reference
implementation uses 0.5 s):

1. **BSIP fair share** — every job active at the epoch boundary is
   budgeted an equal slice of the epoch's service capacity; a job is
   never throttled below its fair share (throttling enforces fairness
   between contenders, it does not starve).
2. **Throttle-and-reward** — capacity a job left unused last epoch was
   effectively *donated*; the donor earns coupons for it.
3. **Reward (LP)** — capacity observed spare last epoch is granted this
   epoch to jobs demanding more than fair share: coupon holders redeem
   first via a linear program, any remainder goes proportionally to
   residual demand.
4. Budgets are **hard** within the epoch, and a job arriving mid-epoch
   has no budget until the next boundary — the allocation lag ("long
   delay in I/O resource adjustment") §5.4 attributes to GIFT's mu.

The reward LP is warm-started across epochs: steady workloads present
the same (redeemers, bounds, spare) problem at consecutive boundaries,
so solutions are memoized on the exact constraint set and the solver is
skipped on a hit. HiGHS (via ``scipy.optimize.linprog``) accepts no
starting basis, so reusing the previous solution outright — rather than
seeding a new solve — is the strongest warm start available, and it is
trace-safe: identical inputs would have produced the identical optimum.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from ...errors import SchedulerError
from ..jobinfo import JobInfo
from ..queues import QueueSet
from ..scheduler import Scheduler

__all__ = ["GiftScheduler", "set_gift_quiescence_enabled",
           "gift_quiescence_enabled"]

#: Process-wide switch for skipping ``_allocate`` on provably-quiescent
#: epoch boundaries (see :meth:`GiftScheduler._skip_quiescent`).
_QUIESCENCE_ENABLED = True


def set_gift_quiescence_enabled(enabled: bool) -> None:
    """Enable/disable quiescent-epoch forecasting (module-wide)."""
    global _QUIESCENCE_ENABLED
    _QUIESCENCE_ENABLED = bool(enabled)


def gift_quiescence_enabled() -> bool:
    """Whether quiescent epoch boundaries bypass the full allocation."""
    return _QUIESCENCE_ENABLED


class GiftScheduler(Scheduler):
    """Epoch-based fair allocation with coupon reward, hard-throttled."""

    name = "gift"

    #: growth headroom on the per-epoch demand forecast.
    DEMAND_HEADROOM = 1.5
    #: a job's budget never falls below this fraction of its fair share.
    MIN_BUDGET_FRACTION = 0.5

    #: LP solutions memoized for warm start (distinct constraint sets).
    LP_MEMO_MAX = 32

    def __init__(self, capacity: float, mu: float = 0.5,
                 warm_start: bool = True):
        if capacity <= 0:
            raise SchedulerError(f"capacity must be positive: {capacity}")
        if mu <= 0:
            raise SchedulerError(f"mu must be positive: {mu}")
        self.capacity = float(capacity)   # bytes/second of the server
        self.mu = float(mu)               # allocation interval (seconds)
        self.warm_start = bool(warm_start)
        # (redeemers, bounds, spare) -> solution vector (or None on
        # solver failure). Exact-input keys keep the memo trace-safe.
        self._lp_memo: Dict[Any, Optional[Tuple[float, ...]]] = {}
        self.queues = QueueSet()
        self._active: List[JobInfo] = []
        self._epoch_end: Optional[float] = None
        self._budgets: Dict[int, float] = {}       # bytes left this epoch
        self._fair_last: Dict[int, float] = {}     # last epoch's fair shares
        self._used_epoch: Dict[int, float] = {}    # bytes served this epoch
        self._arrived_epoch: Dict[int, float] = {}  # bytes enqueued this epoch
        self._arrived_last: Dict[int, float] = {}
        self.coupons: Dict[int, float] = {}        # donated-bytes balance
        # True while _budgets/_fair_last hold the canonical quiescent
        # form (demand-free fair*MIN_BUDGET_FRACTION budgets) for the
        # current job set — the precondition for _skip_quiescent.
        self._quiescent_form = False
        self.epochs = 0
        self.quiescent_skips = 0
        self.lp_calls = 0
        self.lp_cache_hits = 0

    # ------------------------------------------------------------- interface
    def enqueue(self, request: Any, now: float) -> None:
        self.queues.push(request)
        if self._epoch_end is not None:
            self._arrived_epoch[request.job_id] = (
                self._arrived_epoch.get(request.job_id, 0.0) + request.cost)

    def on_jobs_changed(self, active_jobs: Sequence[JobInfo],
                        now: float) -> None:
        self._active = list(active_jobs)
        # A changed job set changes fair shares; the standing budgets no
        # longer match what _allocate would produce.
        self._quiescent_form = False

    def dequeue(self, now: float) -> Optional[Any]:
        self._maybe_reallocate(now)
        if not self.queues:
            return None
        best_job: Optional[int] = None
        best_budget = 0.0
        for job_id in self.queues.nonempty_jobs():
            budget = self._budgets.get(job_id, 0.0)
            if budget > 0 and (best_job is None or budget > best_budget):
                best_job, best_budget = job_id, budget
        if best_job is None:
            return None  # every backlogged job is throttled until the boundary
        request = self.queues.pop(best_job)
        self._budgets[best_job] = best_budget - request.cost
        self._used_epoch[best_job] = (
            self._used_epoch.get(best_job, 0.0) + request.cost)
        return request

    @property
    def backlog(self) -> int:
        return self.queues.total

    def next_eligible_time(self, now: float) -> float:
        """Throttled backlog becomes serviceable at the next epoch boundary."""
        if self.queues and self._epoch_end is not None:
            return self._epoch_end
        return float("inf")

    # ------------------------------------------------------------ allocation
    def _maybe_reallocate(self, now: float) -> None:
        if self._epoch_end is not None and now < self._epoch_end:
            return
        if (_QUIESCENCE_ENABLED and self._quiescent_form
                and not self._used_epoch and not self._arrived_epoch
                and not self.queues):
            self._skip_quiescent(now)
            return
        self._allocate(now)

    def _skip_quiescent(self, now: float) -> None:
        """Advance a provably-quiescent epoch boundary without
        :meth:`_allocate`.

        Preconditions (checked by the caller): the standing budgets are
        in canonical quiescent form — the last allocation saw zero
        demand, so every budget is exactly ``fair * MIN_BUDGET_FRACTION``
        with no reward extras — the job set has not changed since, and
        nothing was served or enqueued this epoch. Under those
        conditions a full ``_allocate`` would recompute byte-identical
        ``_budgets`` / ``_fair_last`` (same job set ⇒ same fair share;
        zero demand ⇒ no claimants, so the reward path and its LP memo
        are never consulted). The only state it would actually change is
        what this method replays: the epoch counter, the boundary, and
        the donors' coupon accrual — each idle job donated its entire
        fair share. Coupons accrue one boundary at a time (not
        ``k * fair`` after k skips) so float rounding matches the exact
        path bit for bit.
        """
        self.epochs += 1
        self._epoch_end = now + self.mu
        coupons = self.coupons
        for job_id, fair in self._fair_last.items():
            coupons[job_id] = coupons.get(job_id, 0.0) + fair
        self._arrived_last = {}
        self.quiescent_skips += 1

    def _allocate(self, now: float) -> None:
        self.epochs += 1
        self._epoch_end = now + self.mu
        epoch_bytes = self.capacity * self.mu

        used, self._used_epoch = self._used_epoch, {}
        arrived, self._arrived_epoch = self._arrived_epoch, {}
        self._arrived_last = arrived
        # Zero demand at this boundary (no arrivals, no backlog) means
        # every budget below comes out as fair * MIN_BUDGET_FRACTION
        # with no reward extras — the canonical quiescent form that
        # future boundaries may skip re-deriving.
        self._quiescent_form = not arrived and not self.queues

        # Settle last epoch: donors bank unused fair share; spare is what
        # the device did not serve.
        for job_id, fair in self._fair_last.items():
            donated = fair - used.get(job_id, 0.0)
            if donated > 0:
                self.coupons[job_id] = self.coupons.get(job_id, 0.0) + donated
        spare = max(0.0, epoch_bytes - sum(used.values())) \
            if self._fair_last else 0.0

        job_ids = sorted({j.job_id for j in self._active}
                         | set(self.queues.nonempty_jobs()))
        self._budgets = {}
        self._fair_last = {}
        if not job_ids:
            return

        fair = epoch_bytes / len(job_ids)
        # Demand forecast: pending bytes plus last interval's arrivals,
        # with headroom for growth. The budget tracks min(fair, demand)
        # — GIFT throttles to its (possibly wrong) estimate — floored at
        # half the fair share so estimation error cannot starve a job.
        # Mis-estimation is GIFT's documented cost: budgets lag a job's
        # real demand by O(mu) and fluctuate with the arrival process.
        demand = {
            job_id: (self.queues.queued_cost(job_id)
                     + arrived.get(job_id, 0.0)) * self.DEMAND_HEADROOM
            for job_id in job_ids
        }
        extra = self._redeem(job_ids, demand, fair, spare)
        for job_id in job_ids:
            base = max(min(fair, demand[job_id]),
                       fair * self.MIN_BUDGET_FRACTION)
            self._budgets[job_id] = base + extra.get(job_id, 0.0)
            self._fair_last[job_id] = fair

    def _redeem(self, job_ids: List[int], demand: Dict[int, float],
                fair: float, spare: float) -> Dict[int, float]:
        """Grant last epoch's spare capacity to over-demanding jobs:
        coupon redemption via LP, then proportional to residual demand."""
        headroom = {j: max(0.0, demand[j] - fair) for j in job_ids}
        claimants = [j for j in job_ids if headroom[j] > 0]
        if spare <= 0 or not claimants:
            return {}
        extra: Dict[int, float] = {}

        redeemers = [j for j in claimants if self.coupons.get(j, 0.0) > 0]
        if redeemers:
            # maximize sum(x): x_j <= min(headroom_j, coupons_j),
            # sum(x) <= spare.
            bounds = [(0.0, min(headroom[j], self.coupons[j]))
                      for j in redeemers]
            solution = self._solve_redemption(tuple(redeemers),
                                              tuple(bounds), spare)
            if solution is not None:
                for j, granted in zip(redeemers, solution):
                    if granted > 0:
                        extra[j] = float(granted)
                        self.coupons[j] -= float(granted)
                        spare -= float(granted)

        residual = {j: headroom[j] - extra.get(j, 0.0) for j in claimants}
        total_residual = sum(residual.values())
        if spare > 0 and total_residual > 0:
            scale = min(1.0, spare / total_residual)
            for j in claimants:
                extra[j] = extra.get(j, 0.0) + residual[j] * scale
        return extra

    def _solve_redemption(
            self, redeemers: Tuple[int, ...],
            bounds: Tuple[Tuple[float, float], ...],
            spare: float) -> Optional[Tuple[float, ...]]:
        """Solve the coupon-redemption LP, warm-starting from the memo
        when the exact constraint set repeats (steady workloads pose the
        same problem every epoch). Returns the grant vector, or ``None``
        when the solver failed."""
        key = (redeemers, bounds, spare)
        if self.warm_start:
            try:
                solution = self._lp_memo[key]
            except KeyError:
                pass
            else:
                self.lp_cache_hits += 1
                return solution
        result = linprog(
            c=-np.ones(len(redeemers)),
            A_ub=np.ones((1, len(redeemers))),
            b_ub=np.array([spare]),
            bounds=bounds,
            method="highs",
        )
        self.lp_calls += 1
        solution = tuple(float(x) for x in result.x) \
            if result.success else None
        if self.warm_start:
            if len(self._lp_memo) >= self.LP_MEMO_MAX:
                self._lp_memo.clear()
            self._lp_memo[key] = solution
        return solution
