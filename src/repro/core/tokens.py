"""Statistical token assignment: shares as segments of [0, 1] (§3).

"We divide the range [0, 1] into several segments, with the segment
length proportional to the token counts. Then an I/O worker draws a
random number within [0, 1]. The I/O request of a job is processed if
the random number falls in its corresponding segment."

:class:`TokenAssignment` is that segmentation: built from a share map,
it answers ``draw(u)`` in O(log n) via a cumulative-boundary search, and
``restrict(eligible)`` renormalises over a subset — the mechanism behind
*opportunity fairness* (unused cycles flow to jobs that can use them).

``draw`` is the server's per-request hot path. Below
:data:`SMALL_N_THRESHOLD` jobs — which covers every population the
paper actually runs — a ``np.searchsorted`` call is dominated by numpy's
per-call dispatch overhead, so the search runs as pure-Python
:func:`bisect.bisect_right` over a prebuilt cumulative list instead.
The boundaries are still computed with numpy (identical floating-point
results either way, since ``tolist()`` round-trips float64 exactly), so
both search paths return bit-identical choices.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import SchedulerError

__all__ = ["TokenAssignment", "SMALL_N_THRESHOLD"]

#: Population size below which ``draw`` uses pure-Python bisect; numpy's
#: call overhead only amortises above roughly this many jobs.
SMALL_N_THRESHOLD = 128


def _pairwise_sum(values: List[float]) -> float:
    """Sum *values* in the exact order ``np.ndarray.sum`` uses.

    numpy's pairwise summation processes blocks of eight with eight
    partial accumulators, then combines them as ``((r0+r1)+(r2+r3)) +
    ((r4+r5)+(r6+r7))``; below eight elements it is a plain sequential
    sum. Replicating that order keeps the pure-Python constructor
    bit-identical to the numpy one. Only valid for ``len(values) <=
    128`` (one numpy block) — larger inputs take the numpy path anyway.
    """
    n = len(values)
    if n < 8:
        total = 0.0
        for v in values:
            total += v  # lint: disable=PERF102 -- replicates numpy's exact order
        return total
    r0, r1, r2, r3, r4, r5, r6, r7 = values[:8]
    i = 8
    limit = n - (n % 8)
    while i < limit:
        r0 += values[i]
        r1 += values[i + 1]
        r2 += values[i + 2]
        r3 += values[i + 3]
        r4 += values[i + 4]
        r5 += values[i + 5]
        r6 += values[i + 6]
        r7 += values[i + 7]
        i += 8
    total = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
    while i < n:
        total += values[i]  # lint: disable=PERF102 -- replicates numpy's exact order
        i += 1
    return total


class TokenAssignment:
    """An immutable partition of [0, 1] into per-job segments."""

    __slots__ = ("job_ids", "_shares_arr", "_cum", "_cum_list",
                 "_shares_list", "_small", "_index", "_source_items")

    def __init__(self, shares: Dict[int, float]):
        if not shares:
            raise SchedulerError("empty share map")
        items = sorted(shares.items())
        values = np.array([s for _, s in items], dtype=float)
        if np.any(values < 0):
            raise SchedulerError(f"negative share in {shares}")
        total = values.sum()
        if total <= 0:
            raise SchedulerError(f"shares sum to zero: {shares}")
        self.job_ids: List[int] = [job_id for job_id, _ in items]
        self._shares_arr: Optional[np.ndarray] = values / total
        self._cum = np.cumsum(self._shares_arr)
        self._cum[-1] = 1.0  # guard against floating-point shortfall
        self._cum_list: List[float] = self._cum.tolist()
        self._shares_list: List[float] = self._shares_arr.tolist()
        self._small = len(self.job_ids) < SMALL_N_THRESHOLD
        self._index = {job_id: i for i, job_id in enumerate(self.job_ids)}
        # Raw constructor input, kept so the scheduler can recognise a
        # reinstall of identical shares (see :meth:`same_source`).
        self._source_items: Optional[Tuple[Tuple[int, float], ...]] = \
            tuple(items)

    @property
    def shares(self) -> np.ndarray:
        """Normalised per-job shares, ordered like :attr:`job_ids`."""
        if self._shares_arr is None:
            self._shares_arr = np.asarray(self._shares_list)
        return self._shares_arr

    @classmethod
    def _from_backlog(cls, job_ids: List[int],
                      values: List[float]) -> "TokenAssignment":
        """Internal fast constructor for the scheduler's restricted draws.

        *job_ids* must be sorted ascending and *values* positive — the
        scheduler guarantees both, so validation and re-sorting are
        skipped. Below :data:`SMALL_N_THRESHOLD` the normalisation runs
        in pure Python with :func:`_pairwise_sum` so the resulting
        segment boundaries are bit-identical to ``TokenAssignment(dict)``
        without any numpy dispatch on the per-dequeue cache-miss path.
        """
        self = object.__new__(cls)
        self.job_ids = job_ids
        n = len(job_ids)
        if n < SMALL_N_THRESHOLD:
            total = _pairwise_sum(values)
            shares_list = [v / total for v in values]
            cum_list = []
            acc = 0.0
            for s in shares_list:
                acc += s  # lint: disable=PERF102 -- cumsum boundaries, bit-identical to numpy
                cum_list.append(acc)
            cum_list[-1] = 1.0  # guard against floating-point shortfall
            self._shares_arr = None  # materialised lazily by .shares
            self._cum = None  # large-n search path unused below threshold
            self._cum_list = cum_list
            self._shares_list = shares_list
            self._small = True
        else:
            arr = np.array(values, dtype=float)
            self._shares_arr = arr / arr.sum()
            self._cum = np.cumsum(self._shares_arr)
            self._cum[-1] = 1.0
            self._cum_list = self._cum.tolist()
            self._shares_list = self._shares_arr.tolist()
            self._small = False
        self._index = {job_id: i for i, job_id in enumerate(job_ids)}
        self._source_items = None  # restricted draws are never reinstalled
        return self

    def same_source(self, shares: Dict[int, float]) -> bool:
        """True if constructing from *shares* would reproduce this object
        bit for bit (i.e. the raw constructor input is identical).

        Lets the scheduler skip a reinstall — and keep its warm draw
        caches — when the controller re-derives an unchanged share map.
        """
        source = self._source_items
        if source is None or len(shares) != len(source):
            return False
        return sorted(shares.items()) == list(source)

    # ----------------------------------------------------------------- draws
    def draw(self, u: float) -> int:
        """The job whose segment contains *u* (u in [0, 1))."""
        if not 0.0 <= u < 1.0:
            raise SchedulerError(f"draw needs u in [0, 1): {u}")
        if self._small:
            idx = bisect_right(self._cum_list, u)
        else:
            idx = int(np.searchsorted(self._cum, u, side="right"))
        return self.job_ids[min(idx, len(self.job_ids) - 1)]

    def segment(self, job_id: int) -> Tuple[float, float]:
        """The ``[lo, hi)`` segment assigned to *job_id*."""
        i = self._lookup(job_id)
        lo = self._cum_list[i - 1] if i > 0 else 0.0
        return lo, self._cum_list[i]

    def share(self, job_id: int) -> float:
        """The normalised share of *job_id*."""
        return self._shares_list[self._lookup(job_id)]

    def _lookup(self, job_id: int) -> int:
        try:
            return self._index[job_id]
        except KeyError:
            raise SchedulerError(f"job {job_id} not in assignment") from None

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._index

    def __len__(self) -> int:
        return len(self.job_ids)

    # --------------------------------------------------------- restriction
    def restrict(self, eligible: Iterable[int]) -> Optional["TokenAssignment"]:
        """Renormalise over the *eligible* subset (opportunity fairness).

        Jobs outside this assignment are ignored; returns None when no
        eligible job remains. The relative proportions among eligible
        jobs are preserved, so a backlogged job never receives less than
        its policy share of the server.
        """
        index, shares = self._index, self._shares_list
        subset = {}
        for job_id in eligible:
            i = index.get(job_id)
            if i is not None and shares[i] > 0:
                subset[job_id] = shares[i]
        if not subset:
            return None
        return TokenAssignment(subset)

    def as_dict(self) -> Dict[int, float]:
        """The assignment as a plain ``{job_id: share}`` map."""
        return {job_id: float(s) for job_id, s in zip(self.job_ids, self.shares)}

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(f"{j}:{s:.3f}" for j, s in self.as_dict().items())
        return f"<TokenAssignment {parts}>"
