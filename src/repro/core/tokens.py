"""Statistical token assignment: shares as segments of [0, 1] (§3).

"We divide the range [0, 1] into several segments, with the segment
length proportional to the token counts. Then an I/O worker draws a
random number within [0, 1]. The I/O request of a job is processed if
the random number falls in its corresponding segment."

:class:`TokenAssignment` is that segmentation: built from a share map,
it answers ``draw(u)`` in O(log n) via a cumulative-boundary search, and
``restrict(eligible)`` renormalises over a subset — the mechanism behind
*opportunity fairness* (unused cycles flow to jobs that can use them).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import SchedulerError

__all__ = ["TokenAssignment"]


class TokenAssignment:
    """An immutable partition of [0, 1] into per-job segments."""

    def __init__(self, shares: Dict[int, float]):
        if not shares:
            raise SchedulerError("empty share map")
        items = sorted(shares.items())
        values = np.array([s for _, s in items], dtype=float)
        if np.any(values < 0):
            raise SchedulerError(f"negative share in {shares}")
        total = values.sum()
        if total <= 0:
            raise SchedulerError(f"shares sum to zero: {shares}")
        self.job_ids: List[int] = [job_id for job_id, _ in items]
        self.shares = values / total
        self._cum = np.cumsum(self.shares)
        self._cum[-1] = 1.0  # guard against floating-point shortfall
        self._index = {job_id: i for i, job_id in enumerate(self.job_ids)}

    # ----------------------------------------------------------------- draws
    def draw(self, u: float) -> int:
        """The job whose segment contains *u* (u in [0, 1))."""
        if not 0.0 <= u < 1.0:
            raise SchedulerError(f"draw needs u in [0, 1): {u}")
        idx = int(np.searchsorted(self._cum, u, side="right"))
        return self.job_ids[min(idx, len(self.job_ids) - 1)]

    def segment(self, job_id: int) -> Tuple[float, float]:
        """The ``[lo, hi)`` segment assigned to *job_id*."""
        i = self._lookup(job_id)
        lo = float(self._cum[i - 1]) if i > 0 else 0.0
        return lo, float(self._cum[i])

    def share(self, job_id: int) -> float:
        """The normalised share of *job_id*."""
        return float(self.shares[self._lookup(job_id)])

    def _lookup(self, job_id: int) -> int:
        try:
            return self._index[job_id]
        except KeyError:
            raise SchedulerError(f"job {job_id} not in assignment") from None

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._index

    def __len__(self) -> int:
        return len(self.job_ids)

    # --------------------------------------------------------- restriction
    def restrict(self, eligible: Iterable[int]) -> Optional["TokenAssignment"]:
        """Renormalise over the *eligible* subset (opportunity fairness).

        Jobs outside this assignment are ignored; returns None when no
        eligible job remains. The relative proportions among eligible
        jobs are preserved, so a backlogged job never receives less than
        its policy share of the server.
        """
        subset = {job_id: self.share(job_id)
                  for job_id in eligible if job_id in self._index}
        subset = {j: s for j, s in subset.items() if s > 0}
        if not subset:
            return None
        return TokenAssignment(subset)

    def as_dict(self) -> Dict[int, float]:
        """The assignment as a plain ``{job_id: share}`` map."""
        return {job_id: float(s) for job_id, s in zip(self.job_ids, self.shares)}

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(f"{j}:{s:.3f}" for j, s in self.as_dict().items())
        return f"<TokenAssignment {parts}>"
