"""λ-delayed global fairness helpers (§3.1).

With files on disjoint servers, each server initially has only local job
information and its token assignment is globally unfair (Fig. 5).
Controllers "perform an all-gather on the job status table every λ time
interval", bounding how long a globally unfair state can last.

The messaging lives in the burst-buffer controller
(:mod:`repro.bb.controller`); this module holds the pure pieces: the
all-gather merge over snapshots and the unfairness metric used by the
λ-sweep experiment (Fig. 14).
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

import numpy as np

from .jobinfo import JobStatusTable

__all__ = ["all_gather_merge", "total_variation", "global_share_error",
           "placement_shares"]


def all_gather_merge(tables: Sequence[JobStatusTable]) -> bool:
    """Synchronise *tables* as an all-gather: every table absorbs every
    other table's snapshot (newest heartbeat wins). Returns True if any
    table's active set changed.

    Snapshots are taken before merging, so the result is order-independent
    — exactly what a collective exchange gives each controller.
    """
    snapshots = [table.snapshot() for table in tables]
    changed = False
    for i, table in enumerate(tables):
        for k, snapshot in enumerate(snapshots):
            if i != k:
                changed |= table.merge(snapshot)
    return changed


def placement_shares(presence: Dict[str, Set[int]],
                     global_shares: Dict[int, float],
                     iterations: int = 100,
                     tol: float = 1e-9) -> Dict[str, Dict[int, float]]:
    """Per-server token assignments honouring global shares under
    placement constraints (the Fig. 5 adjustment).

    A job can only consume cycles on servers that host its files. Given
    which jobs each server hosts (*presence*) and the policy's global
    shares, find per-server segment maps such that each server's
    segments sum to 1 and each job's total across servers matches its
    global entitlement (``share x n_servers`` server-units). This is a
    transportation polytope projection, solved by iterative proportional
    fitting (RAS): alternately rescale rows to server capacity and
    columns to job entitlement.

    For Fig. 5's example — job 1 (16 nodes) on both servers, jobs 2 and
    3 (8 nodes each) on one server each, size-fair — this yields exactly
    the paper's adjustment: job 1's token drops from 0.66 to 0.5 on both
    servers. Infeasible entitlements (a job entitled to more capacity
    than its servers have) converge to the closest feasible point.
    """
    servers = sorted(presence)
    jobs = sorted(global_shares)
    if not servers or not jobs:
        return {s: {} for s in servers}
    index = {j: k for k, j in enumerate(jobs)}
    A = np.zeros((len(servers), len(jobs)))
    for row, server in enumerate(servers):
        for job_id in presence[server]:
            col = index.get(job_id)
            if col is not None and global_shares[job_id] > 0:
                A[row, col] = global_shares[job_id]
    targets = np.array([global_shares[j] for j in jobs]) * len(servers)
    for _ in range(iterations):
        row_sums = A.sum(axis=1, keepdims=True)
        A = np.divide(A, row_sums, out=A, where=row_sums > 0)
        col_sums = A.sum(axis=0)
        scale = np.divide(targets, col_sums,
                          out=np.ones_like(targets), where=col_sums > 0)
        A = A * scale
        if (np.allclose(A.sum(axis=1)[A.sum(axis=1) > 0], 1.0, atol=tol)
                and np.allclose(A.sum(axis=0)[col_sums > 0],
                                targets[col_sums > 0], atol=tol)):
            break
    # Leave each server with a proper distribution.
    row_sums = A.sum(axis=1, keepdims=True)
    A = np.divide(A, row_sums, out=A, where=row_sums > 0)
    return {
        server: {jobs[c]: float(A[r, c]) for c in range(len(jobs))
                 if A[r, c] > 0}
        for r, server in enumerate(servers)
    }


def total_variation(a: Dict[int, float], b: Dict[int, float]) -> float:
    """Total-variation distance between two share maps (0 = identical,
    1 = disjoint). Missing keys count as zero share."""
    keys = sorted(set(a) | set(b))
    return 0.5 * sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys)


def global_share_error(local_shares: Sequence[Dict[int, float]],
                       global_shares: Dict[int, float]) -> float:
    """Worst-server deviation from the globally fair assignment.

    The Fig. 14 experiment tracks how quickly this drops to ~0 after
    ThemisIO starts in an unfair state; it cannot exceed 1.
    """
    if not local_shares:
        return 0.0
    return max(total_variation(local, global_shares) for local in local_shares)
