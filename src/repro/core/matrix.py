"""Transition matrices and the Eq. 1 chain product (§3).

The statistical token assignment for a composite policy is evaluated as

    prod_{i=0}^{N-1} T^i        (Eq. 1)

where ``T^i`` is the transition matrix of sharing-entity level *i*: each
row is a token queue (an entity scope of level *i-1*), each column an
entity of level *i*, and entry ``T[j, k]`` is entity *k*'s fair share
**within its local scope**. Consequently each row sums to one and each
column has exactly one non-zero entry (an entity belongs to exactly one
parent scope). The product collapses the hierarchy into a single row
vector of per-job shares of [0, 1] — the statistical tokens of Fig. 3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from ..errors import PolicyError
from .jobinfo import JobInfo

if TYPE_CHECKING:  # pragma: no cover
    from .policy import Level

__all__ = ["build_transition_matrices", "chain_product", "chain_shares",
           "validate_transition_matrix"]


def _entity_key(level: "Level", job: JobInfo):
    """The entity a job belongs to at a non-terminal *level*."""
    if level.value == "group":
        return job.group
    if level.value == "user":
        return job.user
    raise PolicyError(f"level {level.value!r} has no entity key")


def _terminal_weight(level: "Level", job: JobInfo) -> float:
    """A job's weight within its scope at the terminal *level*."""
    if level.value == "job":
        return 1.0
    if level.value == "size":
        return float(job.size)
    if level.value == "priority":
        return float(job.priority)
    raise PolicyError(f"level {level.value!r} is not terminal")


def build_transition_matrices(
        levels: Sequence["Level"],
        jobs: Sequence[JobInfo]) -> Tuple[List[np.ndarray], List[int]]:
    """Build the ``T^i`` chain for *levels* over *jobs*.

    Returns ``(matrices, job_ids)`` where the final matrix's columns are
    ordered by ``job_ids`` (ascending). Jobs must have distinct ids.
    """
    jobs = sorted(jobs, key=lambda j: j.job_id)
    job_ids = [j.job_id for j in jobs]
    if len(set(job_ids)) != len(job_ids):
        raise PolicyError(f"duplicate job ids: {job_ids}")
    if not jobs:
        return [], []

    *heads, tail = levels

    # Scopes: a job's scope key after consuming the first i levels.
    def scope_key(job: JobInfo, depth: int) -> tuple:
        return tuple(_entity_key(levels[i], job) for i in range(depth))

    matrices: List[np.ndarray] = []
    # Entities at each level, in deterministic (sorted) order; the
    # scope -> row map makes each lookup O(1) instead of a list scan.
    parent_scopes: List[tuple] = [()]  # the virtual root
    parent_rows: Dict[tuple, int] = {(): 0}
    for depth, level in enumerate(heads):
        child_scopes = sorted({scope_key(j, depth + 1) for j in jobs})
        T = np.zeros((len(parent_scopes), len(child_scopes)))
        for col, child in enumerate(child_scopes):
            row = parent_rows[child[:depth]]
            T[row, col] = 1.0  # placeholder; normalised below
        # Even split within each parent scope (group-/user-fair tiers).
        row_counts = T.sum(axis=1, keepdims=True)
        T = np.divide(T, row_counts, out=np.zeros_like(T),
                      where=row_counts > 0)
        matrices.append(T)
        parent_scopes = child_scopes
        parent_rows = {scope: i for i, scope in enumerate(child_scopes)}

    # Terminal level: columns are jobs, weighted by the tail rule.
    depth = len(heads)
    T = np.zeros((len(parent_scopes), len(jobs)))
    for col, job in enumerate(jobs):
        row = parent_rows[scope_key(job, depth)]
        T[row, col] = _terminal_weight(tail, job)
    row_sums = T.sum(axis=1, keepdims=True)
    T = np.divide(T, row_sums, out=np.zeros_like(T), where=row_sums > 0)
    matrices.append(T)
    return matrices, job_ids


def validate_transition_matrix(T: np.ndarray, atol: float = 1e-9) -> None:
    """Check the §3 structural constraints; raise PolicyError if violated."""
    if T.ndim != 2:
        raise PolicyError(f"transition matrix must be 2-D, got shape {T.shape}")
    row_sums = T.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=atol):
        raise PolicyError(f"rows must sum to 1, got {row_sums}")
    if np.any(T < -atol):
        raise PolicyError("negative entries in transition matrix")
    nonzero_per_col = (T > atol).sum(axis=0)
    if np.any(nonzero_per_col != 1):
        raise PolicyError(
            f"each column must have exactly one non-zero entry, got "
            f"{nonzero_per_col}")


def chain_product(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate Eq. 1: the ordered product of the transition matrices."""
    if not matrices:
        return np.zeros((1, 0))
    out = matrices[0]
    for T in matrices[1:]:
        out = out @ T
    return out


def chain_shares(levels: Sequence["Level"],
                 jobs: Sequence[JobInfo]) -> Dict[int, float]:
    """Per-job shares of [0, 1] for *levels* over *jobs* (sums to 1)."""
    if not jobs:
        return {}
    matrices, job_ids = build_transition_matrices(levels, jobs)
    shares = chain_product(matrices)
    flat = np.asarray(shares).reshape(-1)
    return {job_id: float(s) for job_id, s in zip(job_ids, flat)}
