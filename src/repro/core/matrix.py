"""Transition matrices and the Eq. 1 chain product (§3).

The statistical token assignment for a composite policy is evaluated as

    prod_{i=0}^{N-1} T^i        (Eq. 1)

where ``T^i`` is the transition matrix of sharing-entity level *i*: each
row is a token queue (an entity scope of level *i-1*), each column an
entity of level *i*, and entry ``T[j, k]`` is entity *k*'s fair share
**within its local scope**. Consequently each row sums to one and each
column has exactly one non-zero entry (an entity belongs to exactly one
parent scope). The product collapses the hierarchy into a single row
vector of per-job shares of [0, 1] — the statistical tokens of Fig. 3.

Incremental evaluation: the chain is on every arbitration hot path (the
controller re-derives shares whenever the job table changes), yet most
changes touch a single level — a job joining rarely introduces a new
group or user. :class:`CompositeShareCache` keys each level's matrix on
its scope partition (plus, for the terminal level, the per-job weights),
rebuilds only dirty levels, and re-multiplies the chain from the first
dirty level while reusing the prefix product. Every matrix and every
product is built by the same code as the from-scratch path, in the same
association order, so cached shares are **bit-identical** to
:func:`chain_shares`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PolicyError
from .jobinfo import JobInfo

if TYPE_CHECKING:  # pragma: no cover
    from .policy import Level

__all__ = ["build_transition_matrices", "chain_product", "chain_shares",
           "validate_transition_matrix", "CompositeShareCache"]


def _entity_key(level: "Level", job: JobInfo):
    """The entity a job belongs to at a non-terminal *level*."""
    if level.value == "group":
        return job.group
    if level.value == "user":
        return job.user
    raise PolicyError(f"level {level.value!r} has no entity key")


def _terminal_weight(level: "Level", job: JobInfo) -> float:
    """A job's weight within its scope at the terminal *level*."""
    if level.value == "job":
        return 1.0
    if level.value == "size":
        return float(job.size)
    if level.value == "priority":
        return float(job.priority)
    raise PolicyError(f"level {level.value!r} is not terminal")


# ------------------------------------------------------------ level builders
# Shared by the from-scratch chain and the incremental cache: both must
# run exactly this code so their floating-point results are identical.

def _head_matrix(parent_scopes: Sequence[tuple],
                 parent_rows: Dict[tuple, int],
                 child_scopes: Sequence[tuple],
                 depth: int) -> np.ndarray:
    """One non-terminal level: even split within each parent scope."""
    T = np.zeros((len(parent_scopes), len(child_scopes)))
    for col, child in enumerate(child_scopes):
        T[parent_rows[child[:depth]], col] = 1.0  # placeholder; normalised
    row_counts = T.sum(axis=1, keepdims=True)
    return np.divide(T, row_counts, out=np.zeros_like(T),
                     where=row_counts > 0)


def _terminal_matrix(parent_scopes: Sequence[tuple],
                     parent_rows: Dict[tuple, int],
                     job_scopes: Sequence[tuple],
                     weights: Sequence[float]) -> np.ndarray:
    """The terminal level: columns are jobs, weighted by the tail rule."""
    T = np.zeros((len(parent_scopes), len(job_scopes)))
    for col, scope in enumerate(job_scopes):
        T[parent_rows[scope], col] = weights[col]
    row_sums = T.sum(axis=1, keepdims=True)
    return np.divide(T, row_sums, out=np.zeros_like(T), where=row_sums > 0)


def _scope_chain(levels: Sequence["Level"],
                 jobs: Sequence[JobInfo]) -> List[List[tuple]]:
    """Per-depth scope key of each (already sorted) job.

    ``chain[d][i]`` is job *i*'s scope after consuming the first *d*
    levels; depth 0 is the virtual root ``()``.
    """
    per_job: List[tuple] = [()] * len(jobs)
    chain = [per_job]
    for level in levels[:-1]:
        per_job = [scope + (_entity_key(level, job),)
                   for scope, job in zip(per_job, jobs)]
        chain.append(per_job)
    return chain


def build_transition_matrices(
        levels: Sequence["Level"],
        jobs: Sequence[JobInfo]) -> Tuple[List[np.ndarray], List[int]]:
    """Build the ``T^i`` chain for *levels* over *jobs*.

    Returns ``(matrices, job_ids)`` where the final matrix's columns are
    ordered by ``job_ids`` (ascending). Jobs must have distinct ids.
    """
    jobs = sorted(jobs, key=lambda j: j.job_id)
    job_ids = [j.job_id for j in jobs]
    if len(set(job_ids)) != len(job_ids):
        raise PolicyError(f"duplicate job ids: {job_ids}")
    if not jobs:
        return [], []

    tail = levels[-1]
    scope_chain = _scope_chain(levels, jobs)
    matrices: List[np.ndarray] = []
    parent_scopes: List[tuple] = [()]  # the virtual root
    parent_rows: Dict[tuple, int] = {(): 0}
    for depth in range(len(levels) - 1):
        child_scopes = sorted(set(scope_chain[depth + 1]))
        matrices.append(_head_matrix(parent_scopes, parent_rows,
                                     child_scopes, depth))
        parent_scopes = child_scopes
        parent_rows = {scope: i for i, scope in enumerate(child_scopes)}

    weights = [_terminal_weight(tail, job) for job in jobs]
    matrices.append(_terminal_matrix(parent_scopes, parent_rows,
                                     scope_chain[-1], weights))
    return matrices, job_ids


def validate_transition_matrix(T: np.ndarray, atol: float = 1e-9) -> None:
    """Check the §3 structural constraints; raise PolicyError if violated."""
    if T.ndim != 2:
        raise PolicyError(f"transition matrix must be 2-D, got shape {T.shape}")
    row_sums = T.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=atol):
        raise PolicyError(f"rows must sum to 1, got {row_sums}")
    if np.any(T < -atol):
        raise PolicyError("negative entries in transition matrix")
    nonzero_per_col = (T > atol).sum(axis=0)
    if np.any(nonzero_per_col != 1):
        raise PolicyError(
            f"each column must have exactly one non-zero entry, got "
            f"{nonzero_per_col}")


def chain_product(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate Eq. 1: the ordered product of the transition matrices."""
    if not matrices:
        return np.zeros((1, 0))
    out = matrices[0]
    for T in matrices[1:]:
        out = out @ T
    return out


def chain_shares(levels: Sequence["Level"],
                 jobs: Sequence[JobInfo]) -> Dict[int, float]:
    """Per-job shares of [0, 1] for *levels* over *jobs* (sums to 1)."""
    if not jobs:
        return {}
    matrices, job_ids = build_transition_matrices(levels, jobs)
    shares = chain_product(matrices)
    flat = np.asarray(shares).reshape(-1)
    return {job_id: float(s) for job_id, s in zip(job_ids, flat)}


class CompositeShareCache:
    """Incremental Eq. 1 evaluator for one fixed level chain.

    Per-level matrices are keyed on a *signature* — for a non-terminal
    level the (parent scopes, child scopes) partition pair, for the
    terminal level the parent partition plus each job's scope and
    weight. On evaluation, only levels whose signature changed are
    rebuilt, and the prefix product ``P_i = T^0 @ ... @ T^i`` is
    re-multiplied from the first dirty level onward; clean prefixes are
    reused as-is. An exact-input memo answers the common case (the
    controller re-deriving shares for an unchanged job table) with a
    dict copy.

    The matrices and products come from the same builders, in the same
    association order, as :func:`chain_shares`, so results are
    bit-identical to a from-scratch rebuild — the property the
    seed-equivalence suite asserts.

    :meth:`invalidate` discards cached levels explicitly, bumping
    :attr:`version` so downstream caches keyed on it (e.g. the
    scheduler's assignment-version draw cache) can compose with this
    one.
    """

    def __init__(self, levels: Sequence["Level"]):
        self.levels = tuple(levels)
        if not self.levels:
            raise PolicyError("share cache needs at least one level")
        #: bumped on every :meth:`invalidate` call.
        self.version = 0
        self.hits = 0              # exact-input memo hits
        self.evaluations = 0       # misses that ran the chain
        self.levels_rebuilt = 0
        self.levels_reused = 0
        n = len(self.levels)
        self._sigs: List[Optional[tuple]] = [None] * n
        self._matrices: List[Optional[np.ndarray]] = [None] * n
        self._prefix: List[Optional[np.ndarray]] = [None] * n
        self._jobs_key: Optional[tuple] = None
        self._shares: Dict[int, float] = {}

    def invalidate(self, level: Optional[int] = None) -> None:
        """Dirty one level index (or every level with ``None``)."""
        n = len(self.levels)
        if level is None:
            self._sigs = [None] * n
        else:
            if not 0 <= level < n:
                raise PolicyError(
                    f"level index {level} outside chain of depth {n}")
            self._sigs[level] = None
        self._jobs_key = None
        self.version += 1

    def shares(self, jobs: Sequence[JobInfo]) -> Dict[int, float]:
        """Per-job shares, bit-identical to ``chain_shares(levels, jobs)``."""
        jobs = sorted(jobs, key=lambda j: j.job_id)
        key = tuple(jobs)
        if key == self._jobs_key:
            self.hits += 1
            return dict(self._shares)
        job_ids = [j.job_id for j in jobs]
        if len(set(job_ids)) != len(job_ids):
            raise PolicyError(f"duplicate job ids: {job_ids}")
        if not jobs:
            self._jobs_key = key
            self._shares = {}
            return {}
        self.evaluations += 1

        levels = self.levels
        n = len(levels)
        scope_chain = _scope_chain(levels, jobs)
        # Distinct scopes at each depth, sorted (matrix row/col order).
        scopes: List[List[tuple]] = [[()]]
        for depth in range(1, n):
            scopes.append(sorted(set(scope_chain[depth])))

        weights = [_terminal_weight(levels[-1], job) for job in jobs]
        sigs: List[tuple] = []
        for depth in range(n - 1):
            sigs.append((tuple(scopes[depth]), tuple(scopes[depth + 1])))
        sigs.append((tuple(scopes[n - 1]), tuple(scope_chain[-1]),
                     tuple(weights)))

        first_dirty = None
        for i in range(n):
            if sigs[i] != self._sigs[i]:
                if first_dirty is None:
                    first_dirty = i
                parent_scopes = scopes[i]
                parent_rows = {s: r for r, s in enumerate(parent_scopes)}
                if i < n - 1:
                    self._matrices[i] = _head_matrix(
                        parent_scopes, parent_rows, scopes[i + 1], i)
                else:
                    self._matrices[i] = _terminal_matrix(
                        parent_scopes, parent_rows, scope_chain[-1], weights)
                self._sigs[i] = sigs[i]
                self.levels_rebuilt += 1
            else:
                self.levels_reused += 1

        if first_dirty is not None:
            # Re-multiply from the first dirty level, reusing the clean
            # prefix; association order matches chain_product's left fold.
            for i in range(first_dirty, n):
                self._prefix[i] = (self._matrices[i] if i == 0
                                   else self._prefix[i - 1] @ self._matrices[i])

        flat = np.asarray(self._prefix[n - 1]).reshape(-1)
        self._shares = {job_id: float(s)
                        for job_id, s in zip(job_ids, flat)}
        self._jobs_key = key
        return dict(self._shares)
