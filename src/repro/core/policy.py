"""Sharing-policy language: primitives and composites (§2.2.2, §3).

A policy is a chain of *levels*. Non-terminal levels partition I/O
cycles evenly across sharing entities (groups or users); the terminal
level distributes each innermost scope's cycles over its jobs — evenly
(``job``), in proportion to node count (``size``), or in proportion to
priority (``priority``).

System administrators configure ThemisIO "with a single parameter"; the
parser accepts the paper's spellings::

    job-fair                      -> (JOB,)
    size-fair                     -> (SIZE,)
    user-fair                     -> (USER, JOB)
    priority-fair                 -> (PRIORITY,)
    user-then-job-fair            -> (USER, JOB)
    user-then-size-fair           -> (USER, SIZE)
    group-then-user-fair          -> (GROUP, USER, JOB)
    group-user-then-size-fair     -> (GROUP, USER, SIZE)
    group-user-size-fair          -> (GROUP, USER, SIZE)

(``-then-`` and ``-`` separators are interchangeable; a trailing group/
user level gets an implicit even ``job`` distributor, which is what
Figure 8(c)'s user-fair experiment shows.)

``Policy.shares(jobs)`` evaluates the statistical token assignment via
the transition-matrix chain product of Eq. 1 (see
:mod:`repro.core.matrix`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple

from ..errors import PolicyError
from .jobinfo import JobInfo
from .matrix import CompositeShareCache, chain_shares

__all__ = ["Level", "Policy", "FIFO_POLICY_NAME",
           "set_share_cache_enabled", "share_cache_enabled"]

#: Process-wide switch for the incremental Eq. 1 cache. Cached and
#: uncached evaluation are bit-identical (the seed-equivalence suite
#: replays whole scenarios both ways); the toggle exists for that test
#: and for measuring the cache's effect.
_SHARE_CACHE_ENABLED = True


def set_share_cache_enabled(enabled: bool) -> None:
    """Enable/disable the per-policy :class:`CompositeShareCache`."""
    global _SHARE_CACHE_ENABLED
    _SHARE_CACHE_ENABLED = bool(enabled)


def share_cache_enabled() -> bool:
    """Whether ``Policy.shares`` uses the incremental cache."""
    return _SHARE_CACHE_ENABLED

#: Scheduler-selection sentinel: "fifo" is not a fairness policy but the
#: baseline queueing discipline; harness configs accept it alongside
#: policy strings.
FIFO_POLICY_NAME = "fifo"


class Level(Enum):
    """One tier of a composite sharing policy."""

    GROUP = "group"
    USER = "user"
    JOB = "job"
    SIZE = "size"
    PRIORITY = "priority"

    @property
    def terminal(self) -> bool:
        """Terminal levels distribute over jobs and must come last."""
        return self in (Level.JOB, Level.SIZE, Level.PRIORITY)


_RANK = {Level.GROUP: 0, Level.USER: 1}


@dataclass(frozen=True)
class Policy:
    """An immutable, validated sharing policy."""

    levels: Tuple[Level, ...]

    def __post_init__(self):
        if not self.levels:
            raise PolicyError("policy needs at least one level")
        *heads, tail = self.levels
        if not tail.terminal:
            raise PolicyError(
                f"last level must be job/size/priority, got {tail.value!r}")
        for lvl in heads:
            if lvl.terminal:
                raise PolicyError(
                    f"level {lvl.value!r} may only appear last")
        ranks = [_RANK[lvl] for lvl in heads]
        if ranks != sorted(ranks) or len(set(ranks)) != len(ranks):
            raise PolicyError(
                "non-terminal levels must be group before user, each at most once")

    # --------------------------------------------------------------- parsing
    @classmethod
    def parse(cls, spec: str) -> "Policy":
        """Parse a policy string such as ``"group-user-then-size-fair"``."""
        if not isinstance(spec, str) or not spec.strip():
            raise PolicyError(f"empty policy spec: {spec!r}")
        text = spec.strip().lower()
        if text == FIFO_POLICY_NAME:
            raise PolicyError(
                "'fifo' is the baseline discipline, not a fairness policy; "
                "select it at the scheduler level")
        if text.endswith("-fair"):
            text = text[: -len("-fair")]
        elif text.endswith("fair"):
            text = text[: -len("fair")].rstrip("-")
        tokens = [t for t in text.replace("-then-", "-").split("-") if t]
        if not tokens:
            raise PolicyError(f"no levels in policy spec: {spec!r}")
        levels: List[Level] = []
        for token in tokens:
            try:
                levels.append(Level(token))
            except ValueError:
                raise PolicyError(
                    f"unknown sharing entity {token!r} in {spec!r}") from None
        if not levels[-1].terminal:
            levels.append(Level.JOB)  # implicit even split within the scope
        return cls(tuple(levels))

    @property
    def name(self) -> str:
        return "-then-".join(lvl.value for lvl in self.levels) + "-fair"

    @property
    def depth(self) -> int:
        """N in Eq. 1: the number of sharing-entity levels."""
        return len(self.levels)

    # ------------------------------------------------------------ evaluation
    @property
    def share_cache(self) -> CompositeShareCache:
        """This policy's incremental Eq. 1 evaluator (created lazily).

        The cache is per-``Policy`` instance, attached outside the
        frozen dataclass fields so it never participates in equality or
        hashing.
        """
        cache = self.__dict__.get("_share_cache")
        if cache is None:
            cache = CompositeShareCache(self.levels)
            object.__setattr__(self, "_share_cache", cache)
        return cache

    def shares(self, jobs: Sequence[JobInfo]) -> Dict[int, float]:
        """The statistical token assignment: job id -> share of [0, 1].

        Shares sum to 1 over *jobs*; an empty job list yields ``{}``.
        Evaluated as the chain of transition-matrix products (Eq. 1) —
        through the incremental :class:`CompositeShareCache` when
        enabled (the default; bit-identical to a from-scratch rebuild),
        or from scratch when disabled via
        :func:`set_share_cache_enabled`.
        """
        if not _SHARE_CACHE_ENABLED:
            return chain_shares(self.levels, list(jobs))
        return self.share_cache.shares(jobs)

    def __str__(self) -> str:
        return self.name
