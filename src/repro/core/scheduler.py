"""Request schedulers: the abstract interface and ThemisIO's statistical
token scheduler (§3, §4.1).

A scheduler owns the server's pending-request queues and decides which
request an I/O worker serves next. The interface is deliberately small
so the paper's comparators (FIFO, GIFT, TBF — see
:mod:`repro.core.baselines`) plug into the same server:

- ``enqueue(request, now)`` — communicator hands over an arrived request;
- ``dequeue(now)`` — a free worker asks for the next request; ``None``
  means "nothing may run right now" (an idle cycle);
- ``on_jobs_changed(active_jobs, now)`` — controller pushes the merged
  job table whenever membership changes (token reallocation);
- ``next_eligible_time(now)`` — earliest time a blocked backlog could
  become serviceable (lets throttling schedulers tell workers when to
  retry; ``inf`` for work-conserving schedulers).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence

import numpy as np

from ..errors import SchedulerError
from .jobinfo import JobInfo
from .policy import Policy
from .queues import QueueSet
from .sampled import BacklogSampler
from .tokens import TokenAssignment

__all__ = ["Scheduler", "StatisticalTokenScheduler",
           "set_sampled_dequeue_enabled", "sampled_dequeue_enabled"]

#: Process-wide switch for the Fenwick-sampled opportunity-fair dequeue.
#: Sampled and exact draws are bit-identical (the sampler's boundary
#: guard falls back to the exact path whenever float association order
#: could matter — see :mod:`repro.core.sampled`); the toggle exists for
#: the trace-equivalence suite and for measuring the structure's effect.
_SAMPLED_DEQUEUE_ENABLED = True

#: Backlogged-job count below which the exact O(n) draw answers even
#: with the sampler enabled. Small populations under membership or
#: reallocation churn spend more on O(log n) tree maintenance and
#: O(n) bulk reloads than the sampled draws save: the 3-job system
#: write benches lose ~8 % end-to-end on the sampled path, and the
#: 16-job enqueue/dequeue kernel ~9 %, while the scale kernels win
#: from 256 jobs up (1.19x, growing with n). Below the threshold the
#: tree is never built or maintained (the version stamps go stale and
#: the first above-threshold draw rebuilds it once), so small
#: populations pay only this comparison. Either path answers any given
#: draw bit-identically, so the cutover cannot change a trace.
_SAMPLED_MIN_JOBS = 64


def set_sampled_dequeue_enabled(enabled: bool) -> None:
    """Enable/disable the Fenwick-sampled dequeue (module-wide)."""
    global _SAMPLED_DEQUEUE_ENABLED
    _SAMPLED_DEQUEUE_ENABLED = bool(enabled)


def sampled_dequeue_enabled() -> bool:
    """Whether opportunity-fair draws use the Fenwick sampler."""
    return _SAMPLED_DEQUEUE_ENABLED


class Scheduler(ABC):
    """Interface every queueing discipline implements.

    The base declares empty ``__slots__`` so slot-conscious subclasses
    (the statistical token scheduler sits on the bench hot path) do not
    inherit a ``__dict__``; subclasses that declare no slots of their
    own regain one automatically.
    """

    __slots__ = ()

    name: str = "abstract"

    @abstractmethod
    def enqueue(self, request: Any, now: float) -> None:
        """Accept an arrived request."""

    @abstractmethod
    def dequeue(self, now: float) -> Optional[Any]:
        """Pick the next request to serve, or None for an idle cycle."""

    def on_jobs_changed(self, active_jobs: Sequence[JobInfo],
                        now: float) -> None:
        """React to a change in the active-job set (default: ignore)."""

    def set_assignment(self, shares: "dict[int, float]", now: float) -> None:
        """Install an explicit share map (placement-adjusted tokens from
        the controller's λ-sync, Fig. 5). Default: ignore — only the
        statistical token scheduler consumes shares."""

    @property
    @abstractmethod
    def backlog(self) -> int:
        """Number of queued requests."""

    def next_eligible_time(self, now: float) -> float:
        """Earliest time a blocked backlog becomes serviceable (inf = now/never)."""
        return float("inf")

    def drain(self) -> "list":
        """Remove and return every queued request (server crash path).

        The default covers schedulers built on a :class:`QueueSet`
        ``queues`` attribute; others override.
        """
        queues = getattr(self, "queues", None)
        if queues is not None and hasattr(queues, "drain"):
            return queues.drain()
        return []


class StatisticalTokenScheduler(Scheduler):
    """ThemisIO's scheduler: statistical tokens + opportunity fairness.

    Each dequeue draws ``u ~ U[0, 1)`` and serves the job whose token
    segment contains it. With *opportunity_fair* (the ThemisIO design),
    segments are renormalised over jobs that currently have queued
    requests, so no draw is wasted and idle cycles flow to jobs with
    demand; a backlogged job still receives at least its policy share.
    With ``opportunity_fair=False`` (ablation), draws use the full
    assignment and a draw landing on an idle job's segment wastes the
    cycle — the behaviour of a mandatory bandwidth assignment.

    Jobs that have queued requests but are not yet in the token
    assignment (first requests racing the job-table update) are treated
    as holding the mean share until the controller recomputes tokens.

    The restricted (opportunity-fair) assignment is **cached**: building
    a :class:`TokenAssignment` costs numpy allocations, a sort, and a
    cumsum, but its inputs only change when the token assignment itself
    is replaced or the *membership* of the backlogged-job set changes.
    The cache is keyed by ``(assignment version, backlog signature)`` —
    a fast single-entry check against the queue set's membership
    version, backed by a per-assignment-version dict keyed on the exact
    backlogged-job tuple so recurring backlog patterns (a job draining
    and refilling) stay hits. A cached draw is bit-identical to an
    uncached rebuild: the cache stores exactly the object that
    reconstruction from the same inputs would produce.
    """

    name = "themis"

    __slots__ = ("policy", "rng", "opportunity_fair", "cache_draws",
                 "queues", "assignment", "draws", "wasted_draws",
                 "cache_hits", "cache_misses", "reinstalls_skipped",
                 "_assignment_version", "_restricted_cache", "_fast_key",
                 "_fast_restricted", "sampled_draws", "sampled_fallbacks",
                 "_sampler", "_sampler_assign_version", "_sampler_mv")

    #: Cap on distinct backlog signatures cached per assignment version.
    _CACHE_MAX = 256

    def __init__(self, policy: Policy, rng: np.random.Generator,
                 opportunity_fair: bool = True, cache_draws: bool = True):
        self.policy = policy
        self.rng = rng
        self.opportunity_fair = bool(opportunity_fair)
        self.cache_draws = bool(cache_draws)
        self.queues = QueueSet()
        self.assignment: Optional[TokenAssignment] = None
        self.draws = 0
        self.wasted_draws = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.reinstalls_skipped = 0
        self._assignment_version = 0
        self._restricted_cache: dict = {}   # backlog tuple -> TokenAssignment
        self._fast_key: Optional[tuple] = None  # (assign ver, membership ver)
        self._fast_restricted: Optional[TokenAssignment] = None
        # Fenwick-sampled dequeue state (see repro.core.sampled). The
        # sampler mirrors the backlog's weight vector incrementally; the
        # two version stamps detect when it must be rebuilt (assignment
        # replaced, or the queue set mutated behind our back — drain).
        self.sampled_draws = 0
        self.sampled_fallbacks = 0
        self._sampler: Optional[BacklogSampler] = None
        self._sampler_assign_version = -1
        self._sampler_mv = -1

    # -------------------------------------------------------------- interface
    def enqueue(self, request: Any, now: float) -> None:
        queues = self.queues
        if self._sampler_mv < 0:
            # No sampler tree was ever built (small-population regime or
            # toggle off): nothing to keep in step.
            queues.push(request)
            return
        before = queues.membership_version
        queues.push(request)
        after = queues.membership_version
        if after != before and self._sampler_mv == before:
            # The job just became backlogged: O(log n) weight update
            # keeps the live sampler in step with the queue set.
            self._sampler.set_weight(request.job_id,
                                     self._job_weight(request.job_id))
            self._sampler_mv = after

    def on_jobs_changed(self, active_jobs: Sequence[JobInfo],
                        now: float) -> None:
        self._install_shares(self.policy.shares(active_jobs))

    def set_assignment(self, shares, now: float) -> None:
        self._install_shares({j: s for j, s in shares.items() if s > 0})

    def _install_shares(self, shares: "dict[int, float]") -> None:
        """Install *shares*, skipping the (cache-clearing) reinstall when
        they are identical to the live assignment's constructor input —
        a rebuilt assignment would be bit-identical, so keeping the warm
        restricted-draw caches cannot change any draw."""
        if not shares:
            if self.assignment is not None:
                self._install(None)
            return
        if self.assignment is not None and self.assignment.same_source(shares):
            self.reinstalls_skipped += 1
            return
        self._install(TokenAssignment(shares))

    def _install(self, assignment: Optional[TokenAssignment]) -> None:
        self.assignment = assignment
        self._assignment_version += 1
        self._restricted_cache.clear()
        self._fast_key = None
        self._fast_restricted = None

    def dequeue(self, now: float) -> Optional[Any]:
        queues = self.queues
        if not queues:
            return None
        assignment = self.assignment
        if assignment is None:
            # No token info yet: serve uniformly among backlogged jobs.
            backlogged = queues.nonempty_jobs()
            job_id = backlogged[self._draw_index(len(backlogged))]
            return queues.pop(job_id)

        if not self.opportunity_fair:
            self.draws += 1
            job_id = assignment.draw(float(self.rng.random()))
            if queues.depth(job_id) == 0:
                self.wasted_draws += 1
                return None
            return queues.pop(job_id)

        self.draws += 1
        u = float(self.rng.random())
        # len() on the private list dodges a method call on the
        # per-dequeue hot path (== queues.backlogged_jobs()).
        if _SAMPLED_DEQUEUE_ENABLED and \
                len(queues._sorted_jobs) >= _SAMPLED_MIN_JOBS:
            choice = self._sampled_choice(u)
        else:
            choice = self._restricted_assignment().draw(u)
        if self._sampler_mv < 0:
            return queues.pop(choice)
        before = queues.membership_version
        item = queues.pop(choice)
        after = queues.membership_version
        if after != before and self._sampler_mv == before:
            # The job's queue just drained: zero its segment weight.
            self._sampler.set_weight(choice, 0.0)
            self._sampler_mv = after
        return item

    # ---------------------------------------------------------- sampled draws
    def _sampled_choice(self, u: float) -> int:
        """Resolve one opportunity-fair draw via the Fenwick sampler.

        Bit-identical to ``self._restricted_assignment().draw(u)``: the
        sampler's nonzero slots are exactly the backlogged jobs in
        ascending-id order carrying exactly the weights
        :meth:`_build_restricted` would normalise, and its boundary
        guard hands any draw that floating-point association order
        could flip back to the exact path (see :mod:`repro.core.sampled`).
        """
        queues = self.queues
        if (self._sampler is None
                or self._sampler_assign_version != self._assignment_version
                or self._sampler_mv != queues.membership_version):
            self._rebuild_sampler()
        choice = self._sampler.sample(u)
        if choice is None:
            # Guarded draw (boundary-adjacent) or desynced weights:
            # exactly reproduce the O(n) path for this one draw.
            self.sampled_fallbacks += 1
            return self._build_restricted(queues.nonempty_jobs()).draw(u)
        self.sampled_draws += 1
        return choice

    def _rebuild_sampler(self) -> None:
        backlogged = self.queues.nonempty_jobs()
        sampler = self._sampler
        if sampler is None:
            sampler = self._sampler = BacklogSampler()
        sampler.bulk_load(backlogged,
                          [self._job_weight(j) for j in backlogged])
        self._sampler_assign_version = self._assignment_version
        self._sampler_mv = self.queues.membership_version

    def _job_weight(self, job_id: int) -> float:
        """The unnormalised restricted-draw weight of one backlogged job
        (identical to the per-job values in :meth:`_build_restricted`)."""
        assignment = self.assignment
        if assignment is None:
            return 0.0
        i = assignment._index.get(job_id)
        mean_share = 1.0 / max(len(assignment._index), 1)
        if i is None:
            return mean_share
        share = assignment._shares_list[i]
        return share if share > 0 else mean_share

    # ------------------------------------------------------------- draw cache
    def _restricted_assignment(self) -> TokenAssignment:
        """The backlog-restricted assignment, cached across dequeues."""
        queues = self.queues
        if self.cache_draws:
            key = (self._assignment_version, queues.membership_version)
            if key == self._fast_key:
                self.cache_hits += 1
                return self._fast_restricted
            signature = tuple(queues.nonempty_jobs())
            restricted = self._restricted_cache.get(signature)
            if restricted is None:
                self.cache_misses += 1
                restricted = self._build_restricted(signature)
                if len(self._restricted_cache) >= self._CACHE_MAX:
                    self._restricted_cache.clear()
                self._restricted_cache[signature] = restricted
            else:
                self.cache_hits += 1
            self._fast_key = key
            self._fast_restricted = restricted
            return restricted
        return self._build_restricted(queues.nonempty_jobs())

    def _build_restricted(self, backlogged: Sequence[int]) -> TokenAssignment:
        """Renormalise over backlogged jobs, giving not-yet-assigned jobs
        the mean share (identical to the uncached per-dequeue rebuild).

        *backlogged* comes from the queue set already sorted, which lets
        the fast :meth:`TokenAssignment._from_backlog` constructor skip
        sorting and validation."""
        assignment = self.assignment
        index = assignment._index
        shares_list = assignment._shares_list
        mean_share = 1.0 / max(len(index), 1)
        values = []
        for job_id in backlogged:
            i = index.get(job_id)
            if i is None:
                values.append(mean_share)
            else:
                share = shares_list[i]
                values.append(share if share > 0 else mean_share)
        return TokenAssignment._from_backlog(list(backlogged), values)

    @property
    def backlog(self) -> int:
        return self.queues.total

    def next_eligible_time(self, now: float) -> float:
        """``now`` while backlogged in the ablation mode, else ``inf``.

        In the ablation (``opportunity_fair=False``) a dequeue can waste
        its draw on an idle job's segment, so a backlogged queue may
        return ``None`` yet become serviceable on the very next draw —
        the worker should retry on its short timer, exactly as before.
        The opportunity-fair mode never returns ``None`` with backlog,
        so workers park on the work event instead (``inf``).
        """
        if self.queues and not self.opportunity_fair:
            return now
        return float("inf")

    # --------------------------------------------------------------- helpers
    def _draw_index(self, n: int) -> int:
        if n <= 0:
            raise SchedulerError("no backlogged jobs to draw from")
        return int(self.rng.integers(0, n))

    def current_shares(self) -> dict:
        """The live token assignment (job id -> share), {} if none."""
        return self.assignment.as_dict() if self.assignment else {}
