"""Request schedulers: the abstract interface and ThemisIO's statistical
token scheduler (§3, §4.1).

A scheduler owns the server's pending-request queues and decides which
request an I/O worker serves next. The interface is deliberately small
so the paper's comparators (FIFO, GIFT, TBF — see
:mod:`repro.core.baselines`) plug into the same server:

- ``enqueue(request, now)`` — communicator hands over an arrived request;
- ``dequeue(now)`` — a free worker asks for the next request; ``None``
  means "nothing may run right now" (an idle cycle);
- ``on_jobs_changed(active_jobs, now)`` — controller pushes the merged
  job table whenever membership changes (token reallocation);
- ``next_eligible_time(now)`` — earliest time a blocked backlog could
  become serviceable (lets throttling schedulers tell workers when to
  retry; ``inf`` for work-conserving schedulers).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence

import numpy as np

from ..errors import SchedulerError
from .jobinfo import JobInfo
from .policy import Policy
from .queues import QueueSet
from .tokens import TokenAssignment

__all__ = ["Scheduler", "StatisticalTokenScheduler"]


class Scheduler(ABC):
    """Interface every queueing discipline implements.

    The base declares empty ``__slots__`` so slot-conscious subclasses
    (the statistical token scheduler sits on the bench hot path) do not
    inherit a ``__dict__``; subclasses that declare no slots of their
    own regain one automatically.
    """

    __slots__ = ()

    name: str = "abstract"

    @abstractmethod
    def enqueue(self, request: Any, now: float) -> None:
        """Accept an arrived request."""

    @abstractmethod
    def dequeue(self, now: float) -> Optional[Any]:
        """Pick the next request to serve, or None for an idle cycle."""

    def on_jobs_changed(self, active_jobs: Sequence[JobInfo],
                        now: float) -> None:
        """React to a change in the active-job set (default: ignore)."""

    def set_assignment(self, shares: "dict[int, float]", now: float) -> None:
        """Install an explicit share map (placement-adjusted tokens from
        the controller's λ-sync, Fig. 5). Default: ignore — only the
        statistical token scheduler consumes shares."""

    @property
    @abstractmethod
    def backlog(self) -> int:
        """Number of queued requests."""

    def next_eligible_time(self, now: float) -> float:
        """Earliest time a blocked backlog becomes serviceable (inf = now/never)."""
        return float("inf")

    def drain(self) -> "list":
        """Remove and return every queued request (server crash path).

        The default covers schedulers built on a :class:`QueueSet`
        ``queues`` attribute; others override.
        """
        queues = getattr(self, "queues", None)
        if queues is not None and hasattr(queues, "drain"):
            return queues.drain()
        return []


class StatisticalTokenScheduler(Scheduler):
    """ThemisIO's scheduler: statistical tokens + opportunity fairness.

    Each dequeue draws ``u ~ U[0, 1)`` and serves the job whose token
    segment contains it. With *opportunity_fair* (the ThemisIO design),
    segments are renormalised over jobs that currently have queued
    requests, so no draw is wasted and idle cycles flow to jobs with
    demand; a backlogged job still receives at least its policy share.
    With ``opportunity_fair=False`` (ablation), draws use the full
    assignment and a draw landing on an idle job's segment wastes the
    cycle — the behaviour of a mandatory bandwidth assignment.

    Jobs that have queued requests but are not yet in the token
    assignment (first requests racing the job-table update) are treated
    as holding the mean share until the controller recomputes tokens.

    The restricted (opportunity-fair) assignment is **cached**: building
    a :class:`TokenAssignment` costs numpy allocations, a sort, and a
    cumsum, but its inputs only change when the token assignment itself
    is replaced or the *membership* of the backlogged-job set changes.
    The cache is keyed by ``(assignment version, backlog signature)`` —
    a fast single-entry check against the queue set's membership
    version, backed by a per-assignment-version dict keyed on the exact
    backlogged-job tuple so recurring backlog patterns (a job draining
    and refilling) stay hits. A cached draw is bit-identical to an
    uncached rebuild: the cache stores exactly the object that
    reconstruction from the same inputs would produce.
    """

    name = "themis"

    __slots__ = ("policy", "rng", "opportunity_fair", "cache_draws",
                 "queues", "assignment", "draws", "wasted_draws",
                 "cache_hits", "cache_misses", "reinstalls_skipped",
                 "_assignment_version", "_restricted_cache", "_fast_key",
                 "_fast_restricted")

    #: Cap on distinct backlog signatures cached per assignment version.
    _CACHE_MAX = 256

    def __init__(self, policy: Policy, rng: np.random.Generator,
                 opportunity_fair: bool = True, cache_draws: bool = True):
        self.policy = policy
        self.rng = rng
        self.opportunity_fair = bool(opportunity_fair)
        self.cache_draws = bool(cache_draws)
        self.queues = QueueSet()
        self.assignment: Optional[TokenAssignment] = None
        self.draws = 0
        self.wasted_draws = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.reinstalls_skipped = 0
        self._assignment_version = 0
        self._restricted_cache: dict = {}   # backlog tuple -> TokenAssignment
        self._fast_key: Optional[tuple] = None  # (assign ver, membership ver)
        self._fast_restricted: Optional[TokenAssignment] = None

    # -------------------------------------------------------------- interface
    def enqueue(self, request: Any, now: float) -> None:
        self.queues.push(request)

    def on_jobs_changed(self, active_jobs: Sequence[JobInfo],
                        now: float) -> None:
        self._install_shares(self.policy.shares(active_jobs))

    def set_assignment(self, shares, now: float) -> None:
        self._install_shares({j: s for j, s in shares.items() if s > 0})

    def _install_shares(self, shares: "dict[int, float]") -> None:
        """Install *shares*, skipping the (cache-clearing) reinstall when
        they are identical to the live assignment's constructor input —
        a rebuilt assignment would be bit-identical, so keeping the warm
        restricted-draw caches cannot change any draw."""
        if not shares:
            if self.assignment is not None:
                self._install(None)
            return
        if self.assignment is not None and self.assignment.same_source(shares):
            self.reinstalls_skipped += 1
            return
        self._install(TokenAssignment(shares))

    def _install(self, assignment: Optional[TokenAssignment]) -> None:
        self.assignment = assignment
        self._assignment_version += 1
        self._restricted_cache.clear()
        self._fast_key = None
        self._fast_restricted = None

    def dequeue(self, now: float) -> Optional[Any]:
        queues = self.queues
        if not queues:
            return None
        assignment = self.assignment
        if assignment is None:
            # No token info yet: serve uniformly among backlogged jobs.
            backlogged = queues.nonempty_jobs()
            job_id = backlogged[self._draw_index(len(backlogged))]
            return queues.pop(job_id)

        if not self.opportunity_fair:
            self.draws += 1
            job_id = assignment.draw(float(self.rng.random()))
            if queues.depth(job_id) == 0:
                self.wasted_draws += 1
                return None
            return queues.pop(job_id)

        restricted = self._restricted_assignment()
        self.draws += 1
        choice = restricted.draw(float(self.rng.random()))
        return queues.pop(choice)

    # ------------------------------------------------------------- draw cache
    def _restricted_assignment(self) -> TokenAssignment:
        """The backlog-restricted assignment, cached across dequeues."""
        queues = self.queues
        if self.cache_draws:
            key = (self._assignment_version, queues.membership_version)
            if key == self._fast_key:
                self.cache_hits += 1
                return self._fast_restricted
            signature = tuple(queues.nonempty_jobs())
            restricted = self._restricted_cache.get(signature)
            if restricted is None:
                self.cache_misses += 1
                restricted = self._build_restricted(signature)
                if len(self._restricted_cache) >= self._CACHE_MAX:
                    self._restricted_cache.clear()
                self._restricted_cache[signature] = restricted
            else:
                self.cache_hits += 1
            self._fast_key = key
            self._fast_restricted = restricted
            return restricted
        return self._build_restricted(queues.nonempty_jobs())

    def _build_restricted(self, backlogged: Sequence[int]) -> TokenAssignment:
        """Renormalise over backlogged jobs, giving not-yet-assigned jobs
        the mean share (identical to the uncached per-dequeue rebuild).

        *backlogged* comes from the queue set already sorted, which lets
        the fast :meth:`TokenAssignment._from_backlog` constructor skip
        sorting and validation."""
        assignment = self.assignment
        index = assignment._index
        shares_list = assignment._shares_list
        mean_share = 1.0 / max(len(index), 1)
        values = []
        for job_id in backlogged:
            i = index.get(job_id)
            if i is None:
                values.append(mean_share)
            else:
                share = shares_list[i]
                values.append(share if share > 0 else mean_share)
        return TokenAssignment._from_backlog(list(backlogged), values)

    @property
    def backlog(self) -> int:
        return self.queues.total

    def next_eligible_time(self, now: float) -> float:
        """``now`` while backlogged in the ablation mode, else ``inf``.

        In the ablation (``opportunity_fair=False``) a dequeue can waste
        its draw on an idle job's segment, so a backlogged queue may
        return ``None`` yet become serviceable on the very next draw —
        the worker should retry on its short timer, exactly as before.
        The opportunity-fair mode never returns ``None`` with backlog,
        so workers park on the work event instead (``inf``).
        """
        if self.queues and not self.opportunity_fair:
            return now
        return float("inf")

    # --------------------------------------------------------------- helpers
    def _draw_index(self, n: int) -> int:
        if n <= 0:
            raise SchedulerError("no backlogged jobs to draw from")
        return int(self.rng.integers(0, n))

    def current_shares(self) -> dict:
        """The live token assignment (job id -> share), {} if none."""
        return self.assignment.as_dict() if self.assignment else {}
