"""Request schedulers: the abstract interface and ThemisIO's statistical
token scheduler (§3, §4.1).

A scheduler owns the server's pending-request queues and decides which
request an I/O worker serves next. The interface is deliberately small
so the paper's comparators (FIFO, GIFT, TBF — see
:mod:`repro.core.baselines`) plug into the same server:

- ``enqueue(request, now)`` — communicator hands over an arrived request;
- ``dequeue(now)`` — a free worker asks for the next request; ``None``
  means "nothing may run right now" (an idle cycle);
- ``on_jobs_changed(active_jobs, now)`` — controller pushes the merged
  job table whenever membership changes (token reallocation);
- ``next_eligible_time(now)`` — earliest time a blocked backlog could
  become serviceable (lets throttling schedulers tell workers when to
  retry; ``inf`` for work-conserving schedulers).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, List, Optional, Sequence

import numpy as np

from ..errors import SchedulerError
from .jobinfo import JobInfo
from .policy import Policy
from .queues import QueueSet
from .tokens import TokenAssignment

__all__ = ["Scheduler", "StatisticalTokenScheduler"]


class Scheduler(ABC):
    """Interface every queueing discipline implements."""

    name: str = "abstract"

    @abstractmethod
    def enqueue(self, request: Any, now: float) -> None:
        """Accept an arrived request."""

    @abstractmethod
    def dequeue(self, now: float) -> Optional[Any]:
        """Pick the next request to serve, or None for an idle cycle."""

    def on_jobs_changed(self, active_jobs: Sequence[JobInfo],
                        now: float) -> None:
        """React to a change in the active-job set (default: ignore)."""

    def set_assignment(self, shares: "dict[int, float]", now: float) -> None:
        """Install an explicit share map (placement-adjusted tokens from
        the controller's λ-sync, Fig. 5). Default: ignore — only the
        statistical token scheduler consumes shares."""

    @property
    @abstractmethod
    def backlog(self) -> int:
        """Number of queued requests."""

    def next_eligible_time(self, now: float) -> float:
        """Earliest time a blocked backlog becomes serviceable (inf = now/never)."""
        return float("inf")


class StatisticalTokenScheduler(Scheduler):
    """ThemisIO's scheduler: statistical tokens + opportunity fairness.

    Each dequeue draws ``u ~ U[0, 1)`` and serves the job whose token
    segment contains it. With *opportunity_fair* (the ThemisIO design),
    segments are renormalised over jobs that currently have queued
    requests, so no draw is wasted and idle cycles flow to jobs with
    demand; a backlogged job still receives at least its policy share.
    With ``opportunity_fair=False`` (ablation), draws use the full
    assignment and a draw landing on an idle job's segment wastes the
    cycle — the behaviour of a mandatory bandwidth assignment.

    Jobs that have queued requests but are not yet in the token
    assignment (first requests racing the job-table update) are treated
    as holding the mean share until the controller recomputes tokens.
    """

    name = "themis"

    def __init__(self, policy: Policy, rng: np.random.Generator,
                 opportunity_fair: bool = True):
        self.policy = policy
        self.rng = rng
        self.opportunity_fair = bool(opportunity_fair)
        self.queues = QueueSet()
        self.assignment: Optional[TokenAssignment] = None
        self.draws = 0
        self.wasted_draws = 0

    # -------------------------------------------------------------- interface
    def enqueue(self, request: Any, now: float) -> None:
        self.queues.push(request)

    def on_jobs_changed(self, active_jobs: Sequence[JobInfo],
                        now: float) -> None:
        shares = self.policy.shares(active_jobs)
        self.assignment = TokenAssignment(shares) if shares else None

    def set_assignment(self, shares, now: float) -> None:
        positive = {j: s for j, s in shares.items() if s > 0}
        self.assignment = TokenAssignment(positive) if positive else None

    def dequeue(self, now: float) -> Optional[Any]:
        if not self.queues:
            return None
        backlogged: List[int] = self.queues.nonempty_jobs()
        if self.assignment is None:
            # No token info yet: serve uniformly among backlogged jobs.
            job_id = backlogged[self._draw_index(len(backlogged))]
            return self.queues.pop(job_id)

        if not self.opportunity_fair:
            self.draws += 1
            job_id = self.assignment.draw(float(self.rng.random()))
            if self.queues.depth(job_id) == 0:
                self.wasted_draws += 1
                return None
            return self.queues.pop(job_id)

        # Opportunity fairness: renormalise over backlogged jobs, giving
        # not-yet-assigned jobs the mean share.
        mean_share = 1.0 / max(len(self.assignment), 1)
        shares = {}
        for job_id in backlogged:
            if job_id in self.assignment:
                share = self.assignment.share(job_id)
                shares[job_id] = share if share > 0 else mean_share
            else:
                shares[job_id] = mean_share
        self.draws += 1
        choice = TokenAssignment(shares).draw(float(self.rng.random()))
        return self.queues.pop(choice)

    @property
    def backlog(self) -> int:
        return self.queues.total

    # --------------------------------------------------------------- helpers
    def _draw_index(self, n: int) -> int:
        if n <= 0:
            raise SchedulerError("no backlogged jobs to draw from")
        return int(self.rng.integers(0, n))

    def current_shares(self) -> dict:
        """The live token assignment (job id -> share), {} if none."""
        return self.assignment.as_dict() if self.assignment else {}
