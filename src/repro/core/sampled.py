"""Share-weighted sampled dequeue: a Fenwick tree over token segments.

The statistical token scheduler's opportunity-fair dequeue draws
``u ~ U[0, 1)`` and serves the backlogged job whose (renormalised) token
segment contains it. The exact implementation rebuilds the restricted
:class:`~repro.core.tokens.TokenAssignment` whenever backlog membership
changes — an O(n) pass over the backlogged jobs. Under churny workloads
(a queue emptying and refilling on every dequeue) that rebuild runs per
draw, and the per-decision cost grows linearly with the job population.

:class:`BacklogSampler` replaces the pass with a binary indexed tree
(Fenwick tree) over *unnormalised* segment weights, keyed by slot in
ascending-job-id order:

- a backlog membership change is one O(log n) point update;
- a draw is one O(log n) binary-lifting descent that locates the
  segment containing ``u * total_weight`` without ever materialising
  the normalised cumulative boundaries.

Bit-identical selection
-----------------------
The exact path normalises weights (``v_i / total``) and runs a
sequential cumulative sum; the Fenwick tree accumulates the *raw*
weights in a different floating-point association order. The two
disagree only when the draw lands within floating-point error of a
segment boundary. :meth:`BacklogSampler.sample` therefore guards every
draw: when ``u * total`` falls within :data:`GUARD_MARGIN` (relative)
of either adjacent Fenwick boundary, it returns ``None`` and the caller
falls back to the exact O(n) path for that single draw. Outside the
margin, a standard error analysis bounds every boundary discrepancy —
normalisation (one rounding per weight), the sequential cumsum (≤ n
roundings), the Fenwick prefix (≤ log₂ n roundings), and incremental-
update drift — far below the margin, so both paths place ``u`` in the
same segment. The margin is deliberately enormous relative to the
error bound (≈2⁻³⁰ vs ≲10⁻¹¹ for 4k jobs): a fallback costs one exact
rebuild, so overshooting the margin only trades a ~2⁻²⁹ per-draw
fallback probability for a proof with three orders of magnitude of
headroom.

Error-tracked rebuilds
----------------------
Incremental point updates perturb O(log n) tree nodes each, and each
perturbed addition rounds by at most one ulp of the node's value. The
original design bounded the accumulated drift by counting updates and
rebuilding every 1024 — a worst-case cadence that assumed every update
touches maximally-heavy nodes. :class:`BacklogSampler` instead tracks
the *exact* accumulated bound: each incremental update adds
``path_mass * 2⁻⁵²`` to :attr:`~BacklogSampler._err_bound`, where
``path_mass`` is the sum of absolute node values along the updated
Fenwick path. A draw rebuilds the tree only once the tracked bound
exceeds :data:`DRIFT_FRACTION` of the current total weight — still
16x inside :data:`GUARD_MARGIN`, so the bit-identity guard is never
weakened — which under typical churn stretches the rebuild cadence by
one to two orders of magnitude. :data:`REBUILD_EVERY` survives as a
far-out backstop against pathological weight distributions.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

__all__ = ["BacklogSampler", "DRIFT_FRACTION", "GUARD_MARGIN",
           "REBUILD_EVERY"]

#: Relative half-width of the boundary guard band. A draw landing within
#: ``GUARD_MARGIN * total_weight`` of a Fenwick segment boundary falls
#: back to the exact path. Must exceed the worst-case relative boundary
#: error — ``(n + log₂n + 4) · 2⁻⁵²`` static terms (about 9.1e-13 at
#: n = 4096) plus tracked incremental drift capped at
#: :data:`DRIFT_FRACTION` — which 2⁻³⁰ ≈ 9.3e-10 clears by ~16x while
#: still making fallbacks a ~2-in-a-billion event per draw.
GUARD_MARGIN = 2.0 ** -30

#: Maximum tracked incremental-drift bound, as a fraction of the
#: current total weight, tolerated before a draw rebuilds the tree from
#: the weight array. 2⁻³⁴ keeps the drift term 16x inside
#: :data:`GUARD_MARGIN` — the bit-identity guard loses no headroom —
#: while letting light-node updates run far past the old fixed
#: 1024-update cadence.
DRIFT_FRACTION = 2.0 ** -34

#: Backstop: incremental point updates tolerated before an unconditional
#: rebuild, regardless of the tracked error bound. With error tracking
#: doing the real work this only guards against pathological weight
#: distributions (e.g. totals collapsing toward zero between draws).
REBUILD_EVERY = 1 << 17


class BacklogSampler:
    """Fenwick tree over per-job segment weights, slots in job-id order.

    Slots are allocated once per job id and keep their position; a job
    leaving the backlog zeroes its weight rather than vacating the slot,
    so the common transitions (backlog churn) never restructure the
    tree. A job id above every existing slot appends in O(log n); an
    out-of-order id (rare — ids are assigned monotonically upstream)
    rebuilds the slot map in O(n).
    """

    __slots__ = ("_slots", "_slot_of", "_weights", "_tree", "_n",
                 "_top_bit", "_updates", "_err_bound", "rebuilds",
                 "drift_rebuilds", "appends")

    def __init__(self):
        self._slots: List[int] = []          # slot index -> job id (sorted)
        self._slot_of: Dict[int, int] = {}   # job id -> slot index
        self._weights: List[float] = []      # slot index -> weight (0 = idle)
        self._tree: List[float] = [0.0]      # 1-based Fenwick nodes
        self._n = 0
        self._top_bit = 0                    # highest power of two <= _n
        self._updates = 0                    # point updates since rebuild
        self._err_bound = 0.0                # tracked drift bound (absolute)
        self.rebuilds = 0
        self.drift_rebuilds = 0
        self.appends = 0

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------- loading
    def bulk_load(self, job_ids: Sequence[int],
                  weights: Sequence[float]) -> None:
        """Replace all slots with *job_ids* (sorted ascending) at *weights*.

        O(n): the tree is built bottom-up in one pass.
        """
        self._slots = list(job_ids)
        self._slot_of = {job_id: i for i, job_id in enumerate(self._slots)}
        self._weights = list(weights)
        self._n = len(self._slots)
        self._rebuild_tree()

    def _rebuild_tree(self) -> None:
        n = self._n
        tree = [0.0] + self._weights
        for i in range(1, n + 1):
            j = i + (i & -i)
            if j <= n:
                tree[j] += tree[i]
        self._tree = tree
        self._top_bit = 1 << (n.bit_length() - 1) if n else 0
        self._updates = 0
        self._err_bound = 0.0
        self.rebuilds += 1

    # ------------------------------------------------------------- updates
    def set_weight(self, job_id: int, weight: float) -> None:
        """Set *job_id*'s segment weight (0 removes it from draws)."""
        slot = self._slot_of.get(job_id)
        if slot is None:
            slot = self._add_slot(job_id)
        old = self._weights[slot]
        if weight == old:
            return
        self._weights[slot] = weight
        self._updates += 1
        if self._updates >= REBUILD_EVERY:
            # Backstop against pathological drift (see module docstring).
            self._rebuild_tree()
            return
        delta = weight - old
        i = slot + 1
        tree, n = self._tree, self._n
        mass = 0.0
        while i <= n:
            tree[i] += delta
            # Each perturbed addition rounds by <= 1 ulp of the node, so
            # the path's absolute-value mass bounds this update's drift.
            # lint: disable=PERF102 -- upper bound; association irrelevant
            mass += abs(tree[i])
            i += i & -i
        self._err_bound += mass * 2.0 ** -52

    def _add_slot(self, job_id: int) -> int:
        if self._n and job_id <= self._slots[-1]:
            # Out-of-order id: splice it in and rebuild (O(n), rare).
            pos = bisect_left(self._slots, job_id)
            self._slots.insert(pos, job_id)
            self._weights.insert(pos, 0.0)
            self._slot_of = {j: i for i, j in enumerate(self._slots)}
            self._n += 1
            self._rebuild_tree()
            return pos
        # Monotone append: one new leaf, O(log n) to seed its node.
        self._slots.append(job_id)
        self._weights.append(0.0)
        self._n += 1
        n = self._n
        self._slot_of[job_id] = n - 1
        # tree[n] covers weights[n - lowbit(n) .. n-1]; the new leaf is 0
        # so the node is the sum of its completed child nodes.
        node = 0.0
        j = n - 1
        lo = n - (n & -n)
        while j > lo:
            # lint: disable=PERF102 -- Fenwick node sum; fixed association
            node += self._tree[j]
            j -= j & -j
        self._tree.append(node)
        self._top_bit = 1 << (n.bit_length() - 1)
        self.appends += 1
        return n - 1

    # --------------------------------------------------------------- draws
    def total_weight(self) -> float:
        """Sum of all slot weights (Fenwick association order)."""
        total = 0.0
        i = self._n
        tree = self._tree
        while i > 0:
            # lint: disable=PERF102 -- Fenwick prefix sum; fixed association
            total += tree[i]
            i -= i & -i
        return total

    def sample(self, u: float) -> Optional[int]:
        """The job whose segment contains *u*, or ``None`` on a guarded
        draw (caller must redo the draw on the exact path).

        ``None`` means the draw landed within :data:`GUARD_MARGIN` of a
        segment boundary — where float association order could flip the
        choice — or the tree holds no weight.
        """
        total = self.total_weight()
        if total <= 0.0:
            return None
        if self._err_bound > DRIFT_FRACTION * total:
            # Tracked drift ate into the guard's headroom: refresh the
            # tree (and the total it implies) before placing the draw.
            self._rebuild_tree()
            self.drift_rebuilds += 1
            total = self.total_weight()
            if total <= 0.0:
                return None
        t = u * total
        guard = GUARD_MARGIN * total
        pos = 0
        pre = 0.0
        bit = self._top_bit
        tree, n = self._tree, self._n
        while bit:
            nxt = pos + bit
            if nxt <= n:
                v = pre + tree[nxt]
                if v <= t:
                    pre = v
                    pos = nxt
            bit >>= 1
        if pos >= n:
            return None  # t at/above the top boundary: exact path decides
        if t - pre < guard or (pre + self._weights[pos]) - t < guard:
            return None
        return self._slots[pos]
