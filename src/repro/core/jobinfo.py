"""Job metadata and the heartbeat-driven job status table (§4.1).

Clients embed job-related information — job id, user id, group, job size
(node count) — in every I/O request and send periodic heartbeats. Each
server's **job monitor** maintains a :class:`JobStatusTable`: a job is
*active* from its first contact and becomes *inactive* when no heartbeat
arrives within the timeout. Tables from different servers are merged
during λ-delayed fairness synchronisation (§3.1): entries are unioned
and, for jobs known to both, the newest heartbeat wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..errors import SchedulerError

__all__ = ["JobInfo", "JobStatusTable"]


@dataclass(frozen=True)
class JobInfo:
    """Immutable description of one job, as embedded in I/O requests."""

    job_id: int
    user: str
    group: str = "g0"
    size: int = 1          # compute-node count
    priority: float = 1.0

    def __post_init__(self):
        if self.size < 1:
            raise SchedulerError(f"job size must be >= 1: {self.size}")
        if self.priority <= 0:
            raise SchedulerError(f"priority must be positive: {self.priority}")


@dataclass
class _Entry:
    info: JobInfo
    last_heartbeat: float
    active: bool = True


class JobStatusTable:
    """One server's view of the jobs it has heard from.

    Parameters
    ----------
    heartbeat_timeout:
        Seconds without a heartbeat after which a job is marked inactive
        ("a predefined period of time" in §4.1).
    """

    def __init__(self, heartbeat_timeout: float = 5.0):
        if heartbeat_timeout <= 0:
            raise SchedulerError("heartbeat_timeout must be positive")
        self.heartbeat_timeout = float(heartbeat_timeout)
        self._entries: Dict[int, _Entry] = {}
        self.version = 0  # bumped on any membership/activity change

    # --------------------------------------------------------------- updates
    def observe(self, info: JobInfo, now: float) -> bool:
        """Register or refresh a job from request/heartbeat metadata.

        Returns True if the active-job set changed (new job or a
        reactivation), which tells the controller to recompute tokens.
        """
        entry = self._entries.get(info.job_id)
        if entry is None:
            self._entries[info.job_id] = _Entry(info=info, last_heartbeat=now)
            self.version += 1
            return True
        changed = not entry.active or entry.info != info
        entry.info = info
        entry.last_heartbeat = now
        if not entry.active:
            entry.active = True
        if changed:
            self.version += 1
        return changed

    def heartbeat(self, job_id: int, now: float) -> None:
        """Refresh the heartbeat timestamp of a known job."""
        entry = self._entries.get(job_id)
        if entry is None:
            raise SchedulerError(f"heartbeat for unknown job {job_id}")
        entry.last_heartbeat = now
        if not entry.active:
            entry.active = True
            self.version += 1

    def expire(self, now: float) -> List[int]:
        """Deactivate jobs whose heartbeat is older than the timeout."""
        expired = []
        for job_id, entry in self._entries.items():
            if entry.active and now - entry.last_heartbeat > self.heartbeat_timeout:
                entry.active = False
                expired.append(job_id)
        if expired:
            self.version += 1
        return expired

    def deactivate(self, job_id: int) -> bool:
        """Explicitly mark a job inactive (client exit notification)."""
        entry = self._entries.get(job_id)
        if entry is None or not entry.active:
            return False
        entry.active = False
        self.version += 1
        return True

    def remove(self, job_id: int) -> bool:
        """Drop a job entirely (post-exit garbage collection)."""
        if self._entries.pop(job_id, None) is not None:
            self.version += 1
            return True
        return False

    # ---------------------------------------------------------------- merging
    def snapshot(self) -> List[dict]:
        """Serializable entries for the λ-sync all-gather."""
        return [
            {"info": entry.info, "last_heartbeat": entry.last_heartbeat,
             "active": entry.active}
            for entry in self._entries.values()
        ]

    def merge(self, remote_entries: Iterable[dict]) -> bool:
        """Union remote entries into this table; newest heartbeat wins.

        Returns True if the active-job set (or any job's info) changed.
        """
        changed = False
        for remote in remote_entries:
            info: JobInfo = remote["info"]
            entry = self._entries.get(info.job_id)
            if entry is None:
                self._entries[info.job_id] = _Entry(
                    info=info, last_heartbeat=remote["last_heartbeat"],
                    active=remote["active"])
                changed = True
            elif remote["last_heartbeat"] > entry.last_heartbeat:
                if entry.active != remote["active"] or entry.info != info:
                    changed = True
                entry.info = info
                entry.last_heartbeat = remote["last_heartbeat"]
                entry.active = remote["active"]
        if changed:
            self.version += 1
        return changed

    # ----------------------------------------------------------------- reads
    def get(self, job_id: int) -> Optional[JobInfo]:
        """The job's metadata, or None if unknown."""
        entry = self._entries.get(job_id)
        return entry.info if entry else None

    def is_active(self, job_id: int) -> bool:
        """True if the job is known and currently active."""
        entry = self._entries.get(job_id)
        return bool(entry and entry.active)

    def active_jobs(self) -> List[JobInfo]:
        """Active jobs, sorted by job id for determinism."""
        return sorted((e.info for e in self._entries.values() if e.active),
                      key=lambda info: info.job_id)

    def all_jobs(self) -> List[JobInfo]:
        """Every known job (active or not), sorted by job id."""
        return sorted((e.info for e in self._entries.values()),
                      key=lambda info: info.job_id)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._entries
