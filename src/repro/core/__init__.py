"""The paper's core contribution: statistical tokens, sharing policies,
transition-matrix evaluation, the token scheduler, λ-delayed fairness,
and the comparator disciplines (FIFO / GIFT / TBF).
"""

from .baselines import FifoScheduler, GiftScheduler, TbfScheduler
from .fairness import (all_gather_merge, global_share_error,
                       placement_shares, total_variation)
from .jobinfo import JobInfo, JobStatusTable
from .matrix import (build_transition_matrices, chain_product, chain_shares,
                     validate_transition_matrix)
from .policy import FIFO_POLICY_NAME, Level, Policy
from .queues import QueueSet
from .scheduler import Scheduler, StatisticalTokenScheduler
from .tokens import TokenAssignment

__all__ = [
    "JobInfo",
    "JobStatusTable",
    "Level",
    "Policy",
    "FIFO_POLICY_NAME",
    "TokenAssignment",
    "QueueSet",
    "Scheduler",
    "StatisticalTokenScheduler",
    "FifoScheduler",
    "GiftScheduler",
    "TbfScheduler",
    "build_transition_matrices",
    "chain_product",
    "chain_shares",
    "validate_transition_matrix",
    "all_gather_merge",
    "total_variation",
    "global_share_error",
    "placement_shares",
]
