"""Per-entity request queues (§4.1's communicator queues).

Inbound I/O requests "are grouped into queues based on the fair sharing
policy ... identified by job ids". Queue items only need a ``job_id``
attribute plus a ``cost`` (bytes of service the request consumes); the
burst-buffer request type satisfies this protocol.

The queue set sits on the scheduler's per-dequeue hot path, so its
bookkeeping is incremental: the sorted nonempty-job list is maintained
with ``bisect`` on membership transitions (not re-sorted per call),
per-job cost totals are running accumulators (O(1) ``queued_cost`` for
GIFT's demand estimate), and :attr:`membership_version` counts
membership transitions so schedulers can cache work keyed on "has the
set of backlogged jobs changed?".
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..errors import SchedulerError

__all__ = ["QueueSet"]


class QueueSet:
    """A set of FIFO queues keyed by job id."""

    __slots__ = ("_queues", "_sorted_jobs", "_total", "_total_cost",
                 "_job_cost", "membership_version")

    def __init__(self):
        self._queues: Dict[int, Deque[Any]] = {}
        self._sorted_jobs: List[int] = []  # job ids with a nonempty queue
        self._total = 0
        self._total_cost = 0.0
        self._job_cost: Dict[int, float] = {}
        #: Counter bumped whenever a job's queue becomes (non)empty. Two
        #: reads observing the same value are guaranteed to have seen the
        #: same set of backlogged jobs — the scheduler's draw cache keys
        #: on this together with its assignment version. A plain
        #: attribute (not a property): it is read twice per enqueue and
        #: dequeue, where descriptor dispatch is measurable.
        self.membership_version = 0

    def push(self, item: Any) -> None:
        """Append *item* to its job's queue."""
        job_id = item.job_id
        queue = self._queues.get(job_id)
        if queue is None:
            queue = self._queues[job_id] = deque()
            insort(self._sorted_jobs, job_id)
            self.membership_version += 1
        queue.append(item)
        cost = item.cost
        self._total += 1
        self._total_cost += cost
        self._job_cost[job_id] = self._job_cost.get(job_id, 0.0) + cost

    def pop(self, job_id: int) -> Any:
        """Remove and return the oldest request of *job_id*."""
        queue = self._queues.get(job_id)
        if not queue:
            raise SchedulerError(f"pop from empty queue for job {job_id}")
        item = queue.popleft()
        self._total -= 1
        self._total_cost -= item.cost
        if not queue:
            del self._queues[job_id]
            del self._sorted_jobs[bisect_left(self._sorted_jobs, job_id)]
            self.membership_version += 1
            # Reset the accumulator at empty so float drift cannot build
            # up across a job's lifetime.
            self._job_cost[job_id] = 0.0
        else:
            self._job_cost[job_id] -= item.cost
        return item

    def peek(self, job_id: int) -> Optional[Any]:
        """The oldest queued request of *job_id* without removing it (None if empty)."""
        queue = self._queues.get(job_id)
        return queue[0] if queue else None

    def depth(self, job_id: int) -> int:
        """Number of requests queued for *job_id*."""
        queue = self._queues.get(job_id)
        return len(queue) if queue else 0

    def queued_cost(self, job_id: int) -> float:
        """Total service cost queued for *job_id* (GIFT demand estimate)."""
        if job_id not in self._queues:
            return 0.0
        return self._job_cost[job_id]

    def nonempty_jobs(self) -> List[int]:
        """Job ids with at least one queued request, sorted."""
        return list(self._sorted_jobs)

    def backlogged_jobs(self) -> int:
        """Number of jobs with at least one queued request (O(1))."""
        return len(self._sorted_jobs)

    @property
    def total(self) -> int:
        """Total queued requests across all jobs."""
        return self._total

    @property
    def total_cost(self) -> float:
        return self._total_cost

    def drain(self) -> List[Any]:
        """Remove and return every queued request (crash path).

        Items come back grouped by job in sorted-job order, oldest first
        within a job — a deterministic order so two identical runs drop
        identical request sequences. All bookkeeping is reset.
        """
        items: List[Any] = []
        for job_id in self._sorted_jobs:
            items.extend(self._queues[job_id])
        self._queues.clear()
        self._sorted_jobs.clear()
        self._total = 0
        self._total_cost = 0.0
        self._job_cost.clear()
        self.membership_version += 1
        return items

    def __len__(self) -> int:
        return self._total

    def __bool__(self) -> bool:
        return self._total > 0
