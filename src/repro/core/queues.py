"""Per-entity request queues (§4.1's communicator queues).

Inbound I/O requests "are grouped into queues based on the fair sharing
policy ... identified by job ids". Queue items only need a ``job_id``
attribute plus a ``cost`` (bytes of service the request consumes); the
burst-buffer request type satisfies this protocol.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..errors import SchedulerError

__all__ = ["QueueSet"]


class QueueSet:
    """A set of FIFO queues keyed by job id."""

    def __init__(self):
        self._queues: Dict[int, Deque[Any]] = {}
        self._total = 0
        self._total_cost = 0.0

    def push(self, item: Any) -> None:
        """Append *item* to its job's queue."""
        job_id = item.job_id
        queue = self._queues.get(job_id)
        if queue is None:
            queue = self._queues[job_id] = deque()
        queue.append(item)
        self._total += 1
        self._total_cost += item.cost

    def pop(self, job_id: int) -> Any:
        """Remove and return the oldest request of *job_id*."""
        queue = self._queues.get(job_id)
        if not queue:
            raise SchedulerError(f"pop from empty queue for job {job_id}")
        item = queue.popleft()
        self._total -= 1
        self._total_cost -= item.cost
        if not queue:
            del self._queues[job_id]
        return item

    def peek(self, job_id: int) -> Optional[Any]:
        """The oldest queued request of *job_id* without removing it (None if empty)."""
        queue = self._queues.get(job_id)
        return queue[0] if queue else None

    def depth(self, job_id: int) -> int:
        """Number of requests queued for *job_id*."""
        queue = self._queues.get(job_id)
        return len(queue) if queue else 0

    def queued_cost(self, job_id: int) -> float:
        """Total service cost queued for *job_id* (GIFT demand estimate)."""
        queue = self._queues.get(job_id)
        return sum(item.cost for item in queue) if queue else 0.0

    def nonempty_jobs(self) -> List[int]:
        """Job ids with at least one queued request, sorted."""
        return sorted(self._queues)

    @property
    def total(self) -> int:
        """Total queued requests across all jobs."""
        return self._total

    @property
    def total_cost(self) -> float:
        return self._total_cost

    def __len__(self) -> int:
        return self._total

    def __bool__(self) -> bool:
        return self._total > 0
