"""The paper's customized benchmarks (§5.1, §5.3.1).

- :class:`WriteReadCycle` — the §5.3 sharing benchmark: "opens one file
  per process. Each process writes 10 MB of data to its file, then reads
  it back, and continues to repeat this write/read cycle".
- :class:`IopsWriteRead` — ``iops_write_read``: "writes a small (1 MB)
  file then reads the same file repeatedly"; also the §5.5 background
  interference job.
- :class:`IopsStat` — ``iops_stat``: "repeatedly calls stat() to query
  file metadata with randomly generated file names".
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigError
from ..units import MB
from .base import Workload

__all__ = ["WriteReadCycle", "IopsWriteRead", "IopsStat", "PinnedWriter"]


class WriteReadCycle(Workload):
    """Write *file_size* to a private file, read it back, repeat."""

    def __init__(self, file_size: int = 10 * MB,
                 request_size: Optional[int] = None,
                 streams_per_node: int = 4):
        if file_size <= 0:
            raise ConfigError("file_size must be positive")
        self.file_size = int(file_size)
        self.request_size = int(request_size or file_size)
        if self.request_size <= 0 or self.request_size > self.file_size:
            raise ConfigError("request_size must be in (0, file_size]")
        self.streams_per_node = streams_per_node

    def run_stream(self, engine, client, rng, prefix, stream_idx, stop_time):
        path = f"{prefix}/cycle-{client.client_id}-{stream_idx}"
        yield from client.create(path)
        while not self._expired(engine, stop_time):
            offset = 0
            while offset < self.file_size:
                take = min(self.request_size, self.file_size - offset)
                yield from client.write(path, offset, take)
                offset += take
            offset = 0
            while offset < self.file_size and not self._expired(engine, stop_time):
                take = min(self.request_size, self.file_size - offset)
                yield from client.read(path, offset, take)
                offset += take


class IopsWriteRead(Workload):
    """1 MB write-then-read cycles on one small file per stream."""

    def __init__(self, file_size: int = 1 * MB, streams_per_node: int = 8):
        if file_size <= 0:
            raise ConfigError("file_size must be positive")
        self.file_size = int(file_size)
        self.streams_per_node = streams_per_node

    def run_stream(self, engine, client, rng, prefix, stream_idx, stop_time):
        path = f"{prefix}/iops-{client.client_id}-{stream_idx}"
        yield from client.create(path)
        while not self._expired(engine, stop_time):
            yield from client.write(path, 0, self.file_size)
            yield from client.read(path, 0, self.file_size)


class PinnedWriter(Workload):
    """Write loops on *fixed* file paths (placement-controlled).

    The λ-delayed fairness experiment (§5.6) needs each job's files on a
    chosen, disjoint set of servers so the cluster *starts* globally
    unfair. Stream *i* hammers ``paths[i % len(paths)]`` with sequential
    fixed-size writes.
    """

    def __init__(self, paths, request_size: int = 2 * MB,
                 streams_per_node: int = 8):
        self.paths = list(paths)
        if not self.paths:
            raise ConfigError("PinnedWriter needs at least one path")
        if request_size <= 0:
            raise ConfigError("request_size must be positive")
        self.request_size = int(request_size)
        self.streams_per_node = streams_per_node

    def run_stream(self, engine, client, rng, prefix, stream_idx, stop_time):
        path = self.paths[stream_idx % len(self.paths)]
        parent = path.rsplit("/", 1)[0] or "/"
        client.fs.makedirs(parent)  # placement setup, not timed I/O
        if not client.fs.exists(path):
            yield from client.create(path)
        offset = 0
        while not self._expired(engine, stop_time):
            yield from client.write(path, offset, self.request_size)
            offset = (offset + self.request_size) % (64 * self.request_size)


class IopsStat(Workload):
    """stat() storms over randomly generated (mostly missing) names."""

    def __init__(self, name_space: int = 10_000, streams_per_node: int = 8):
        if name_space < 1:
            raise ConfigError("name_space must be >= 1")
        self.name_space = int(name_space)
        self.streams_per_node = streams_per_node

    def run_stream(self, engine, client, rng, prefix, stream_idx, stop_time):
        while not self._expired(engine, stop_time):
            name = int(rng.integers(0, self.name_space))
            yield from client.stat(f"{prefix}/random-{name}")
