"""mdtest-like metadata benchmark (§5.1).

Each stream loops create -> stat -> unlink over a private name set,
stressing the metadata path the way the paper's "I/O workload ...
heavy in metadata access" motivation describes (§2.2.1).
"""

from __future__ import annotations

from ..errors import ConfigError
from .base import Workload

__all__ = ["MdtestWorkload"]


class MdtestWorkload(Workload):
    """create/stat/unlink churn on per-stream file names."""

    def __init__(self, files_per_iteration: int = 16,
                 include_readdir: bool = False, streams_per_node: int = 8):
        if files_per_iteration < 1:
            raise ConfigError("files_per_iteration must be >= 1")
        self.files_per_iteration = int(files_per_iteration)
        self.include_readdir = include_readdir
        self.streams_per_node = streams_per_node

    def run_stream(self, engine, client, rng, prefix, stream_idx, stop_time):
        base = f"{prefix}/md-{client.client_id}-{stream_idx}"
        while not self._expired(engine, stop_time):
            for i in range(self.files_per_iteration):
                yield from client.create(f"{base}-{i}")
            for i in range(self.files_per_iteration):
                yield from client.stat(f"{base}-{i}")
            if self.include_readdir:
                yield from client.readdir(prefix)
            for i in range(self.files_per_iteration):
                yield from client.unlink(f"{base}-{i}")
