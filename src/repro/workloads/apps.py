"""Application I/O models (§5.1, Figs. 1 and 13).

The paper's interference study runs five real applications; we model
each as its I/O *pattern* — the thing interference acts on — with
compute phases as simulated delays:

- **NAMD** (64 nodes): compute-dominant MD; writes a trajectory burst
  every ``io_every`` steps as a *sequential chain* of requests (rank-0
  style output). Sequential chains are what FIFO hurts: every request
  in the chain pays the full backlog delay of the background job.
- **WRF** (4 nodes): periodic domain output, larger I/O fraction.
- **SPECFEM3D** (16 nodes): small seismogram appends, tiny I/O fraction.
- **ResNet-50** (16 nodes): read-heavy data loading. Asynchronous mode
  prefetches batches; time-to-solution is insensitive to I/O until the
  batch-read chain exceeds the compute step, then it degrades sharply —
  the paper's non-linear 2.7x FIFO case. Synchronous mode reads inline.
- **BERT** (4 nodes): reads large HDF5 shards infrequently.

Byte counts and step times are *simulation-scale* (seconds-long runs,
multi-MB requests) rather than the testbed's hours and terabytes; the
ratios that drive Figs. 1/13 — I/O fraction, chain concurrency vs. the
background job's, sync vs. async — follow the paper's descriptions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from ..errors import ConfigError
from ..units import KiB, MB
from .base import Workload

__all__ = ["AppProfile", "ApplicationWorkload", "NAMD", "WRF", "SPECFEM3D",
           "RESNET50", "RESNET50_SYNC", "BERT", "APP_PROFILES"]


@dataclass(frozen=True)
class AppProfile:
    """Shape of one application's execution (per I/O stream)."""

    name: str
    nodes: int                 # job size the policies see
    steps: int                 # compute steps to completion
    compute_per_step: float    # seconds of compute per step
    io_every: int              # steps between I/O phases
    io_bytes: int              # bytes moved per I/O phase (per stream)
    io_request: int            # request granularity (sequential chain)
    io_op: str = "write"       # "write" or "read"
    async_depth: int = 0       # >0: prefetch pipeline (ResNet-style reads)
    warmup_read: int = 0       # input bytes read once at start

    def __post_init__(self):
        if self.io_op not in ("write", "read"):
            raise ConfigError(f"io_op must be write/read: {self.io_op!r}")
        if self.steps < 1 or self.io_every < 1:
            raise ConfigError("steps and io_every must be >= 1")
        if self.io_bytes < 0 or self.io_request <= 0:
            raise ConfigError("io_bytes >= 0 and io_request > 0 required")
        if self.async_depth > 0 and self.io_op != "read":
            raise ConfigError("async pipeline models read-side prefetching")

    def sync_variant(self) -> "AppProfile":
        """The synchronous-I/O variant (§5.5's ResNet validation run)."""
        return replace(self, name=f"{self.name}-sync", async_depth=0)


class ApplicationWorkload(Workload):
    """Drives one :class:`AppProfile` through the burst buffer."""

    #: application output is a per-node stream, not a 56-proc storm.
    streams_per_node = 1

    def __init__(self, profile: AppProfile):
        self.profile = profile

    @property
    def name(self) -> str:
        return self.profile.name

    # ------------------------------------------------------------------ body
    def run_stream(self, engine, client, rng, prefix, stream_idx, stop_time):
        p = self.profile
        path = f"{prefix}/{p.name}-{client.client_id}-{stream_idx}"
        yield from client.create(path)
        if p.warmup_read:
            client.fs.write_accounting(path, p.warmup_read, 0)  # staged input
            yield from self._chain(client, path, p.warmup_read, "read")
        if p.async_depth > 0:
            yield from self._run_async(engine, client, path)
        else:
            yield from self._run_sync(engine, client, path)

    def _chain(self, client, path: str, nbytes: int, op: str):
        """A sequential dependent chain of requests totalling *nbytes*."""
        p = self.profile
        offset = 0
        while offset < nbytes:
            take = min(p.io_request, nbytes - offset)
            if op == "write":
                yield from client.write(path, offset, take)
            else:
                yield from client.read(path, offset, take)
            offset += take

    def _run_sync(self, engine, client, path: str):
        p = self.profile
        if p.io_op == "read":
            client.fs.write_accounting(path, p.io_bytes, 0)  # staged data
        for step in range(p.steps):
            yield engine.timeout(p.compute_per_step)
            if (step + 1) % p.io_every == 0 and p.io_bytes:
                yield from self._chain(client, path, p.io_bytes, p.io_op)

    def _run_async(self, engine, client, path: str):
        """Prefetch pipeline: a loader keeps ``async_depth`` batch reads
        in flight; each compute step consumes one ready batch."""
        p = self.profile
        client.fs.write_accounting(path, p.io_bytes, 0)  # staged dataset
        pipeline = deque()

        def load_batch():
            yield from self._chain(client, path, p.io_bytes, "read")

        for _ in range(p.async_depth):
            pipeline.append(engine.process(load_batch()))
        for step in range(p.steps):
            if (step + 1) % p.io_every == 0 and p.io_bytes:
                batch = pipeline.popleft()
                yield batch                      # block until data is ready
                pipeline.append(engine.process(load_batch()))
            yield engine.timeout(p.compute_per_step)


# ---------------------------------------------------------------------------
# Simulation-scale profiles of the paper's five applications (§5.1). The
# nodes match the paper; durations/bytes are scaled so a run lasts a few
# simulated seconds against a 22 GB/s server. See module docstring.
# ---------------------------------------------------------------------------

NAMD = AppProfile(
    name="namd", nodes=64, steps=48, compute_per_step=0.0625,
    io_every=12, io_bytes=400 * MB, io_request=4 * MB, io_op="write")
"""64-node MD run saving a trajectory burst every 12 steps (paper: every
48 steps); ~3 s compute, ~0.9 GB output per stream."""

WRF = AppProfile(
    name="wrf", nodes=4, steps=48, compute_per_step=0.055,
    io_every=8, io_bytes=210 * MB, io_request=4 * MB, io_op="write")
"""4-node CONUS-style forecast writing history files frequently; the
highest I/O fraction of the write-heavy apps."""

SPECFEM3D = AppProfile(
    name="specfem3d", nodes=16, steps=40, compute_per_step=0.07,
    io_every=10, io_bytes=24 * MB, io_request=4 * MB, io_op="write")
"""16-node seismic propagation appending small seismogram records."""

RESNET50 = AppProfile(
    name="resnet50", nodes=16, steps=40, compute_per_step=0.04,
    io_every=1, io_bytes=104 * MB, io_request=256 * KiB, io_op="read",
    async_depth=4)
"""16-node training with an asynchronous data-loading pipeline: each step
consumes one batch assembled from many small image reads (ImageNet files
average ~116 KB; grouped into 256 KiB requests here). Calibrated so the
prefetch pipeline exactly hides I/O when exclusive and collapses
non-linearly under FIFO interference (the paper's 2.7x case)."""

RESNET50_SYNC = RESNET50.sync_variant()
"""ResNet-50 with synchronous reads (the paper's §5.5 validation run)."""

BERT = AppProfile(
    name="bert", nodes=4, steps=30, compute_per_step=0.1,
    io_every=10, io_bytes=48 * MB, io_request=8 * MB, io_op="read")
"""4-node pretraining reading ~48 MB HDF5 shards occasionally."""

APP_PROFILES = {p.name: p for p in (NAMD, WRF, SPECFEM3D, RESNET50, BERT)}
