"""Trace-driven workloads: replay recorded I/O operation streams.

Production studies often start from I/O traces (Darshan logs, strace
captures). :class:`TraceWorkload` replays a list of :class:`TraceOp`
records through the burst-buffer client — either *timed* (each op waits
for its recorded timestamp, preserving burstiness) or *as-fast-as-
possible* (closed-loop, for saturation studies). A simple CSV codec
(``time,op,path,offset,size``) covers interchange; paths may contain
``{stream}`` and ``{client}`` placeholders so one trace fans out across
streams without false sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..errors import ConfigError
from .base import Workload

__all__ = ["TraceOp", "TraceWorkload", "parse_trace_csv", "format_trace_csv"]

_VALID_OPS = {"write", "read", "stat", "open", "unlink", "mkdir", "readdir"}


@dataclass(frozen=True)
class TraceOp:
    """One recorded I/O operation, timestamped from stream start."""

    time: float
    op: str
    path: str
    offset: int = 0
    size: int = 0

    def __post_init__(self):
        if self.time < 0:
            raise ConfigError(f"negative timestamp: {self.time}")
        if self.op not in _VALID_OPS:
            raise ConfigError(f"unknown trace op {self.op!r}")
        if self.offset < 0 or self.size < 0:
            raise ConfigError(f"negative offset/size in trace op: {self}")
        if self.op in ("write", "read") and self.size == 0:
            raise ConfigError(f"data op with zero size: {self}")


def parse_trace_csv(text: str) -> List[TraceOp]:
    """Parse ``time,op,path[,offset[,size]]`` lines ('#' comments skipped)."""
    ops: List[TraceOp] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split(",")]
        if len(parts) < 3:
            raise ConfigError(f"trace line {lineno}: expected at least "
                              f"time,op,path: {raw!r}")
        try:
            time = float(parts[0])
            offset = int(parts[3]) if len(parts) > 3 and parts[3] else 0
            size = int(parts[4]) if len(parts) > 4 and parts[4] else 0
        except ValueError as exc:
            raise ConfigError(f"trace line {lineno}: {exc}") from None
        ops.append(TraceOp(time=time, op=parts[1], path=parts[2],
                           offset=offset, size=size))
    ops.sort(key=lambda op: op.time)
    return ops


def format_trace_csv(ops: Iterable[TraceOp]) -> str:
    """Serialise ops back to the CSV form accepted by :func:`parse_trace_csv`."""
    lines = ["# time,op,path,offset,size"]
    for op in ops:
        lines.append(f"{op.time},{op.op},{op.path},{op.offset},{op.size}")
    return "\n".join(lines) + "\n"


class TraceWorkload(Workload):
    """Replay a trace through the burst buffer.

    Parameters
    ----------
    ops:
        The trace, ordered by time.
    timed:
        True (default): each op waits for its recorded timestamp —
        burstiness is preserved. False: ops run back-to-back.
    loop:
        Repeat the trace until *stop_time* (open-ended benchmarks).
    """

    def __init__(self, ops: Iterable[TraceOp], timed: bool = True,
                 loop: bool = False, streams_per_node: int = 1):
        self.ops = sorted(ops, key=lambda op: op.time)
        if not self.ops:
            raise ConfigError("empty trace")
        self.timed = timed
        self.loop = loop
        self.streams_per_node = streams_per_node

    def _resolve(self, op: TraceOp, client, prefix: str,
                 stream_idx: int) -> str:
        path = op.path.format(stream=stream_idx, client=client.client_id)
        if not path.startswith("/"):
            path = f"{prefix}/{path}"
        return path

    def run_stream(self, engine, client, rng, prefix, stream_idx, stop_time):
        created = set()
        while True:
            start = engine.now
            for op in self.ops:
                if self._expired(engine, stop_time):
                    return
                if self.timed:
                    due = start + op.time
                    if due > engine.now:
                        yield engine.timeout(due - engine.now)
                path = self._resolve(op, client, prefix, stream_idx)
                if op.op in ("write", "read") and path not in created \
                        and not client.fs.exists(path):
                    yield from client.create(path)
                    created.add(path)
                if op.op == "write":
                    yield from client.write(path, op.offset, op.size)
                elif op.op == "read":
                    yield from client.read(path, op.offset, op.size)
                elif op.op == "stat":
                    yield from client.stat(path)
                elif op.op == "open":
                    yield from client.create(path)
                    created.add(path)
                elif op.op == "unlink":
                    yield from client.unlink(path)
                    created.discard(path)
                elif op.op == "mkdir":
                    yield from client.mkdir(path)
                elif op.op == "readdir":
                    yield from client.readdir(path)
            if not self.loop or self._expired(engine, stop_time):
                return
