"""IOR-like sequential benchmark (§5.2).

Fig. 7's scaling runs: "an equal number of nodes were each running
eight IOR processes, writing and reading 1 GB files in 1 MB blocks",
measured unidirectionally (a pure-write phase, then a pure-read phase).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import GiB, MiB
from .base import Workload

__all__ = ["IORWorkload"]


class IORWorkload(Workload):
    """Sequential block I/O on one file per stream.

    Parameters
    ----------
    file_size / block_size:
        Total bytes per stream and the transfer size (paper: 1 GiB / 1 MiB).
    mode:
        ``"write"`` or ``"read"`` for unidirectional runs (the file is
        pre-written before reads), or ``"writeread"`` for both phases.
    repeat:
        Loop the phase until *stop_time* (throughput measurement) instead
        of finishing after one pass.
    """

    MODES = ("write", "read", "writeread")

    def __init__(self, file_size: int = GiB, block_size: int = MiB,
                 mode: str = "write", repeat: bool = True,
                 streams_per_node: int = 8):
        if mode not in self.MODES:
            raise ConfigError(f"mode must be one of {self.MODES}: {mode!r}")
        if file_size <= 0 or block_size <= 0 or block_size > file_size:
            raise ConfigError("need 0 < block_size <= file_size")
        self.file_size = int(file_size)
        self.block_size = int(block_size)
        self.mode = mode
        self.repeat = repeat
        self.streams_per_node = streams_per_node

    def _pass(self, engine, client, path, op, stop_time):
        offset = 0
        while offset < self.file_size:
            if self._expired(engine, stop_time):
                return
            take = min(self.block_size, self.file_size - offset)
            if op == "write":
                yield from client.write(path, offset, take)
            else:
                yield from client.read(path, offset, take)
            offset += take

    def run_stream(self, engine, client, rng, prefix, stream_idx, stop_time):
        path = f"{prefix}/ior-{client.client_id}-{stream_idx}"
        yield from client.create(path)
        if self.mode == "read":
            # Pre-populate without charging the measurement: extend the
            # file's logical size directly (setup, not timed I/O).
            client.fs.write_accounting(path, self.file_size, 0)
        while True:
            if self.mode in ("write", "writeread"):
                yield from self._pass(engine, client, path, "write", stop_time)
            if self.mode in ("read", "writeread"):
                yield from self._pass(engine, client, path, "read", stop_time)
            if not self.repeat or self._expired(engine, stop_time):
                return
