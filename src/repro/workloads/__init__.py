"""Workload generators: the paper's benchmarks and application models."""

from .apps import (APP_PROFILES, BERT, NAMD, RESNET50, RESNET50_SYNC,
                   SPECFEM3D, WRF, ApplicationWorkload, AppProfile)
from .base import JobSpec, Workload
from .custom import IopsStat, IopsWriteRead, PinnedWriter, WriteReadCycle
from .ior import IORWorkload
from .mdtest import MdtestWorkload
from .traces import TraceOp, TraceWorkload, format_trace_csv, parse_trace_csv

__all__ = [
    "Workload",
    "JobSpec",
    "WriteReadCycle",
    "IopsWriteRead",
    "IopsStat",
    "PinnedWriter",
    "IORWorkload",
    "MdtestWorkload",
    "TraceOp",
    "TraceWorkload",
    "parse_trace_csv",
    "format_trace_csv",
    "ApplicationWorkload",
    "AppProfile",
    "APP_PROFILES",
    "NAMD",
    "WRF",
    "SPECFEM3D",
    "RESNET50",
    "RESNET50_SYNC",
    "BERT",
]
