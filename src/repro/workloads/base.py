"""Workload framework.

A :class:`Workload` describes what every application *stream* (one
process's I/O loop) does. The harness instantiates, per job, one
burst-buffer client per compute node and ``streams_per_node`` concurrent
stream processes per client — the scaled-down analogue of the paper's
"56 MPI processes per node".

``run_stream`` is a simulation generator: it performs I/O through the
client and returns when the stream's work is done (fixed-step
applications) or when the simulated clock passes *stop_time*
(open-ended benchmarks).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..core.jobinfo import JobInfo
from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from ..bb.client import Client
    from ..sim.engine import Engine

__all__ = ["JobSpec", "Workload"]


@dataclass(frozen=True)
class JobSpec:
    """One job's identity and shape, as the scheduler sees it."""

    job_id: int
    user: str
    group: str = "g0"
    nodes: int = 1          # compute-node count = the "size" policies use
    priority: float = 1.0

    def __post_init__(self):
        if self.nodes < 1:
            raise ConfigError(f"nodes must be >= 1: {self.nodes}")

    def info(self) -> JobInfo:
        """The JobInfo embedded in this job's I/O requests."""
        return JobInfo(job_id=self.job_id, user=self.user, group=self.group,
                       size=self.nodes, priority=self.priority)


class Workload(ABC):
    """Base class for all workload generators."""

    #: concurrent I/O streams per compute node (scaled-down proc count).
    streams_per_node: int = 4

    @abstractmethod
    def run_stream(self, engine: "Engine", client: "Client",
                   rng: np.random.Generator, prefix: str, stream_idx: int,
                   stop_time: Optional[float]):
        """Generator body of one stream; see module docstring."""

    @staticmethod
    def _expired(engine: "Engine", stop_time: Optional[float]) -> bool:
        return stop_time is not None and engine.now >= stop_time

    @property
    def name(self) -> str:
        return type(self).__name__
