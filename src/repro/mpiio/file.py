"""Collective MPI-IO-style file access with two-phase aggregation.

ROMIO's collective buffering in miniature (§2.1 cites Thakur et al.'s
MPI-IO work as the library layer above systems like ThemisIO): when
every rank of a communicator enters ``write_at_all``/``read_at_all``,
the collective

1. gathers all ranks' (offset, size) pieces,
2. coalesces them into maximal contiguous runs,
3. partitions the covered byte range into per-aggregator *file domains*
   (``cb_nodes`` aggregator ranks),
4. shuffles each rank's data to/from the owning aggregator over the
   fabric (real messages, so the exchange costs wire time), and
5. has each aggregator issue few large contiguous burst-buffer requests
   instead of many small strided ones.

Independent ``write_at``/``read_at`` bypass all of that — which is
exactly the comparison the collective-I/O example/benchmark makes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bb.client import Client
from ..errors import ConfigError
from ..net.message import Message
from ..sim.process import Event
from .datatype import Piece, coalesce, total_bytes

__all__ = ["Communicator", "MPIFile"]


class Communicator:
    """A fixed group of ranks, each backed by one burst-buffer client."""

    def __init__(self, clients: Sequence[Client]):
        if not clients:
            raise ConfigError("communicator needs at least one rank")
        self.clients = list(clients)
        self.engine = self.clients[0].engine

    @property
    def size(self) -> int:
        return len(self.clients)

    def client(self, rank: int) -> Client:
        """The burst-buffer client backing *rank*."""
        if not 0 <= rank < self.size:
            raise ConfigError(f"rank {rank} outside [0, {self.size})")
        return self.clients[rank]


class _Collective:
    """One in-flight collective operation's rendezvous state."""

    def __init__(self, size: int):
        self.pieces: Dict[int, List[Piece]] = {}
        self.events: Dict[int, Event] = {}
        self.arrived = 0
        self.size = size

    def complete(self) -> bool:
        return self.arrived == self.size


class MPIFile:
    """A shared file opened collectively by a communicator."""

    def __init__(self, comm: Communicator, path: str,
                 cb_nodes: Optional[int] = None):
        self.comm = comm
        self.path = path
        self.cb_nodes = min(cb_nodes or max(1, comm.size // 4), comm.size)
        self._opened = False
        self._write_seq = 0
        self._read_seq = 0
        self._collectives: Dict[Tuple[str, int], _Collective] = {}
        self.collective_rounds = 0
        self.shuffled_bytes = 0

    # -------------------------------------------------------------- lifecycle
    def open(self):
        """Generator: collective open (rank 0 creates the file)."""
        if not self._opened:
            yield from self.comm.client(0).create(self.path)
            self._opened = True

    # ------------------------------------------------------------ independent
    def write_at(self, rank: int, pieces: Sequence[Piece]) -> int:
        """Generator: independent (non-collective) writes of *pieces*."""
        client = self.comm.client(rank)
        written = 0
        for offset, size in pieces:
            written += yield from client.write(self.path, offset, size)
        return written

    def read_at(self, rank: int, pieces: Sequence[Piece]) -> int:
        """Generator: independent reads of *pieces*."""
        client = self.comm.client(rank)
        read = 0
        for offset, size in pieces:
            read += yield from client.read(self.path, offset, size)
        return read

    # ------------------------------------------------------------- collective
    def write_at_all(self, rank: int, pieces: Sequence[Piece]) -> int:
        """Generator: collective write; every rank must call it once per
        round. Returns this rank's bytes once the whole collective ends."""
        return (yield from self._collective("write", rank, pieces))

    def read_at_all(self, rank: int, pieces: Sequence[Piece]) -> int:
        """Generator: collective read (two-phase: aggregators read large
        runs, then scatter pieces back over the fabric)."""
        return (yield from self._collective("read", rank, pieces))

    def _collective(self, kind: str, rank: int, pieces: Sequence[Piece]):
        if not 0 <= rank < self.comm.size:
            raise ConfigError(f"rank {rank} outside the communicator")
        seq = self._write_seq if kind == "write" else self._read_seq
        key = (kind, seq)
        coll = self._collectives.get(key)
        if coll is None:
            coll = self._collectives[key] = _Collective(self.comm.size)
        if rank in coll.pieces:
            raise ConfigError(
                f"rank {rank} entered {kind}_at_all twice in one round")
        coll.pieces[rank] = list(pieces)
        done = Event(self.comm.engine)
        coll.events[rank] = done
        coll.arrived += 1
        if coll.complete():
            if kind == "write":
                self._write_seq += 1
            else:
                self._read_seq += 1
            del self._collectives[key]
            self.comm.engine.process(self._run_two_phase(kind, coll))
        result = yield done
        return result

    # --------------------------------------------------------------- 2-phase
    def _domains(self, runs: List[Piece]) -> List[Tuple[int, Piece]]:
        """Split contiguous runs into (aggregator rank, run) file domains."""
        covered = total_bytes(runs)
        if covered == 0:
            return []
        per_agg = -(-covered // self.cb_nodes)  # ceil
        out: List[Tuple[int, Piece]] = []
        agg, budget = 0, per_agg
        for offset, length in runs:
            pos = offset
            remaining = length
            while remaining > 0:
                take = min(remaining, budget)
                out.append((agg, (pos, take)))
                pos += take
                remaining -= take
                budget -= take
                if budget == 0 and agg < self.cb_nodes - 1:
                    agg += 1
                    budget = per_agg
        return out

    def _run_two_phase(self, kind: str, coll: _Collective):
        engine = self.comm.engine
        self.collective_rounds += 1
        runs = coalesce(
            piece for plist in coll.pieces.values() for piece in plist)
        domains = self._domains(runs)

        # Exchange phase: every byte a rank owns inside another rank's
        # file domain crosses the fabric once (both directions cost the
        # same; model the shuffle before writes and after reads).
        def shuffle():
            sends = []
            for agg, (d_off, d_len) in domains:
                d_end = d_off + d_len
                agg_node = self.comm.client(agg).ctx.node_name
                fabric = self.comm.client(agg).ctx.fabric
                for rank, plist in coll.pieces.items():
                    if rank == agg:
                        continue
                    src_node = self.comm.client(rank).ctx.node_name
                    overlap = sum(
                        max(0, min(p_off + p_len, d_end) - max(p_off, d_off))
                        for p_off, p_len in plist)
                    if overlap > 0:
                        self.shuffled_bytes += overlap
                        src, dst = ((src_node, agg_node) if kind == "write"
                                    else (agg_node, src_node))
                        sends.append(fabric.send(Message(
                            src=src, dst=dst, tag="mpiio.shuffle",
                            size=overlap)))
            if sends:
                yield engine.all_of(sends)

        def io_phase():
            calls = []
            for agg, (d_off, d_len) in domains:
                client = self.comm.client(agg)
                if kind == "write":
                    calls.append(engine.process(
                        client.write(self.path, d_off, d_len)))
                else:
                    calls.append(engine.process(
                        client.read(self.path, d_off, d_len)))
            if calls:
                yield engine.all_of(calls)

        if kind == "write":
            yield from shuffle()
            yield from io_phase()
        else:
            yield from io_phase()
            yield from shuffle()

        for rank, done in coll.events.items():
            done.succeed(total_bytes(coll.pieces[rank]))
