"""MPI-IO-style library layer (§2.1): file views and ROMIO-like
two-phase collective buffering over the burst-buffer client."""

from .datatype import ContiguousView, VectorView, coalesce, total_bytes
from .file import Communicator, MPIFile

__all__ = [
    "Communicator",
    "MPIFile",
    "ContiguousView",
    "VectorView",
    "coalesce",
    "total_bytes",
]
