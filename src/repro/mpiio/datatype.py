"""File-view datatypes for the MPI-IO layer.

The paper's applications reach the burst buffer through "I/O libraries
such as MPI-IO" (§2.1). MPI's expressiveness comes from *file views*:
each rank sees a (possibly strided) subset of the file. This module
provides the two views the collective layer needs — contiguous blocks
and ROMIO-style vectors — as generators of ``(offset, size)`` pieces,
plus interval utilities used by the two-phase aggregator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..errors import ConfigError

__all__ = ["ContiguousView", "VectorView", "coalesce", "total_bytes"]

Piece = Tuple[int, int]  # (file offset, length)


@dataclass(frozen=True)
class ContiguousView:
    """Rank *rank* owns one contiguous block of ``block`` bytes.

    The classic N-ranks-write-N-blocks pattern: rank i covers
    ``[disp + i*block, disp + (i+1)*block)``.
    """

    block: int
    disp: int = 0

    def __post_init__(self):
        if self.block <= 0 or self.disp < 0:
            raise ConfigError("block must be > 0 and disp >= 0")

    def pieces(self, rank: int, count: int = 1) -> List[Piece]:
        """The pieces rank *rank* touches for *count* view repetitions."""
        if rank < 0 or count < 1:
            raise ConfigError("rank >= 0 and count >= 1 required")
        return [(self.disp + rank * self.block * count + i * self.block,
                 self.block) for i in range(count)]


@dataclass(frozen=True)
class VectorView:
    """Rank-interleaved strided access (MPI_Type_vector semantics).

    Each *round* of the pattern lays ranks' blocks out at stride
    ``nranks * blocklen``: rank i owns
    ``[disp + (round*nranks + i) * blocklen, +blocklen)`` — the
    row-of-a-2D-array decomposition two-phase I/O exists for.
    """

    nranks: int
    blocklen: int
    disp: int = 0

    def __post_init__(self):
        if self.nranks < 1 or self.blocklen <= 0 or self.disp < 0:
            raise ConfigError("nranks >= 1, blocklen > 0, disp >= 0 required")

    def pieces(self, rank: int, count: int = 1) -> List[Piece]:
        """The strided pieces rank *rank* touches over *count* rounds."""
        if not 0 <= rank < self.nranks:
            raise ConfigError(f"rank {rank} outside [0, {self.nranks})")
        if count < 1:
            raise ConfigError("count >= 1 required")
        stride = self.nranks * self.blocklen
        return [(self.disp + r * stride + rank * self.blocklen, self.blocklen)
                for r in range(count)]


def coalesce(pieces: Iterable[Piece]) -> List[Piece]:
    """Merge adjacent/overlapping pieces into maximal contiguous runs."""
    items = sorted(pieces)
    merged: List[Piece] = []
    for offset, length in items:
        if length <= 0:
            raise ConfigError(f"non-positive piece length: {length}")
        if merged and offset <= merged[-1][0] + merged[-1][1]:
            last_off, last_len = merged[-1]
            merged[-1] = (last_off,
                          max(last_off + last_len, offset + length) - last_off)
        else:
            merged.append((offset, length))
    return merged


def total_bytes(pieces: Iterable[Piece]) -> int:
    """Sum of piece lengths (pieces assumed disjoint)."""
    return sum(length for _, length in pieces)
