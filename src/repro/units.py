"""Size and time unit constants plus small formatting helpers.

The simulator's base units are **bytes** and **seconds** (floats). All
bandwidths are bytes/second. These constants keep magnitudes readable at
call sites (``4 * MiB`` rather than ``4194304``).
"""

from __future__ import annotations

# Binary sizes
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# Decimal sizes (storage vendors / the paper's GB/s figures)
KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB

# Time (seconds)
USEC = 1e-6
MSEC = 1e-3
SEC = 1.0
MINUTE = 60.0
HOUR = 3600.0


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``fmt_bytes(2*MiB)``."""
    n = float(n)
    for unit, name in ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if abs(n) >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n:.0f} B"


def fmt_bw(bytes_per_sec: float) -> str:
    """Format a bandwidth in decimal GB/s or MB/s like the paper reports."""
    v = float(bytes_per_sec)
    if abs(v) >= GB:
        return f"{v / GB:.2f} GB/s"
    if abs(v) >= MB:
        return f"{v / MB:.1f} MB/s"
    return f"{v / KB:.1f} KB/s"


def fmt_time(seconds: float) -> str:
    """Format a duration adaptively (us/ms/s)."""
    s = float(seconds)
    if abs(s) < MSEC:
        return f"{s / USEC:.1f} us"
    if abs(s) < SEC:
        return f"{s / MSEC:.1f} ms"
    return f"{s:.3f} s"
