"""Lightweight event tracing for debugging and metrics extraction.

A :class:`Tracer` records ``(time, category, payload)`` tuples. Categories
are plain strings (``"io.complete"``, ``"sync.gather"`` ...). Recording is
O(1) appends; filtering happens at read time. Disabled categories cost a
set lookup only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    payload: Any

    def __iter__(self):
        return iter((self.time, self.category, self.payload))


class Tracer:
    """Collects trace records from the simulation.

    Parameters
    ----------
    engine:
        Supplies timestamps.
    enabled:
        If given, only these categories are recorded; otherwise everything.
    """

    def __init__(self, engine: "Engine", enabled: Optional[Set[str]] = None):
        self.engine = engine
        self.enabled = set(enabled) if enabled is not None else None
        self.records: List[TraceRecord] = []

    def emit(self, category: str, payload: Any = None) -> None:
        """Record an event in *category* at the current simulated time."""
        if self.enabled is not None and category not in self.enabled:
            return
        self.records.append(TraceRecord(self.engine.now, category, payload))

    def select(self, category: str) -> Iterator[TraceRecord]:
        """Iterate records of exactly *category*."""
        return (r for r in self.records if r.category == category)

    def select_prefix(self, prefix: str) -> Iterator[TraceRecord]:
        """Iterate records whose category starts with *prefix*."""
        return (r for r in self.records if r.category.startswith(prefix))

    def clear(self) -> None:
        """Discard all recorded trace entries."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
