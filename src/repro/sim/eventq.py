"""Calendar event queue: amortized O(1) scheduling for timer churn.

An alternative backing store for the :class:`~repro.sim.engine.Engine`'s
pending-event set. The default binary heap pays O(log n) per push/pop
with n counting *everything* outstanding — including far-future
heartbeats and soon-to-be-cancelled RPC expiry timers. A calendar queue
(Brown 1988) instead hashes events by time into an array of buckets
covering a sliding window; steady-state near-future churn appends to a
bucket in O(1) and each bucket is sorted only once, when the clock
reaches it. Events beyond the window sit in an overflow ladder (a small
heap) and are redistributed into a fresh window when the calendar
drains — the rollover also re-tunes the bucket width to the observed
event density, so the structure adapts as a run moves between regimes
(dense I/O bursts vs. sparse idle heartbeats).

Ordering contract: :meth:`pop` yields entries in exactly ascending
``(time, seq)`` order — the same total order as the heap — so an engine
running on this queue produces bit-identical traces (enforced by the
A/B digest suite and a randomized property test). The proof sketch is
structural: bucket k holds only times in ``[base + k*w, base + (k+1)*w)``,
buckets are drained in index order with each sorted on first touch, the
ladder holds only times at or beyond the window end, and late arrivals
into the already-sorted current bucket are insorted above the drain
cursor (legal because the engine never schedules into the past).

Entries are ``(time, seq, event)`` tuples; ``seq`` is unique, so tuple
comparison never reaches the event object.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, List, Optional, Tuple

__all__ = ["CalendarEventQueue"]

Entry = Tuple[float, int, Any]

#: Floor on the bucket width: with every pending event at one instant the
#: rollover density estimate degenerates to zero, and a zero width would
#: divide by zero in the bucket hash.
_MIN_WIDTH = 1e-9


class CalendarEventQueue:
    """Bucketed calendar queue with a far-future overflow ladder."""

    __slots__ = ("_nb", "_width", "_base", "_end", "_buckets", "_cur",
                 "_drain", "_dpos", "_far", "_len")

    def __init__(self, n_buckets: int = 256):
        if n_buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {n_buckets}")
        self._nb = n_buckets
        self._width = _MIN_WIDTH
        #: Start of the current bucket window; None until first rollover
        #: (all pushes land in the ladder, so the first rollover sizes
        #: the buckets from the actual event distribution).
        self._base: Optional[float] = None
        self._end = 0.0
        self._buckets: List[List[Entry]] = [[] for _ in range(n_buckets)]
        self._cur = 0
        #: The current bucket, sorted, being consumed from ``_dpos``.
        self._drain: List[Entry] = []
        self._dpos = 0
        #: Overflow ladder: heap of entries at or beyond the window end.
        self._far: List[Entry] = []
        self._len = 0

    def __len__(self) -> int:
        return self._len

    # ------------------------------------------------------------- core ops
    def push(self, when: float, seq: int, event: Any) -> None:
        """Insert an entry; O(1) unless it lands in the sorted drain."""
        self._len += 1
        base = self._base
        if base is None or when >= self._end:
            heapq.heappush(self._far, (when, seq, event))
            return
        idx = int((when - base) / self._width)
        if idx >= self._nb:  # float edge at the window boundary
            idx = self._nb - 1
        if idx <= self._cur:
            # Arrives in (or before) the bucket being drained: keep the
            # sorted invariant. The engine clock is monotone, so the
            # insertion point is always at or above the drain cursor.
            insort(self._drain, (when, seq, event), lo=self._dpos)
        else:
            self._buckets[idx].append((when, seq, event))

    def peek(self) -> Optional[Entry]:
        """The smallest ``(time, seq)`` entry, or None when empty."""
        if self._dpos >= len(self._drain) and not self._advance():
            return None
        return self._drain[self._dpos]

    def pop(self) -> Optional[Entry]:
        """Remove and return the smallest entry, or None when empty."""
        if self._dpos >= len(self._drain) and not self._advance():
            return None
        entry = self._drain[self._dpos]
        self._dpos += 1
        self._len -= 1
        return entry

    # ------------------------------------------------------------ internals
    def _advance(self) -> bool:
        """Move the drain to the next non-empty bucket (or roll over)."""
        buckets = self._buckets
        for k in range(self._cur + 1, self._nb):
            bucket = buckets[k]
            if bucket:
                bucket.sort()
                self._cur = k
                self._drain = bucket
                buckets[k] = []
                self._dpos = 0
                return True
        return self._rollover()

    def _rollover(self) -> bool:
        """Rebuild the window over the ladder; re-tunes bucket width."""
        self._drain = []
        self._dpos = 0
        far = self._far
        if not far:
            self._base = None
            self._cur = 0
            return False
        t0 = far[0][0]
        tmax = t0
        for entry in far:
            if entry[0] > tmax:
                tmax = entry[0]
        nb = self._nb
        # Width targets ~one ladder entry per bucket; with more entries
        # than buckets the window covers only the near fraction and the
        # rest stays on the ladder for a later rung.
        width = (tmax - t0) / max(len(far), nb - 1)
        if width < _MIN_WIDTH:
            width = _MIN_WIDTH
        end = t0 + width * nb
        keep: List[Entry] = []
        buckets = self._buckets
        for entry in far:
            when = entry[0]
            if when < end:
                idx = int((when - t0) / width)
                if idx >= nb:
                    idx = nb - 1
                buckets[idx].append(entry)
            else:
                keep.append(entry)
        heapq.heapify(keep)
        self._width = width
        self._base = t0
        self._end = end
        self._far = keep
        self._cur = -1  # _advance scans from bucket 0
        return self._advance()

    # ----------------------------------------------------------- compaction
    def compact(self) -> int:
        """Drop cancelled entries from every region; returns count removed."""
        removed = 0
        live = [e for e in self._drain[self._dpos:] if not e[2]._cancelled]
        removed += len(self._drain) - self._dpos - len(live)
        self._drain = live
        self._dpos = 0
        buckets = self._buckets
        for k in range(self._nb):
            bucket = buckets[k]
            if not bucket:
                continue
            kept = [e for e in bucket if not e[2]._cancelled]
            removed += len(bucket) - len(kept)
            buckets[k] = kept
        far = [e for e in self._far if not e[2]._cancelled]
        removed += len(self._far) - len(far)
        heapq.heapify(far)
        self._far = far
        self._len -= removed
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CalendarEventQueue len={self._len} "
                f"base={self._base!r} width={self._width:g}>")
