"""Discrete-event simulation engine.

A minimal, deterministic event-driven kernel in the SimPy style, written
from scratch for this reproduction. The :class:`Engine` owns a virtual
clock and a pending-event queue of scheduled
:class:`~repro.sim.process.Event` objects. Events scheduled at equal
times fire in scheduling order (a monotonically increasing sequence
number breaks ties), which makes every run bit-for-bit reproducible
given the same seeds.

Two queue backends share that ordering contract (DESIGN.md §15): the
default binary heap, and a bucketed calendar queue
(:class:`~repro.sim.eventq.CalendarEventQueue`) selected with
``Engine(eventq="calendar")`` that gives amortized O(1) schedule/pop
under heavy timer churn. Cancelled events
(:meth:`~repro.sim.process.Event.cancel`) are skipped lazily on pop and
compacted away in O(n) once dead entries dominate, so the queue stays
sublinear in garbage; live ``(time, seq)`` ordering is untouched either
way, which is why traces are identical by construction.

Typical usage::

    from repro.sim import Engine

    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.5)
        print("t =", eng.now)

    eng.process(proc(eng))
    eng.run()
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Iterable, Optional, Union

from ..errors import SimulationError, StopSimulation
from .eventq import CalendarEventQueue
from .process import AllOf, AnyOf, Event, Process, Ticker, Timeout

__all__ = ["Engine", "set_default_eventq", "default_eventq"]

# Bound once at import: the schedule/step path runs for every simulated
# event, where even the module-attribute lookup of heapq.heappush shows
# up in profiles.
_heappush = heapq.heappush
_heappop = heapq.heappop

#: Compaction trigger: rebuild the queue once more than this many dead
#: entries are pending *and* they outnumber live ones (dead > max(1024,
#: len/2)). The floor keeps small runs from compacting at all; the ratio
#: bounds the amortized cost at O(1) per cancellation.
_COMPACT_MIN_DEAD = 1024

#: Module default for Engine(eventq=None): None/"heap" or "calendar".
#: Lets A/B harnesses flip the whole stack (clusters build their engines
#: internally) without threading a parameter through every config layer.
_DEFAULT_EVENTQ: Optional[str] = None


def set_default_eventq(kind: Optional[str]) -> None:
    """Select the queue backend newly built Engines default to.

    *kind* is ``None``/"heap" (binary heap) or "calendar"
    (:class:`CalendarEventQueue`). Existing engines are unaffected.
    """
    if kind not in (None, "heap", "calendar"):
        raise SimulationError(f"unknown eventq kind: {kind!r}")
    global _DEFAULT_EVENTQ
    _DEFAULT_EVENTQ = kind


def default_eventq() -> Optional[str]:
    """The queue-backend kind new Engines currently default to."""
    return _DEFAULT_EVENTQ


class Engine:
    """The simulation kernel: virtual clock plus event queue.

    Parameters
    ----------
    start:
        Initial value of the simulated clock (seconds).
    eventq:
        Queue backend: ``None`` (module default, normally the heap),
        ``"heap"``, ``"calendar"``, or any object with the
        push/pop/peek/compact/__len__ protocol of
        :class:`~repro.sim.eventq.CalendarEventQueue`.
    """

    __slots__ = ("_now", "_heap", "_seq", "_active_process",
                 "_stop_requested", "_eventq", "_dead", "_cancelled_total",
                 "_compactions")

    def __init__(self, start: float = 0.0,
                 eventq: Union[None, str, Any] = None):
        self._now = float(start)
        self._heap: list = []  # entries: (time, seq, event)
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._stop_requested = False
        if eventq is None:
            eventq = _DEFAULT_EVENTQ
        if eventq is None or eventq == "heap":
            self._eventq: Optional[Any] = None
        elif eventq == "calendar":
            self._eventq = CalendarEventQueue()
        elif hasattr(eventq, "push") and hasattr(eventq, "pop"):
            self._eventq = eventq
        else:
            raise SimulationError(f"unknown eventq: {eventq!r}")
        self._dead = 0  # cancelled entries still sitting in the queue
        self._cancelled_total = 0
        self._compactions = 0

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------- scheduling
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue *event* to fire ``delay`` seconds from now.

        An event may be scheduled only once; it fires by invoking its
        callbacks with the event as the sole argument. Cancelled events
        cannot be scheduled (their firing would be silently skipped,
        which no caller ever wants).
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        if event._cancelled:
            raise SimulationError(f"cannot schedule cancelled {event!r}")
        event._scheduled = True
        seq = self._seq
        self._seq = seq + 1
        q = self._eventq
        if q is None:
            _heappush(self._heap, (self._now + delay, seq, event))
        else:
            q.push(self._now + delay, seq, event)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a fresh, untriggered event."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Spawn *generator* as a simulation process and return its handle."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in *events* has succeeded."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires as soon as any event in *events* triggers."""
        return AnyOf(self, list(events))

    # ----------------------------------------------------------- cancellation
    def _note_cancel(self) -> None:
        """Record that a scheduled entry just went dead (Event.cancel)."""
        self._dead += 1
        self._cancelled_total += 1

    def _compact(self) -> None:
        """Rebuild the queue without dead entries (O(n); resets census)."""
        q = self._eventq
        if q is None:
            self._heap = [e for e in self._heap if not e[2]._cancelled]
            heapq.heapify(self._heap)
        else:
            q.compact()
        self._dead = 0
        self._compactions += 1

    def stats(self) -> Dict[str, Any]:
        """Event-queue census: pending/dead counts, cancels, compactions."""
        q = self._eventq
        pending = len(self._heap) if q is None else len(q)
        return {
            "now": self._now,
            "eventq": "heap" if q is None else type(q).__name__,
            "pending": pending,
            "dead_pending": self._dead,
            "live_pending": pending - self._dead,
            "cancelled_total": self._cancelled_total,
            "compactions": self._compactions,
        }

    # ---------------------------------------------------------------- running
    def peek(self) -> float:
        """Time of the next live scheduled event, or ``inf`` if none remain.

        Dead (cancelled) entries at the head of the queue are discarded
        as a side effect, so repeated peeks stay O(1) amortized.
        """
        q = self._eventq
        if q is None:
            heap = self._heap
            while heap:
                head = heap[0]
                if head[2]._cancelled:
                    _heappop(heap)
                    self._dead -= 1
                    continue
                return head[0]
            return float("inf")
        while True:
            entry = q.peek()
            if entry is None:
                return float("inf")
            if entry[2]._cancelled:
                q.pop()
                self._dead -= 1
                continue
            return entry[0]

    def step(self) -> None:
        """Process exactly one live event; raise SimulationError if none
        remain. Dead entries encountered on the way are discarded (and
        the queue compacted once they dominate)."""
        q = self._eventq
        if q is None:
            heap = self._heap
            while heap:
                when, _seq, event = _heappop(heap)
                if event._cancelled:
                    dead = self._dead - 1
                    self._dead = dead
                    if dead > _COMPACT_MIN_DEAD and dead * 2 > len(heap):
                        self._compact()
                        heap = self._heap
                    continue
                self._now = when
                event._fire()
                return
            raise SimulationError("no scheduled events")
        while True:
            entry = q.pop()
            if entry is None:
                raise SimulationError("no scheduled events")
            when, _seq, event = entry
            if event._cancelled:
                dead = self._dead - 1
                self._dead = dead
                if dead > _COMPACT_MIN_DEAD and dead * 2 > len(q):
                    self._compact()
                continue
            self._now = when
            event._fire()
            return

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or the clock reaches *until*.

        If *until* is given, the clock is advanced to exactly ``until`` when
        the run ends because of the deadline (even if the queue still holds
        later events). An unhandled failure in any process propagates out of
        this call.
        """
        if until is not None:
            until = float(until)
            if until < self._now:
                raise SimulationError(
                    f"until={until!r} is in the past (now={self._now!r})"
                )
        self._stop_requested = False
        q = self._eventq
        heap = self._heap
        try:
            if q is not None:
                while True:
                    if self._stop_requested:
                        return
                    entry = q.peek()
                    if entry is None:
                        break
                    if until is not None and entry[0] > until:
                        self._now = until
                        return
                    event = entry[2]
                    if event._cancelled:
                        q.pop()
                        dead = self._dead - 1
                        self._dead = dead
                        if dead > _COMPACT_MIN_DEAD and dead * 2 > len(q):
                            self._compact()
                        continue
                    q.pop()
                    self._now = entry[0]
                    event._fire()
            elif until is None:
                # Unbounded run: tight loop without the deadline check.
                while heap:
                    if self._stop_requested:
                        return
                    when, _seq, event = _heappop(heap)
                    if event._cancelled:
                        dead = self._dead - 1
                        self._dead = dead
                        if dead > _COMPACT_MIN_DEAD and dead * 2 > len(heap):
                            self._compact()
                            heap = self._heap
                        continue
                    self._now = when
                    event._fire()
            else:
                while heap:
                    if self._stop_requested:
                        return
                    if heap[0][0] > until:
                        # Works on a dead head too: every live entry is
                        # at or beyond it, hence also past the deadline.
                        self._now = until
                        return
                    when, _seq, event = _heappop(heap)
                    if event._cancelled:
                        dead = self._dead - 1
                        self._dead = dead
                        if dead > _COMPACT_MIN_DEAD and dead * 2 > len(heap):
                            self._compact()
                            heap = self._heap
                        continue
                    self._now = when
                    event._fire()
        except StopSimulation:
            return
        if until is not None:
            self._now = until

    def stop(self) -> None:
        """Stop the current :meth:`run` immediately (from inside a callback)."""
        raise StopSimulation()

    def request_stop(self) -> None:
        """Stop :meth:`run` after the current event finishes processing.

        Safe to call from inside a process (unlike :meth:`stop`, which
        unwinds via an exception and would mark the caller failed).
        """
        self._stop_requested = True

    # ---------------------------------------------------------------- helpers
    def call_at(self, when: float, fn: Callable[[], Any]) -> Event:
        """Schedule a plain callback at absolute time *when*."""
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past")
        ev = Timeout(self, when - self._now)
        ev.callbacks.append(lambda _e: fn())
        return ev

    def every(self, interval: float, fn: Callable[[], Any],
              start_delay: Optional[float] = None) -> Ticker:
        """Run ``fn()`` every *interval* seconds; returns a stoppable
        :class:`~repro.sim.process.Ticker`.

        *start_delay* defaults to one full interval before the first
        tick; ``start_delay=0`` fires the first tick immediately (at the
        current time, after pending events). It must be non-negative.
        Call :meth:`~repro.sim.process.Ticker.stop` on the returned
        handle to end the loop cleanly.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval!r}")
        if start_delay is not None and start_delay < 0:
            raise SimulationError(
                f"start_delay must be non-negative: {start_delay!r}")
        first = interval if start_delay is None else start_delay
        return Ticker(self, interval, fn, first)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        q = self._eventq
        pending = len(self._heap) if q is None else len(q)
        return f"<Engine now={self._now:.6f} pending={pending}>"
