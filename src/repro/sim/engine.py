"""Discrete-event simulation engine.

A minimal, deterministic event-driven kernel in the SimPy style, written
from scratch for this reproduction. The :class:`Engine` owns a virtual
clock and a binary heap of scheduled :class:`~repro.sim.process.Event`
objects. Events scheduled at equal times fire in scheduling order (a
monotonically increasing sequence number breaks ties), which makes every
run bit-for-bit reproducible given the same seeds.

Typical usage::

    from repro.sim import Engine

    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.5)
        print("t =", eng.now)

    eng.process(proc(eng))
    eng.run()
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError, StopSimulation
from .process import AllOf, AnyOf, Event, Process, Timeout

__all__ = ["Engine"]

# Bound once at import: the schedule/step path runs for every simulated
# event, where even the module-attribute lookup of heapq.heappush shows
# up in profiles.
_heappush = heapq.heappush
_heappop = heapq.heappop


class Engine:
    """The simulation kernel: virtual clock plus event queue.

    Parameters
    ----------
    start:
        Initial value of the simulated clock (seconds).
    """

    __slots__ = ("_now", "_heap", "_seq", "_active_process",
                 "_stop_requested")

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: list = []  # entries: (time, seq, event)
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._stop_requested = False

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------- scheduling
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue *event* to fire ``delay`` seconds from now.

        An event may be scheduled only once; it fires by invoking its
        callbacks with the event as the sole argument.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (self._now + delay, seq, event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a fresh, untriggered event."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Spawn *generator* as a simulation process and return its handle."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in *events* has succeeded."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires as soon as any event in *events* triggers."""
        return AnyOf(self, list(events))

    # ---------------------------------------------------------------- running
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event; raise SimulationError if none remain."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _seq, event = _heappop(self._heap)
        self._now = when
        event._fire()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or the clock reaches *until*.

        If *until* is given, the clock is advanced to exactly ``until`` when
        the run ends because of the deadline (even if the queue still holds
        later events). An unhandled failure in any process propagates out of
        this call.
        """
        if until is not None:
            until = float(until)
            if until < self._now:
                raise SimulationError(
                    f"until={until!r} is in the past (now={self._now!r})"
                )
        self._stop_requested = False
        heap = self._heap
        try:
            if until is None:
                # Unbounded run: tight loop without the deadline check.
                while heap:
                    if self._stop_requested:
                        return
                    when, _seq, event = _heappop(heap)
                    self._now = when
                    event._fire()
            else:
                while heap:
                    if self._stop_requested:
                        return
                    if heap[0][0] > until:
                        self._now = until
                        return
                    when, _seq, event = _heappop(heap)
                    self._now = when
                    event._fire()
        except StopSimulation:
            return
        if until is not None:
            self._now = until

    def stop(self) -> None:
        """Stop the current :meth:`run` immediately (from inside a callback)."""
        raise StopSimulation()

    def request_stop(self) -> None:
        """Stop :meth:`run` after the current event finishes processing.

        Safe to call from inside a process (unlike :meth:`stop`, which
        unwinds via an exception and would mark the caller failed).
        """
        self._stop_requested = True

    # ---------------------------------------------------------------- helpers
    def call_at(self, when: float, fn: Callable[[], Any]) -> Event:
        """Schedule a plain callback at absolute time *when*."""
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past")
        ev = Timeout(self, when - self._now)
        ev.callbacks.append(lambda _e: fn())
        return ev

    def every(self, interval: float, fn: Callable[[], Any],
              start_delay: Optional[float] = None) -> Process:
        """Run ``fn()`` every *interval* seconds forever; returns the process.

        *start_delay* defaults to one full interval before the first
        tick; ``start_delay=0`` fires the first tick immediately (at the
        current time, after pending events). It must be non-negative.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval!r}")
        if start_delay is not None and start_delay < 0:
            raise SimulationError(
                f"start_delay must be non-negative: {start_delay!r}")

        def _ticker():
            yield self.timeout(interval if start_delay is None else start_delay)
            while True:
                fn()
                yield self.timeout(interval)

        return self.process(_ticker())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self._now:.6f} pending={len(self._heap)}>"
