"""Discrete-event simulation substrate (built from scratch).

Public surface:

- :class:`Engine` — the kernel: clock + event heap.
- :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AllOf`,
  :class:`AnyOf` — concurrency primitives.
- :class:`Store`, :class:`PriorityStore`, :class:`Resource`,
  :class:`BandwidthPipe` — shared resources.
- :class:`RngRegistry` — named deterministic random streams.
- :class:`Tracer` — event tracing.
"""

from .engine import Engine
from .process import AllOf, AnyOf, Condition, Event, Process, Timeout
from .resources import BandwidthPipe, PriorityStore, Resource, Store
from .rng import RngRegistry, stable_hash
from .trace import TraceRecord, Tracer

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Store",
    "PriorityStore",
    "Resource",
    "BandwidthPipe",
    "RngRegistry",
    "stable_hash",
    "Tracer",
    "TraceRecord",
]
