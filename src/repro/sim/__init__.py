"""Discrete-event simulation substrate (built from scratch).

Public surface:

- :class:`Engine` — the kernel: clock + event heap.
- :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AllOf`,
  :class:`AnyOf` — concurrency primitives.
- :class:`Store`, :class:`PriorityStore`, :class:`Resource`,
  :class:`BandwidthPipe` — shared resources.
- :class:`RngRegistry` — named deterministic random streams.
- :class:`Tracer` — event tracing.
"""

from .engine import Engine, default_eventq, set_default_eventq
from .eventq import CalendarEventQueue
from .process import (AllOf, AnyOf, Condition, Event, Process, Ticker,
                      Timeout, cancel_enabled, set_cancel_enabled)
from .resources import BandwidthPipe, PriorityStore, Resource, Store
from .rng import RngRegistry, stable_hash
from .trace import TraceRecord, Tracer

__all__ = [
    "Engine",
    "CalendarEventQueue",
    "set_default_eventq",
    "default_eventq",
    "Event",
    "Timeout",
    "Process",
    "Ticker",
    "Condition",
    "AllOf",
    "AnyOf",
    "set_cancel_enabled",
    "cancel_enabled",
    "Store",
    "PriorityStore",
    "Resource",
    "BandwidthPipe",
    "RngRegistry",
    "stable_hash",
    "Tracer",
    "TraceRecord",
]
