"""Named, reproducible random-number streams.

Every stochastic component in the simulator (token draws, workload jitter,
file-name generation, ...) pulls from a *named* stream derived from one
experiment seed. Two runs with the same seed are therefore identical, and
adding a new consumer does not perturb existing streams — each name maps
to an independent :class:`numpy.random.Generator` via ``SeedSequence``
spawn keys derived from a stable hash of the name.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry", "stable_hash"]


def stable_hash(name: str) -> int:
    """A process-stable 64-bit hash of *name* (unlike builtin ``hash``)."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """Factory of independent named random streams under one master seed."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence([self.seed, stable_hash(name)])
            gen = np.random.Generator(np.random.PCG64(ss))
            self._streams[name] = gen
        return gen

    def uniform(self, name: str) -> float:
        """One U[0,1) draw from the named stream."""
        return float(self.stream(name).random())

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(self.seed ^ stable_hash(name))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
