"""Events, timeouts, processes, and composite conditions.

The concurrency primitives of the simulation kernel. A :class:`Process`
wraps a Python generator: each ``yield`` hands the kernel an
:class:`Event`, and the process resumes when that event fires. Yielding a
*failed* event re-raises its exception inside the generator, so ordinary
``try/except`` works across simulated waits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional

from ..errors import InterruptError, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

__all__ = ["Event", "Timeout", "Process", "Condition", "AllOf", "AnyOf"]

_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called
    (which schedules it), and *processed* after its callbacks have run.
    Callbacks are plain callables invoked with the event.

    Events are the unit of allocation on the simulation hot path (every
    timeout, RPC, and lock wait creates one), so the whole hierarchy
    uses ``__slots__``; external subclasses may still add ad-hoc
    attributes (they simply regain a ``__dict__``).
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_scheduled",
                 "_processed", "_defused")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._processed = False
        self._defused = False

    # ------------------------------------------------------------- state
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self._processed

    @property
    def scheduled(self) -> bool:
        return self._scheduled

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception. Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    # ---------------------------------------------------------- triggering
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful with *value* and schedule it now."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event failed with *exception* and schedule it now."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.engine.schedule(self)
        return self

    def defuse(self) -> None:
        """Prevent an unhandled failure of this event from crashing the run."""
        self._defused = True

    # ------------------------------------------------------------- internal
    def _fire(self) -> None:
        """Invoke callbacks (called by the engine when this event is popped)."""
        if self._value is _PENDING:
            # A bare Timeout-like event scheduled without succeed(): treat
            # firing as success with its default value.
            self._ok = True
            self._value = getattr(self, "_default_value", None)
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay", "_default_value")

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        super().__init__(engine)
        self.delay = float(delay)
        self._default_value = value
        engine.schedule(self, delay)


class Initialize(Event):
    """Internal event used to start a new process on the next step."""

    __slots__ = ()

    def __init__(self, engine: "Engine", process: "Process"):
        super().__init__(engine)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        engine.schedule(self)


class Process(Event):
    """A running simulation process.

    The process itself is an event: it triggers when the generator returns
    (success, value = the ``return`` value) or raises (failure). Other
    processes may therefore ``yield`` a process to join it.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, engine: "Engine", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"not a generator: {generator!r}")
        super().__init__(engine)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def name(self) -> str:
        return getattr(self._generator, "__name__", "process")

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`InterruptError` inside the process at its next resume.

        Interrupting a finished process is an error; interrupting a process
        blocked on an event detaches it from that event first.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        ev = Event(self.engine)
        ev.callbacks.append(self._resume)
        ev._ok = False
        ev._value = InterruptError(cause)
        ev._defused = True  # the process handles it (or dies), not the kernel
        self.engine.schedule(ev)

    # ------------------------------------------------------------- internal
    def _resume(self, event: Event) -> None:
        engine = self.engine
        prev, engine._active_process = engine._active_process, self
        try:
            while True:
                try:
                    if event._ok:
                        target = self._generator.send(event._value)
                    else:
                        event._defused = True
                        target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    engine.schedule(self)
                    return
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    engine.schedule(self)
                    return

                if not isinstance(target, Event):
                    exc = SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}")
                    try:
                        self._generator.throw(exc)
                    except BaseException as err:
                        self._ok = isinstance(err, StopIteration)
                        self._value = (err.value if isinstance(err, StopIteration)
                                       else err)
                        engine.schedule(self)
                        return
                    continue

                if target.processed:
                    # Already fired: resume synchronously with its value.
                    event = target
                    continue
                target.callbacks.append(self._resume)
                self._target = target
                return
        finally:
            engine._active_process = prev
            if self._target is not None and self._target.processed:
                self._target = None


class Condition(Event):
    """Composite event over a list of events; see :class:`AllOf`/:class:`AnyOf`."""

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(self, engine: "Engine", events: List[Event],
                 evaluate: Callable[[List[Event], int], bool]):
        super().__init__(engine)
        self._events = events
        self._evaluate = evaluate
        self._count = 0
        if not events:
            self.succeed([])
            return
        for ev in events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed([ev._value for ev in self._events if ev.triggered and ev._ok])


class AllOf(Condition):
    """Triggers once *all* constituent events have succeeded."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: List[Event]):
        super().__init__(engine, events, lambda evs, n: n == len(evs))


class AnyOf(Condition):
    """Triggers as soon as *any* constituent event succeeds (or one fails)."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: List[Event]):
        super().__init__(engine, events, lambda evs, n: n >= 1)
