"""Events, timeouts, processes, and composite conditions.

The concurrency primitives of the simulation kernel. A :class:`Process`
wraps a Python generator: each ``yield`` hands the kernel an
:class:`Event`, and the process resumes when that event fires. Yielding a
*failed* event re-raises its exception inside the generator, so ordinary
``try/except`` works across simulated waits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional

from ..errors import InterruptError, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

__all__ = ["Event", "Timeout", "Process", "Ticker", "Condition", "AllOf",
           "AnyOf", "set_cancel_enabled", "cancel_enabled"]

_PENDING = object()

# Timer cancellation (DESIGN.md §15). When enabled, Event.cancel() marks a
# scheduled-but-untriggered event dead: the engine skips it on pop and
# compacts the queue when corpses accumulate. When disabled, cancel() is a
# no-op and the event fires exactly as it always did (with any detached
# callbacks skipped) — the baseline semantics used by the A/B digest suite.
_CANCEL_ENABLED = True


def set_cancel_enabled(enabled: bool) -> None:
    """Toggle timer cancellation (trace-neutral; see DESIGN.md §15)."""
    global _CANCEL_ENABLED
    _CANCEL_ENABLED = bool(enabled)


def cancel_enabled() -> bool:
    """True while Event.cancel() actually marks events dead."""
    return _CANCEL_ENABLED


class Event:
    """A one-shot occurrence in simulated time.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called
    (which schedules it), and *processed* after its callbacks have run.
    Callbacks are plain callables invoked with the event.

    Events are the unit of allocation on the simulation hot path (every
    timeout, RPC, and lock wait creates one), so the whole hierarchy
    uses ``__slots__``; external subclasses may still add ad-hoc
    attributes (they simply regain a ``__dict__``).
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_scheduled",
                 "_processed", "_defused", "_cancelled")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: List[Optional[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._processed = False
        self._defused = False
        self._cancelled = False

    # ------------------------------------------------------------- state
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self._processed

    @property
    def scheduled(self) -> bool:
        return self._scheduled

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has marked this event dead."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception. Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    # ---------------------------------------------------------- triggering
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful with *value* and schedule it now."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event failed with *exception* and schedule it now."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.engine.schedule(self)
        return self

    def defuse(self) -> None:
        """Prevent an unhandled failure of this event from crashing the run."""
        self._defused = True

    def cancel(self) -> bool:
        """Mark this event dead so it never fires; returns True if marked.

        Cancellation is idempotent and illegal once the event has
        triggered (it has a value) or fired. A cancelled event is lazily
        discarded by the engine on pop, so cancel() is O(1); the engine
        compacts the queue when dead entries accumulate. With the
        cancellation toggle off this is a no-op returning False: the
        event stays in the queue and fires exactly as before (callers
        must already tolerate the firing — that *is* the baseline
        behaviour the A/B suite compares against).
        """
        if self.triggered or self._processed:
            raise SimulationError(f"cannot cancel {self!r}: already triggered")
        if not _CANCEL_ENABLED:
            return False
        if self._cancelled:
            return True
        self._cancelled = True
        # Drop callback references eagerly: a million-timer churn must not
        # pin closures (and the objects they capture) until compaction.
        self.callbacks = []
        if self._scheduled:
            self.engine._note_cancel()
        return True

    # ------------------------------------------------------------ callbacks
    def attach(self, callback: Callable[["Event"], None]) -> int:
        """Append *callback* and return an O(1) detach handle (its slot)."""
        cbs = self.callbacks
        cbs.append(callback)
        return len(cbs) - 1

    def detach(self, slot: int) -> None:
        """Remove the callback registered at *slot* (O(1), idempotent).

        No-op once the event has fired or been cancelled — the callback
        list has already been handed off (or dropped), so there is
        nothing left to detach.
        """
        if self._processed or self._cancelled:
            return
        cbs = self.callbacks
        if 0 <= slot < len(cbs):
            cbs[slot] = None

    # ------------------------------------------------------------- internal
    def _fire(self) -> None:
        """Invoke callbacks (called by the engine when this event is popped)."""
        if self._value is _PENDING:
            # A bare Timeout-like event scheduled without succeed(): treat
            # firing as success with its default value.
            self._ok = True
            self._value = getattr(self, "_default_value", None)
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            if cb is not None:  # None = detached slot
                cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay", "_default_value")

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        super().__init__(engine)
        self.delay = float(delay)
        self._default_value = value
        engine.schedule(self, delay)


class Initialize(Event):
    """Internal event used to start a new process on the next step."""

    __slots__ = ()

    def __init__(self, engine: "Engine", process: "Process"):
        super().__init__(engine)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        engine.schedule(self)


class Process(Event):
    """A running simulation process.

    The process itself is an event: it triggers when the generator returns
    (success, value = the ``return`` value) or raises (failure). Other
    processes may therefore ``yield`` a process to join it.
    """

    __slots__ = ("_generator", "_target", "_target_slot")

    def __init__(self, engine: "Engine", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"not a generator: {generator!r}")
        super().__init__(engine)
        self._generator = generator
        self._target: Optional[Event] = None
        self._target_slot = -1
        Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def name(self) -> str:
        return getattr(self._generator, "__name__", "process")

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`InterruptError` inside the process at its next resume.

        Interrupting a finished process is an error; interrupting a process
        blocked on an event detaches it from that event first.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None:
            # O(1): null out our slot instead of scanning the (possibly
            # thousands-long) callback list of a contended event.
            self._target.detach(self._target_slot)
            self._target = None
        ev = Event(self.engine)
        ev.callbacks.append(self._resume)
        ev._ok = False
        ev._value = InterruptError(cause)
        ev._defused = True  # the process handles it (or dies), not the kernel
        self.engine.schedule(ev)

    # ------------------------------------------------------------- internal
    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:
            # Already finished: a stale wakeup (e.g. an interrupt racing
            # the generator's own final return) must not re-drive the
            # exhausted generator or re-schedule the process event.
            return
        engine = self.engine
        prev, engine._active_process = engine._active_process, self
        try:
            while True:
                try:
                    if event._ok:
                        target = self._generator.send(event._value)
                    else:
                        event._defused = True
                        target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    engine.schedule(self)
                    return
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    engine.schedule(self)
                    return

                if not isinstance(target, Event):
                    exc = SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}")
                    try:
                        self._generator.throw(exc)
                    except BaseException as err:
                        self._ok = isinstance(err, StopIteration)
                        self._value = (err.value if isinstance(err, StopIteration)
                                       else err)
                        engine.schedule(self)
                        return
                    continue

                if target.processed:
                    # Already fired: resume synchronously with its value.
                    event = target
                    continue
                self._target_slot = target.attach(self._resume)
                self._target = target
                return
        finally:
            engine._active_process = prev
            if self._target is not None and self._target.processed:
                self._target = None


class Condition(Event):
    """Composite event over a list of events; see :class:`AllOf`/:class:`AnyOf`."""

    __slots__ = ("_events", "_evaluate", "_count", "_slots")

    def __init__(self, engine: "Engine", events: List[Event],
                 evaluate: Callable[[List[Event], int], bool]):
        super().__init__(engine)
        self._events = events
        self._evaluate = evaluate
        self._count = 0
        self._slots: List = []
        if not events:
            self.succeed([])
            return
        for ev in events:
            if ev.processed:
                self._check(ev)
            else:
                self._slots.append((ev, ev.attach(self._check)))

    def _detach_rest(self) -> None:
        """Let go of constituents that have not fired yet.

        Once the condition has triggered, the remaining _check callbacks
        would be no-ops; detaching them keeps an AnyOf loser from pinning
        this condition (and its whole event list) in every pending
        event's callback list until it fires.
        """
        slots, self._slots = self._slots, []
        for ev, slot in slots:
            ev.detach(slot)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            self._detach_rest()
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed([ev._value for ev in self._events if ev.triggered and ev._ok])
            self._detach_rest()


class Ticker(Process):
    """Periodic callback process returned by :meth:`Engine.every`.

    A plain :class:`Process` (joinable, interruptible) plus a
    :meth:`stop` that ends the loop cleanly: the in-flight sleep timer
    is detached and cancelled through the new cancel path instead of
    firing forever.
    """

    __slots__ = ("_stopped", "_sleep")

    def __init__(self, engine: "Engine", interval: float,
                 fn: Callable[[], Any], first: float):
        self._stopped = False
        self._sleep: Optional[Event] = None
        super().__init__(engine, self._tick(engine, interval, fn, first))

    def _tick(self, engine: "Engine", interval: float,
              fn: Callable[[], Any], first: float) -> Generator:
        try:
            if self._stopped:
                return
            self._sleep = engine.timeout(first)
            yield self._sleep
            while not self._stopped:
                fn()
                if self._stopped:
                    return
                self._sleep = engine.timeout(interval)
                yield self._sleep
        except InterruptError:
            return

    def stop(self) -> None:
        """Stop ticking; idempotent, safe from inside the tick callback.

        Called from outside the ticker, the loop ends immediately (the
        pending sleep is abandoned and cancelled); called from within
        ``fn()`` itself, the generator returns right after ``fn()``
        without scheduling another sleep.
        """
        if self._stopped or self.triggered:
            self._stopped = True
            return
        self._stopped = True
        if self.engine.active_process is self:
            return  # mid-tick: the loop checks the flag after fn() returns
        sleep = self._sleep
        if sleep is None:
            return  # not yet started: the generator checks the flag first
        self.interrupt("ticker stopped")
        if not sleep.processed and not sleep.cancelled:
            sleep.cancel()


class AllOf(Condition):
    """Triggers once *all* constituent events have succeeded."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: List[Event]):
        super().__init__(engine, events, lambda evs, n: n == len(evs))


class AnyOf(Condition):
    """Triggers as soon as *any* constituent event succeeds (or one fails)."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: List[Event]):
        super().__init__(engine, events, lambda evs, n: n >= 1)
