"""Shared simulated resources: stores, semaphores, and bandwidth pipes.

These follow the event protocol of :mod:`repro.sim.process`: every blocking
operation returns an :class:`~repro.sim.process.Event` that a process
yields on.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Tuple

from ..errors import SimulationError
from .process import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

__all__ = ["Store", "PriorityStore", "Resource", "BandwidthPipe"]


class Store:
    """An unbounded-or-bounded FIFO queue of arbitrary items.

    ``put(item)`` and ``get()`` both return events. With a finite
    *capacity*, puts block while the store is full.
    """

    __slots__ = ("engine", "capacity", "items", "_getters", "_putters")

    def __init__(self, engine: "Engine", capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def pending_getters(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> Event:
        """Insert *item*; the returned event succeeds once the item is stored."""
        ev = Event(self.engine)
        self._putters.append((ev, item))
        self._dispatch()
        return ev

    def get(self) -> Event:
        """Remove the oldest item; the event's value is the item."""
        ev = Event(self.engine)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> Any:
        """Non-blocking get: pop and return an item, or None if empty."""
        if self.items:
            item = self.items.popleft()
            self._dispatch()
            return item
        return None

    def _dispatch(self) -> None:
        # Admit queued puts while there is room. A cancelled putter
        # abandoned the wait: drop it (and its item) instead of storing.
        while self._putters and len(self.items) < self.capacity:
            put_ev, item = self._putters.popleft()
            if put_ev._cancelled:
                continue
            self.items.append(item)
            put_ev.succeed()
        # Satisfy queued gets while items exist; cancelled getters no
        # longer want an item, so the next live getter takes it.
        while self._getters and self.items:
            get_ev = self._getters.popleft()
            if get_ev._cancelled:
                continue
            get_ev.succeed(self.items.popleft())
            # An item left may unblock a putter.
            while self._putters and len(self.items) < self.capacity:
                put_ev, item = self._putters.popleft()
                if put_ev._cancelled:
                    continue
                self.items.append(item)
                put_ev.succeed()


class PriorityStore(Store):
    """A store whose ``get`` returns the smallest item (heap order).

    Items must be comparable; use ``(priority, seq, payload)`` tuples for
    deterministic tie-breaking.
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", capacity: float = float("inf")):
        super().__init__(engine, capacity)
        self.items: List[Any] = []  # heap

    def _dispatch(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            put_ev, item = self._putters.popleft()
            if put_ev._cancelled:
                continue
            heapq.heappush(self.items, item)
            put_ev.succeed()
        while self._getters and self.items:
            get_ev = self._getters.popleft()
            if get_ev._cancelled:
                continue
            get_ev.succeed(heapq.heappop(self.items))
            while self._putters and len(self.items) < self.capacity:
                put_ev, item = self._putters.popleft()
                if put_ev._cancelled:
                    continue
                heapq.heappush(self.items, item)
                put_ev.succeed()

    def try_get(self) -> Any:
        if self.items:
            item = heapq.heappop(self.items)
            self._dispatch()
            return item
        return None


class Resource:
    """A counting semaphore with FIFO queuing.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    __slots__ = ("engine", "capacity", "_holders", "_waiters")

    def __init__(self, engine: "Engine", capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.engine = engine
        self.capacity = int(capacity)
        self._holders: set = set()
        self._waiters: Deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._holders)

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Event that fires once a slot is held (FIFO among waiters)."""
        ev = Event(self.engine)
        if len(self._holders) < self.capacity:
            self._holders.add(ev)
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self, request: Event) -> None:
        """Release the slot held by *request*, promoting a waiter."""
        if request not in self._holders:
            raise SimulationError("releasing a request that does not hold the resource")
        self._holders.discard(request)
        waiters = self._waiters
        while waiters:
            nxt = waiters.popleft()
            if nxt._cancelled:
                continue  # gave up the wait; promote the next in line
            self._holders.add(nxt)
            nxt.succeed()
            return


class BandwidthPipe:
    """A serialising link: transfers complete at ``size / rate`` in FIFO order.

    Models a NIC or device channel where transmissions queue behind each
    other; the pipe is busy until its last accepted transfer drains.
    ``transfer(nbytes)`` returns an event succeeding at the completion time.
    A per-transfer fixed ``latency`` is added after serialisation.
    """

    __slots__ = ("engine", "rate", "latency", "_free_at", "bytes_moved")

    def __init__(self, engine: "Engine", rate: float, latency: float = 0.0):
        if rate <= 0:
            raise SimulationError("rate must be positive")
        if latency < 0:
            raise SimulationError("latency must be non-negative")
        self.engine = engine
        self.rate = float(rate)
        self.latency = float(latency)
        self._free_at = 0.0  # time the pipe drains
        self.bytes_moved = 0

    @property
    def busy_until(self) -> float:
        return max(self._free_at, self.engine.now)

    def transfer(self, nbytes: float, value: Any = None) -> Event:
        """Queue a transfer of *nbytes*; the event fires when it completes."""
        if nbytes < 0:
            raise SimulationError("nbytes must be non-negative")
        start = max(self._free_at, self.engine.now)
        self._free_at = start + nbytes / self.rate
        self.bytes_moved += int(nbytes)
        done = Event(self.engine)
        done._ok = True
        done._value = value
        self.engine.schedule(done, self._free_at + self.latency - self.engine.now)
        return done

    def eta(self, nbytes: float) -> float:
        """Completion time a transfer of *nbytes* would get if queued now."""
        start = max(self._free_at, self.engine.now)
        return start + nbytes / self.rate + self.latency
