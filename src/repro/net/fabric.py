"""Interconnect model: nodes with NICs joined by a low-latency fabric.

The model captures what arbitration cares about — *when* requests arrive
and how fast bytes drain — without simulating routing. Each node owns a
transmit :class:`~repro.sim.resources.BandwidthPipe` (its NIC injection
channel) and an inbox :class:`~repro.sim.resources.Store`. A send
serialises on the sender's NIC, crosses the fabric after a fixed latency,
and lands in the receiver's inbox. Receive-side serialisation is folded
into the single NIC pipe (full-duplex links are modelled with separate tx
pipes per node, which is where contention matters for our workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Set, Union

from ..errors import NetworkError
from ..sim.process import Event
from ..sim.resources import BandwidthPipe, Store
from ..units import GB, USEC
from .message import Message

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine

__all__ = ["Fabric", "NodeHandle", "FaultVerdict", "DROP"]

#: Sentinel verdict a fault filter returns to drop a message outright.
DROP = "drop"

#: What a fault filter may return per message: ``None`` (deliver
#: normally), :data:`DROP`, or a float (extra delivery delay, seconds).
FaultVerdict = Optional[Union[str, float]]


@dataclass
class NodeHandle:
    """A node attached to the fabric: its NIC pipe and inbox."""

    name: str
    tx: BandwidthPipe
    inbox: Store


class Fabric:
    """The cluster interconnect.

    Parameters
    ----------
    engine:
        Simulation engine.
    latency:
        One-way wire latency in seconds (InfiniBand-class default: 2 us).
    link_bandwidth:
        Per-node NIC injection bandwidth in bytes/second (HDR-class
        default: 25 GB/s unidirectional).
    """

    def __init__(self, engine: "Engine", latency: float = 2 * USEC,
                 link_bandwidth: float = 25 * GB):
        if latency < 0:
            raise NetworkError(f"negative latency: {latency}")
        if link_bandwidth <= 0:
            raise NetworkError(f"non-positive bandwidth: {link_bandwidth}")
        self.engine = engine
        self.latency = float(latency)
        self.link_bandwidth = float(link_bandwidth)
        self._nodes: Dict[str, NodeHandle] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        #: effective wire bytes after payload-level encodings (equals
        #: bytes_sent when no message sets Message.payload_bytes).
        self.payload_bytes_sent = 0
        #: the same accounting broken down by destination node — the
        #: per-node *inbound* view that exposes fan-in hotspots (the
        #: λ-sync coordinator at large N) invisible in the totals.
        self.payload_bytes_to: Dict[str, int] = {}
        self.messages_to: Dict[str, int] = {}
        # Fault-injection hooks: both checks are falsy no-ops in a
        # healthy cluster, so the clean send path pays two branch tests.
        self._fault_filter: Optional[Callable[[Message], FaultVerdict]] = None
        self._down: Set[str] = set()
        self.dropped_messages = 0
        self.delayed_messages = 0

    # -------------------------------------------------------------- topology
    def add_node(self, name: str) -> NodeHandle:
        """Attach a node called *name*; names must be unique."""
        if name in self._nodes:
            raise NetworkError(f"duplicate node name: {name!r}")
        handle = NodeHandle(
            name=name,
            tx=BandwidthPipe(self.engine, rate=self.link_bandwidth),
            inbox=Store(self.engine),
        )
        self._nodes[name] = handle
        return handle

    def node(self, name: str) -> NodeHandle:
        """The handle of node *name* (raises NetworkError if unknown)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node: {name!r}") from None

    def has_node(self, name: str) -> bool:
        """True if a node called *name* is attached."""
        return name in self._nodes

    @property
    def node_names(self):
        return list(self._nodes)

    # --------------------------------------------------------------- faults
    def set_fault_filter(
            self, fn: Optional[Callable[[Message], FaultVerdict]]) -> None:
        """Install (or clear, with ``None``) a per-message fault filter.

        The filter is evaluated once per send, in send order, which keeps
        any randomness inside it deterministic for a fixed seed and plan.
        It returns a :data:`FaultVerdict`: ``None`` delivers normally,
        :data:`DROP` discards the message after it crosses the wire, and
        a float adds that many seconds of delivery delay.
        """
        self._fault_filter = fn

    def set_node_down(self, name: str, down: bool = True) -> None:
        """Mark *name* crashed (or back up). A down node neither
        transmits nor receives; traffic involving it is counted dropped."""
        self.node(name)  # validate
        if down:
            self._down.add(name)
        else:
            self._down.discard(name)

    def node_is_down(self, name: str) -> bool:
        """True if *name* is currently marked down."""
        return name in self._down

    # ------------------------------------------------------------ accounting
    def reset_counters(self) -> None:
        """Zero the traffic counters (per-phase accounting: benchmarks
        and tests isolate one window's messages without rebuilding the
        cluster). Topology and fault state are untouched."""
        self.messages_sent = 0
        self.bytes_sent = 0
        self.payload_bytes_sent = 0
        self.payload_bytes_to.clear()
        self.messages_to.clear()
        self.dropped_messages = 0
        self.delayed_messages = 0

    # ------------------------------------------------------------- transport
    def send(self, message: Message) -> Event:
        """Transmit *message*; the event fires when it is enqueued remotely.

        The message occupies the sender's NIC for ``size / link_bandwidth``
        seconds, then arrives ``latency`` later. Sends are fire-and-forget
        for fault purposes: a dropped or blackholed message still
        triggers the returned event (the sender cannot observe the loss
        — only a missing response can).
        """
        src = self.node(message.src)
        dst = self.node(message.dst)
        self.messages_sent += 1
        self.bytes_sent += message.size
        effective = (message.size if message.payload_bytes is None
                     else message.payload_bytes)
        self.payload_bytes_sent += effective
        self.payload_bytes_to[message.dst] = (
            self.payload_bytes_to.get(message.dst, 0) + effective)
        self.messages_to[message.dst] = (
            self.messages_to.get(message.dst, 0) + 1)

        delivered = Event(self.engine)
        if self._down and message.src in self._down:
            # A dead node transmits nothing: vanish without NIC events.
            self.dropped_messages += 1
            delivered.succeed(message)
            return delivered
        extra_delay = 0.0
        dropped = False
        if self._fault_filter is not None:
            verdict = self._fault_filter(message)
            if verdict == DROP:
                dropped = True
            elif verdict is not None:
                extra_delay = float(verdict)
                self.delayed_messages += 1
        sent = src.tx.transfer(message.size)

        def _arrive(_ev: Event) -> None:
            # Destination liveness is re-checked at arrival time so a
            # node that crashed while the message was in flight still
            # loses it.
            if dropped or (self._down and message.dst in self._down):
                self.dropped_messages += 1
            else:
                dst.inbox.put(message)
            delivered.succeed(message)

        def _after_wire(_ev: Event) -> None:
            # Fixed propagation latency after serialisation.
            # lint: disable=PERF104 -- pure propagation delay, always fires
            wire = self.engine.timeout(self.latency + extra_delay)
            wire.callbacks.append(_arrive)

        sent.callbacks.append(_after_wire)
        return delivered

    def inbox(self, name: str) -> Store:
        """The receive queue of node *name*."""
        return self.node(name).inbox
