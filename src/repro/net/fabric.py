"""Interconnect model: nodes with NICs joined by a low-latency fabric.

The model captures what arbitration cares about — *when* requests arrive
and how fast bytes drain — without simulating routing. Each node owns a
transmit :class:`~repro.sim.resources.BandwidthPipe` (its NIC injection
channel) and an inbox :class:`~repro.sim.resources.Store`. A send
serialises on the sender's NIC, crosses the fabric after a fixed latency,
and lands in the receiver's inbox. Receive-side serialisation is folded
into the single NIC pipe (full-duplex links are modelled with separate tx
pipes per node, which is where contention matters for our workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from ..errors import NetworkError
from ..sim.process import Event
from ..sim.resources import BandwidthPipe, Store
from ..units import GB, USEC
from .message import Message

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine

__all__ = ["Fabric", "NodeHandle"]


@dataclass
class NodeHandle:
    """A node attached to the fabric: its NIC pipe and inbox."""

    name: str
    tx: BandwidthPipe
    inbox: Store


class Fabric:
    """The cluster interconnect.

    Parameters
    ----------
    engine:
        Simulation engine.
    latency:
        One-way wire latency in seconds (InfiniBand-class default: 2 us).
    link_bandwidth:
        Per-node NIC injection bandwidth in bytes/second (HDR-class
        default: 25 GB/s unidirectional).
    """

    def __init__(self, engine: "Engine", latency: float = 2 * USEC,
                 link_bandwidth: float = 25 * GB):
        if latency < 0:
            raise NetworkError(f"negative latency: {latency}")
        if link_bandwidth <= 0:
            raise NetworkError(f"non-positive bandwidth: {link_bandwidth}")
        self.engine = engine
        self.latency = float(latency)
        self.link_bandwidth = float(link_bandwidth)
        self._nodes: Dict[str, NodeHandle] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    # -------------------------------------------------------------- topology
    def add_node(self, name: str) -> NodeHandle:
        """Attach a node called *name*; names must be unique."""
        if name in self._nodes:
            raise NetworkError(f"duplicate node name: {name!r}")
        handle = NodeHandle(
            name=name,
            tx=BandwidthPipe(self.engine, rate=self.link_bandwidth),
            inbox=Store(self.engine),
        )
        self._nodes[name] = handle
        return handle

    def node(self, name: str) -> NodeHandle:
        """The handle of node *name* (raises NetworkError if unknown)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node: {name!r}") from None

    def has_node(self, name: str) -> bool:
        """True if a node called *name* is attached."""
        return name in self._nodes

    @property
    def node_names(self):
        return list(self._nodes)

    # ------------------------------------------------------------- transport
    def send(self, message: Message) -> Event:
        """Transmit *message*; the event fires when it is enqueued remotely.

        The message occupies the sender's NIC for ``size / link_bandwidth``
        seconds, then arrives ``latency`` later.
        """
        src = self.node(message.src)
        dst = self.node(message.dst)
        self.messages_sent += 1
        self.bytes_sent += message.size

        delivered = Event(self.engine)
        sent = src.tx.transfer(message.size)

        def _arrive(_ev: Event) -> None:
            dst.inbox.put(message)
            delivered.succeed(message)

        def _after_wire(_ev: Event) -> None:
            # Fixed propagation latency after serialisation.
            wire = self.engine.timeout(self.latency)
            wire.callbacks.append(_arrive)

        sent.callbacks.append(_after_wire)
        return delivered

    def inbox(self, name: str) -> Store:
        """The receive queue of node *name*."""
        return self.node(name).inbox
