"""Interconnect substrate: fabric and message types."""

from .fabric import Fabric, NodeHandle
from .message import Message

__all__ = ["Fabric", "NodeHandle", "Message"]
