"""Typed messages moved across the simulated interconnect."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Message"]

_msg_ids = itertools.count()


@dataclass
class Message:
    """One network message.

    ``size`` is the on-wire byte count used for serialisation delay (header
    plus payload bytes); ``payload`` is the simulated content and is never
    serialised for real.

    ``payload_bytes`` is the *effective* wire byte count after any
    payload-level encoding (e.g. λ-sync delta pushes), accounted by
    :attr:`~repro.net.fabric.Fabric.payload_bytes_sent`. ``None`` (the
    default) means "same as ``size``". Keeping it separate from ``size``
    lets an encoding shrink measured traffic without perturbing the
    simulated serialisation delay — the trace-neutrality contract the
    toggle-equivalence suites rely on.
    """

    src: str
    dst: str
    tag: str
    payload: Any = None
    size: int = 0
    worker: str = ""  # destination UCP worker name ("" = node default)
    payload_bytes: Optional[int] = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative message size: {self.size}")
        if self.payload_bytes is not None and self.payload_bytes < 0:
            raise ValueError(
                f"negative payload bytes: {self.payload_bytes}")
