"""Typed messages moved across the simulated interconnect."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message"]

_msg_ids = itertools.count()


@dataclass
class Message:
    """One network message.

    ``size`` is the on-wire byte count used for serialisation delay (header
    plus payload bytes); ``payload`` is the simulated content and is never
    serialised for real.
    """

    src: str
    dst: str
    tag: str
    payload: Any = None
    size: int = 0
    worker: str = ""  # destination UCP worker name ("" = node default)
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative message size: {self.size}")
