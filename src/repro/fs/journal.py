"""Namespace journaling and crash recovery (§7 future work, metadata half).

The log-structured backend (:mod:`repro.fs.logstore`) makes chunk *data*
recoverable; this module makes the *namespace* recoverable. A
:class:`NamespaceJournal` records every namespace mutation (mkdir,
create, unlink, rmdir, truncate, size extension) as a durable,
replayable record, with optional checkpoints that compact the record
stream. :class:`JournaledFS` is a drop-in :class:`~repro.fs.ThemisFS`
that writes the journal as it mutates, and can :meth:`crash` (losing
every volatile table) and :meth:`recover` (checkpoint + replay, then a
segment scan of each log-backed store).

Inode numbers are recorded and restored, so recovered metadata lines up
with the data records keyed ``(ino, chunk)`` in the log store.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import FSError
from . import path as pathmod
from .filesystem import ThemisFS
from .metadata import FileType, Inode
from .striping import ErasureSpec, StripeSpec

__all__ = ["NamespaceJournal", "JournalRecord", "JournaledFS"]


def _spec_from(stripe_size: int, args: Dict[str, Any]):
    """Reinstall the recorded layout: erasure iff ``erasure_k`` was
    journaled, plain striping otherwise."""
    servers = tuple(args["stripe_servers"])
    k = args.get("erasure_k")
    if k is not None:
        return ErasureSpec(stripe_size, servers, k)
    return StripeSpec(stripe_size, servers)


@dataclass(frozen=True)
class JournalRecord:
    """One durable namespace mutation."""

    seq: int
    op: str
    args: Dict[str, Any]


@dataclass
class NamespaceJournal:
    """Append-only mutation log with checkpoint compaction."""

    records: List[JournalRecord] = field(default_factory=list)
    checkpoint: Optional[List[Dict[str, Any]]] = None
    _seq: itertools.count = field(default_factory=lambda: itertools.count(1))
    checkpoints_taken: int = 0

    def log(self, op: str, **args: Any) -> JournalRecord:
        """Append one mutation record and return it."""
        record = JournalRecord(seq=next(self._seq), op=op, args=args)
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def take_checkpoint(self, fs: ThemisFS) -> None:
        """Snapshot the namespace and truncate the record stream."""
        snapshot: List[Dict[str, Any]] = []
        for node in fs.nodes.values():
            for inode in node.inodes.values():
                entry = {
                    "path": inode.path,
                    "ino": inode.ino,
                    "ftype": inode.ftype.value,
                    "size": inode.size,
                    "uid": inode.uid,
                }
                if inode.stripe is not None:
                    entry["stripe_servers"] = list(inode.stripe.servers)
                    if isinstance(inode.stripe, ErasureSpec):
                        entry["erasure_k"] = inode.stripe.k
                snapshot.append(entry)
        snapshot.sort(key=lambda e: (len(pathmod.components(e["path"])),
                                     e["path"]))
        self.checkpoint = snapshot
        self.records = []
        self.checkpoints_taken += 1


class JournaledFS(ThemisFS):
    """A ThemisFS whose namespace mutations are journaled.

    Combine with ``storage_backend="log"`` for full crash recovery of
    both metadata and data.
    """

    def __init__(self, *args, journal: Optional[NamespaceJournal] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.journal = journal if journal is not None else NamespaceJournal()
        self._replaying = False

    # ------------------------------------------------------- logged mutators
    def mkdir(self, path: str, ino: Optional[int] = None) -> Inode:
        inode = self._mkdir_raw(path, ino)
        if not self._replaying:
            self.journal.log("mkdir", path=inode.path, ino=inode.ino)
        return inode

    def create(self, path: str, stripe_count: Optional[int] = None,
               uid: int = 0, ino: Optional[int] = None) -> Inode:
        inode = self._create_raw(path, stripe_count, uid, ino)
        if not self._replaying:
            args = {"path": inode.path, "ino": inode.ino, "uid": uid,
                    "stripe_servers": list(inode.stripe.servers)}
            if isinstance(inode.stripe, ErasureSpec):
                args["erasure_k"] = inode.stripe.k
            self.journal.log("create", **args)
        return inode

    def unlink(self, path: str) -> None:
        norm = pathmod.normalize(path)
        super().unlink(norm)
        if not self._replaying:
            self.journal.log("unlink", path=norm)

    def rmdir(self, path: str) -> None:
        norm = pathmod.normalize(path)
        super().rmdir(norm)
        if not self._replaying:
            self.journal.log("rmdir", path=norm)

    def truncate(self, path: str, size: int = 0) -> None:
        norm = pathmod.normalize(path)
        super().truncate(norm, size)
        if not self._replaying:
            self.journal.log("truncate", path=norm, size=size)

    def write(self, path: str, offset: int, data: bytes) -> int:
        return self._logged_extend(path, super().write(path, offset, data),
                                   offset, len(data))

    def write_accounting(self, path: str, offset: int, length: int) -> int:
        return self._logged_extend(
            path, super().write_accounting(path, offset, length),
            offset, length)

    def restripe(self, path: str, old_server: str, new_server: str) -> None:
        norm = pathmod.normalize(path)
        super().restripe(norm, old_server, new_server)
        if not self._replaying:
            self.journal.log("restripe", path=norm, old=old_server,
                             new=new_server)

    def _logged_extend(self, path: str, result: int, offset: int,
                       length: int) -> int:
        if not self._replaying:
            inode = self.lookup(path)
            if inode is not None and inode.size == offset + length:
                # The write extended the file: record the new size.
                self.journal.log("extend", path=inode.path, size=inode.size)
        return result

    # ------------------------------------------------------ raw (unlogged)
    def _mkdir_raw(self, path: str, ino: Optional[int]) -> Inode:
        inode = super().mkdir(path)
        if ino is not None:
            self._renumber(inode, ino)
        return inode

    def _create_raw(self, path: str, stripe_count, uid,
                    ino: Optional[int]) -> Inode:
        inode = super().create(path, stripe_count=stripe_count, uid=uid)
        if ino is not None:
            self._renumber(inode, ino)
        return inode

    def _renumber(self, inode: Inode, ino: int) -> None:
        """Restore a recorded inode number during replay."""
        node = self.nodes[self.metadata_server(inode.path)]
        node.inodes.pop(inode.ino, None)
        parent_path, name = pathmod.split(inode.path)
        inode.ino = ino
        node.inodes[ino] = inode
        node.paths[inode.path] = ino
        parent = self.lookup(parent_path)
        if parent is not None:
            parent.link_child(name, ino)

    # ----------------------------------------------------------- fault model
    def crash(self) -> None:
        """Lose every volatile structure: namespace tables and (for log
        backends) the chunk indexes. The journal and log segments are the
        durable state that survives."""
        for node in self.nodes.values():
            node.inodes.clear()
            node.paths.clear()
            if hasattr(node.backend, "crash"):
                node.backend.crash()
        self._path_cache.clear()

    def recover(self) -> Dict[str, Any]:
        """Rebuild from the journal (checkpoint + replay) and rescan
        log-backed stores. Returns recovery statistics."""
        # Recreate the root, then apply checkpoint and records.
        now = self.clock()
        root = Inode(ino=1, ftype=FileType.DIRECTORY, path="/",
                     ctime=now, mtime=now)
        self._meta_node("/").add_inode(root)

        self._replaying = True
        try:
            applied = 0
            if self.journal.checkpoint:
                for entry in self.journal.checkpoint:
                    if entry["path"] == "/":
                        continue
                    if entry["ftype"] == FileType.DIRECTORY.value:
                        self.mkdir(entry["path"], ino=entry["ino"])
                    else:
                        inode = self.create(entry["path"], uid=entry["uid"],
                                            ino=entry["ino"])
                        inode.stripe = _spec_from(self.stripe_size, entry)
                        inode.size = entry["size"]
                    applied += 1
            for record in self.journal.records:
                self._apply(record)
                applied += 1
        finally:
            self._replaying = False

        scans = {}
        for name, node in self.nodes.items():
            if hasattr(node.backend, "recover"):
                scans[name] = node.backend.recover()
        return {"applied": applied, "scans": scans}

    def crash_node(self, name: str) -> None:
        """Crash one server: its namespace tables, locks, and (for log
        backends) chunk index all vanish. Other servers are untouched;
        the shared journal and the node's log segments survive."""
        node = self.nodes[name]
        node.inodes.clear()
        node.paths.clear()
        super().crash_node(name)  # also clears the path cache

    def recover_node(self, name: str) -> Dict[str, Any]:
        """Rebuild one server from the journal, then rescan its store.

        The journal is namespace-wide, so recovery replays the full
        checkpoint + record stream with exists-guards: entries owned by
        surviving servers still exist and are skipped, entries owned by
        the recovering server are recreated with their original inode
        numbers (lining up with the log store's ``(ino, chunk)`` keys).
        Returns recovery statistics.
        """
        if self.lookup("/") is None and self.metadata_server("/") == name:
            now = self.clock()
            root = Inode(ino=1, ftype=FileType.DIRECTORY, path="/",
                         ctime=now, mtime=now)
            self._meta_node("/").add_inode(root)

        self._replaying = True
        try:
            applied = 0
            if self.journal.checkpoint:
                for entry in self.journal.checkpoint:
                    if entry["path"] == "/" or self.exists(entry["path"]):
                        continue
                    if entry["ftype"] == FileType.DIRECTORY.value:
                        self.mkdir(entry["path"], ino=entry["ino"])
                    else:
                        inode = self.create(entry["path"], uid=entry["uid"],
                                            ino=entry["ino"])
                        inode.stripe = _spec_from(self.stripe_size, entry)
                        inode.size = entry["size"]
                    applied += 1
            for record in self.journal.records:
                self._apply(record)
                applied += 1
        finally:
            self._replaying = False

        scans = {}
        node = self.nodes[name]
        if hasattr(node.backend, "recover"):
            scans[name] = node.backend.recover()
        return {"applied": applied, "scans": scans}

    def _apply(self, record: JournalRecord) -> None:
        op, args = record.op, record.args
        if op == "mkdir":
            if not self.exists(args["path"]):
                self.mkdir(args["path"], ino=args["ino"])
        elif op == "create":
            if not self.exists(args["path"]):
                inode = self.create(args["path"], uid=args["uid"],
                                    ino=args["ino"])
                inode.stripe = _spec_from(self.stripe_size, args)
        elif op == "restripe":
            # Idempotent: node recovery replays against live metadata
            # that may already reflect the swap.
            inode = self.lookup(args["path"])
            if (inode is not None
                    and isinstance(inode.stripe, ErasureSpec)
                    and args["old"] in inode.stripe.servers):
                super().restripe(args["path"], args["old"], args["new"])
        elif op == "unlink":
            if self.exists(args["path"]):
                super().unlink(args["path"])
        elif op == "rmdir":
            if self.exists(args["path"]):
                super().rmdir(args["path"])
        elif op == "truncate":
            if self.exists(args["path"]):
                super().truncate(args["path"], args["size"])
        elif op == "extend":
            inode = self.lookup(args["path"])
            if inode is not None:
                inode.size = max(inode.size, args["size"])
        else:
            raise FSError(f"unknown journal record {op!r}")
