"""Path handling for the ThemisIO namespace.

Paths are absolute, ``/``-separated, and normalised (no ``.``/``..``
components, no duplicate slashes). The burst-buffer namespace lives under
a configurable prefix (``/fs`` by default, as in the paper's example
``/fs/input/path``); the POSIX shim uses :func:`in_namespace` to decide
whether to intercept a call.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import InvalidArgument

__all__ = ["normalize", "split", "join", "components", "in_namespace",
           "DEFAULT_NAMESPACE"]

DEFAULT_NAMESPACE = "/fs"


def normalize(path: str) -> str:
    """Return the canonical absolute form of *path*.

    Raises :class:`InvalidArgument` for relative paths, empty paths, or
    paths escaping the root via ``..``.
    """
    if not isinstance(path, str) or not path:
        raise InvalidArgument(f"empty or non-string path: {path!r}")
    if not path.startswith("/"):
        raise InvalidArgument(f"path must be absolute: {path!r}")
    parts: List[str] = []
    for comp in path.split("/"):
        if comp in ("", "."):
            continue
        if comp == "..":
            if not parts:
                raise InvalidArgument(f"path escapes root: {path!r}")
            parts.pop()
        else:
            parts.append(comp)
    return "/" + "/".join(parts)


def components(path: str) -> List[str]:
    """The normalised path's components (``[]`` for the root)."""
    norm = normalize(path)
    return [] if norm == "/" else norm[1:].split("/")


def split(path: str) -> Tuple[str, str]:
    """``(parent, name)`` of the normalised path; root has no parent."""
    norm = normalize(path)
    if norm == "/":
        raise InvalidArgument("root has no parent")
    parent, _, name = norm.rpartition("/")
    return (parent or "/", name)


def join(base: str, *names: str) -> str:
    """Join *names* onto *base* and normalise."""
    out = normalize(base)
    for name in names:
        if "/" in name:
            raise InvalidArgument(f"component contains '/': {name!r}")
        out = out.rstrip("/") + "/" + name
    return normalize(out)


def in_namespace(path: str, namespace: str = DEFAULT_NAMESPACE) -> bool:
    """True if *path* falls under the burst-buffer namespace prefix."""
    norm = normalize(path)
    ns = normalize(namespace)
    return norm == ns or norm.startswith(ns.rstrip("/") + "/")
