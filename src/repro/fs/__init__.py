"""Userspace distributed file system substrate (§4.3 of the paper)."""

from .backends import ChunkBackend, ExtentBackend, LogBackend, make_backend
from .filesystem import StorageNode, ThemisFS
from .hashing import ConsistentHashRing
from .journal import JournaledFS, JournalRecord, NamespaceJournal
from .logstore import LogRecord, LogStructuredStore, RecoveryReport, Segment
from .locking import MetadataLockTable, RangeLockTable
from .metadata import FileType, Inode, Stat
from .path import DEFAULT_NAMESPACE, components, in_namespace, join, normalize, split
from .storage import Extent, NVMeRegion
from .striping import ChunkSlice, StripeSpec, map_range

__all__ = [
    "ThemisFS",
    "StorageNode",
    "ChunkBackend",
    "ExtentBackend",
    "LogBackend",
    "make_backend",
    "LogStructuredStore",
    "LogRecord",
    "Segment",
    "RecoveryReport",
    "JournaledFS",
    "NamespaceJournal",
    "JournalRecord",
    "ConsistentHashRing",
    "NVMeRegion",
    "Extent",
    "StripeSpec",
    "ChunkSlice",
    "map_range",
    "Inode",
    "Stat",
    "FileType",
    "RangeLockTable",
    "MetadataLockTable",
    "normalize",
    "split",
    "join",
    "components",
    "in_namespace",
    "DEFAULT_NAMESPACE",
]
